#!/usr/bin/env python3
"""The paper's delivery workflow: developer publishes, composer adopts.

Section 5's vision — the component developer ships "theorems and proofs
in the documentation" so the composer's job reduces to automatic model
checking — as an executable round trip over a JSON spec sheet.

Run:  python examples/component_library.py
"""

from repro.casestudies.afs_common import ProtocolComponent
from repro.compositional.library import GuaranteeDecl, SpecSheet, adopt, publish
from repro.compositional.proof import CompositionProof

SENSOR = """
MODULE main
VAR armed : boolean;
    alarm : boolean;
ASSIGN
  next(armed) := armed;
  next(alarm) := case armed & !alarm : {0, 1}; 1 : alarm; esac;
"""

SIREN = """
MODULE main
VAR alarm : boolean;
    sounding : boolean;
ASSIGN
  next(alarm) := alarm;
  next(sounding) := case alarm & !sounding : 1; 1 : sounding; esac;
"""


def main() -> None:
    # ------------------------------------------------------------------
    # developer side: declare + verify + serialize the sensor's contract
    # ------------------------------------------------------------------
    sensor_sheet = SpecSheet(
        name="sensor",
        source=SENSOR,
        universal=["alarm -> AX alarm"],          # alarms latch
        guarantees=[GuaranteeDecl(p="armed & !alarm", q="armed & alarm")],
    )
    publish(sensor_sheet)
    wire_format = sensor_sheet.to_json()
    print("published sensor spec sheet:")
    print(wire_format)

    siren_sheet = SpecSheet(
        name="siren",
        source=SIREN,
        universal=["sounding -> AX sounding"],
        guarantees=[GuaranteeDecl(p="alarm & !sounding", q="alarm & sounding")],
    )
    publish(siren_sheet)

    # ------------------------------------------------------------------
    # composer side: deserialize, register, adopt, and chain
    # ------------------------------------------------------------------
    received = SpecSheet.from_json(wire_format)
    pf = CompositionProof(
        {
            "sensor": received.component().system(),
            "siren": siren_sheet.component().system(),
        }
    )
    sensor = adopt(pf, received)
    siren = adopt(pf, siren_sheet)
    print("\nadopted components; chaining their guarantees:")

    hop1 = pf.project(pf.discharge(sensor.guarantees[0]), 0)
    hop2 = pf.project(pf.discharge(siren.guarantees[0]), 0)
    aligned = pf.align_fairness([hop1, hop2])
    restriction = aligned[0].restriction

    # the alarm may already be sounding when the sensor fires: case split
    from repro.logic import parse_ctl

    goal = parse_ctl("alarm & sounding")
    af_hop2 = pf.au_to_af(aligned[1])
    already = pf.af_reflexive(goal, restriction)
    alarm_to_siren = pf.implication_cases(
        parse_ctl("armed & alarm"), [af_hop2, already]
    )
    end_to_end = pf.leads_to(aligned[0], alarm_to_siren)
    print(f"  {end_to_end}")
    print("\n(armed & silent eventually sounds the siren — proved without")
    print(" ever composing the two state machines.)")

    failures = [p for p, c in pf.verify_monolithic() if not c]
    print(f"\nmonolithic cross-check: {len(pf.conclusions)} conclusions, "
          f"{len(failures)} failures")
    assert not failures


if __name__ == "__main__":
    main()
