#!/usr/bin/env python3
"""The paper's Section 4 end to end: AFS-1 verified compositionally.

Reproduces, in order:
  1. Figure 7  — model checking the server's specs Srv1–Srv5;
  2. Figure 10 — model checking the client's specs Cli1–Cli5;
  3. §4.2.3    — the deductive composition: safety (Afs1) via the
                 inductive invariant, liveness (Afs2) via chained Rule-4
                 guarantees — machine-checked, then cross-validated
                 against the real product system.

Run:  python examples/afs1_verification.py
"""

from repro.casestudies.afs1 import (
    Afs1,
    check_client_figure,
    check_server_figure,
)


def main() -> None:
    print("=" * 72)
    print("Step 1 — model check the server alone (paper Figure 7)")
    print("=" * 72)
    report = check_server_figure()
    print(report.format())
    assert report.all_true

    print()
    print("=" * 72)
    print("Step 2 — model check the client alone (paper Figure 10)")
    print("=" * 72)
    report = check_client_figure()
    print(report.format())
    assert report.all_true

    study = Afs1()

    enc = study.combined_encoding()

    print()
    print("=" * 72)
    print("Step 3 — compositional safety proof of (Afs1)")
    print("=" * 72)
    pf, afs1 = study.prove_safety()
    print("invariant:  ", enc.describe(study.safety_invariant()))
    print("initially:  ", enc.describe(study.initial))
    print("conclusion: ", enc.describe(afs1.formula))
    obligations = {
        id(o) for s in pf.log for leaf in s.leaves() for o in leaf.obligations
    }
    print(f"model-checking obligations: {len(obligations)} "
          f"(one per component expansion)")

    print()
    print("=" * 72)
    print("Step 4 — compositional liveness proof of (Afs2)")
    print("=" * 72)
    pf, afs2 = study.prove_liveness()
    obligations = {
        id(o) for s in pf.log for leaf in s.leaves() for o in leaf.obligations
    }
    print(f"proof steps: {len(pf.log)}; component obligations: {len(obligations)}")
    print("conclusion: ", enc.describe(afs2.formula),
          "from", enc.describe(afs2.restriction.init))

    print()
    print("=" * 72)
    print("Step 5 — sanity: re-check every conclusion on the product system")
    print("=" * 72)
    failures = [p for p, c in pf.verify_monolithic() if not c]
    print(f"conclusions re-checked monolithically: {len(pf.conclusions)}, "
          f"failures: {len(failures)}")
    assert not failures
    print("all compositional conclusions confirmed by the monolithic checker.")


if __name__ == "__main__":
    main()
