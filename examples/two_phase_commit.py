#!/usr/bin/env python3
"""Two-phase commit verified compositionally, with proof-tree export.

Run:  python examples/two_phase_commit.py [n]
"""

import sys

from repro.casestudies.twophase import TwoPhaseCommit
from repro.compositional.export import obligations_report, proof_tree


def main(n: int = 2) -> None:
    study = TwoPhaseCommit(n)
    print(f"two-phase commit, 1 coordinator + {n} participants")

    print("\n--- atomicity (safety) ---")
    pf, atomicity = study.prove_atomicity()
    print(f"proven: AG(no participant commits while another aborts)")
    print()
    print(obligations_report(pf))

    print("\n--- termination (liveness) ---")
    pf, termination = study.prove_termination()
    print("proven: from the initial state, AF (decision ≠ none)")
    print(f"fairness constraints used: {len(termination.restriction.fairness)}")
    print(f"proof steps recorded: {len(pf.log)}")

    print("\n--- derivation of the final conclusion (clipped) ---")
    tree = proof_tree(termination, max_width=96)
    lines = tree.splitlines()
    shown = lines[:18]
    print("\n".join(shown))
    if len(lines) > len(shown):
        print(f"  … {len(lines) - len(shown)} more lines")

    print("\n--- monolithic cross-check ---")
    failures = [p for p, c in pf.verify_monolithic() if not c]
    print(f"{len(pf.conclusions)} conclusions, {len(failures)} failures")
    assert not failures


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2)
