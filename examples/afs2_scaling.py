#!/usr/bin/env python3
"""AFS-2 with n clients: compositional vs monolithic verification cost.

The paper's Discussion claims compositional checking is linear in the
number of components while monolithic checking is exponential.  This
script sweeps n, proving the time-aware safety invariant (Afs1, §4.3)
both ways, and prints the comparison table.

Run:  python examples/afs2_scaling.py [max_n]
"""

import sys
import time

from repro.baselines.monolithic import check_monolithic
from repro.casestudies.afs2 import Afs2
from repro.logic.ctl import AG
from repro.logic.restriction import Restriction


def main(max_n: int = 3) -> None:
    print(f"{'n':>3} {'obligations':>12} {'compositional':>14} "
          f"{'product atoms':>14} {'product states':>15} {'monolithic':>11}")
    for n in range(1, max_n + 1):
        study = Afs2(n)

        started = time.perf_counter()
        pf, _ = study.prove_safety()
        compositional = time.perf_counter() - started
        obligations = len(
            {id(o) for s in pf.log for leaf in s.leaves() for o in leaf.obligations}
        )

        components = {"server": study.server.symbolic()}
        for i, c in enumerate(study.clients, start=1):
            components[f"client{i}"] = c.symbolic()
        report = check_monolithic(
            components,
            AG(study.invariant()),
            Restriction(init=study.initial()),
            backend="symbolic",
        )
        assert report.result

        print(
            f"{n:>3} {obligations:>12} {compositional:>13.3f}s "
            f"{report.num_atoms:>14} {report.num_states:>15.0f} "
            f"{report.total_time:>10.3f}s"
        )

    print("\nshape: obligations grow as n+1 (linear); the product state space")
    print("grows exponentially and the monolithic check falls behind.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
