#!/usr/bin/env python3
"""Token-ring mutual exclusion — the framework on a non-AFS protocol.

Builds an n-process token ring programmatically (no SMV), proves mutual
exclusion via the inductive-invariant rule and entry-liveness via Rule 4,
and shows the engine rejecting a buggy variant.

Run:  python examples/token_ring.py [n]
"""

import sys

from repro.casestudies.mutex import TokenRing
from repro.compositional.proof import CompositionProof
from repro.errors import ProofError
from repro.systems.system import System


def main(n: int = 3) -> None:
    ring = TokenRing(n)
    print(f"token ring with {n} processes")
    for name, system in ring.components().items():
        print(f"  {name}: {system}")

    print("\n--- safety: AG no two processes critical ---")
    pf, safety = ring.prove_safety()
    print(f"proven: {safety}")
    failures = [p for p, c in pf.verify_monolithic() if not c]
    print(f"monolithic cross-check: {len(pf.conclusions)} conclusions, "
          f"{len(failures)} failures")

    print("\n--- liveness: the token holder eventually enters (Rule 4) ---")
    pf, live = ring.prove_enter_liveness(0)
    print(f"proven: {live}")

    print("\n--- failure injection: a rogue process that ignores the token ---")
    components = ring.components()
    rogue_edges = set(components["proc1"].edges)
    rogue_edges.add((frozenset(), frozenset({"c1"})))  # enter without token
    components["proc1"] = System(components["proc1"].sigma, rogue_edges)
    pf = CompositionProof(components)
    try:
        pf.invariant(ring.initial(), ring.mutex_invariant())
        print("UNEXPECTED: invariant accepted")
    except ProofError as exc:
        first_line = str(exc).splitlines()[0]
        print(f"proof engine correctly rejected the invariant:\n  {first_line}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
