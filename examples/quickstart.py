#!/usr/bin/env python3
"""Quickstart: systems, composition, CTL checking, and one Rule-4 proof.

Run:  python examples/quickstart.py
"""

from repro import (
    ExplicitChecker,
    Restriction,
    SymbolicChecker,
    SymbolicSystem,
    System,
    compose,
    parse_ctl,
)
from repro.compositional import CompositionProof
from repro.logic.ctl import Not, atom


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Systems are (Σ, R): states = subsets of Σ, R reflexive.
    #    This is the paper's Figure 1 pair of one-bit toggles.
    # ------------------------------------------------------------------
    m = System.from_pairs({"x"}, [((), ("x",)), (("x",), ())])
    m_prime = System.from_pairs({"y"}, [((), ("y",)), (("y",), ())])
    print(f"M  = {m}")
    print(f"M' = {m_prime}")

    # ------------------------------------------------------------------
    # 2. Interleaving composition: each step moves one component.
    # ------------------------------------------------------------------
    composite = compose(m, m_prime)
    print(f"M ∘ M' = {composite}")

    # ------------------------------------------------------------------
    # 3. Model check CTL — explicit (NumPy) and symbolic (BDD) engines.
    # ------------------------------------------------------------------
    spec = parse_ctl("!x & !y -> EX (x & !y)")
    explicit = ExplicitChecker(composite).holds(spec)
    symbolic = SymbolicChecker(SymbolicSystem.from_explicit(composite)).holds(spec)
    print(f"\nexplicit: {explicit.format()}")
    print(f"symbolic: {symbolic.format()}")
    print(symbolic.stats.format())

    # ------------------------------------------------------------------
    # 4. Fairness: stuttering defeats AF x, the restriction restores it.
    # ------------------------------------------------------------------
    af_x = parse_ctl("AF x")
    plain = ExplicitChecker(m).holds(af_x)
    fair = ExplicitChecker(m).holds(af_x, Restriction(fairness=(parse_ctl("x"),)))
    print(f"\nAF x without fairness: {bool(plain)} (stuttering wins)")
    print(f"AF x with fairness {{x}}: {bool(fair)}")

    # ------------------------------------------------------------------
    # 5. Compositional verification: prove a progress property of the
    #    composite from *component* checks only (Rule 4), then have the
    #    engine re-verify every conclusion on the real product.
    # ------------------------------------------------------------------
    riser = System.from_pairs({"x"}, [((), ("x",))])  # x can only rise
    pf = CompositionProof({"riser": riser, "env": m_prime})
    p, q = Not(atom("x")), atom("x")
    guarantee = pf.guarantee_rule4("riser", p, q)
    print(f"\nRule 4 gives: {guarantee.guarantee}")
    rhs = pf.discharge(guarantee)
    progress = pf.af_weaken(pf.chain([pf.project(rhs, 0)]), q)
    print(f"derived:      {progress}")

    print("\ncross-checking every conclusion on the product system:")
    for proven, check in pf.verify_monolithic():
        print(f"  {'OK ' if check else 'FAIL'} {proven.prop}")


if __name__ == "__main__":
    main()
