#!/usr/bin/env python3
"""The paper's whole workflow from a single SMV file with `process`.

SMV's ``process`` keyword has exactly the interleaving semantics of the
paper's composition operator, so a multi-process program *is* a
compositional verification problem: this script loads one source, checks
the global SPEC monolithically against the interleaving composite, and
then proves the same property compositionally — one obligation per
process, never building the product.

Run:  python examples/process_program.py
"""

from repro.logic.ctl import Implies, land
from repro.smv.processes import check_processes, load_processes

SOURCE = """
MODULE main
VAR
  channel : {empty, item};
  producer : process producerproc(channel);
  consumer : process consumerproc(channel);
INIT channel = empty & !producer.done & !consumer.done
SPEC AG (consumer.done -> producer.done)

MODULE producerproc(ch)
VAR done : boolean;
ASSIGN
  next(ch)   := case ch = empty & !done : item; 1 : ch; esac;
  next(done) := case ch = empty & !done : 1; 1 : done; esac;

MODULE consumerproc(ch)
VAR done : boolean;
ASSIGN
  next(ch)   := case ch = item & !done : empty; 1 : ch; esac;
  next(done) := case ch = item & !done : 1; 1 : done; esac;
"""


def main() -> None:
    print("--- monolithic: interleaving composite of the processes ---")
    report = check_processes(SOURCE)
    print(report.format())
    assert report.all_true

    print("\n--- compositional: same property, no product system ---")
    split = load_processes(SOURCE)
    print(f"components: {sorted(split.components)}")
    for name, model in split.components.items():
        print(f"  {name}: variables {[v.name for v in model.variables]}")

    pf = split.proof()
    enc = split.vocabulary.encoding
    consumed_implies_produced = Implies(
        enc.eq_formula("consumer.done", True),
        enc.eq_formula("producer.done", True),
    )
    inv = land(
        consumed_implies_produced,
        # the channel can only hold an item the producer made
        Implies(
            enc.eq_formula("channel", "item"),
            enc.eq_formula("producer.done", True),
        ),
    )
    proven = pf.ag_weaken(pf.invariant(split.init, inv), consumed_implies_produced)
    print(f"\nproven: {enc.describe(proven.formula)}")
    obligations = {
        id(o) for s in pf.log for leaf in s.leaves() for o in leaf.obligations
    }
    print(f"obligations: {len(obligations)} (one per process expansion)")

    failures = [p for p, c in pf.verify_monolithic() if not c]
    print(f"monolithic cross-check: {len(pf.conclusions)} conclusions, "
          f"{len(failures)} failures")
    assert not failures


if __name__ == "__main__":
    main()
