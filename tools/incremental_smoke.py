#!/usr/bin/env python3
"""CI smoke for incremental proof checking (used by the workflow).

Drives the edit-recheck loop end to end on the AFS-2 ``n=3`` safety
proof (4 obligations: server + 3 clients) against a fresh result store,
then fails loudly unless:

* the **cold** proof misses every obligation and writes the records;
* the **warm** recheck replays every obligation from the store with
  verdicts, stats and certificates **byte-identical** to the cold run;
* after editing one client's SMV source
  (:func:`~repro.casestudies.afs2.client_source_variant` swaps two
  mutually-exclusive case branches), the recheck re-checks **only the
  edited client** — every other obligation replays — and the proof
  still goes through;
* a second edited recheck then replays fully: the store now serves both
  versions of the composition.

Writes ``incremental_ledger.json`` (the hit/miss ledger of every run,
plus the store's final per-kind counters) into ``--artifact-dir``
(default: current directory) for upload.

    PYTHONPATH=src python tools/incremental_smoke.py
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def prove(store, jobs=None, variant=None):
    """One AFS-2 n=3 safety proof; returns (proof, ledger)."""
    from repro.casestudies.afs2 import Afs2

    study = Afs2(3, jobs=jobs, store=store, variant_client=variant)
    pf, proven = study.prove_safety()
    if proven.formula is None:
        fail("proof produced no conclusion")
    ledger = pf.cache_ledger()
    if ledger is None:
        fail("store-backed proof produced no cache ledger")
    return pf, ledger


def results_of(pf) -> list[dict]:
    return [
        o.to_dict()
        for s in pf.log
        for leaf in s.leaves()
        for o in leaf.obligations
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--artifact-dir", default=".")
    args = parser.parse_args(argv)

    from repro.store import ResultStore

    components = {"server", "client1", "client2", "client3"}
    root = tempfile.mkdtemp(prefix="repro-incremental-smoke-")
    store = ResultStore(root)

    print("cold AFS-2 n=3 safety proof ...")
    pf_cold, cold = prove(store, jobs=args.jobs)
    if cold["hits"] != 0 or cold["misses"] != len(components):
        fail(
            f"cold run expected 0 hits / {len(components)} misses, got "
            f"{cold['hits']} / {cold['misses']}"
        )
    checked = {e["component"] for e in cold["obligations"]}
    if checked != components:
        fail(f"cold run checked {sorted(checked)}")
    print(f"  {cold['misses']} obligations checked and stored")

    print("warm recheck (nothing edited) ...")
    pf_warm, warm = prove(store, jobs=args.jobs)
    if warm["misses"] != 0 or warm["hits"] != len(components):
        fail(
            f"warm run expected full replay, got {warm['hits']} hits / "
            f"{warm['misses']} misses"
        )
    if results_of(pf_warm) != results_of(pf_cold):
        fail("replayed results are not byte-identical to the cold run")
    if pf_warm.summary() != pf_cold.summary():
        fail("warm proof summary differs from the cold run")
    if warm["proof_fingerprint"] != cold["proof_fingerprint"]:
        fail("warm proof fingerprint differs from the cold run")
    print(f"  {warm['hits']} obligations replayed byte-identically")

    print("edited recheck (client2 source perturbed) ...")
    _, edited = prove(store, jobs=args.jobs, variant=2)
    missed = [e["component"] for e in edited["obligations"] if not e["cached"]]
    if missed != ["client2"]:
        fail(
            f"edited recheck re-checked {missed}, expected only the "
            f"edited client2"
        )
    if edited["hits"] != len(components) - 1:
        fail(f"edited recheck expected 3 hits, got {edited['hits']}")
    if not all(e["holds"] for e in edited["obligations"]):
        fail("edited proof has failing obligations")
    if edited["proof_fingerprint"] == cold["proof_fingerprint"]:
        fail("component edit did not change the proof fingerprint")
    print("  only client2 re-checked; proof still goes through")

    print("second edited recheck (both versions now stored) ...")
    _, again = prove(store, jobs=args.jobs, variant=2)
    if again["misses"] != 0:
        fail(f"second edited recheck missed {again['misses']} obligations")
    print(f"  {again['hits']} obligations replayed")

    store.flush_counters()
    artifact_dir = pathlib.Path(args.artifact_dir)
    artifact_dir.mkdir(parents=True, exist_ok=True)
    artifact = artifact_dir / "incremental_ledger.json"
    artifact.write_text(
        json.dumps(
            {
                "runs": {
                    "cold": cold,
                    "warm": warm,
                    "edited": edited,
                    "edited_again": again,
                },
                "store_counters": store.persistent_counters(),
                "store_stats": store.stats(),
            },
            indent=2,
        )
        + "\n"
    )
    print(f"wrote {artifact}")
    print("incremental smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
