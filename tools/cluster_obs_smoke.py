#!/usr/bin/env python3
"""CI smoke for the cluster-wide observability plane.

Boots three real subprocesses on loopback — two ring members
(``repro serve --ring``) and a ``repro cluster router`` over them —
then drives one steered batch through every observability surface the
router promises:

* **stitched distributed trace** — ``GET /v1/jobs/<id>/trace`` on the
  router returns a single span tree rooted at a synthetic
  ``router.job`` span, with worker spans from *both* shards grafted
  under it, every span carrying the router-minted ``trace_id`` that
  the acceptance payload announced;
* **federated metrics** — the router's ``/metrics`` aggregates equal
  the *sum* of the two members' own scrapes, counter for counter, and
  the ``/v1/cluster/metrics`` JSON twin agrees;
* **multiplexed progress** — a ServeClient consuming the router's
  ``GET /v1/jobs/<id>/events`` live sees one totally-ordered stream in
  which every relayed event is shard-tagged, shard-local order is
  preserved, and per-shard job states advance monotonically;
* **cluster status** — ``repro cluster status --ring ...`` exits 0 and
  reports both shards healthy.

Writes ``cluster_trace.json``, ``federated_metrics.txt``,
``cluster_metrics_{a,b}.txt`` and ``router_events.jsonl`` into
``--artifact-dir`` for upload.

    PYTHONPATH=src python tools/cluster_obs_smoke.py
"""

from __future__ import annotations

import argparse
import json
import math
import os
import pathlib
import subprocess
import sys
import tempfile
import threading
import time

CHECKS = 4  # steered 2/2 onto the two shards
N = 4  # AFS-2 server size: real work, but quick

_STATE_RANK = {
    "queued": 0,
    "running": 1,
    "done": 2,
    "cached": 2,
    "failed": 2,
    "timeout": 2,
    "cancelled": 2,
}


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def wait_for_server(client, timeout: float = 30.0) -> None:
    from repro.serve.client import ServeClientError

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            client.healthz()
            return
        except ServeClientError:
            time.sleep(0.1)
    fail(f"{client.url} did not become healthy in time")


def steered_batch(config) -> list[dict]:
    """``CHECKS`` equal-cost AFS-2 checks, split evenly by the ring."""
    from repro.casestudies.afs2 import SERVER_SPECS_FIGURE, server_source
    from repro.cluster.ring import request_fingerprint

    base = server_source(N, rename=False)
    shards = list(config.shard_ids)
    checks = []
    salt = 0
    for i in range(CHECKS):
        want = shards[i % len(shards)]
        while True:
            source = (
                base.replace("VAR", f"VAR\n  pad{salt} : boolean;", 1)
                + SERVER_SPECS_FIGURE
            )
            salt += 1
            check = {"source": source, "label": f"srv{N}-{i}"}
            if config.ring.owner(request_fingerprint(check)) == want:
                checks.append(check)
                break
            if salt > 10_000:  # pragma: no cover
                fail("could not steer the batch onto both shards")
    return checks


def scalar_samples(text: str) -> dict[str, float]:
    """Unlabeled ``name -> value`` samples of one exposition document."""
    from repro.obs.promtext import parse_prometheus_text

    samples: dict[str, float] = {}
    for family in parse_prometheus_text(text):
        for sample in family.samples:
            if not sample.labels:
                samples[sample.name] = sample.value
    return samples


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--port-a", type=int, default=8161)
    parser.add_argument("--port-b", type=int, default=8162)
    parser.add_argument("--port-router", type=int, default=8163)
    parser.add_argument("--artifact-dir", default=".")
    args = parser.parse_args(argv)

    from repro.cluster.ring import RingConfig
    from repro.serve.client import ServeClient

    artifact_dir = pathlib.Path(args.artifact_dir)
    artifact_dir.mkdir(parents=True, exist_ok=True)
    work = pathlib.Path(tempfile.mkdtemp(prefix="repro-obs-smoke-"))

    ring = f"127.0.0.1:{args.port_a},127.0.0.1:{args.port_b}"
    config = RingConfig.parse(ring)
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"

    def spawn(cmd: list[str]) -> subprocess.Popen:
        return subprocess.Popen(
            [sys.executable, "-m", "repro", *cmd],
            env=env,
            stderr=subprocess.PIPE,
            text=True,
        )

    procs = {
        "a": spawn(
            [
                "serve", "--port", str(args.port_a), "--jobs", "1",
                "--cache-dir", str(work / "a-store"),
                "--ring", ring, "--advertise", f"127.0.0.1:{args.port_a}",
            ]
        ),
        "b": spawn(
            [
                "serve", "--port", str(args.port_b), "--jobs", "1",
                "--cache-dir", str(work / "b-store"),
                "--ring", ring, "--advertise", f"127.0.0.1:{args.port_b}",
            ]
        ),
        "router": spawn(
            [
                "cluster", "router", "--ring", ring,
                "--port", str(args.port_router),
            ]
        ),
    }
    clients = {
        "a": ServeClient(f"http://127.0.0.1:{args.port_a}"),
        "b": ServeClient(f"http://127.0.0.1:{args.port_b}"),
        "router": ServeClient(f"http://127.0.0.1:{args.port_router}"),
    }
    try:
        for client in clients.values():
            wait_for_server(client)

        # -- submit and consume the merged stream live --------------------
        batch = steered_batch(config)
        accepted = clients["router"].submit(batch, timeout=600)
        trace_id = accepted.get("trace_id", "")
        if len(trace_id) != 32:
            fail(f"router acceptance has no minted trace_id: {accepted}")
        events: list[dict] = []
        consumer = threading.Thread(
            target=lambda: events.extend(
                clients["router"].iter_events(accepted["id"])
            ),
            daemon=True,
        )
        consumer.start()
        job = clients["router"].wait(accepted["id"], timeout=600)
        if job["state"] != "done":
            fail(f"routed batch ended {job['state']}: {job.get('error')}")
        if job["trace_id"] != trace_id:
            fail("job document lost the router-minted trace id")
        if any(not part["trace_id"] for part in job["shards"]):
            fail("a shard slice reports an empty trace_id")
        consumer.join(timeout=120)
        if consumer.is_alive():
            fail("router event stream never reached its end frame")

        # -- the merged stream: ordered, shard-tagged, monotone -----------
        if not events or events[0].get("kind") != "job.routed":
            fail("merged stream did not open with job.routed")
        seqs = [e["seq"] for e in events]
        if seqs != sorted(seqs) or len(set(seqs)) != len(seqs):
            fail("merged stream seq numbers are not strictly increasing")
        relayed = [e for e in events if e.get("kind") != "job.routed"]
        tagged = {e.get("shard") for e in relayed}
        if tagged != set(config.shard_ids):
            fail(f"relayed events not tagged with both shards: {tagged}")
        for shard in config.shard_ids:
            local = [
                e["shard_seq"] for e in relayed if e.get("shard") == shard
            ]
            if local != sorted(local):
                fail(f"shard-local order lost for {shard}")
            states = [
                _STATE_RANK[e["state"]]
                for e in relayed
                if e.get("shard") == shard
                and e.get("kind") == "job.state"
            ]
            if not states:
                fail(f"no job.state events relayed for {shard}")
            if states != sorted(states):
                fail(f"job states for {shard} regressed mid-stream")
        print(
            f"events: {len(events)} merged, both shards tagged, "
            f"states monotone"
        )

        # -- the stitched trace -------------------------------------------
        trace = clients["router"].job_trace(accepted["id"])
        if trace["trace_id"] != trace_id:
            fail("stitched trace does not carry the minted trace id")
        spans = trace["spans"]
        roots = [s for s in spans if s["parent"] is None]
        if len(roots) != 1 or roots[0]["name"] != "router.job":
            fail(f"expected one router.job root, got {roots}")
        span_shards = {
            s["attrs"]["shard"]
            for s in spans
            if "shard" in s.get("attrs", {})
        }
        if span_shards != set(config.shard_ids):
            fail(f"stitched trace covers {span_shards}, want both shards")
        ids = {
            s["attrs"]["trace_id"]
            for s in spans
            if "trace_id" in s.get("attrs", {})
        }
        if ids != {trace_id}:
            fail(f"span trace ids disagree with the minted id: {ids}")
        if any(s["start_us"] < 0 for s in spans):
            fail("stitched trace has negative span offsets")
        categories = sorted({s.get("cat", "") for s in spans} - {""})
        print(
            f"trace: {len(spans)} spans from {len(span_shards)} shards "
            f"under one root (categories: {', '.join(categories)})"
        )

        # -- federated metrics reconcile exactly --------------------------
        member_texts = {
            name: clients[name].metrics_text() for name in ("a", "b")
        }
        federated_text = clients["router"].metrics_text()
        federated = scalar_samples(federated_text)
        members = {
            name: scalar_samples(text)
            for name, text in member_texts.items()
        }
        for counter in (
            "repro_serve_jobs_submitted",
            "repro_serve_jobs_completed",
            "repro_serve_checks_submitted",
            "repro_store_misses",
        ):
            expect = sum(m.get(counter, 0.0) for m in members.values())
            got = federated.get(f"repro_cluster_{counter[len('repro_'):]}")
            if got != expect:
                fail(
                    f"federated {counter}: {got} != member sum {expect}"
                )
        if federated.get("repro_cluster_members") != 2:
            fail("repro_cluster_members != 2")
        if federated.get("repro_cluster_scrape_errors") != 0:
            fail("scrape errors on an all-healthy cluster")
        twin = clients["router"]._request("GET", "/v1/cluster/metrics")
        if twin["scraped"] != 2 or twin["errors"]:
            fail(f"JSON twin disagrees: {twin['scraped']}, {twin['errors']}")
        for name, value in twin["aggregates"].items():
            rendered = federated.get(name)
            # the text document renders through %g (6 significant
            # digits); the JSON twin carries full float precision
            if rendered is None or not math.isclose(
                rendered, value, rel_tol=1e-5, abs_tol=1e-9
            ):
                fail(f"JSON twin {name}={value} != text {rendered}")
        print(
            "metrics: federated aggregates reconcile with member scrapes "
            f"({int(federated['repro_cluster_serve_checks_submitted'])} "
            "checks clusterwide)"
        )

        # -- the status CLI -----------------------------------------------
        status = subprocess.run(
            [sys.executable, "-m", "repro", "cluster", "status",
             "--ring", ring],
            env=env,
            capture_output=True,
            text=True,
            timeout=60,
        )
        if status.returncode != 0:
            fail(f"repro cluster status exited {status.returncode}:\n"
                 f"{status.stderr}")
        if "2/2 shard(s) healthy" not in status.stdout:
            fail(f"status table missing health line:\n{status.stdout}")
        print("status: CLI reports 2/2 shards healthy")

        # -- artifacts -----------------------------------------------------
        (artifact_dir / "cluster_trace.json").write_text(
            json.dumps(trace, indent=2)
        )
        (artifact_dir / "federated_metrics.txt").write_text(federated_text)
        for name, text in member_texts.items():
            (artifact_dir / f"cluster_metrics_{name}.txt").write_text(text)
        (artifact_dir / "router_events.jsonl").write_text(
            "".join(json.dumps(e) + "\n" for e in events)
        )
        print(
            f"artifacts: trace ({len(spans)} spans), federated metrics, "
            f"{len(events)} streamed events"
        )
    finally:
        for proc in procs.values():
            if proc.poll() is None:
                proc.kill()
        for proc in procs.values():
            proc.wait(timeout=30)

    print("OK: cluster observability smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
