#!/usr/bin/env python3
"""CI smoke for the result store + batch checking service.

Starts ``repro serve`` as a real subprocess with a fresh cache
directory, submits the AFS-1 protocol components (server + client SMV
sources) as one batch **twice**, and fails loudly unless:

* both jobs finish ``done`` with every verdict matching the figures'
  expectations (all server/client specs hold);
* the first batch is all cache misses and the second is served entirely
  from the result store (``misses == 0``), with the report payloads
  byte-identical apart from the per-run cache block;
* ``/metrics`` exposes the store's hit/miss counters in Prometheus text
  and the numbers reconcile with the two runs;
* the server drains cleanly on ``SIGTERM`` (exit code 0, "drained and
  stopped" on stderr).

Writes ``serve_metrics.txt`` and ``serve_jobs.json`` into
``--artifact-dir`` (default: current directory) for upload.

    PYTHONPATH=src python tools/serve_smoke.py
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def wait_for_server(client, timeout: float = 30.0) -> None:
    from repro.serve.client import ServeClientError

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            client.healthz()
            return
        except ServeClientError:
            time.sleep(0.1)
    fail("server did not become healthy in time")


def batch_cache_totals(job: dict) -> tuple[int, int]:
    hits = sum(r["cache"]["hits"] for r in job["reports"])
    misses = sum(r["cache"]["misses"] for r in job["reports"])
    return hits, misses


def comparable(job: dict) -> list:
    """Report payloads with the per-run cache/hit markers stripped."""
    out = []
    for report in job["reports"]:
        report = dict(report)
        report.pop("cache")
        report["specs"] = [
            {k: v for k, v in spec.items() if k != "cached"}
            for spec in report["specs"]
        ]
        out.append(report)
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--port", type=int, default=8146)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--artifact-dir", default=".")
    args = parser.parse_args(argv)

    from repro.casestudies.afs1 import AFS1_CLIENT_FIGURE, AFS1_SERVER_FIGURE
    from repro.serve.client import ServeClient

    artifact_dir = pathlib.Path(args.artifact_dir)
    artifact_dir.mkdir(parents=True, exist_ok=True)
    cache_dir = tempfile.mkdtemp(prefix="repro-serve-smoke-")

    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", str(args.port),
            "--jobs", str(args.jobs),
            "--cache-dir", cache_dir,
        ],
        env=env,
        stderr=subprocess.PIPE,
        text=True,
    )
    client = ServeClient(f"http://127.0.0.1:{args.port}")
    try:
        wait_for_server(client)

        batch = [
            {"source": AFS1_SERVER_FIGURE, "label": "afs1-server"},
            {"source": AFS1_CLIENT_FIGURE, "label": "afs1-client"},
        ]
        first = client.check(batch, wait_timeout=300)
        second = client.check(batch, wait_timeout=300)
        for name, job in (("first", first), ("second", second)):
            if job["state"] != "done":
                fail(f"{name} batch ended {job['state']}: {job.get('error')}")
            for report in job["reports"]:
                if not report["all_true"]:
                    fail(f"{name} batch: {report['label']} has failing specs")

        hits1, misses1 = batch_cache_totals(first)
        hits2, misses2 = batch_cache_totals(second)
        print(f"first batch:  {hits1} hit(s), {misses1} miss(es)")
        print(f"second batch: {hits2} hit(s), {misses2} miss(es)")
        if hits1 != 0 or misses1 == 0:
            fail("first batch should be all cache misses")
        if misses2 != 0:
            fail("second batch was not served entirely from the store")
        if hits2 != misses1:
            fail("second batch hits do not cover the first batch's misses")
        if comparable(first) != comparable(second):
            fail("warm reports differ from cold beyond the cache block")
        print("warm reports byte-identical to cold (modulo cache block)")

        metrics = client.metrics_text()
        (artifact_dir / "serve_metrics.txt").write_text(metrics)
        (artifact_dir / "serve_jobs.json").write_text(
            json.dumps({"first": first, "second": second}, indent=2)
        )
        lines = dict(
            line.split(" ", 1)
            for line in metrics.splitlines()
            if line and not line.startswith("#")
        )
        for required in ("repro_store_hits", "repro_store_misses",
                         "repro_serve_jobs_completed"):
            if required not in lines:
                fail(f"/metrics is missing {required}")
        if int(float(lines["repro_serve_jobs_completed"])) != 2:
            fail("jobs_completed != 2")
        if int(float(lines["repro_store_misses"])) != misses1:
            fail("store miss counter does not match the cold batch")
        print("metrics reconcile with the two batches")
    finally:
        server.send_signal(signal.SIGTERM)
        try:
            _, stderr = server.communicate(timeout=60)
        except subprocess.TimeoutExpired:
            server.kill()
            fail("server did not drain within 60 s of SIGTERM")

    if server.returncode != 0:
        fail(f"server exited {server.returncode} after SIGTERM")
    if "drained and stopped" not in stderr:
        fail(f"no drain acknowledgement on stderr:\n{stderr}")
    print("SIGTERM drain clean (exit 0)")
    print("OK: serve smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
