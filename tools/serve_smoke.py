#!/usr/bin/env python3
"""CI smoke for the result store + batch checking service.

Starts ``repro serve`` as a real subprocess with a fresh cache
directory, submits the AFS-1 protocol components (server + client SMV
sources) as one batch **twice**, and fails loudly unless:

* both jobs finish ``done`` with every verdict matching the figures'
  expectations (all server/client specs hold);
* the first batch is all cache misses and the second is served entirely
  from the result store (``misses == 0``), with the report payloads
  byte-identical apart from the per-run cache block;
* ``/metrics`` exposes the store's hit/miss counters in Prometheus text
  and the numbers reconcile with the two runs;
* every job acceptance carries a ``trace_id`` (payload + header), the
  finished job documents echo it with per-stage ``timings``, and ``GET
  /v1/jobs/<id>/trace`` returns a span tree whose worker-process spans
  all share the request's trace id;
* the histogram families on ``/metrics``
  (``repro_request_duration_seconds`` and friends) are well-formed:
  cumulative ``_bucket`` series are non-decreasing, the ``+Inf`` bucket
  equals ``_count``, and ``_sum`` is present;
* the structured JSONL event log records one ``job.submitted`` +
  ``job.done`` pair per batch, with module sources redacted to digests;
* a live AFS-2 batch streams per-obligation progress over ``GET
  /v1/jobs/<id>/events`` (SSE): sequence numbers strictly increase,
  per-obligation states only ever advance
  (pending → running → done/cached), heartbeat ticks arrive from inside
  the symbolic fixpoints, zero obligations are flagged stalled, and the
  finished job document agrees with the stream;
* the server drains cleanly on ``SIGTERM`` (exit code 0, "drained and
  stopped" on stderr).

Writes ``serve_metrics.txt``, ``serve_jobs.json``, ``serve_trace.json``,
``serve_events.jsonl`` and ``serve_progress.jsonl`` into
``--artifact-dir`` (default: current directory) for upload.

    PYTHONPATH=src python tools/serve_smoke.py
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def wait_for_server(client, timeout: float = 30.0) -> None:
    from repro.serve.client import ServeClientError

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            client.healthz()
            return
        except ServeClientError:
            time.sleep(0.1)
    fail("server did not become healthy in time")


def batch_cache_totals(job: dict) -> tuple[int, int]:
    hits = sum(r["cache"]["hits"] for r in job["reports"])
    misses = sum(r["cache"]["misses"] for r in job["reports"])
    return hits, misses


def comparable(job: dict) -> list:
    """Report payloads with the per-run cache/hit markers stripped."""
    out = []
    for report in job["reports"]:
        report = dict(report)
        report.pop("cache")
        report["specs"] = [
            {k: v for k, v in spec.items() if k != "cached"}
            for spec in report["specs"]
        ]
        out.append(report)
    return out


def parse_prometheus(text: str) -> tuple[dict, dict]:
    """Parse Prometheus text exposition into (samples, types).

    ``samples`` maps ``name`` → value for plain samples and
    ``name{labels}`` → value for labeled ones; ``types`` maps metric
    name → declared type.  Unparseable lines fail the smoke — the
    endpoint claims the exposition format, so every line must conform.
    """
    samples: dict[str, float] = {}
    types: dict[str, str] = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            types[name] = kind
            continue
        if line.startswith("#"):
            continue
        parts = line.rsplit(" ", 1)
        if len(parts) != 2:
            fail(f"/metrics line is not 'series value': {line!r}")
        try:
            samples[parts[0]] = float(parts[1])
        except ValueError:
            fail(f"/metrics value is not a number: {line!r}")
    return samples, types


def check_histogram(samples: dict, types: dict, name: str) -> None:
    """Assert one histogram family is well-formed and internally consistent."""
    if types.get(name) != "histogram":
        fail(f"{name} is not declared as a histogram")
    buckets = []
    for series, value in samples.items():
        if series.startswith(f'{name}_bucket{{le="'):
            le = series[len(f'{name}_bucket{{le="') : -len('"}')]
            buckets.append((le, value))
    if not buckets:
        fail(f"{name} has no _bucket series")
    inf = [v for le, v in buckets if le == "+Inf"]
    if not inf:
        fail(f"{name} is missing the +Inf bucket")
    finite = [(float(le), v) for le, v in buckets if le != "+Inf"]
    finite.sort()
    values = [v for _, v in finite] + inf
    if any(b > a for a, b in zip(values[1:], values)):
        fail(f"{name} bucket series is not cumulative: {values}")
    count = samples.get(f"{name}_count")
    if count is None or f"{name}_sum" not in samples:
        fail(f"{name} is missing _sum/_count")
    if inf[0] != count:
        fail(f"{name}: +Inf bucket {inf[0]} != _count {count}")


#: Progress event kind → the obligation state it drives; states must
#: only ever advance along RANK (the serve layer's state machine).
KIND_STATE = {
    "obligation.queued": "pending",
    "obligation.start": "running",
    "obligation.tick": "running",
    "obligation.cache_hit": "cached",
    "obligation.finish": "done",
    "obligation.result": "done",
}

RANK = {"pending": 0, "running": 1, "done": 2, "cached": 2}


def check_progress_stream(events: list[dict]) -> dict:
    """Assert ordering/state-machine invariants; returns final states."""
    seqs = [e.get("seq") for e in events]
    if seqs != sorted(seqs) or len(set(seqs)) != len(seqs):
        fail("progress stream sequence numbers are not strictly increasing")
    states: dict[str, str] = {}
    for event in events:
        if event.get("kind") == "obligation.stall":
            fail(f"an obligation stalled during the smoke: {event}")
        state = KIND_STATE.get(event.get("kind", ""))
        name = event.get("obligation")
        if state is None or not name:
            continue
        previous = states.get(name, "pending")
        if RANK[state] < RANK[previous]:
            fail(f"obligation {name} regressed {previous} -> {state}")
        states[name] = state
    return states


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--port", type=int, default=8146)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--artifact-dir", default=".")
    args = parser.parse_args(argv)

    from repro.casestudies.afs1 import AFS1_CLIENT_FIGURE, AFS1_SERVER_FIGURE
    from repro.serve.client import ServeClient

    artifact_dir = pathlib.Path(args.artifact_dir)
    artifact_dir.mkdir(parents=True, exist_ok=True)
    cache_dir = tempfile.mkdtemp(prefix="repro-serve-smoke-")
    event_log = artifact_dir / "serve_events.jsonl"

    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", str(args.port),
            "--jobs", str(args.jobs),
            "--cache-dir", cache_dir,
            "--log-file", str(event_log),
            # tick fast enough that even short fixpoints heartbeat
            "--progress-interval", "0.005",
        ],
        env=env,
        stderr=subprocess.PIPE,
        text=True,
    )
    client = ServeClient(f"http://127.0.0.1:{args.port}")
    try:
        wait_for_server(client)

        batch = [
            {"source": AFS1_SERVER_FIGURE, "label": "afs1-server"},
            {"source": AFS1_CLIENT_FIGURE, "label": "afs1-client"},
        ]
        first = client.check(batch, wait_timeout=300)
        second = client.check(batch, wait_timeout=300)
        for name, job in (("first", first), ("second", second)):
            if job["state"] != "done":
                fail(f"{name} batch ended {job['state']}: {job.get('error')}")
            for report in job["reports"]:
                if not report["all_true"]:
                    fail(f"{name} batch: {report['label']} has failing specs")

        hits1, misses1 = batch_cache_totals(first)
        hits2, misses2 = batch_cache_totals(second)
        print(f"first batch:  {hits1} hit(s), {misses1} miss(es)")
        print(f"second batch: {hits2} hit(s), {misses2} miss(es)")
        if hits1 != 0 or misses1 == 0:
            fail("first batch should be all cache misses")
        if misses2 != 0:
            fail("second batch was not served entirely from the store")
        if hits2 != misses1:
            fail("second batch hits do not cover the first batch's misses")
        if comparable(first) != comparable(second):
            fail("warm reports differ from cold beyond the cache block")
        print("warm reports byte-identical to cold (modulo cache block)")

        # -- trace propagation -------------------------------------------
        for name, job in (("first", first), ("second", second)):
            if not job.get("trace_id"):
                fail(f"{name} job document carries no trace_id")
            timings = job.get("timings") or {}
            for key in ("queue_wait_seconds", "check_seconds",
                        "serialize_seconds", "total_seconds"):
                if key not in timings:
                    fail(f"{name} job timings are missing {key}")
        if first["trace_id"] == second["trace_id"]:
            fail("both batches share one trace_id; should be per-request")
        trace = client.job_trace(first["id"])
        if trace["trace_id"] != first["trace_id"]:
            fail("trace endpoint returns a different trace_id")
        spans = trace["spans"]
        names = {span["name"] for span in spans}
        for expected in ("serve.job", "serve.check", "store.cached_check"):
            if expected not in names:
                fail(f"trace is missing a {expected} span")
        workers = [s for s in spans if s["name"] == "worker.item"]
        if not workers:
            fail("trace has no worker-process spans (pool not traced?)")
        for span in workers:
            if span.get("attrs", {}).get("trace_id") != first["trace_id"]:
                fail("a worker span does not carry the request trace_id")
        pids = {s["attrs"].get("pid") for s in workers}
        print(
            f"trace: {len(spans)} spans, {len(workers)} worker span(s) "
            f"across {len(pids)} worker pid(s), all sharing the trace id"
        )
        (artifact_dir / "serve_trace.json").write_text(
            json.dumps(trace, indent=2)
        )

        metrics = client.metrics_text()
        (artifact_dir / "serve_metrics.txt").write_text(metrics)
        (artifact_dir / "serve_jobs.json").write_text(
            json.dumps({"first": first, "second": second}, indent=2)
        )
        samples, types = parse_prometheus(metrics)
        for required in ("repro_store_hits", "repro_store_misses",
                         "repro_serve_jobs_completed"):
            if required not in samples:
                fail(f"/metrics is missing {required}")
        if int(samples["repro_serve_jobs_completed"]) != 2:
            fail("jobs_completed != 2")
        if int(samples["repro_store_misses"]) != misses1:
            fail("store miss counter does not match the cold batch")
        for family in ("repro_request_duration_seconds",
                       "repro_request_stage_check_seconds",
                       "repro_request_stage_queue_wait_seconds"):
            check_histogram(samples, types, family)
        if samples.get("repro_request_duration_seconds_count") != 2:
            fail("request duration histogram should hold 2 observations")
        print("metrics reconcile with the two batches; histograms well-formed")

        # -- structured event log ----------------------------------------
        events = [
            json.loads(line)
            for line in event_log.read_text().splitlines()
            if line.strip()
        ]
        done = [e for e in events if e.get("event") == "job.done"]
        submitted = [e for e in events if e.get("event") == "job.submitted"]
        if len(done) != 2 or len(submitted) != 2:
            fail(
                f"event log should hold 2 submitted + 2 done events, "
                f"got {len(submitted)} + {len(done)}"
            )
        for event in done:
            if event.get("trace_id") not in (
                first["trace_id"], second["trace_id"]
            ):
                fail("a job.done event has an unknown trace_id")
            if "total_seconds" not in event:
                fail("job.done events should carry total_seconds")
        for event in submitted:
            for digest in event.get("sources", []):
                if not str(digest).startswith("sha256:"):
                    fail(f"unredacted source in event log: {digest!r}")
        print(f"event log: {len(events)} events, sources redacted to digests")

        # -- live progress over SSE --------------------------------------
        from repro.casestudies.afs2 import (
            CLIENT_SPECS_FIGURE,
            SERVER_SPECS_FIGURE,
            client_source,
            server_source,
        )

        # the figure specs (Srv1/Srv2/Cli1) are AX-shaped; one AG EF
        # tautology per module guarantees live fixpoint heartbeats
        fixpoint_spec = "SPEC AG EF (failure | !failure)\n"
        afs2_batch = [
            {
                "source": server_source(2, rename=False)
                + SERVER_SPECS_FIGURE
                + fixpoint_spec,
                "label": "afs2-server",
            },
            {
                "source": client_source(1, rename=False)
                + CLIENT_SPECS_FIGURE
                + fixpoint_spec,
                "label": "afs2-client1",
            },
            {
                "source": client_source(2, rename=False)
                + CLIENT_SPECS_FIGURE
                + fixpoint_spec,
                "label": "afs2-client2",
            },
        ]
        accepted = client.submit(afs2_batch)
        # consume the stream while the job runs — iter_events returns at
        # the server's terminal `end` frame
        stream = list(client.iter_events(accepted["id"]))
        (artifact_dir / "serve_progress.jsonl").write_text(
            "".join(json.dumps(event) + "\n" for event in stream)
        )
        if not stream:
            fail("the events stream delivered nothing for the AFS-2 batch")
        final_states = check_progress_stream(stream)
        if not final_states:
            fail("no per-obligation lifecycle events in the stream")
        unfinished = {
            name: state
            for name, state in final_states.items()
            if RANK[state] != 2
        }
        if unfinished:
            fail(f"obligations never reached a terminal state: {unfinished}")
        ticks = [e for e in stream if e.get("kind") == "obligation.tick"]
        if not ticks:
            fail("no heartbeat ticks from inside the symbolic fixpoints")
        for tick in ticks:
            if "phase" not in tick or tick.get("iterations", 0) < 1:
                fail(f"malformed heartbeat tick: {tick}")
        terminal = [e for e in stream if e.get("kind") == "job.state"]
        if not terminal or terminal[-1].get("state") != "done":
            fail("the stream did not end with a done job.state event")
        live_job = client.job(accepted["id"])
        if live_job["state"] != "done":
            fail(f"AFS-2 batch ended {live_job['state']}")
        for report in live_job["reports"]:
            if not report["all_true"]:
                fail(f"AFS-2 batch: {report['label']} has failing specs")
        doc_states = {
            name: entry["state"]
            for name, entry in (live_job.get("obligations") or {}).items()
        }
        if set(doc_states) != set(final_states):
            fail("job document and stream disagree on the obligation set")
        if any(entry["stalled"] for entry in live_job["obligations"].values()):
            fail("the finished job document flags a stalled obligation")
        health = client.healthz()
        if health.get("stalled_obligations", 0) != 0:
            fail("healthz reports stalled obligations after a clean run")
        phases = sorted({t["phase"] for t in ticks})
        print(
            f"live progress: {len(stream)} events over SSE, "
            f"{len(final_states)} obligations all terminal, "
            f"{len(ticks)} heartbeat tick(s) (phases: {', '.join(phases)}), "
            f"zero stalls"
        )
    finally:
        server.send_signal(signal.SIGTERM)
        try:
            _, stderr = server.communicate(timeout=60)
        except subprocess.TimeoutExpired:
            server.kill()
            fail("server did not drain within 60 s of SIGTERM")

    if server.returncode != 0:
        fail(f"server exited {server.returncode} after SIGTERM")
    if "drained and stopped" not in stderr:
        fail(f"no drain acknowledgement on stderr:\n{stderr}")
    print("SIGTERM drain clean (exit 0)")
    print("OK: serve smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
