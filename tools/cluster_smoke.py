#!/usr/bin/env python3
"""CI smoke for the distributed shard-aware serving tier.

Boots **four** real subprocesses on loopback — two ring members
(``repro serve --ring``), a ``repro cluster router`` over them, and a
plain single instance as the sequential baseline — then drives one
AFS-2 batch through every path the cluster tier promises:

* **sequential baseline** — the batch cold on the single instance:
  the reports every other run must reproduce byte-for-byte;
* **cold via the router** — the same batch split per-check across both
  shards by the consistent-hash ring and fanned back in caller order,
  with reports byte-identical to the baseline (modulo the per-run
  cache block) and wall-clock throughput at least ``--min-speedup``
  (default 1.6×) over the single instance;
* **warm on the single instance** — the single-node warm hit rate the
  cluster must match;
* **cross-instance warm** — the whole batch re-submitted directly to
  instance B, which computed only its own shard's checks: every
  verdict replays (local store, push-to-owner replicas, or peer fetch
  from A — ``repro_cluster_peer_fetch_hit`` must tick), the hit rate
  is no worse than single-node warm, the job document carries B's
  shard id, and the reports are byte-identical to the baseline;
* **peer death** — instance A is SIGKILLed and fresh checks are
  submitted to B: the request still succeeds (local checking), with
  ``repro_cluster_peer_fetch_error`` and an observable circuit-open
  event on B; the router, too, completes a fresh batch by failing
  over to the surviving member and reports A unreachable;
* **drain** — SIGTERM stops the router, B and the single instance
  cleanly (exit 0).

Writes ``cluster_events.jsonl`` (both instances' structured logs plus
B's circuit events, each line tagged with its instance),
``cluster_jobs.json`` and per-process ``cluster_metrics_*.txt`` into
``--artifact-dir`` for upload.

    PYTHONPATH=src python tools/cluster_smoke.py
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

CHECKS = 8  # steered 4/4 onto the two shards
N = 5  # AFS-2 server size: heavy enough to dwarf routing overhead


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def wait_for_server(client, timeout: float = 30.0) -> None:
    from repro.serve.client import ServeClientError

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            client.healthz()
            return
        except ServeClientError:
            time.sleep(0.1)
    fail(f"{client.url} did not become healthy in time")


def comparable(job: dict) -> list:
    """The semantic content of each report: verdicts, fingerprints,
    counterexamples, spec texts.  Cache markers and engine/timing
    statistics are stripped — two *independent* cold computations agree
    on every verdict but not on wall times or BDD-session counters
    (``serve_smoke`` never sees this because its warm run replays the
    cold run's stats verbatim)."""
    out = []
    for report in job["reports"]:
        report = dict(report)
        report.pop("cache")
        report.pop("user_time", None)
        report.pop("resources", None)
        report["specs"] = [
            {k: v for k, v in spec.items() if k not in ("cached", "stats")}
            for spec in report["specs"]
        ]
        out.append(report)
    return out


def batch_cache_totals(job: dict) -> tuple[int, int]:
    hits = sum(r["cache"]["hits"] for r in job["reports"])
    misses = sum(r["cache"]["misses"] for r in job["reports"])
    return hits, misses


def parse_prometheus(text: str) -> dict[str, float]:
    samples: dict[str, float] = {}
    for line in text.splitlines():
        if not line.strip() or line.startswith("#"):
            continue
        parts = line.rsplit(" ", 1)
        if len(parts) != 2:
            fail(f"/metrics line is not 'series value': {line!r}")
        try:
            samples[parts[0]] = float(parts[1])
        except ValueError:
            fail(f"/metrics value is not a number: {line!r}")
    return samples


def steered_batch(config) -> list[dict]:
    """``CHECKS`` equal-cost AFS-2 server checks, split 4/4 by the ring.

    Each check pads the module with one uniquely named boolean (the
    canonical module text is what the store fingerprints, so the pads
    keep the checks from collapsing onto one record) and the pad index
    is searched until the ring routes the check to the desired shard —
    a deterministic half/half split, independent of hash luck.
    """
    from repro.casestudies.afs2 import SERVER_SPECS_FIGURE, server_source
    from repro.cluster.ring import request_fingerprint

    base = server_source(N, rename=False)
    shards = list(config.shard_ids)
    checks = []
    salt = 0
    for i in range(CHECKS):
        want = shards[i % len(shards)]
        while True:
            source = (
                base.replace("VAR", f"VAR\n  pad{salt} : boolean;", 1)
                + SERVER_SPECS_FIGURE
            )
            salt += 1
            check = {"source": source, "label": f"srv{N}-{i}"}
            if config.ring.owner(request_fingerprint(check)) == want:
                checks.append(check)
                break
            if salt > 10_000:  # pragma: no cover
                fail("could not steer the batch onto both shards")
    return checks


def spawn(cmd: list[str], env: dict) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *cmd],
        env=env,
        stderr=subprocess.PIPE,
        text=True,
    )


def drain(name: str, proc: subprocess.Popen) -> str:
    proc.send_signal(signal.SIGTERM)
    try:
        _, stderr = proc.communicate(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        fail(f"{name} did not drain within 60 s of SIGTERM")
    if proc.returncode != 0:
        fail(f"{name} exited {proc.returncode} after SIGTERM:\n{stderr}")
    return stderr


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--port-a", type=int, default=8151)
    parser.add_argument("--port-b", type=int, default=8152)
    parser.add_argument("--port-router", type=int, default=8153)
    parser.add_argument("--port-single", type=int, default=8154)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.6,
        help="cold cluster throughput floor vs the single instance",
    )
    parser.add_argument("--artifact-dir", default=".")
    args = parser.parse_args(argv)

    from repro.cluster.ring import RingConfig
    from repro.serve.client import ServeClient

    artifact_dir = pathlib.Path(args.artifact_dir)
    artifact_dir.mkdir(parents=True, exist_ok=True)
    work = pathlib.Path(tempfile.mkdtemp(prefix="repro-cluster-smoke-"))
    logs = {name: work / f"{name}_events.jsonl" for name in ("a", "b")}

    ring = f"127.0.0.1:{args.port_a},127.0.0.1:{args.port_b}"
    config = RingConfig.parse(ring)
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"

    members = {"a": args.port_a, "b": args.port_b}
    procs: dict[str, subprocess.Popen] = {}
    for name, port in members.items():
        procs[name] = spawn(
            [
                "serve", "--port", str(port), "--jobs", "1",
                "--cache-dir", str(work / f"{name}-store"),
                "--ring", ring,
                "--advertise", f"127.0.0.1:{port}",
                "--log-file", str(logs[name]),
            ],
            env,
        )
    procs["single"] = spawn(
        [
            "serve", "--port", str(args.port_single), "--jobs", "1",
            "--cache-dir", str(work / "single-store"),
        ],
        env,
    )
    procs["router"] = spawn(
        ["cluster", "router", "--ring", ring, "--port", str(args.port_router)],
        env,
    )

    clients = {
        name: ServeClient(f"http://127.0.0.1:{port}")
        for name, port in {
            **members,
            "single": args.port_single,
            "router": args.port_router,
        }.items()
    }
    killed = False
    try:
        for client in clients.values():
            wait_for_server(client)
        health = clients["router"].healthz()
        if health["ring"]["members"] != list(config.shard_ids):
            fail("router healthz does not list the ring membership")
        if not all(s["reachable"] for s in health["shards"].values()):
            fail("router healthz: not every shard is reachable at start")

        batch = steered_batch(config)

        # -- sequential single-node baseline (cold) ----------------------
        t0 = time.perf_counter()
        baseline = clients["single"].check(batch, wait_timeout=600)
        t_single = time.perf_counter() - t0
        if baseline["state"] != "done":
            fail(f"baseline batch ended {baseline['state']}")
        if any(not r["all_true"] for r in baseline["reports"]):
            fail("baseline batch has failing specs")
        _, misses = batch_cache_totals(baseline)
        if misses == 0:
            fail("baseline batch was not cold")

        # -- cold through the router -------------------------------------
        t0 = time.perf_counter()
        cold = clients["router"].check(batch, wait_timeout=600)
        t_cluster = time.perf_counter() - t0
        if cold["state"] != "done":
            fail(f"cold cluster batch ended {cold['state']}: {cold.get('error')}")
        if comparable(cold) != comparable(baseline):
            fail("cold cluster reports differ from the sequential baseline")
        used = {part["shard"] for part in cold["shards"]}
        if used != set(config.shard_ids):
            fail(f"the batch did not split across both shards: {used}")
        sizes = sorted(len(part["indices"]) for part in cold["shards"])
        if sizes != [CHECKS // 2, CHECKS // 2]:
            fail(f"steering did not split the batch evenly: {sizes}")
        speedup = t_single / t_cluster
        try:
            cores = len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux
            cores = os.cpu_count() or 1
        print(
            f"cold: single {t_single:.2f}s, cluster {t_cluster:.2f}s "
            f"({speedup:.2f}x, floor {args.min_speedup:.1f}x, "
            f"{cores} core(s)), split {sizes[0]}/{sizes[1]}, "
            f"reports byte-identical"
        )
        if cores < 2:
            # both shard workers share one core: a wall-clock win is
            # physically impossible, so only the correctness half of
            # the cold phase is gated here
            print(
                "WARNING: single-core host, throughput floor not "
                "enforced (CI runs this on multi-core runners)"
            )
        elif speedup < args.min_speedup:
            fail(
                f"cold cluster throughput {speedup:.2f}x below the "
                f"{args.min_speedup:.1f}x floor"
            )

        # -- warm hit rates: single-node, then cross-instance ------------
        warm_single = clients["single"].check(batch, wait_timeout=600)
        hits_s, misses_s = batch_cache_totals(warm_single)
        if misses_s != 0:
            fail("single-instance warm run was not fully cached")
        rate_single = hits_s / (hits_s + misses_s)

        warm_b = clients["b"].check(batch, wait_timeout=600)
        if warm_b["state"] != "done":
            fail(f"cross-instance warm batch ended {warm_b['state']}")
        if warm_b.get("shard") != config.shard_ids[1]:
            fail("warm job document does not carry instance B's shard id")
        hits_b, misses_b = batch_cache_totals(warm_b)
        rate_b = hits_b / (hits_b + misses_b)
        if rate_b < rate_single:
            fail(
                f"cross-instance warm hit rate {rate_b:.2f} below "
                f"single-instance {rate_single:.2f}"
            )
        if comparable(warm_b) != comparable(baseline):
            fail("cross-instance warm reports differ from the baseline")
        metrics_b = parse_prometheus(clients["b"].metrics_text())
        peer_hits = metrics_b.get("repro_cluster_peer_fetch_hit", 0)
        if peer_hits < 1:
            fail("instance B served the warm batch without one peer fetch")
        print(
            f"warm: single {rate_single:.0%} hits, cross-instance "
            f"{rate_b:.0%} hits with {int(peer_hits)} peer fetch(es), "
            f"reports byte-identical"
        )

        # -- kill a cache peer: requests must degrade, not fail ----------
        procs["a"].kill()
        procs["a"].wait(timeout=30)
        killed = True
        from repro.casestudies.afs1 import AFS1_SERVER_FIGURE

        fresh = [{"source": AFS1_SERVER_FIGURE, "label": "post-kill"}]
        degraded = clients["b"].check(fresh, wait_timeout=600)
        if degraded["state"] != "done":
            fail(f"post-kill batch on B ended {degraded['state']}")
        if any(not r["all_true"] for r in degraded["reports"]):
            fail("post-kill batch has failing specs")
        metrics_b = parse_prometheus(clients["b"].metrics_text())
        if metrics_b.get("repro_cluster_peer_fetch_error", 0) < 1:
            fail("killing A produced no cluster_peer_fetch_error on B")
        health_b = clients["b"].healthz()
        cluster_b = health_b.get("cluster") or {}
        circuit_events = [
            e
            for e in cluster_b.get("events", [])
            if e.get("kind") == "circuit-open"
        ]
        if metrics_b.get("repro_cluster_circuit_open", 0) < 1 and not circuit_events:
            fail("no observable circuit-open after killing A")
        print(
            "peer death: B degraded to local checking "
            f"({int(metrics_b['repro_cluster_peer_fetch_error'])} fetch "
            f"error(s), circuit events: {len(circuit_events)})"
        )

        # ...and the router fails over to the surviving member
        routed = clients["router"].check(fresh, wait_timeout=600)
        if routed["state"] != "done":
            fail(f"post-kill batch via router ended {routed['state']}")
        health = clients["router"].healthz()
        if health["shards"][config.shard_ids[0]]["reachable"]:
            fail("router healthz still reports the killed shard reachable")
        print("peer death: router failed over; healthz marks A down")

        # -- artifacts ----------------------------------------------------
        events = []
        for name, path in logs.items():
            if not path.exists():
                continue
            for line in path.read_text().splitlines():
                if line.strip():
                    events.append({"instance": name, **json.loads(line)})
        for event in circuit_events:
            events.append({"instance": "b", "event": "circuit-open", **event})
        (artifact_dir / "cluster_events.jsonl").write_text(
            "".join(json.dumps(e) + "\n" for e in events)
        )
        (artifact_dir / "cluster_jobs.json").write_text(
            json.dumps(
                {
                    "baseline": baseline,
                    "cold_cluster": cold,
                    "warm_cross_instance": warm_b,
                    "post_kill": degraded,
                    "timings": {
                        "single_cold_s": round(t_single, 3),
                        "cluster_cold_s": round(t_cluster, 3),
                        "speedup": round(speedup, 2),
                    },
                },
                indent=2,
            )
        )
        for name in ("b", "single", "router"):
            (artifact_dir / f"cluster_metrics_{name}.txt").write_text(
                clients[name].metrics_text()
            )
        if not events:
            fail("no structured events collected for cluster_events.jsonl")
        print(f"artifacts: {len(events)} events in cluster_events.jsonl")
    finally:
        if not killed:
            procs["a"].kill()
        for name in ("router", "b", "single"):
            if procs[name].poll() is None:
                stderr = drain(name, procs[name])
                if name != "router" and "drained and stopped" not in stderr:
                    fail(f"no drain acknowledgement from {name}:\n{stderr}")

    print("OK: cluster smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
