#!/usr/bin/env python3
"""Benchmark regression gate: fresh run vs the committed trajectory.

Runs the BDD-engine microbench suite, extracts per-test medians (the
same :func:`run_benchmarks.extract` statistics the trajectory files
record), and compares them against the most recent entry of a committed
``BENCH_*.json``.  Any benchmark whose fresh median exceeds the
baseline's by more than the threshold (default 25 %) fails the gate —
CI's answer to "did this PR quietly slow the engine down".

Medians are compared rather than means: CI machines are noisy, and the
median is far less sensitive to the scheduler hiccups that inflate a
mean.  The generous default threshold absorbs the remaining
machine-to-machine variance; the gate is for order-of-magnitude
mistakes (an accidentally quadratic loop, a lost cache), not 5 % drifts.

Usage::

    PYTHONPATH=src python tools/bench_gate.py                # run + compare
    PYTHONPATH=src python tools/bench_gate.py --from-json f  # compare only
    PYTHONPATH=src python tools/bench_gate.py --threshold 0.4

**Refreshing the baseline** after an intentional performance change::

    PYTHONPATH=src python benchmarks/run_benchmarks.py --quick --label after
    git add BENCH_bdd_engine.json   # commit the new trajectory entry

The gate always compares against the *latest* entry in the trajectory
(or ``--baseline-label`` to pin one), so refreshing the trajectory is
what moves the bar.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "benchmarks"))
from run_benchmarks import ROOT, extract, run_pytest  # noqa: E402

DEFAULT_BASELINE = ROOT / "BENCH_bdd_engine.json"
DEFAULT_SUITE = "benchmarks/bench_bdd_engine.py"
DEFAULT_THRESHOLD = 0.25
DEFAULT_INCREMENTAL_FLOOR = 5.0
DEFAULT_CLUSTER_FLOOR = 5.0


def baseline_entry(trajectory: dict, label: str | None = None) -> dict:
    """The trajectory entry to gate against: ``label`` or the latest."""
    entries = trajectory.get("entries", [])
    if not entries:
        raise ValueError("trajectory has no entries to compare against")
    if label is None:
        return entries[-1]
    for entry in entries:
        if entry["label"] == label:
            return entry
    raise ValueError(f"no trajectory entry labeled {label!r}")


def compare(
    baseline: dict[str, dict],
    fresh: dict[str, dict],
    threshold: float = DEFAULT_THRESHOLD,
) -> tuple[list[dict], list[dict]]:
    """Median-vs-median comparison of two ``extract()`` result maps.

    Returns ``(rows, regressions)``: one row per benchmark present in
    both maps (sorted by name) with the median ratio, and the subset
    whose fresh median is more than ``threshold`` above the baseline.
    Benchmarks present on only one side are ignored — adding or
    removing a benchmark is not a regression.
    """
    rows = []
    for name in sorted(set(baseline) & set(fresh)):
        base = float(baseline[name]["median_us"])
        new = float(fresh[name]["median_us"])
        if base <= 0:
            continue
        rows.append(
            {
                "name": name,
                "base_median_us": base,
                "new_median_us": new,
                "ratio": new / base,
            }
        )
    regressions = [r for r in rows if r["ratio"] > 1.0 + threshold]
    return rows, regressions


def format_rows(rows: list[dict], threshold: float) -> str:
    lines = [
        f"{'benchmark':<44} {'base µs':>10} {'fresh µs':>10} {'ratio':>7}"
    ]
    for row in rows:
        flag = "  REGRESSION" if row["ratio"] > 1.0 + threshold else ""
        lines.append(
            f"{row['name']:<44} {row['base_median_us']:>10.2f} "
            f"{row['new_median_us']:>10.2f} {row['ratio']:>6.2f}x{flag}"
        )
    return "\n".join(lines)


def gate_incremental(
    baseline_path: pathlib.Path,
    floor: float,
    label: str | None = None,
    rounds: int = 3,
) -> int:
    """Gate the incremental-proof speedup (``BENCH_incremental.json``).

    Re-measures the AFS-2 cold / warm-edit trajectory fresh and fails
    when the warm edit-recheck is less than ``floor`` times faster than
    the cold proof — the feature's acceptance criterion, measured
    absolutely rather than against the baseline median (the speedup is a
    ratio of two same-machine runs, so it is machine-independent).
    """
    from bench_incremental import measure

    trajectory = json.loads(baseline_path.read_text())
    try:
        entry = baseline_entry(trajectory, label)
    except ValueError as exc:
        print(f"bench_gate: {exc}", file=sys.stderr)
        return 2
    base = entry["results"]["afs2_n3"]

    fresh = measure(rounds)
    print(
        f"baseline: {entry['label']!r} ({entry.get('git_rev', '?')}, "
        f"{entry.get('date', '?')}); floor {floor:.1f}x"
    )
    print(
        f"{'afs2 n=3':<22} {'cold ms':>10} {'edit ms':>10} {'speedup':>8}"
    )
    print(
        f"{'baseline':<22} {base['cold_ms']:>10.1f} "
        f"{base['warm_edit_min_ms']:>10.2f} {base['speedup_edit']:>7.1f}x"
    )
    print(
        f"{'fresh':<22} {fresh['cold_ms']:>10.1f} "
        f"{fresh['warm_edit_min_ms']:>10.2f} {fresh['speedup_edit']:>7.1f}x"
    )
    if fresh["speedup_edit"] < floor:
        print(
            f"FAIL: warm edit-recheck speedup {fresh['speedup_edit']}x "
            f"below the {floor:.1f}x floor",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: warm edit-recheck {fresh['speedup_edit']}x >= "
        f"{floor:.1f}x floor"
    )
    return 0


def gate_cluster(
    baseline_path: pathlib.Path,
    floor: float,
    label: str | None = None,
    rounds: int = 3,
) -> int:
    """Gate the cluster warm-replay speedup (``BENCH_cluster.json``).

    Re-measures the cold-on-A / warm-through-B trajectory fresh and
    fails when the cross-instance warm replay is less than ``floor``
    times faster than the cold check — the distributed tier's
    acceptance criterion.  Like the incremental gate this is an
    absolute floor on a same-machine ratio, so it is
    machine-independent; the committed baseline is printed for context
    only.  **Refreshing the baseline** after an intentional change::

        PYTHONPATH=src python benchmarks/bench_cluster.py --label after
        git add BENCH_cluster.json
    """
    from bench_cluster import measure

    trajectory = json.loads(baseline_path.read_text())
    try:
        entry = baseline_entry(trajectory, label)
    except ValueError as exc:
        print(f"bench_gate: {exc}", file=sys.stderr)
        return 2
    base = entry["results"]["afs2_cluster"]

    fresh = measure(rounds)
    print(
        f"baseline: {entry['label']!r} ({entry.get('git_rev', '?')}, "
        f"{entry.get('date', '?')}); floor {floor:.1f}x"
    )
    print(
        f"{'afs2 cluster':<22} {'cold ms':>10} {'warm ms':>10} {'speedup':>8}"
    )
    print(
        f"{'baseline':<22} {base['cold_ms']:>10.1f} "
        f"{base['warm_min_ms']:>10.2f} {base['speedup_warm']:>7.1f}x"
    )
    print(
        f"{'fresh':<22} {fresh['cold_ms']:>10.1f} "
        f"{fresh['warm_min_ms']:>10.2f} {fresh['speedup_warm']:>7.1f}x"
    )
    if fresh["speedup_warm"] < floor:
        print(
            f"FAIL: cross-instance warm replay speedup "
            f"{fresh['speedup_warm']}x below the {floor:.1f}x floor",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: cross-instance warm replay {fresh['speedup_warm']}x >= "
        f"{floor:.1f}x floor"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help="committed trajectory file (default: BENCH_bdd_engine.json)",
    )
    parser.add_argument(
        "--baseline-label",
        default=None,
        help="trajectory entry to gate against (default: the latest)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed fractional median slowdown (default 0.25 = +25%%)",
    )
    parser.add_argument(
        "--from-json",
        metavar="FILE",
        help="compare an existing pytest --benchmark-json file instead "
        "of running the suite",
    )
    parser.add_argument(
        "--suite",
        default=DEFAULT_SUITE,
        help="benchmark suite to run (default: the engine microbenches)",
    )
    parser.add_argument(
        "--incremental",
        metavar="FILE",
        help="gate the incremental-proof speedup against FILE "
        "(BENCH_incremental.json) instead of the microbench medians",
    )
    parser.add_argument(
        "--incremental-floor",
        type=float,
        default=DEFAULT_INCREMENTAL_FLOOR,
        help="minimum cold/warm-edit speedup for --incremental "
        "(default 5.0)",
    )
    parser.add_argument(
        "--cluster",
        metavar="FILE",
        help="gate the cluster warm-replay speedup against FILE "
        "(BENCH_cluster.json) instead of the microbench medians",
    )
    parser.add_argument(
        "--cluster-floor",
        type=float,
        default=DEFAULT_CLUSTER_FLOOR,
        help="minimum cold/cross-instance-warm speedup for --cluster "
        "(default 5.0)",
    )
    args = parser.parse_args(argv)

    if args.incremental:
        return gate_incremental(
            pathlib.Path(args.incremental),
            args.incremental_floor,
            args.baseline_label,
        )
    if args.cluster:
        return gate_cluster(
            pathlib.Path(args.cluster),
            args.cluster_floor,
            args.baseline_label,
        )

    trajectory = json.loads(pathlib.Path(args.baseline).read_text())
    try:
        entry = baseline_entry(trajectory, args.baseline_label)
    except ValueError as exc:
        print(f"bench_gate: {exc}", file=sys.stderr)
        return 2

    if args.from_json:
        document = json.loads(pathlib.Path(args.from_json).read_text())
    else:
        with tempfile.NamedTemporaryFile(
            suffix=".json", delete=False
        ) as handle:
            json_path = handle.name
        run_pytest([args.suite], json_path, extra=[])
        document = json.loads(pathlib.Path(json_path).read_text())
        pathlib.Path(json_path).unlink()

    fresh = extract(document)
    if not fresh:
        print("bench_gate: no benchmark results found", file=sys.stderr)
        return 2

    rows, regressions = compare(entry["results"], fresh, args.threshold)
    if not rows:
        print(
            "bench_gate: no benchmarks in common with the baseline",
            file=sys.stderr,
        )
        return 2

    print(
        f"baseline: {entry['label']!r} ({entry.get('git_rev', '?')}, "
        f"{entry.get('date', '?')}); threshold +{args.threshold:.0%}"
    )
    print(format_rows(rows, args.threshold))
    if regressions:
        worst = max(regressions, key=lambda r: r["ratio"])
        print(
            f"FAIL: {len(regressions)} benchmark(s) regressed beyond "
            f"+{args.threshold:.0%} (worst: {worst['name']} at "
            f"{worst['ratio']:.2f}x)",
            file=sys.stderr,
        )
        print(
            "If the slowdown is intended, refresh the baseline:\n"
            "  PYTHONPATH=src python benchmarks/run_benchmarks.py --quick "
            "--label after\nand commit the updated trajectory file.",
            file=sys.stderr,
        )
        return 1
    print(f"OK: {len(rows)} benchmark(s) within +{args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
