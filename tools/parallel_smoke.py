#!/usr/bin/env python3
"""CI smoke for the parallel proof engine (used by the workflow).

Runs the AFS-1 liveness proof sequentially and through a fresh 2-worker
pool under the tracer, then fails loudly unless:

* the parallel proof tree, obligation report, and summary are
  **byte-identical** to the sequential run;
* the scheduler dispatched exactly one work item per sequential
  obligation (``parallel.items``);
* the worker-reported statistics reconcile exactly: the scheduler's
  merged ``parallel.check.*`` totals equal the sums over the parallel
  proof's own obligation results (the same numbers, once shipped across
  the process boundary and once recomputed in the parent);
* the merged Chrome trace contains at least two worker pid tracks with
  ``worker.item`` spans grafted under the proof.

Memo-cumulative counters (``subformulas_evaluated``,
``bdd_mk_calls``, …) are *not* compared across the two regimes: worker
checker caches make them depend on which worker served which
obligation, by design — the engine's guarantee is determinism of
results and certificates, which is what the byte-comparison gates.

Writes ``afs1_parallel.trace.json`` / ``afs1_parallel.spans.jsonl``
into ``--artifact-dir`` (default: current directory) for upload.

    PYTHONPATH=src python tools/parallel_smoke.py
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def obligations(pf) -> list:
    out, seen = [], set()
    for step in pf.log:
        for leaf in step.leaves():
            for o in leaf.obligations:
                if id(o) not in seen:
                    seen.add(id(o))
                    out.append(o)
    return out


def certificates(pf, proven) -> tuple[str, str, str]:
    from repro.compositional.export import obligations_report, proof_tree

    return proof_tree(proven), obligations_report(pf), pf.summary()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--artifact-dir", default=".")
    args = parser.parse_args(argv)

    from repro.casestudies.afs1 import prove_afs1_liveness
    from repro.obs import tracing
    from repro.obs.export import write_chrome_trace, write_jsonl
    from repro.parallel.pool import shared_scheduler, shutdown_shared

    print("sequential AFS-1 liveness proof ...")
    pf_seq, proven_seq = prove_afs1_liveness("symbolic")
    seq_obligations = obligations(pf_seq)
    seq_certs = certificates(pf_seq, proven_seq)
    print(f"  {len(seq_obligations)} obligations, all "
          f"{'true' if all(map(bool, seq_obligations)) else 'FALSE?!'}")

    shutdown_shared()  # a genuinely fresh pool for the smoke
    print(f"parallel AFS-1 liveness proof (--jobs {args.jobs}) ...")
    with tracing() as tracer:
        pf_par, proven_par = prove_afs1_liveness("symbolic", jobs=args.jobs)
    metrics = shared_scheduler(args.jobs).metrics
    par_obligations = obligations(pf_par)
    par_certs = certificates(pf_par, proven_par)

    # 1. certificates byte-identical to the sequential baseline
    for kind, seq, par in zip(
        ("proof tree", "obligations report", "summary"), seq_certs, par_certs
    ):
        if seq != par:
            fail(f"parallel {kind} differs from the sequential baseline")
    print("  certificates byte-identical to sequential")

    # 2. one dispatched work item per sequential obligation
    items = metrics.get("parallel.items")
    if items != len(seq_obligations):
        fail(
            f"scheduler dispatched {items:g} items for "
            f"{len(seq_obligations)} sequential obligations"
        )
    print(f"  parallel.items == {len(seq_obligations)} obligations")

    # 3. merged worker stats reconcile with the obligation results
    for counter, total in (
        ("parallel.check.subformulas_evaluated",
         sum(o.stats.subformulas_evaluated for o in par_obligations)),
        ("parallel.check.fixpoint_iterations",
         sum(o.stats.fixpoint_iterations for o in par_obligations)),
        ("parallel.check.bdd_mk_calls",
         sum(o.stats.bdd_mk_calls for o in par_obligations)),
    ):
        merged = metrics.get(counter)
        if merged != total:
            fail(f"{counter} merged to {merged:g}, obligations sum to {total}")
    print("  merged worker stats reconcile with obligation results")

    # 4. trace artifacts with worker pid tracks
    directory = pathlib.Path(args.artifact_dir)
    directory.mkdir(parents=True, exist_ok=True)
    trace_path = write_chrome_trace(
        directory / "afs1_parallel.trace.json", tracer
    )
    write_jsonl(directory / "afs1_parallel.spans.jsonl", tracer)
    document = json.loads(trace_path.read_text())
    events = document["traceEvents"]
    worker_pids = {
        e["pid"]
        for e in events
        if e.get("ph") == "X" and e.get("name") == "worker.item"
    }
    if len(worker_pids) < min(2, args.jobs):
        fail(f"expected ≥{min(2, args.jobs)} worker pid tracks, "
             f"got {sorted(worker_pids)}")
    named = {
        e["args"]["name"]
        for e in events
        if e.get("ph") == "M" and e.get("name") == "process_name"
    }
    if not any(n.startswith("repro worker ") for n in named):
        fail(f"no worker process_name metadata in trace: {sorted(named)}")
    print(f"  trace: {len(events)} events, worker tracks {sorted(worker_pids)}")

    shutdown_shared()
    print("parallel smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
