"""Scale tests: the stack at sizes beyond the unit-test defaults.

These take a second or two each — they pin down that the symbolic path
actually carries the larger instances the README advertises.
"""

import pytest

from repro.bdd.manager import BDD


class TestBddScale:
    def test_wide_adder_carry(self):
        """40-variable carry chain stays linear-sized with interleaving."""
        bdd = BDD()
        n = 20
        for i in range(n):
            bdd.declare(f"a{i}", f"b{i}")
        carry = 0
        for i in range(n):
            a, b = bdd.var(f"a{i}"), bdd.var(f"b{i}")
            ab = bdd.apply("and", a, b)
            a_or_b = bdd.apply("or", a, b)
            carry = bdd.apply("or", ab, bdd.apply("and", a_or_b, carry))
        assert bdd.node_count(carry) <= 3 * n + 2  # linear, not exponential
        assert 0 < bdd.sat_count(carry) < 2 ** (2 * n)

    def test_deep_quantification(self):
        bdd = BDD()
        names = [f"v{i}" for i in range(24)]
        for name in names:
            bdd.add_var(name)
        chain = bdd.conj(
            bdd.apply("implies", bdd.var(names[i]), bdd.var(names[i + 1]))
            for i in range(len(names) - 1)
        )
        projected = bdd.exists(names[1:], chain)
        assert projected == 1  # TRUE: both v0 values extend to a model


class TestAfs2Scale:
    def test_four_client_compositional_proof(self):
        from repro.casestudies.afs2 import prove_afs2_safety

        pf, proven = prove_afs2_safety(n=4)
        unique = {
            id(o)
            for s in pf.log
            for leaf in s.leaves()
            for o in leaf.obligations
        }
        assert len(unique) == 5
        assert len(pf.sigma_star) == 37  # 9 atoms per client + failure


class TestRingScale:
    def test_five_process_ring_symbolic(self):
        from repro.casestudies.mutex import TokenRing

        ring = TokenRing(5)
        pf, safety = ring.prove_safety(backend="symbolic")
        assert "AG" in str(safety.formula)


class TestCompositionScale:
    def test_ten_component_extension_chain(self):
        """extend() scales to many components without re-proving."""
        from repro.compositional.proof import CompositionProof
        from repro.logic.ctl import AX, Implies, atom
        from repro.systems.system import System

        pf = CompositionProof(
            {"c0": System.from_pairs({"a0"}, [((), ("a0",))])}
        )
        pf.universal(Implies(atom("a0"), AX(atom("a0"))))
        for i in range(1, 10):
            pf = pf.extend(
                {f"c{i}": System.from_pairs({f"a{i}"}, [((), (f"a{i}",))])}
            )
        assert len(pf.components) == 10
        assert len(pf.sigma_star) == 10
