"""Frontier fixpoints vs. naive full-recompute fixpoints.

The symbolic checker's ``_eu`` iterates only over the frontier (states
added last round) and ``_eg_plain`` rechecks only predecessors of the
most recently removed layer.  Both must compute *exactly* the classical
fixpoints

    EU:  μZ. q ∨ (p ∧ EX Z)        (full recompute each round)
    EG:  νZ. p ∧ EX Z

which this module re-implements naively from public BDD operations and
compares node-for-node on the paper's Figure 1 / Figure 2 systems and the
AFS-1 protocol components.  The explicit engine's frontier loops are
cross-checked against the symbolic verdicts on the same formulas.
"""

import pytest

from repro.bdd.formula import prop_to_bdd
from repro.bdd.manager import FALSE, TRUE
from repro.casestudies.afs1 import CLIENT, SERVER
from repro.casestudies.figures import (
    figure1_m,
    figure1_m_prime,
    figure2_p,
    figure2_q,
    figure2_system,
)
from repro.checking.explicit import ExplicitChecker
from repro.checking.symbolic import SymbolicChecker
from repro.logic.ctl import EG, EU, Atom, Not, Or, TRUE as F_TRUE
from repro.systems.symbolic import SymbolicSystem, symbolic_compose


# ----------------------------------------------------------------------
# naive reference fixpoints (textbook iteration, no frontiers)
# ----------------------------------------------------------------------
def naive_eu(checker: SymbolicChecker, p: int, q: int) -> int:
    b = checker.bdd
    z = FALSE
    while True:
        nxt = b.apply("or", q, b.apply("and", p, checker._ex(z)))
        if nxt == z:
            return z
        z = nxt


def naive_eg(checker: SymbolicChecker, p: int) -> int:
    b = checker.bdd
    z = p
    while True:
        nxt = b.apply("and", p, checker._ex(z))
        if nxt == z:
            return z
        z = nxt


def state_sets(sym: SymbolicSystem) -> list[int]:
    """A spread of state sets over the system's atoms: constants, single
    atoms, their negations, and a few combinations."""
    b = sym.bdd
    sets = [FALSE, TRUE]
    for a in sym.atoms:
        sets.append(b.var(a))
        sets.append(b.nvar(a))
    for i in range(len(sym.atoms) - 1):
        u = b.var(sym.atoms[i])
        v = b.var(sym.atoms[i + 1])
        sets.append(b.apply("and", u, v))
        sets.append(b.apply("xor", u, v))
    return sets


def systems() -> list[tuple[str, SymbolicSystem]]:
    fig1 = SymbolicSystem.from_explicit(figure1_m())
    fig1p = SymbolicSystem.from_explicit(figure1_m_prime())
    composed = symbolic_compose(fig1, fig1p)
    fig2 = SymbolicSystem.from_explicit(figure2_system())
    server = SERVER.symbolic(reflexive=True)
    client = CLIENT.symbolic(reflexive=True)
    return [
        ("figure1_m", fig1),
        ("figure1_composed", composed),
        ("figure2", fig2),
        ("afs1_server", server),
        ("afs1_client", client),
    ]


SYSTEMS = systems()


@pytest.mark.parametrize("name,sym", SYSTEMS, ids=[n for n, _ in SYSTEMS])
class TestFrontierEqualsNaive:
    def test_eu_matches_naive_fixpoint(self, name, sym):
        checker = SymbolicChecker(sym)
        sets = state_sets(sym)
        for p in sets:
            for q in sets:
                assert checker._eu(p, q) == naive_eu(checker, p, q)

    def test_eg_matches_naive_fixpoint(self, name, sym):
        checker = SymbolicChecker(sym)
        for p in state_sets(sym):
            assert checker._eg_plain(p) == naive_eg(checker, p)


class TestFigure2Formulas:
    """The paper's own predicates p and q on the Figure 2 system."""

    def test_eu_of_paper_predicates(self):
        sym = SymbolicSystem.from_explicit(figure2_system())
        checker = SymbolicChecker(sym)
        p = prop_to_bdd(sym.bdd, figure2_p())
        q = prop_to_bdd(sym.bdd, figure2_q())
        assert checker._eu(p, q) == naive_eu(checker, p, q)
        assert checker._eu(TRUE, q) == naive_eu(checker, TRUE, q)

    def test_eg_of_paper_predicates(self):
        sym = SymbolicSystem.from_explicit(figure2_system())
        checker = SymbolicChecker(sym)
        p = prop_to_bdd(sym.bdd, figure2_p())
        assert checker._eg_plain(p) == naive_eg(checker, p)
        not_q = prop_to_bdd(sym.bdd, Not(figure2_q()))
        assert checker._eg_plain(not_q) == naive_eg(checker, not_q)


class TestExplicitAgreesWithSymbolic:
    """Explicit frontier loops produce the same verdicts as the BDD engine."""

    def formulas(self, atoms):
        atoms = sorted(atoms)
        a, b = Atom(atoms[0]), Atom(atoms[-1])
        return [
            EU(a, b),
            EU(Not(a), b),
            EU(F_TRUE, Or(a, b)),
            EG(a),
            EG(Not(a)),
            EG(Or(a, Not(b))),
        ]

    @pytest.mark.parametrize(
        "system",
        [figure1_m(), figure2_system(), SERVER.system(), CLIENT.system()],
        ids=["figure1_m", "figure2", "afs1_server", "afs1_client"],
    )
    def test_verdicts_agree(self, system):
        explicit = ExplicitChecker(system)
        symbolic = SymbolicChecker(SymbolicSystem.from_explicit(system))
        for f in self.formulas(system.sigma):
            assert bool(explicit.holds(f)) == bool(symbolic.holds(f)), f
