"""Tests for symbolic witness extraction — cross-checked vs the explicit one."""

import pytest
from hypothesis import given, settings

from tests.conftest import prop_formulas, systems
from repro.checking.explicit import ExplicitChecker
from repro.checking.symbolic_witness import (
    ag_counterexample_symbolic,
    ef_witness_symbolic,
    eu_witness_symbolic,
)
from repro.checking.witness import eu_witness
from repro.errors import CheckError
from repro.logic.ctl import AX, Const, Not, TRUE, atom, substitute
from repro.systems.symbolic import SymbolicSystem
from repro.systems.system import System

E = frozenset()
A = frozenset({"a"})
AB = frozenset({"a", "b"})


def _chain():
    return System.from_pairs({"a", "b"}, [((), ("a",)), (("a",), ("a", "b"))])


class TestEuWitnessSymbolic:
    def test_shortest_path(self):
        sym = SymbolicSystem.from_explicit(_chain())
        path = eu_witness_symbolic(sym, E, TRUE, atom("b"))
        assert path == [E, A, AB]

    def test_start_satisfies_goal(self):
        sym = SymbolicSystem.from_explicit(_chain())
        assert eu_witness_symbolic(sym, AB, TRUE, atom("b")) == [AB]

    def test_p_constrains_path(self):
        sym = SymbolicSystem.from_explicit(_chain())
        assert eu_witness_symbolic(sym, E, Not(atom("a")), atom("b")) is None

    def test_unreachable(self):
        m = System.from_pairs({"a", "b"}, [((), ("a",))])
        sym = SymbolicSystem.from_explicit(m)
        assert eu_witness_symbolic(sym, E, TRUE, atom("b")) is None

    def test_temporal_arguments_rejected(self):
        sym = SymbolicSystem.from_explicit(_chain())
        with pytest.raises(CheckError):
            eu_witness_symbolic(sym, E, TRUE, AX(atom("b")))

    def test_path_is_valid_run(self):
        system = _chain()
        sym = SymbolicSystem.from_explicit(system)
        path = ef_witness_symbolic(sym, E, atom("b"))
        for s, t in zip(path, path[1:]):
            assert system.has_transition(s, t)

    @given(systems(max_atoms=2), prop_formulas(atoms=("a", "b"), max_depth=2))
    @settings(max_examples=50, deadline=None)
    def test_same_length_as_explicit_bfs(self, system, goal):
        goal = substitute(
            goal, {x: Const(True) for x in goal.atoms() - system.sigma}
        )
        sym = SymbolicSystem.from_explicit(system)
        eck = ExplicitChecker(system)
        start = frozenset()
        explicit = eu_witness(eck, start, TRUE, goal)
        symbolic = ef_witness_symbolic(sym, start, goal)
        if explicit is None:
            assert symbolic is None
        else:
            assert symbolic is not None
            assert len(symbolic) == len(explicit)  # both shortest
            for s, t in zip(symbolic, symbolic[1:]):
                assert system.has_transition(s, t)


class TestAgCounterexampleSymbolic:
    def test_path_to_violation(self):
        sym = SymbolicSystem.from_explicit(_chain())
        path = ag_counterexample_symbolic(sym, E, Not(atom("b")))
        assert path is not None and path[-1] == AB

    def test_none_when_invariant_holds(self):
        m = System.from_pairs({"a", "b"}, [((), ("a",))])
        sym = SymbolicSystem.from_explicit(m)
        assert ag_counterexample_symbolic(sym, E, Not(atom("b"))) is None
