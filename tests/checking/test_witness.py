"""Tests for witness and counterexample extraction."""

from repro.checking.explicit import ExplicitChecker
from repro.checking.witness import (
    ag_counterexample,
    counterexample,
    ef_witness,
    eu_witness,
    ex_witness,
)
from repro.logic.ctl import AG, AX, Implies, Not, TRUE, atom
from repro.systems.system import System

E = frozenset()
A = frozenset({"a"})
B = frozenset({"b"})
AB = frozenset({"a", "b"})


def _chain():
    """∅ → {a} → {a,b}, plus stutters."""
    return System.from_pairs(
        {"a", "b"}, [((), ("a",)), (("a",), ("a", "b"))]
    )


class TestEuWitness:
    def test_shortest_path_found(self):
        ck = ExplicitChecker(_chain())
        path = eu_witness(ck, E, TRUE, atom("b"))
        assert path == [E, A, AB]

    def test_start_already_satisfies_goal(self):
        ck = ExplicitChecker(_chain())
        assert eu_witness(ck, AB, TRUE, atom("b")) == [AB]

    def test_p_constrains_intermediate_states(self):
        ck = ExplicitChecker(_chain())
        # require ¬a along the way: cannot pass through {a}
        assert eu_witness(ck, E, Not(atom("a")), atom("b")) is None

    def test_unreachable_goal(self):
        m = System.from_pairs({"a", "b"}, [((), ("a",))])
        ck = ExplicitChecker(m)
        assert eu_witness(ck, E, TRUE, atom("b")) is None

    def test_start_violates_p_and_goal(self):
        ck = ExplicitChecker(_chain())
        assert eu_witness(ck, B, atom("a"), atom("a")) is None


class TestOtherWitnesses:
    def test_ef_witness(self):
        ck = ExplicitChecker(_chain())
        path = ef_witness(ck, E, atom("a"))
        assert path is not None and "a" in path[-1]

    def test_ex_witness(self):
        ck = ExplicitChecker(_chain())
        assert ex_witness(ck, E, atom("a")) == A
        assert ex_witness(ck, E, atom("b")) is None

    def test_ag_counterexample(self):
        ck = ExplicitChecker(_chain())
        path = ag_counterexample(ck, E, Not(atom("b")))
        assert path is not None and path[-1] == AB

    def test_ag_counterexample_none_when_invariant_holds(self):
        m = System.from_pairs({"a", "b"}, [((), ("a",))])
        ck = ExplicitChecker(m)
        assert ag_counterexample(ck, E, Not(atom("b"))) is None


class TestCounterexampleDispatch:
    def test_holds_returns_none(self):
        ck = ExplicitChecker(_chain())
        assert counterexample(ck, AG(TRUE), E) is None

    def test_ag_shape(self):
        ck = ExplicitChecker(_chain())
        path = counterexample(ck, AG(Not(atom("b"))), E)
        assert path[0] == E and path[-1] == AB

    def test_ax_shape(self):
        ck = ExplicitChecker(_chain())
        f = Implies(atom("a"), AX(Not(atom("b"))))
        path = counterexample(ck, f, A)
        assert path == [A, AB]

    def test_unsupported_shape_returns_single_state(self):
        ck = ExplicitChecker(_chain())
        path = counterexample(ck, atom("b"), E)
        assert path == [E]
