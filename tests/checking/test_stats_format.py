"""Edge cases for CheckStats.format() and cache_hit_rate."""

import pytest

from repro.checking.result import CheckStats


class TestCacheHitRate:
    def test_zero_lookups_is_zero_not_nan(self):
        assert CheckStats().cache_hit_rate == 0.0

    def test_ratio_when_populated(self):
        stats = CheckStats(bdd_cache_lookups=200, bdd_cache_hits=50)
        assert stats.cache_hit_rate == pytest.approx(0.25)

    def test_all_hits(self):
        stats = CheckStats(bdd_cache_lookups=10, bdd_cache_hits=10)
        assert stats.cache_hit_rate == 1.0


class TestFormat:
    def test_empty_stats_minimal_block(self):
        text = CheckStats().format()
        assert text.splitlines() == [
            "resources used:",
            "user time: 0 s, system time: 0 s",
        ]

    def test_explicit_engine_zeros_omit_bdd_lines(self):
        stats = CheckStats(
            user_time=0.25, fixpoint_iterations=4, subformulas_evaluated=9
        )
        text = stats.format()
        assert "fixpoint iterations: 4, subformulas evaluated: 9" in text
        assert "BDD" not in text

    def test_symbolic_stats_full_block(self):
        stats = CheckStats(
            user_time=0.5,
            fixpoint_iterations=3,
            bdd_nodes_allocated=100,
            transition_nodes=40,
            bdd_cache_lookups=1000,
            bdd_cache_hits=600,
            bdd_mk_calls=800,
            bdd_peak_unique_nodes=120,
        )
        text = stats.format()
        assert "user time: 0.5 s, system time: 0 s" in text
        assert "BDD nodes allocated: 100" in text
        assert "BDD nodes representing transition relation: 40 + 3" in text
        assert "BDD cache: 1000 lookups, 60.0% hit rate" in text
        assert "BDD unique table: peak 120 nodes (800 mk calls)" in text

    def test_op_counters_survive_construction(self):
        counters = {"and": {"lookups": 10, "hits": 5, "inserts": 5}}
        stats = CheckStats(bdd_op_counters=counters)
        assert stats.bdd_op_counters == counters
        # the resources block does not explode on the dict
        assert stats.format().startswith("resources used:")


class TestMerged:
    def test_sums_additive_and_maxes_peaks(self):
        merged = CheckStats.merged(
            [
                CheckStats(
                    user_time=0.1,
                    fixpoint_iterations=2,
                    bdd_cache_lookups=10,
                    bdd_cache_hits=5,
                    bdd_nodes_allocated=100,
                    bdd_peak_unique_nodes=80,
                ),
                CheckStats(
                    user_time=0.2,
                    fixpoint_iterations=3,
                    bdd_cache_lookups=30,
                    bdd_cache_hits=15,
                    bdd_nodes_allocated=150,
                    bdd_peak_unique_nodes=60,
                ),
            ]
        )
        assert merged.user_time == pytest.approx(0.3)
        assert merged.fixpoint_iterations == 5
        assert merged.bdd_cache_lookups == 40
        assert merged.cache_hit_rate == pytest.approx(0.5)
        assert merged.bdd_nodes_allocated == 150  # cumulative: max
        assert merged.bdd_peak_unique_nodes == 80

    def test_merged_of_nothing_is_empty(self):
        merged = CheckStats.merged([])
        assert merged.user_time == 0.0
        assert merged.cache_hit_rate == 0.0
