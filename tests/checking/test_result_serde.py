"""CheckStats / CheckResult serialization round-trips (property-based)."""

import json

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.checking.result import CheckResult, CheckStats
from repro.logic.ctl import AX, EF, AG, Atom, Not
from repro.logic.parser import parse_ctl
from repro.logic.restriction import Restriction

counts = st.integers(min_value=0, max_value=10**9)

op_counter = st.fixed_dictionaries(
    {
        "lookups": counts,
        "hits": counts,
        "inserts": counts,
        "hit_rate": st.floats(
            min_value=0, max_value=1, allow_nan=False, width=32
        ),
    }
)

stats_strategy = st.builds(
    CheckStats,
    user_time=st.floats(min_value=0, max_value=1e6, allow_nan=False),
    fixpoint_iterations=counts,
    subformulas_evaluated=counts,
    bdd_nodes_allocated=counts,
    transition_nodes=counts,
    bdd_cache_lookups=counts,
    bdd_cache_hits=counts,
    bdd_mk_calls=counts,
    bdd_peak_unique_nodes=counts,
    bdd_op_counters=st.dictionaries(
        st.sampled_from(["and", "or", "exists", "relprod", "not"]),
        op_counter,
        max_size=5,
    ),
)

atom_names = st.sampled_from(["x", "y", "tok", "x.0", "c1'", "req_2"])
atoms = st.builds(Atom, atom_names)

formulas = st.recursive(
    atoms,
    lambda inner: st.one_of(
        st.builds(Not, inner),
        st.builds(AX, inner),
        st.builds(EF, inner),
        st.builds(AG, inner),
        st.builds(lambda a, b: a & b, inner, inner),
        st.builds(lambda a, b: a | b, inner, inner),
    ),
    max_leaves=6,
)

states = st.frozensets(atom_names, max_size=4)

results = st.builds(
    CheckResult,
    formula=formulas,
    restriction=st.builds(
        Restriction,
        init=formulas,
        fairness=st.tuples(formulas),
    ),
    holds=st.booleans(),
    failing_states=st.tuples(states, states),
    num_failing=counts,
    stats=stats_strategy,
)


class TestCheckStatsSerde:
    @settings(max_examples=60, deadline=None)
    @given(stats=stats_strategy)
    def test_round_trip(self, stats):
        assert CheckStats.from_dict(stats.to_dict()) == stats

    @settings(max_examples=60, deadline=None)
    @given(stats=stats_strategy)
    def test_json_safe(self, stats):
        # survives an actual JSON encode/decode, not just dict copying
        data = json.loads(json.dumps(stats.to_dict()))
        assert CheckStats.from_dict(data) == stats

    @settings(max_examples=30, deadline=None)
    @given(stats=stats_strategy)
    def test_op_counters_are_copies(self, stats):
        # mutating the serialized form must not reach back into the stats
        data = stats.to_dict()
        for counter in data["bdd_op_counters"].values():
            counter["lookups"] = -1
        assert all(
            counter["lookups"] >= 0
            for counter in stats.bdd_op_counters.values()
        )

    def test_unknown_keys_ignored(self):
        stats = CheckStats.from_dict({"user_time": 1.0, "from_the_future": 9})
        assert stats.user_time == 1.0

    def test_missing_keys_default(self):
        assert CheckStats.from_dict({}) == CheckStats()


class TestCheckResultSerde:
    @settings(max_examples=60, deadline=None)
    @given(result=results)
    def test_round_trip(self, result):
        back = CheckResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert back.formula == result.formula
        assert back.restriction.init == result.restriction.init
        assert back.restriction.fairness == result.restriction.fairness
        assert back.holds == result.holds
        assert set(back.failing_states) == set(result.failing_states)
        assert back.num_failing == result.num_failing
        assert back.stats == result.stats

    @settings(max_examples=60, deadline=None)
    @given(formula=formulas)
    def test_formula_text_round_trips(self, formula):
        # the serde's foundation: str() output re-parses to the same tree
        assert parse_ctl(str(formula)) == formula

    def test_bool_preserved(self):
        result = CheckResult(
            formula=Atom("x"),
            restriction=Restriction(init=Atom("x")),
            holds=False,
        )
        assert not CheckResult.from_dict(result.to_dict())
