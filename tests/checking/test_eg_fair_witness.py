"""Tests for fair-EG lasso witnesses."""

import pytest
from hypothesis import given, settings

from tests.conftest import prop_formulas, systems
from repro.checking.explicit import ExplicitChecker
from repro.checking.witness import eg_fair_witness
from repro.logic.ctl import Const, EG, Not, TRUE, atom, substitute
from repro.systems.system import System

E = frozenset()
A = frozenset({"a"})
B = frozenset({"b"})


def _validate_lasso(system, stem, cycle, checker, p, fairness):
    """A lasso must be a real run, stay in p, and hit every constraint."""
    p_set = checker.states_satisfying(p)
    run = stem + cycle[1:] if stem[-1] == cycle[0] else stem + cycle
    for s, t in zip(run, run[1:]):
        assert system.has_transition(s, t)
    # the cycle must close
    assert system.has_transition(cycle[-1], cycle[0]) or cycle[-1] == cycle[0]
    for s in stem + cycle:
        assert p_set[checker._index(s)]
    for c in fairness:
        c_set = checker.states_satisfying(c)
        assert any(c_set[checker._index(s)] for s in cycle)


class TestLassoShape:
    def test_stutter_lasso(self):
        m = System.from_pairs({"a"}, [((), ("a",))])
        ck = ExplicitChecker(m)
        found = eg_fair_witness(ck, E, Not(atom("a")), (TRUE,))
        assert found is not None
        stem, cycle = found
        _validate_lasso(m, stem, cycle, ck, Not(atom("a")), (TRUE,))

    def test_constraint_forces_cycle_through_state(self):
        # two-state toggle: the fair cycle must visit {a}
        m = System.from_pairs({"a"}, [((), ("a",)), (("a",), ())])
        ck = ExplicitChecker(m)
        found = eg_fair_witness(ck, E, TRUE, (atom("a"),))
        assert found is not None
        stem, cycle = found
        _validate_lasso(m, stem, cycle, ck, TRUE, (atom("a"),))

    def test_no_fair_path(self):
        # staying in ¬a forever cannot satisfy fairness constraint a
        m = System.from_pairs({"a"}, [])
        ck = ExplicitChecker(m)
        assert eg_fair_witness(ck, E, Not(atom("a")), (atom("a"),)) is None

    def test_start_outside_p(self):
        m = System.from_pairs({"a"}, [])
        ck = ExplicitChecker(m)
        assert eg_fair_witness(ck, A, Not(atom("a")), (TRUE,)) is None

    def test_multiple_constraints_all_visited(self):
        # 2-bit toggle ring visiting all four states
        pairs = [
            ((), ("a",)),
            (("a",), ("a", "b")),
            (("a", "b"), ("b",)),
            (("b",), ()),
        ]
        m = System.from_pairs({"a", "b"}, pairs)
        ck = ExplicitChecker(m)
        fairness = (atom("a"), atom("b"))
        found = eg_fair_witness(ck, E, TRUE, fairness)
        assert found is not None
        stem, cycle = found
        _validate_lasso(m, stem, cycle, ck, TRUE, fairness)


class TestAgainstChecker:
    @given(systems(max_atoms=2), prop_formulas(atoms=("a", "b"), max_depth=2),
           prop_formulas(atoms=("a", "b"), max_depth=2))
    @settings(max_examples=50, deadline=None)
    def test_witness_exists_iff_eg_fair_holds(self, system, p, fair):
        sub = lambda h: substitute(
            h, {x: Const(True) for x in h.atoms() - system.sigma}
        )
        p, fair = sub(p), sub(fair)
        ck = ExplicitChecker(system)
        sat = ck.states_satisfying(EG(p), fairness=(fair,))
        for start in system.states():
            found = eg_fair_witness(ck, start, p, (fair,))
            assert (found is not None) == bool(sat[ck._index(start)])
            if found:
                _validate_lasso(system, found[0], found[1], ck, p, (fair,))
