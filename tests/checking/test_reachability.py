"""Tests for forward reachability analysis (explicit and symbolic)."""

import numpy as np
import pytest

from repro.checking.reachability import (
    check_invariant_explicit,
    check_invariant_symbolic,
    reachable_explicit,
    reachable_symbolic,
)
from repro.errors import CheckError
from repro.logic.ctl import AX, Not, Or, TRUE, atom
from repro.smv.compile_explicit import to_system
from repro.smv.compile_symbolic import to_symbolic
from repro.smv.run import load_model
from repro.systems.symbolic import SymbolicSystem
from repro.systems.system import System

E = frozenset()
A = frozenset({"a"})
AB = frozenset({"a", "b"})


def _chain():
    """∅ → {a} → {a,b}; {b} is unreachable from ∅."""
    return System.from_pairs({"a", "b"}, [((), ("a",)), (("a",), ("a", "b"))])


class TestExplicit:
    def test_reachable_set(self):
        reached, layers = reachable_explicit(_chain(), Not(atom("a")) & Not(atom("b")))
        from repro.checking.explicit import ExplicitChecker

        ck = ExplicitChecker(_chain())
        states = {ck.state_of_index(int(i)) for i in np.flatnonzero(reached)}
        assert states == {E, A, AB}
        assert layers == 2  # the chain's diameter

    def test_invariant_holds_on_reachable(self):
        # b ⇒ a holds on everything reachable from ∅ (never {b} alone)
        report = check_invariant_explicit(
            _chain(),
            Not(atom("a")) & Not(atom("b")),
            Or(Not(atom("b")), atom("a")),
        )
        assert report.violations is None
        assert report.num_reachable == 3
        assert report.fraction_reachable == pytest.approx(0.75)

    def test_invariant_violation_counted(self):
        report = check_invariant_explicit(_chain(), TRUE, Not(atom("b")))
        assert report.violations == 2  # {b} and {a,b} are (trivially) reachable

    def test_temporal_invariant_rejected(self):
        with pytest.raises(CheckError):
            check_invariant_explicit(_chain(), TRUE, AX(atom("a")))


class TestSymbolic:
    def test_agrees_with_explicit(self):
        system = _chain()
        init = Not(atom("a")) & Not(atom("b"))
        explicit = check_invariant_explicit(system, init, Or(Not(atom("b")), atom("a")))
        symbolic = check_invariant_symbolic(
            SymbolicSystem.from_explicit(system), init, Or(Not(atom("b")), atom("a"))
        )
        assert symbolic.num_reachable == explicit.num_reachable
        assert symbolic.iterations == explicit.iterations
        assert symbolic.violations == explicit.violations

    def test_smv_model_reachability(self):
        model = load_model(
            """
MODULE main
VAR n : {0, 1, 2};
ASSIGN init(n) := 0; next(n) := case n = 0 : 1; n = 1 : 2; 1 : 2; esac;
"""
        )
        report = check_invariant_symbolic(
            to_symbolic(model), model.initial_formula(), model.valid_formula()
        )
        assert report.num_reachable == 3
        assert report.iterations == 2
        assert report.violations is None
