"""Semantics tests for the explicit fair-CTL checker.

Cross-validated against the independent SCC/reachability oracle in
``tests/oracle.py`` plus hand-computed verdicts on small systems.
"""

import numpy as np
import pytest
from hypothesis import given, settings

import tests.oracle as oracle
from tests.conftest import ctl_formulas, prop_formulas, systems
from repro.checking.explicit import ExplicitChecker
from repro.errors import CheckError
from repro.logic.ctl import (
    AF,
    AG,
    AU,
    AX,
    Const,
    EF,
    EG,
    EU,
    EX,
    Implies,
    Not,
    Or,
    TRUE,
    atom,
    substitute,
)
from repro.logic.parser import parse_ctl
from repro.logic.restriction import Restriction
from repro.systems.system import System

E = frozenset()
X = frozenset({"x"})


@pytest.fixture
def one_way():
    return System.from_pairs({"x"}, [((), ("x",))])


class TestBasicOperators:
    def test_atom_sets(self, one_way):
        ck = ExplicitChecker(one_way)
        sat = ck.states_satisfying(atom("x"))
        assert not sat[ck._index(E)] and sat[ck._index(X)]

    def test_ex_includes_stutter(self, one_way):
        ck = ExplicitChecker(one_way)
        sat = ck.states_satisfying(EX(Not(atom("x"))))
        # only ∅ can stay at ¬x
        assert sat[ck._index(E)] and not sat[ck._index(X)]

    def test_ax_absorbing(self, one_way):
        ck = ExplicitChecker(one_way)
        sat = ck.states_satisfying(AX(atom("x")))
        assert sat[ck._index(X)] and not sat[ck._index(E)]

    def test_ef_reachability(self, one_way):
        assert ExplicitChecker(one_way).holds(EF(atom("x")))

    def test_af_defeated_by_stuttering(self, one_way):
        # ∅ can stutter forever, so AF x fails without fairness
        assert not ExplicitChecker(one_way).holds(AF(atom("x")))

    def test_eg_with_reflexivity_is_identity(self, one_way):
        ck = ExplicitChecker(one_way)
        sat = ck.states_satisfying(EG(Not(atom("x"))))
        assert sat[ck._index(E)] and not sat[ck._index(X)]

    def test_au_strong_until(self, one_way):
        ck = ExplicitChecker(one_way)
        # A[¬x U x] fails at ∅ (may stutter forever) but holds at {x}
        sat = ck.states_satisfying(AU(Not(atom("x")), atom("x")))
        assert not sat[ck._index(E)] and sat[ck._index(X)]

    def test_unknown_atom_rejected(self, one_way):
        with pytest.raises(CheckError):
            ExplicitChecker(one_way).holds(atom("zzz"))


class TestFairness:
    def test_fairness_forces_progress(self, one_way):
        r = Restriction(fairness=(atom("x"),))
        assert ExplicitChecker(one_way).holds(AF(atom("x")), r)

    def test_fair_eg(self):
        # toggle: under fairness {x}, EG ¬x is false everywhere
        m = System.from_pairs({"x"}, [((), ("x",)), (("x",), ())])
        ck = ExplicitChecker(m)
        sat = ck.states_satisfying(EG(Not(atom("x"))), fairness=(atom("x"),))
        assert not sat.any()

    def test_unsatisfiable_fairness_empties_existentials(self, one_way):
        r = Restriction(fairness=(Const(False),))
        ck = ExplicitChecker(one_way)
        assert not ck.states_satisfying(EX(TRUE), r.fairness).any()
        # and universal duals become vacuously true
        assert ck.holds(AX(Const(False)), r)

    def test_rule4_style_progress(self, one_way):
        """The paper's r = (true, {¬p ∨ q}) makes A(p U q) hold."""
        p, q = Not(atom("x")), atom("x")
        r = Restriction(fairness=(Or(Not(p), q),))
        assert ExplicitChecker(one_way).holds(Implies(p, AU(p, q)), r)


class TestRestrictionInit:
    def test_init_narrows_checked_states(self, one_way):
        ck = ExplicitChecker(one_way)
        assert not ck.holds(atom("x"))
        assert ck.holds(atom("x"), Restriction(init=atom("x")))

    def test_failing_states_reported(self, one_way):
        res = ExplicitChecker(one_way).holds(atom("x"))
        assert not res
        assert res.num_failing == 1
        assert res.failing_states == (E,)

    def test_result_truthiness_and_format(self, one_way):
        res = ExplicitChecker(one_way).holds(EF(atom("x")))
        assert res
        assert "is true" in res.format()
        assert "resources used" in res.stats.format()

    def test_explain_mentions_failures(self, one_way):
        res = ExplicitChecker(one_way).holds(atom("x"))
        assert "failing state" in res.explain()


class TestAgainstOracle:
    @given(systems(), ctl_formulas(max_depth=2))
    @settings(max_examples=120, deadline=None)
    def test_unfair_semantics_matches_oracle(self, system, f):
        f = substitute(f, {a: Const(True) for a in f.atoms() - system.sigma})
        ck = ExplicitChecker(system)
        got = ck.states_satisfying(f)
        want = oracle.sat_states(system, f)
        got_states = {ck.state_of_index(i) for i in np.flatnonzero(got)}
        assert got_states == want

    @given(systems(max_atoms=2), ctl_formulas(atoms=("a", "b"), max_depth=2),
           prop_formulas(atoms=("a", "b"), max_depth=2))
    @settings(max_examples=80, deadline=None)
    def test_fair_semantics_matches_oracle(self, system, f, fair):
        sub = lambda h: substitute(
            h, {a: Const(True) for a in h.atoms() - system.sigma}
        )
        f, fair = sub(f), sub(fair)
        ck = ExplicitChecker(system)
        got = ck.states_satisfying(f, fairness=(fair,))
        want = oracle.sat_states(system, f, fairness=(fair,))
        got_states = {ck.state_of_index(i) for i in np.flatnonzero(got)}
        assert got_states == want


class TestNonReflexive:
    def test_raw_relation_semantics(self):
        # 2-state cycle WITHOUT stutter: AF x holds at ∅
        m = System.from_pairs(
            {"x"}, [((), ("x",)), (("x",), ())], reflexive=False
        )
        ck = ExplicitChecker(m)
        assert ck.holds(AF(atom("x")))

    def test_deadlock_state_vacuous_ax(self):
        # ∅ → {x}, {x} has no successors: AX false holds at {x}
        m = System.from_pairs({"x"}, [((), ("x",))], reflexive=False)
        ck = ExplicitChecker(m)
        sat = ck.states_satisfying(AX(Const(False)))
        assert sat[ck._index(X)]
        assert not sat[ck._index(E)]
