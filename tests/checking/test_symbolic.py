"""Tests for the symbolic (BDD) checker — agreement with the explicit one."""

import numpy as np
import pytest
from hypothesis import given, settings

from tests.conftest import ctl_formulas, prop_formulas, systems
from repro.bdd.manager import FALSE
from repro.checking.explicit import ExplicitChecker
from repro.checking.symbolic import SymbolicChecker
from repro.errors import CheckError
from repro.logic.ctl import (
    AF,
    AU,
    Const,
    EF,
    Implies,
    Not,
    Or,
    atom,
    substitute,
)
from repro.logic.restriction import Restriction
from repro.systems.symbolic import SymbolicSystem
from repro.systems.system import System


def _both(system):
    return ExplicitChecker(system), SymbolicChecker(
        SymbolicSystem.from_explicit(system)
    )


def _sat_set_symbolic(system, sck, bdd_node):
    out = set()
    for assignment in sck.bdd.iter_sat(bdd_node, list(sck.system.atoms)):
        out.add(frozenset(a for a in sck.system.atoms if assignment[a]))
    return out


class TestAgreementWithExplicit:
    @given(systems(), ctl_formulas(max_depth=2))
    @settings(max_examples=100, deadline=None)
    def test_unfair_state_sets_agree(self, system, f):
        f = substitute(f, {a: Const(True) for a in f.atoms() - system.sigma})
        eck, sck = _both(system)
        explicit = {
            eck.state_of_index(i)
            for i in np.flatnonzero(eck.states_satisfying(f))
        }
        symbolic = _sat_set_symbolic(system, sck, sck.states_satisfying(f))
        assert explicit == symbolic

    @given(
        systems(max_atoms=2),
        ctl_formulas(atoms=("a", "b"), max_depth=2),
        prop_formulas(atoms=("a", "b"), max_depth=2),
    )
    @settings(max_examples=60, deadline=None)
    def test_fair_state_sets_agree(self, system, f, fair):
        sub = lambda h: substitute(
            h, {a: Const(True) for a in h.atoms() - system.sigma}
        )
        f, fair = sub(f), sub(fair)
        eck, sck = _both(system)
        explicit = {
            eck.state_of_index(i)
            for i in np.flatnonzero(eck.states_satisfying(f, fairness=(fair,)))
        }
        symbolic = _sat_set_symbolic(
            system, sck, sck.states_satisfying(f, fairness=(fair,))
        )
        assert explicit == symbolic

    @given(systems(), ctl_formulas(max_depth=2), prop_formulas(max_depth=2))
    @settings(max_examples=60, deadline=None)
    def test_verdicts_agree_under_restriction(self, system, f, init):
        sub = lambda h: substitute(
            h, {a: Const(True) for a in h.atoms() - system.sigma}
        )
        r = Restriction(init=sub(init))
        eck, sck = _both(system)
        assert bool(eck.holds(sub(f), r)) == bool(sck.holds(sub(f), r))


class TestVerdicts:
    def test_progress_under_rule4_restriction(self, one_way_x):
        sck = SymbolicChecker(SymbolicSystem.from_explicit(one_way_x))
        p, q = Not(atom("x")), atom("x")
        r = Restriction(fairness=(Or(Not(p), q),))
        assert sck.holds(Implies(p, AU(p, q)), r)

    def test_failing_states_decoded(self, one_way_x):
        sck = SymbolicChecker(SymbolicSystem.from_explicit(one_way_x))
        res = sck.holds(atom("x"))
        assert not res
        assert res.failing_states == (frozenset(),)
        assert res.num_failing == 1

    def test_stats_report_bdd_metrics(self, one_way_x):
        sck = SymbolicChecker(SymbolicSystem.from_explicit(one_way_x))
        res = sck.holds(EF(atom("x")))
        assert res.stats.bdd_nodes_allocated > 0
        assert res.stats.transition_nodes > 0
        assert "BDD nodes allocated" in res.stats.format()

    def test_unknown_atom_rejected(self, one_way_x):
        sck = SymbolicChecker(SymbolicSystem.from_explicit(one_way_x))
        with pytest.raises(CheckError):
            sck.holds(atom("zzz"))

    def test_af_defeated_by_stutter(self, one_way_x):
        sck = SymbolicChecker(SymbolicSystem.from_explicit(one_way_x))
        assert not sck.holds(AF(atom("x")))
        assert sck.holds(AF(atom("x")), Restriction(fairness=(atom("x"),)))
