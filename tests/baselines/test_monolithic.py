"""Tests for the monolithic product-system baseline."""

import pytest

from repro.baselines.monolithic import check_monolithic
from repro.casestudies.mutex import TokenRing
from repro.logic.ctl import AG
from repro.logic.restriction import Restriction


class TestMonolithic:
    def test_explicit_backend(self):
        ring = TokenRing(2)
        report = check_monolithic(
            ring.components(),
            AG(ring.mutex_invariant()),
            Restriction(init=ring.initial()),
        )
        assert report.result
        assert report.num_atoms == len(ring.composite().sigma)
        assert report.num_states == 2**report.num_atoms
        assert report.total_time > 0

    def test_symbolic_backend(self):
        ring = TokenRing(2)
        report = check_monolithic(
            ring.components(),
            AG(ring.mutex_invariant()),
            Restriction(init=ring.initial()),
            backend="symbolic",
        )
        assert report.result

    def test_backends_agree_on_failure(self):
        """Both backends reject a false global property."""
        ring = TokenRing(2)
        bad = AG(ring.crit(0))  # nobody is always critical
        r = Restriction(init=ring.initial())
        explicit = check_monolithic(ring.components(), bad, r)
        symbolic = check_monolithic(ring.components(), bad, r, backend="symbolic")
        assert not explicit.result and not symbolic.result

    def test_matches_compositional_conclusion(self):
        """The baseline confirms what the compositional proof derived."""
        ring = TokenRing(2)
        pf, safety = ring.prove_safety()
        report = check_monolithic(
            ring.components(), safety.formula, safety.restriction
        )
        assert report.result
