"""Tests for DOT export and the propositional-formula bridge."""

import pytest

from repro.bdd.dot import to_dot
from repro.bdd.formula import prop_to_bdd
from repro.bdd.manager import BDD, FALSE, TRUE
from repro.errors import LogicError
from repro.logic.parser import parse_ctl


def test_dot_contains_all_nodes_and_edges():
    b = BDD()
    b.declare("x", "y")
    f = b.apply("and", b.var("x"), b.var("y"))
    text = to_dot(b, [f], names=["f"])
    assert text.startswith("digraph")
    assert '"f"' in text or "f" in text
    assert text.count("label=\"x\"") == 1
    assert text.count("label=\"y\"") == 1
    assert "style=dashed" in text


def test_dot_terminal_roots():
    b = BDD()
    text = to_dot(b, [TRUE, FALSE])
    assert "-> t" in text and "-> f" in text


class TestPropToBdd:
    def setup_method(self):
        self.b = BDD()
        self.b.declare("p", "q")

    def test_all_connectives(self):
        f = parse_ctl("(p & !q) | (p <-> q)")
        node = prop_to_bdd(self.b, f)
        # truth table: p&!q: (1,0); p<->q: (0,0),(1,1) → sat = all but (0,1)
        assert self.b.sat_count(node) == 3.0

    def test_implication(self):
        node = prop_to_bdd(self.b, parse_ctl("p -> q"))
        assert self.b.sat_count(node) == 3.0

    def test_constants(self):
        assert prop_to_bdd(self.b, parse_ctl("true")) == TRUE
        assert prop_to_bdd(self.b, parse_ctl("false")) == FALSE

    def test_temporal_rejected(self):
        with pytest.raises(LogicError):
            prop_to_bdd(self.b, parse_ctl("AX p"))
