"""Cross-validation of the specialized apply kernels against pure ``ite``.

The fast kernels (``_and_rec``/``_or_rec``/``_xor_rec`` and the memoized
negation table) must be *bit-identical* to the universal Shannon-expansion
path: for hash-consed BDDs, semantic equality is node-id equality, so every
comparison below is a plain integer ``==``.

The reference constructions use only ``ite`` (the one operation the seed
engine implemented all connectives through)::

    ¬u        = ite(u, 0, 1)
    u ∧ v     = ite(u, v, 0)
    u ∨ v     = ite(u, 1, v)
    u ⊕ v     = ite(u, ¬v, v)
    u ↔ v     = ite(u, v, ¬v)
    u → v     = ite(u, v, 1)
    u − v     = ite(u, ¬v, 0)

The pool of operands is a seeded random formula DAG over 8 variables, built
with the kernels under test *and* re-derived via ite, so discrepancies
cannot hide inside the pool construction either.  Well over the required
1000 operand pairs are exercised.
"""

import itertools
import random

import pytest

from repro.bdd.manager import BDD, FALSE, TRUE

VARS = ("a", "b", "c", "d", "e", "f", "g", "h")

#: binary connectives: public apply name → ite reference construction
REFERENCE = {
    "and": lambda b, u, v: b.ite(u, v, FALSE),
    "or": lambda b, u, v: b.ite(u, TRUE, v),
    "xor": lambda b, u, v: b.ite(u, b.ite(v, FALSE, TRUE), v),
    "nand": lambda b, u, v: b.ite(u, b.ite(v, FALSE, TRUE), TRUE),
    "nor": lambda b, u, v: b.ite(u, FALSE, b.ite(v, FALSE, TRUE)),
    "xnor": lambda b, u, v: b.ite(u, v, b.ite(v, FALSE, TRUE)),
    "iff": lambda b, u, v: b.ite(u, v, b.ite(v, FALSE, TRUE)),
    "implies": lambda b, u, v: b.ite(u, v, TRUE),
    "diff": lambda b, u, v: b.ite(u, b.ite(v, FALSE, TRUE), FALSE),
}


def random_pool(
    bdd: BDD, rng: random.Random, size: int, names: tuple[str, ...] = VARS
) -> list[int]:
    """A pool of random formula DAGs built with the kernels under test."""
    pool = [FALSE, TRUE]
    pool += [bdd.var(v) for v in names]
    pool += [bdd.nvar(v) for v in names]
    ops = ("and", "or", "xor", "implies", "iff", "diff")
    while len(pool) < size:
        op = rng.choice(ops)
        u = rng.choice(pool)
        v = rng.choice(pool)
        node = bdd.apply(op, u, v)
        if rng.random() < 0.25:
            node = bdd.negate(node)
        pool.append(node)
    return pool


@pytest.fixture(scope="module")
def setup():
    bdd = BDD()
    bdd.declare(*VARS)
    rng = random.Random(20020815)
    pool = random_pool(bdd, rng, 160)
    pairs = [
        (rng.choice(pool), rng.choice(pool)) for _ in range(1100)
    ]
    return bdd, pool, pairs


class TestKernelsMatchIte:
    """Each specialized kernel agrees with its ite reference, node for node."""

    @pytest.mark.parametrize("op", sorted(REFERENCE))
    def test_binary_op_bit_identical_on_1100_pairs(self, setup, op):
        bdd, _, pairs = setup
        ref = REFERENCE[op]
        for u, v in pairs:
            assert bdd.apply(op, u, v) == ref(bdd, u, v)

    def test_negate_bit_identical(self, setup):
        bdd, pool, _ = setup
        for u in pool:
            assert bdd.negate(u) == bdd.ite(u, FALSE, TRUE)

    def test_negate_is_involution(self, setup):
        bdd, pool, _ = setup
        for u in pool:
            assert bdd.negate(bdd.negate(u)) == u

    def test_exhaustive_on_small_pool(self):
        """All ordered operand pairs over a small pool, caches disabled.

        Disabling the computed tables forces every recursive branch to
        run, so cache-key canonicalization bugs cannot mask themselves.
        """
        bdd = BDD()
        bdd.declare("x", "y", "z")
        rng = random.Random(7)
        pool = random_pool(bdd, rng, 24, names=("x", "y", "z"))
        bdd.cache_enabled = False
        try:
            for u, v in itertools.product(pool, pool):
                for op, ref in REFERENCE.items():
                    assert bdd.apply(op, u, v) == ref(bdd, u, v)
        finally:
            bdd.cache_enabled = True


class TestKernelAlgebra:
    """Structural identities the fast paths must preserve."""

    def test_de_morgan(self, setup):
        bdd, _, pairs = setup
        neg = bdd.negate
        for u, v in pairs[:300]:
            assert neg(bdd.apply("and", u, v)) == bdd.apply(
                "or", neg(u), neg(v)
            )

    def test_xor_via_negation(self, setup):
        bdd, _, pairs = setup
        for u, v in pairs[:300]:
            assert bdd.apply("xor", u, v) == bdd.negate(
                bdd.apply("iff", u, v)
            )

    def test_conj_balanced_fold_matches_left_fold(self, setup):
        bdd, pool, _ = setup
        rng = random.Random(99)
        for _ in range(50):
            items = [rng.choice(pool) for _ in range(rng.randrange(9))]
            acc = TRUE
            for it in items:
                acc = bdd.apply("and", acc, it)
            assert bdd.conj(items) == acc

    def test_disj_balanced_fold_matches_left_fold(self, setup):
        bdd, pool, _ = setup
        rng = random.Random(100)
        for _ in range(50):
            items = [rng.choice(pool) for _ in range(rng.randrange(9))]
            acc = FALSE
            for it in items:
                acc = bdd.apply("or", acc, it)
            assert bdd.disj(items) == acc
