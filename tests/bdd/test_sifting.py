"""In-place sifting, variable groups, and zero-copy snapshots.

Complements ``test_reorder.py`` (which exercises the rebuild-based
reference oracle in :mod:`repro.bdd.reorder`): here the manager reorders
*itself*, so every previously returned node id must keep denoting the
same boolean function — the invariant that lets transition relations,
checker memo tables, and conjunctive partitions survive a reorder.
"""

import pytest
from hypothesis import given, settings

from repro.bdd.manager import (
    BDD,
    REORDER_MODES,
    default_reorder,
    set_default_reorder,
)
from repro.bdd.ops import evaluate
from repro.bdd.reorder import rebuild_with_order, shared_size
from repro.errors import BddError
from tests.bdd.test_properties import (
    VARS,
    all_envs,
    boolean_trees,
    build,
    eval_tree,
)

INTERLEAVED = ["a0", "b0", "a1", "b1", "a2", "b2"]


def _comparator():
    """``⋁ (a_i ∧ b_i)`` declared under the worst (blocked) order."""
    b = BDD()
    b.declare("a0", "a1", "a2", "b0", "b1", "b2")
    f = b.disj(
        b.apply("and", b.var(f"a{i}"), b.var(f"b{i}")) for i in range(3)
    )
    return b, f


def _envs(names):
    for bits in range(1 << len(names)):
        yield {n: bool(bits >> i & 1) for i, n in enumerate(names)}


class TestInPlaceSift:
    def test_ids_keep_their_function(self):
        bdd, f = _comparator()
        names = list(bdd.var_names)
        truth = [evaluate(bdd, f, env) for env in _envs(names)]
        bdd.add_reorder_root(f)
        summary = bdd.reorder("sift")
        assert summary["nodes_after"] <= summary["nodes_before"]
        assert [evaluate(bdd, f, env) for env in _envs(names)] == truth

    def test_matches_the_rebuild_oracle_on_the_comparator(self):
        bdd, f = _comparator()
        bdd.add_reorder_root(f)
        before = shared_size(bdd, [f])
        bdd.reorder("sift")
        after = shared_size(bdd, [f])
        assert after < before
        dst, (g,) = rebuild_with_order([f], bdd, INTERLEAVED)
        assert after <= shared_size(dst, [g])

    def test_current_order_tracks_swaps(self):
        bdd, f = _comparator()
        declared = ("a0", "a1", "a2", "b0", "b1", "b2")
        assert bdd.current_order() == declared
        bdd.add_reorder_root(f)
        bdd.reorder("sift")
        assert sorted(bdd.current_order()) == sorted(declared)
        assert bdd.current_order() != declared

    def test_reorder_without_roots_keeps_the_order(self):
        bdd, _ = _comparator()
        order = bdd.current_order()
        summary = bdd.reorder("sift")
        assert bdd.current_order() == order
        assert summary["swaps"] == 0

    def test_stats_record_the_run(self):
        bdd, f = _comparator()
        bdd.add_reorder_root(f)
        bdd.reorder("sift")
        assert bdd.stats.reorders == 1
        assert bdd.stats.swaps > 0
        assert (
            bdd.stats.reorder_nodes_after <= bdd.stats.reorder_nodes_before
        )

    def test_unknown_method_rejected(self):
        bdd, _ = _comparator()
        with pytest.raises(BddError):
            bdd.reorder("genetic")

    def test_operations_still_correct_after_reorder(self):
        # memo caches are invalidated, not stale: post-reorder results
        # must match a fresh manager's
        bdd, f = _comparator()
        bdd.add_reorder_root(f)
        bdd.reorder("sift")
        g = bdd.exists(["a0", "b0"], f)
        fresh, f2 = _comparator()
        g2 = fresh.exists(["a0", "b0"], f2)
        for env in _envs(list(bdd.var_names)):
            assert evaluate(bdd, g, env) == evaluate(fresh, g2, env)


class TestGroups:
    def _paired(self):
        b = BDD()
        for i in range(3):
            b.add_var(f"a{i}")
            b.add_var(f"a{i}'")
            b.group(f"a{i}", f"a{i}'")
        # pair a_i with a_{i+1}' so sifting has an incentive to move
        # whole blocks around
        f = b.disj(
            b.apply("and", b.var(f"a{i}"), b.var(f"a{(i + 1) % 3}'"))
            for i in range(3)
        )
        return b, f

    def test_groups_stay_adjacent_after_sift(self):
        bdd, f = self._paired()
        bdd.add_reorder_root(f)
        bdd.reorder("sift")
        order = list(bdd.current_order())
        for i in range(3):
            k = order.index(f"a{i}")
            assert order[k + 1] == f"a{i}'"

    def test_group_validation(self):
        b = BDD()
        b.declare("x", "y", "z")
        with pytest.raises(BddError):
            b.group("x", "nope")
        b.group("x", "y")
        with pytest.raises(BddError):
            b.group("y", "z")  # y already grouped
        BDD().group()  # fewer than two names: documented no-op


class TestAutoReorder:
    def test_auto_trigger_fires(self):
        bdd = BDD(reorder="auto", auto_min_nodes=8)
        bdd.declare("a0", "a1", "a2", "b0", "b1", "b2")
        f = bdd.disj(
            bdd.apply("and", bdd.var(f"a{i}"), bdd.var(f"b{i}"))
            for i in range(3)
        )
        bdd.add_reorder_root(f)
        # keep growing the table through public entry points until the
        # doubling trigger fires
        g = f
        for i in range(3):
            g = bdd.apply("xor", g, bdd.var(f"b{i}"))
        assert bdd.stats.reorders >= 1

    def test_mode_validation(self):
        with pytest.raises(BddError):
            BDD(reorder="bogus")
        with pytest.raises(BddError):
            set_default_reorder("bogus")
        assert set(REORDER_MODES) == {"none", "sift", "auto"}

    def test_default_mode_is_inherited_by_new_managers(self):
        previous = set_default_reorder("sift")
        try:
            assert default_reorder() == "sift"
            assert BDD().reorder_mode == "sift"
            # an explicit argument beats the module default
            assert BDD(reorder="none").reorder_mode == "none"
        finally:
            set_default_reorder(previous)

    def test_sift_mode_has_no_implicit_trigger(self):
        bdd = BDD(reorder="sift", auto_min_nodes=4)
        bdd.declare("a0", "a1", "a2", "b0", "b1", "b2")
        f = bdd.disj(
            bdd.apply("and", bdd.var(f"a{i}"), bdd.var(f"b{i}"))
            for i in range(3)
        )
        assert bdd.stats.reorders == 0
        assert f  # the build itself worked


class TestSnapshot:
    def test_roundtrip_is_byte_identical(self):
        bdd, f = _comparator()
        bdd.add_reorder_root(f)
        data = bdd.snapshot()
        clone = BDD.from_snapshot(data)
        assert clone.snapshot() == data
        names = list(bdd.var_names)
        for env in _envs(names):
            assert evaluate(clone, f, env) == evaluate(bdd, f, env)

    def test_restore_preserves_roots_groups_and_mode(self):
        bdd = BDD(reorder="sift")
        bdd.add_var("x")
        bdd.add_var("x'")
        bdd.group("x", "x'")
        f = bdd.apply("and", bdd.var("x"), bdd.var("x'"))
        bdd.add_reorder_root(f)
        clone = BDD.from_snapshot(bdd.snapshot())
        assert clone.reorder_mode == "sift"
        assert clone.reorder_roots == (f,)
        assert clone.current_order() == bdd.current_order()

    def test_snapshot_taken_before_sift_restores_declared_order(self):
        bdd, f = _comparator()
        bdd.add_reorder_root(f)
        data = bdd.snapshot()
        declared = bdd.current_order()
        bdd.reorder("sift")
        assert bdd.current_order() != declared
        clone = BDD.from_snapshot(data)
        assert clone.current_order() == declared
        for env in _envs(list(declared)):
            assert evaluate(clone, f, env) == evaluate(bdd, f, env)

    def test_clone_is_independent(self):
        bdd, f = _comparator()
        clone = BDD.from_snapshot(bdd.snapshot())
        g = clone.apply("or", f, clone.var("a0"))
        assert clone.num_live_nodes() >= bdd.num_live_nodes()
        assert g != f or clone.num_live_nodes() == bdd.num_live_nodes()

    def test_garbage_rejected(self):
        with pytest.raises(BddError):
            BDD.from_snapshot(b"not a snapshot")
        bdd, _ = _comparator()
        with pytest.raises(BddError):
            BDD.from_snapshot(bdd.snapshot()[:20])


# ----------------------------------------------------------------------
# property tests: sifting is semantically invisible
# ----------------------------------------------------------------------
@given(boolean_trees())
@settings(max_examples=50, deadline=None)
def test_sift_preserves_evaluation_and_sat_count(tree):
    bdd = BDD()
    bdd.declare(*VARS)
    node = build(bdd, tree)
    count = bdd.sat_count(node)
    bdd.add_reorder_root(node)
    bdd.reorder("sift")
    assert bdd.sat_count(node) == count
    for env in all_envs():
        assert evaluate(bdd, node, env) == eval_tree(tree, env)


@given(boolean_trees())
@settings(max_examples=25, deadline=None)
def test_snapshot_roundtrip_on_random_functions(tree):
    bdd = BDD()
    bdd.declare(*VARS)
    node = build(bdd, tree)
    bdd.add_reorder_root(node)
    data = bdd.snapshot()
    clone = BDD.from_snapshot(data)
    assert clone.snapshot() == data
    for env in all_envs():
        assert evaluate(clone, node, env) == eval_tree(tree, env)


def test_sift_halves_the_worst_order_on_the_afs1_relation():
    """The acceptance workload: blocked AFS-1 server relation."""
    from repro.casestudies.afs1 import AFS1_SERVER_FIGURE
    from repro.smv.compile_symbolic import to_symbolic
    from repro.smv.elaborate import SmvModel
    from repro.smv.parser import parse_module
    from repro.systems.symbolic import primed

    sym = to_symbolic(SmvModel(parse_module(AFS1_SERVER_FIGURE)))
    blocked = list(sym.atoms) + [primed(a) for a in sym.atoms]
    mgr, (t,) = rebuild_with_order([sym.transition], sym.bdd, blocked)
    before = shared_size(mgr, [t])
    mgr.add_reorder_root(t)
    mgr.reorder("sift")
    after = shared_size(mgr, [t])
    assert after * 2 <= before


def test_rebuild_error_names_the_problem_variables():
    bdd, f = _comparator()
    with pytest.raises(ValueError) as err:
        rebuild_with_order([f], bdd, ["a0", "a1", "zz"])
    message = str(err.value)
    assert "zz" in message  # extra
    assert "b0" in message  # missing
