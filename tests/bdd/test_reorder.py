"""Tests for variable-ordering search (rebuild + sifting)."""

import pytest

from repro.bdd.manager import BDD
from repro.bdd.ops import evaluate
from repro.bdd.reorder import rebuild_with_order, shared_size, sift


def _comparator():
    """A function whose BDD size is very order-sensitive.

    ``(a0 ∧ b0) ∨ (a1 ∧ b1) ∨ (a2 ∧ b2)`` is linear when a_i/b_i are
    interleaved and exponential when blocked — the classic example.
    """
    b = BDD()
    # deliberately bad (blocked) order
    b.declare("a0", "a1", "a2", "b0", "b1", "b2")
    f = b.disj(
        b.apply("and", b.var(f"a{i}"), b.var(f"b{i}")) for i in range(3)
    )
    return b, f


def test_rebuild_preserves_function():
    src, f = _comparator()
    order = ["a0", "b0", "a1", "b1", "a2", "b2"]
    dst, (g,) = rebuild_with_order([f], src, order)
    for bits in range(64):
        env = {
            name: bool(bits >> i & 1)
            for i, name in enumerate(["a0", "a1", "a2", "b0", "b1", "b2"])
        }
        assert evaluate(dst, g, env) == evaluate(src, f, env)


def test_interleaved_order_is_smaller():
    src, f = _comparator()
    blocked = shared_size(src, [f])
    dst, (g,) = rebuild_with_order(
        [f], src, ["a0", "b0", "a1", "b1", "a2", "b2"]
    )
    assert shared_size(dst, [g]) < blocked


def test_rebuild_rejects_non_permutation():
    src, f = _comparator()
    with pytest.raises(ValueError):
        rebuild_with_order([f], src, ["a0", "a1"])


def test_sift_never_worse():
    src, f = _comparator()
    before = shared_size(src, [f])
    mgr, roots, order = sift([f], src, max_rounds=1)
    assert shared_size(mgr, roots) <= before
    assert sorted(order) == sorted(src.var_names)


def test_sift_finds_interleaving_win():
    src, f = _comparator()
    mgr, roots, _ = sift([f], src, max_rounds=2)
    dst, (g,) = rebuild_with_order(
        [f], src, ["a0", "b0", "a1", "b1", "a2", "b2"]
    )
    assert shared_size(mgr, roots) <= shared_size(dst, [g])
