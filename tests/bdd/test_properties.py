"""Property-based validation of the BDD engine against truth tables."""

from itertools import product

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.bdd.manager import BDD, FALSE, TRUE
from repro.bdd.ops import evaluate

VARS = ("v0", "v1", "v2", "v3")


# A formula is represented as a nested tuple tree the test can evaluate
# both natively (python bools) and through the BDD engine.
@st.composite
def boolean_trees(draw, depth: int = 3):
    if depth == 0 or draw(st.booleans()):
        return draw(
            st.one_of(st.sampled_from(VARS), st.sampled_from([True, False]))
        )
    op = draw(st.sampled_from(["and", "or", "xor", "implies", "not"]))
    if op == "not":
        return ("not", draw(boolean_trees(depth=depth - 1)))
    return (
        op,
        draw(boolean_trees(depth=depth - 1)),
        draw(boolean_trees(depth=depth - 1)),
    )


def build(bdd: BDD, tree) -> int:
    if tree is True:
        return TRUE
    if tree is False:
        return FALSE
    if isinstance(tree, str):
        return bdd.var(tree)
    if tree[0] == "not":
        return bdd.negate(build(bdd, tree[1]))
    return bdd.apply(tree[0], build(bdd, tree[1]), build(bdd, tree[2]))


def eval_tree(tree, env) -> bool:
    if tree is True or tree is False:
        return tree
    if isinstance(tree, str):
        return env[tree]
    if tree[0] == "not":
        return not eval_tree(tree[1], env)
    a, b = eval_tree(tree[1], env), eval_tree(tree[2], env)
    return {
        "and": a and b,
        "or": a or b,
        "xor": a != b,
        "implies": (not a) or b,
    }[tree[0]]


def all_envs():
    for values in product((False, True), repeat=len(VARS)):
        yield dict(zip(VARS, values))


@given(boolean_trees())
@settings(max_examples=200, deadline=None)
def test_bdd_matches_truth_table(tree):
    bdd = BDD()
    bdd.declare(*VARS)
    node = build(bdd, tree)
    for env in all_envs():
        assert evaluate(bdd, node, env) == eval_tree(tree, env)


@given(boolean_trees())
@settings(max_examples=100, deadline=None)
def test_sat_count_matches_enumeration(tree):
    bdd = BDD()
    bdd.declare(*VARS)
    node = build(bdd, tree)
    expected = sum(1 for env in all_envs() if eval_tree(tree, env))
    assert bdd.sat_count(node) == float(expected)


@given(boolean_trees(), st.sampled_from(VARS))
@settings(max_examples=100, deadline=None)
def test_shannon_expansion(tree, var):
    """f = (v ∧ f|v=1) ∨ (¬v ∧ f|v=0)."""
    bdd = BDD()
    bdd.declare(*VARS)
    f = build(bdd, tree)
    hi = bdd.restrict(f, {var: True})
    lo = bdd.restrict(f, {var: False})
    rebuilt = bdd.ite(bdd.var(var), hi, lo)
    assert rebuilt == f


@given(boolean_trees(), st.sampled_from(VARS))
@settings(max_examples=100, deadline=None)
def test_quantifier_duality(tree, var):
    """∀v.f = ¬∃v.¬f."""
    bdd = BDD()
    bdd.declare(*VARS)
    f = build(bdd, tree)
    lhs = bdd.forall([var], f)
    rhs = bdd.negate(bdd.exists([var], bdd.negate(f)))
    assert lhs == rhs


@given(boolean_trees(), boolean_trees())
@settings(max_examples=100, deadline=None)
def test_and_exists_is_fused_relational_product(t1, t2):
    bdd = BDD()
    bdd.declare(*VARS)
    u, v = build(bdd, t1), build(bdd, t2)
    names = ["v1", "v3"]
    assert bdd.and_exists(u, v, names) == bdd.exists(
        names, bdd.apply("and", u, v)
    )


@given(boolean_trees())
@settings(max_examples=50, deadline=None)
def test_iter_sat_enumerates_exactly_the_models(tree):
    bdd = BDD()
    bdd.declare(*VARS)
    node = build(bdd, tree)
    got = {tuple(sorted(d.items())) for d in bdd.iter_sat(node, list(VARS))}
    want = {
        tuple(sorted(env.items()))
        for env in all_envs()
        if eval_tree(tree, env)
    }
    assert got == want
