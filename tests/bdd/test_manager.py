"""Unit tests for the BDD manager core."""

import pytest

from repro.bdd.manager import BDD, FALSE, TRUE
from repro.errors import BddError


@pytest.fixture
def bdd():
    b = BDD()
    b.declare("x", "y", "z")
    return b


class TestVariables:
    def test_levels_follow_declaration_order(self, bdd):
        assert bdd.level_of("x") == 0
        assert bdd.level_of("y") == 1
        assert bdd.level_of("z") == 2

    def test_name_of_inverts_level_of(self, bdd):
        for name in ("x", "y", "z"):
            assert bdd.name_of(bdd.level_of(name)) == name

    def test_duplicate_declaration_rejected(self, bdd):
        with pytest.raises(BddError):
            bdd.add_var("x")

    def test_unknown_variable_rejected(self, bdd):
        with pytest.raises(BddError):
            bdd.var("nope")

    def test_var_and_nvar_are_complements(self, bdd):
        assert bdd.negate(bdd.var("x")) == bdd.nvar("x")

    def test_num_vars(self, bdd):
        assert bdd.num_vars() == 3


class TestHashConsing:
    def test_same_function_same_node(self, bdd):
        f1 = bdd.apply("and", bdd.var("x"), bdd.var("y"))
        f2 = bdd.apply("and", bdd.var("x"), bdd.var("y"))
        assert f1 == f2

    def test_commuted_and_same_node(self, bdd):
        f1 = bdd.apply("and", bdd.var("x"), bdd.var("y"))
        f2 = bdd.apply("and", bdd.var("y"), bdd.var("x"))
        assert f1 == f2

    def test_reduction_collapses_equal_children(self, bdd):
        # x ∨ ¬x = TRUE must not allocate a node
        f = bdd.apply("or", bdd.var("x"), bdd.nvar("x"))
        assert f == TRUE


class TestIte:
    def test_terminal_cases(self, bdd):
        x = bdd.var("x")
        assert bdd.ite(TRUE, x, FALSE) == x
        assert bdd.ite(FALSE, FALSE, x) == x
        assert bdd.ite(x, TRUE, FALSE) == x

    def test_ite_equal_branches(self, bdd):
        x, y = bdd.var("x"), bdd.var("y")
        assert bdd.ite(x, y, y) == y

    def test_negation_involution(self, bdd):
        f = bdd.apply("xor", bdd.var("x"), bdd.var("y"))
        assert bdd.negate(bdd.negate(f)) == f


class TestApply:
    def test_truth_table_and(self, bdd):
        from repro.bdd.ops import evaluate

        f = bdd.apply("and", bdd.var("x"), bdd.var("y"))
        for x in (False, True):
            for y in (False, True):
                assert evaluate(bdd, f, {"x": x, "y": y}) == (x and y)

    @pytest.mark.parametrize(
        "op,table",
        [
            ("or", lambda x, y: x or y),
            ("xor", lambda x, y: x != y),
            ("iff", lambda x, y: x == y),
            ("implies", lambda x, y: (not x) or y),
            ("nand", lambda x, y: not (x and y)),
            ("nor", lambda x, y: not (x or y)),
            ("diff", lambda x, y: x and not y),
        ],
    )
    def test_truth_tables(self, bdd, op, table):
        from repro.bdd.ops import evaluate

        f = bdd.apply(op, bdd.var("x"), bdd.var("y"))
        for x in (False, True):
            for y in (False, True):
                assert evaluate(bdd, f, {"x": x, "y": y}) == table(x, y)

    def test_unknown_operator(self, bdd):
        with pytest.raises(BddError):
            bdd.apply("frobnicate", TRUE, TRUE)

    def test_conj_disj_empty(self, bdd):
        assert bdd.conj([]) == TRUE
        assert bdd.disj([]) == FALSE

    def test_cube(self, bdd):
        from repro.bdd.ops import evaluate

        c = bdd.cube({"x": True, "z": False})
        assert evaluate(bdd, c, {"x": True, "y": False, "z": False})
        assert evaluate(bdd, c, {"x": True, "y": True, "z": False})
        assert not evaluate(bdd, c, {"x": False, "y": True, "z": False})
        assert not evaluate(bdd, c, {"x": True, "y": True, "z": True})


class TestQuantification:
    def test_exists_removes_variable(self, bdd):
        f = bdd.apply("and", bdd.var("x"), bdd.var("y"))
        g = bdd.exists(["x"], f)
        assert g == bdd.var("y")

    def test_forall_conjunction(self, bdd):
        # ∀x. (x ∨ y) = y
        f = bdd.apply("or", bdd.var("x"), bdd.var("y"))
        assert bdd.forall(["x"], f) == bdd.var("y")

    def test_exists_of_tautology(self, bdd):
        assert bdd.exists(["x", "y"], TRUE) == TRUE

    def test_exists_no_vars_is_identity(self, bdd):
        f = bdd.var("x")
        assert bdd.exists([], f) == f

    def test_and_exists_matches_unfused(self, bdd):
        x, y, z = bdd.var("x"), bdd.var("y"), bdd.var("z")
        u = bdd.apply("or", x, y)
        v = bdd.apply("or", bdd.negate(y), z)
        fused = bdd.and_exists(u, v, ["y"])
        unfused = bdd.exists(["y"], bdd.apply("and", u, v))
        assert fused == unfused

    def test_and_exists_false_short_circuit(self, bdd):
        assert bdd.and_exists(FALSE, bdd.var("x"), ["x"]) == FALSE


class TestRenameRestrict:
    def test_rename_downward(self):
        b = BDD()
        b.declare("a", "a'", "b", "b'")
        f = b.apply("and", b.var("a"), b.var("b"))
        g = b.rename(f, {"a": "a'", "b": "b'"})
        assert g == b.apply("and", b.var("a'"), b.var("b'"))

    def test_rename_non_monotone_rejected(self):
        b = BDD()
        b.declare("a", "b")
        f = b.apply("and", b.var("a"), b.var("b"))
        with pytest.raises(BddError):
            b.rename(f, {"a": "b", "b": "a"})

    def test_restrict_cofactor(self, bdd):
        f = bdd.apply("and", bdd.var("x"), bdd.var("y"))
        assert bdd.restrict(f, {"x": True}) == bdd.var("y")
        assert bdd.restrict(f, {"x": False}) == FALSE

    def test_restrict_everything(self, bdd):
        f = bdd.apply("xor", bdd.var("x"), bdd.var("y"))
        assert bdd.restrict(f, {"x": True, "y": False}) == TRUE


class TestSatOperations:
    def test_sat_count(self, bdd):
        f = bdd.apply("or", bdd.var("x"), bdd.var("y"))
        # over 3 declared vars: (4-1) * 2 = 6 assignments
        assert bdd.sat_count(f) == 6.0
        assert bdd.sat_count(f, nvars=2) == 3.0

    def test_sat_count_constants(self, bdd):
        assert bdd.sat_count(TRUE) == 8.0
        assert bdd.sat_count(FALSE) == 0.0

    def test_sat_count_is_exact_int(self, bdd):
        count = bdd.sat_count(bdd.var("x"))
        assert isinstance(count, int)
        assert count == 4

    def test_sat_count_exact_beyond_float_precision(self):
        # a 70-variable cube: float arithmetic rounds 2^70 - 1 to 2^70
        b = BDD()
        n = 70
        cube = TRUE
        for i in range(n):
            b.add_var(f"x{i}")
        for i in range(n):
            cube = b.apply("and", cube, b.var(f"x{i}"))
        assert b.sat_count(cube) == 1
        complement = b.negate(cube)
        assert b.sat_count(complement) == 2**n - 1
        assert b.sat_count(complement) != float(2**n - 1)  # not representable

    def test_sat_count_beyond_float_overflow(self):
        # past ~1023 variables 2**n overflows float('inf'); ints don't
        b = BDD()
        n = 1100
        for i in range(n):
            b.add_var(f"x{i}")
        assert b.sat_count(TRUE) == 2**n
        assert b.sat_count(b.var("x0")) == 2 ** (n - 1)

    def test_pick_satisfies(self, bdd):
        from repro.bdd.ops import evaluate

        f = bdd.apply("and", bdd.var("x"), bdd.nvar("z"))
        assignment = bdd.pick(f)
        full = {"x": False, "y": False, "z": False, **assignment}
        assert evaluate(bdd, f, full)

    def test_pick_unsat(self, bdd):
        assert bdd.pick(FALSE) is None

    def test_iter_sat_total(self, bdd):
        f = bdd.apply("or", bdd.var("x"), bdd.var("y"))
        sols = list(bdd.iter_sat(f, ["x", "y"]))
        assert len(sols) == 3
        assert {"x": False, "y": False} not in sols

    def test_iter_sat_projects_unselected(self, bdd):
        f = bdd.var("z")
        sols = list(bdd.iter_sat(f, ["x"]))
        # both x-values allow a completion with z=1
        assert sols == [{"x": False}, {"x": True}]


class TestStructure:
    def test_support(self, bdd):
        f = bdd.apply("and", bdd.var("x"), bdd.var("z"))
        assert bdd.support(f) == {"x", "z"}
        assert bdd.support(TRUE) == set()

    def test_node_count(self, bdd):
        f = bdd.apply("and", bdd.var("x"), bdd.var("y"))
        assert bdd.node_count(f) == 2
        assert bdd.node_count(TRUE) == 0

    def test_nodes_allocated_monotone(self, bdd):
        before = bdd.nodes_allocated
        bdd.apply("xor", bdd.var("x"), bdd.var("z"))
        assert bdd.nodes_allocated > before

    def test_cache_disable_still_correct(self):
        b = BDD()
        b.declare("x", "y")
        b.cache_enabled = False
        f = b.apply("and", b.var("x"), b.var("y"))
        g = b.apply("and", b.var("x"), b.var("y"))
        assert f == g  # unique table still canonicalizes

    def test_clear_caches_keeps_results_valid(self, bdd):
        f = bdd.apply("and", bdd.var("x"), bdd.var("y"))
        bdd.clear_caches()
        g = bdd.apply("and", bdd.var("x"), bdd.var("y"))
        assert f == g
