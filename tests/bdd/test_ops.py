"""Tests for derived BDD operations (transfer, entailment, DNF)."""

import pytest

from repro.bdd.manager import BDD, FALSE, TRUE
from repro.bdd.ops import dnf, evaluate, implies, transfer
from repro.errors import BddError


def _xor_manager():
    b = BDD()
    b.declare("x", "y")
    return b, b.apply("xor", b.var("x"), b.var("y"))


class TestTransfer:
    def test_transfer_same_order(self):
        src, f = _xor_manager()
        dst = BDD()
        dst.declare("x", "y")
        g = transfer(f, src, dst)
        for x in (False, True):
            for y in (False, True):
                assert evaluate(dst, g, {"x": x, "y": y}) == (x != y)

    def test_transfer_reversed_order(self):
        src, f = _xor_manager()
        dst = BDD()
        dst.declare("y", "x")  # opposite order — ite canonicalizes
        g = transfer(f, src, dst)
        for x in (False, True):
            for y in (False, True):
                assert evaluate(dst, g, {"x": x, "y": y}) == (x != y)

    def test_transfer_terminals(self):
        src, _ = _xor_manager()
        dst = BDD()
        assert transfer(TRUE, src, dst) == TRUE
        assert transfer(FALSE, src, dst) == FALSE

    def test_transfer_missing_variable(self):
        src, f = _xor_manager()
        dst = BDD()
        dst.declare("x")
        with pytest.raises(BddError):
            transfer(f, src, dst)


class TestEntailment:
    def test_implies_holds(self):
        b = BDD()
        b.declare("x", "y")
        conj = b.apply("and", b.var("x"), b.var("y"))
        assert implies(b, conj, b.var("x"))

    def test_implies_fails(self):
        b = BDD()
        b.declare("x", "y")
        assert not implies(b, b.var("x"), b.var("y"))


class TestEvaluate:
    def test_missing_assignment(self):
        b, f = _xor_manager()
        with pytest.raises(BddError):
            evaluate(b, f, {"x": True})

    def test_constants_need_no_assignment(self):
        b = BDD()
        assert evaluate(b, TRUE, {}) is True
        assert evaluate(b, FALSE, {}) is False


class TestDnf:
    def test_cubes_cover_exactly(self):
        b, f = _xor_manager()
        cubes = dnf(b, f)
        # each cube, completed arbitrarily, satisfies f; and together they
        # cover every satisfying assignment
        sat = set()
        for cube in cubes:
            for x in (False, True):
                for y in (False, True):
                    full = {"x": x, "y": y}
                    if all(full[k] == v for k, v in cube.items()):
                        assert evaluate(b, f, full)
                        sat.add((x, y))
        assert sat == {(True, False), (False, True)}

    def test_dnf_of_false_is_empty(self):
        b, _ = _xor_manager()
        assert dnf(b, FALSE) == []

    def test_dnf_of_true_is_one_empty_cube(self):
        b, _ = _xor_manager()
        assert dnf(b, TRUE) == [{}]
