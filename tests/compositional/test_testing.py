"""Tests for the guarantee-attack validation tooling."""

from repro.compositional.properties import Guarantees, RestrictedProperty
from repro.compositional.rules import rule4_guarantee
from repro.compositional.testing import (
    attack_guarantee,
    random_environments,
    refutations,
)
from repro.logic.ctl import AF, AX, Implies, Not, Or, atom
from repro.systems.system import System

a, b = atom("a"), atom("b")


class TestRandomEnvironments:
    def test_deterministic_with_seed(self):
        e1 = random_environments(["a", "b"], 5, seed=42)
        e2 = random_environments(["a", "b"], 5, seed=42)
        assert e1 == e2

    def test_all_reflexive_over_requested_atoms(self):
        for env in random_environments(["a"], 10, seed=1):
            assert env.reflexive
            assert env.sigma == {"a"}


class TestAttack:
    RISER = System.from_pairs({"a"}, [((), ("a",))])

    def test_sound_rule4_certificate_survives(self):
        guarantee = rule4_guarantee(Not(a), a)
        outcomes = attack_guarantee(
            self.RISER, guarantee, random_environments(["a", "b"], 40, seed=7)
        )
        assert refutations(outcomes) == []

    def test_both_branches_exercised(self):
        # with q strictly inside p∨q the lhs is falsifiable, so the sweep
        # must contain environments on both sides of the conditional
        from repro.logic.ctl import And

        p = And(Not(a), Not(b))
        q = And(a, Not(b))
        helper = System.from_pairs({"a", "b"}, [((), ("a",))])
        guarantee = rule4_guarantee(p, q)
        outcomes = attack_guarantee(
            helper, guarantee, random_environments(["a", "b"], 60, seed=3)
        )
        assert refutations(outcomes) == []
        assert any(o.lhs_holds for o in outcomes)
        assert any(not o.lhs_holds for o in outcomes)

    def test_bogus_guarantee_refuted(self):
        """An unconditional made-up claim is caught immediately."""
        bogus = Guarantees(
            RestrictedProperty(Implies(a, AX(Or(a, b)))),  # weak lhs
            RestrictedProperty(Implies(Not(a), AF(b))),    # unearned rhs
        )
        outcomes = attack_guarantee(
            self.RISER, bogus, random_environments(["a", "b"], 40, seed=11)
        )
        assert refutations(outcomes)
