"""Tests for the AF-reflexivity axiom and stable-goal conjunction rule."""

import pytest

from repro.compositional.proof import CompositionProof
from repro.errors import ProofError
from repro.logic.ctl import AF, AX, And, Implies, Not, TRUE, atom
from repro.logic.restriction import Restriction
from repro.systems.system import System

a, b = atom("a"), atom("b")


def two_risers():
    """Two independent one-way bits; both eventually rise under fairness."""
    riser_a = System.from_pairs({"a"}, [((), ("a",))])
    riser_b = System.from_pairs({"b"}, [((), ("b",))])
    return CompositionProof({"ra": riser_a, "rb": riser_b})


class TestAfReflexive:
    def test_axiom_shape(self):
        pf = two_risers()
        proven = pf.af_reflexive(a)
        assert proven.formula == Implies(a, AF(a))

    def test_carries_restriction(self):
        pf = two_risers()
        r = Restriction(fairness=(b,))
        assert pf.af_reflexive(a, r).restriction == r

    def test_semantically_valid(self):
        pf = two_risers()
        pf.af_reflexive(And(a, b))
        for proven, check in pf.verify_monolithic():
            assert bool(check)


class TestAfConjoinStable:
    def _setup(self, pf):
        links = [
            pf.project(pf.discharge(pf.guarantee_rule4("ra", Not(a), a)), 0),
            pf.project(pf.discharge(pf.guarantee_rule4("rb", Not(b), b)), 0),
        ]
        aligned = pf.align_fairness(links)
        r = aligned[0].restriction
        afs = []
        for goal, link in zip((a, b), aligned):
            af_link = pf.au_to_af(link)
            now = pf.af_reflexive(goal, r)
            afs.append(pf.implication_cases(TRUE, [af_link, now]))
        stables = [
            pf.universal(Implies(a, AX(a))),
            pf.universal(Implies(b, AX(b))),
        ]
        return afs, stables

    def test_conjunction_reached(self):
        pf = two_risers()
        afs, stables = self._setup(pf)
        result = pf.af_conjoin_stable(afs, stables)
        assert result.formula == Implies(TRUE, AF(And(a, b)))
        failures = [p for p, c in pf.verify_monolithic() if not c]
        assert failures == []

    def test_rejects_mismatched_stability(self):
        pf = two_risers()
        afs, stables = self._setup(pf)
        with pytest.raises(ProofError):
            pf.af_conjoin_stable(afs, list(reversed(stables)))

    def test_rejects_differing_antecedents(self):
        pf = two_risers()
        afs, stables = self._setup(pf)
        r = afs[0].restriction
        odd = pf.af_reflexive(b, r)  # antecedent b, not TRUE
        with pytest.raises(ProofError):
            pf.af_conjoin_stable([afs[0], odd], stables)

    def test_rejects_empty(self):
        pf = two_risers()
        with pytest.raises(ProofError):
            pf.af_conjoin_stable([], [])

    def test_rejects_non_af_premise(self):
        pf = two_risers()
        afs, stables = self._setup(pf)
        u = pf.universal(Implies(a, AX(a)))
        with pytest.raises(ProofError):
            pf.af_conjoin_stable([u, afs[1]], stables)

    def test_unstable_goal_rejected_by_side_condition(self):
        """A goal that can fall must fail the stability obligation."""
        toggle = System.from_pairs({"a"}, [((), ("a",)), (("a",), ())])
        pf = CompositionProof({"toggle": toggle})
        with pytest.raises(ProofError):
            pf.universal(Implies(a, AX(a)))  # not stable in a toggle
