"""Adversarial validation of guarantee certificates.

The defining property of ``f guarantees_r g`` is universal quantification
over environments.  These tests pit certificates established on one
component against *randomized hostile environments* sharing its atoms:
whenever the environment leaves the left side intact, the right side must
hold in the composite; environments that break the left side demonstrate
the certificate's conditionality (and are counted to ensure the suite
actually exercises both branches).
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from tests.conftest import systems
from repro.checking.explicit import ExplicitChecker
from repro.compositional.rules import rule4_guarantee, rule4_premise
from repro.logic.ctl import And, Not, atom
from repro.systems.compose import compose
from repro.systems.system import System

a, b = atom("a"), atom("b")


def _holds(system, prop, restriction=None):
    ck = ExplicitChecker(system)
    return bool(ck.holds(prop, restriction) if restriction else ck.holds(prop))


class TestRule4AgainstHostileEnvironments:
    """Certificate: the a-riser guarantees progress ¬a ↝ a."""

    HELPER = System.from_pairs({"a"}, [((), ("a",))])
    P, Q = Not(a), a

    @given(systems(atoms=("a", "b"), max_atoms=2))
    @settings(max_examples=100, deadline=None)
    def test_guarantee_never_violated(self, environment):
        guarantee = rule4_guarantee(self.P, self.Q)
        composite = compose(self.HELPER, environment)
        if _holds(composite, guarantee.lhs.formula, guarantee.lhs.restriction):
            assert _holds(
                composite, guarantee.rhs.formula, guarantee.rhs.restriction
            )

    def test_an_environment_that_breaks_the_left_side_exists(self):
        """Sanity: the conditional branch above is non-vacuous both ways."""
        guarantee = rule4_guarantee(self.P, self.Q)
        # friendly: pure observer
        friendly = System.from_pairs({"b"}, [((), ("b",))])
        composite = compose(self.HELPER, friendly)
        assert _holds(composite, guarantee.lhs.formula)
        assert _holds(
            composite, guarantee.rhs.formula, guarantee.rhs.restriction
        )
        # hostile: can pull `a` back down, violating ¬a ⇒ AX(¬a ∨ a)?
        # (that left side is a tautology, so attack the progress instead
        # with an environment that resets a — the rhs then genuinely fails)
        hostile = System.from_pairs({"a"}, [(("a",), ())])
        broken = compose(self.HELPER, hostile)
        # lhs still holds (it is a tautology for q = a) …
        assert _holds(broken, guarantee.lhs.formula)
        # … and the rule correctly still guarantees progress: fairness
        # forbids the a/¬a oscillation from postponing a forever
        assert _holds(broken, guarantee.rhs.formula, guarantee.rhs.restriction)

    def test_conditional_guarantee_with_breakable_lhs(self):
        """With q strictly inside p∨q the left side is falsifiable."""
        p = And(Not(a), Not(b))
        q = And(a, Not(b))
        helper = System.from_pairs(
            {"a", "b"}, [((), ("a",))]
        )
        assert _holds(helper, rule4_premise(p, q))
        guarantee = rule4_guarantee(p, q)
        # hostile environment: raises b from the p-region, leaving p∨q
        hostile = System.from_pairs({"b"}, [((), ("b",))])
        composite = compose(helper, hostile)
        assert not _holds(composite, guarantee.lhs.formula)
        # and indeed the progress conclusion fails in that composite:
        # b can rise before a, escaping p∪q — so A(p U q) is violated
        assert not _holds(
            composite, guarantee.rhs.formula, guarantee.rhs.restriction
        )

    @given(systems(atoms=("a", "b"), max_atoms=2), st.integers(0, 3))
    @settings(max_examples=60, deadline=None)
    def test_guarantee_inherited_through_third_parties(self, env, extra_idx):
        """Guarantees are existential: adding more components keeps them."""
        guarantee = rule4_guarantee(self.P, self.Q)
        third = System.from_pairs({"c"}, [((), ("c",))] if extra_idx % 2 else [])
        composite = compose(compose(self.HELPER, env), third)
        if _holds(composite, guarantee.lhs.formula, guarantee.lhs.restriction):
            assert _holds(
                composite, guarantee.rhs.formula, guarantee.rhs.restriction
            )
