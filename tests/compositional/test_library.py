"""Tests for component spec sheets (publish / serialize / adopt)."""

import pytest

from repro.compositional.library import (
    AdoptedComponent,
    GuaranteeDecl,
    SpecSheet,
    adopt,
    publish,
)
from repro.compositional.proof import CompositionProof
from repro.errors import ProofError

RISER = """
MODULE main
VAR x : boolean;
ASSIGN next(x) := case !x : {0, 1}; 1 : x; esac;
"""

ENV = """
MODULE main
VAR y : boolean;
ASSIGN next(y) := !y;
"""


def riser_sheet() -> SpecSheet:
    return SpecSheet(
        name="riser",
        source=RISER,
        universal=["x -> AX x"],
        existential=["!x -> EX x"],
        guarantees=[GuaranteeDecl(p="!x", q="x")],
    )


class TestPublish:
    def test_valid_sheet_publishes(self):
        assert publish(riser_sheet()) is not None

    def test_false_universal_rejected(self):
        sheet = riser_sheet()
        sheet.universal = ["!x -> AX !x"]  # the riser may rise
        with pytest.raises(ProofError):
            publish(sheet)

    def test_false_guarantee_premise_rejected(self):
        sheet = riser_sheet()
        sheet.guarantees = [GuaranteeDecl(p="x", q="!x")]
        with pytest.raises(ProofError):
            publish(sheet)

    def test_rule5_guarantee_published(self):
        sheet = riser_sheet()
        sheet.guarantees = [
            GuaranteeDecl(p="!x", q="x", disjuncts=("!x",), helpful=0)
        ]
        assert publish(sheet) is not None


class TestSerialization:
    def test_round_trip(self):
        sheet = riser_sheet()
        clone = SpecSheet.from_json(sheet.to_json())
        assert clone == sheet

    def test_malformed_formula_rejected_on_load(self):
        import json

        data = json.loads(riser_sheet().to_json())
        data["universal"] = ["x -> -> x"]
        from repro.errors import ParseError

        with pytest.raises(ParseError):
            SpecSheet.from_json(json.dumps(data))


class TestAdopt:
    def _proof(self, sheet):
        from repro.casestudies.afs_common import ProtocolComponent

        env = ProtocolComponent("env", ENV)
        return CompositionProof(
            {
                "riser": sheet.component().system(),
                "env": env.system(),
            }
        )

    def test_adoption_reestablishes_everything(self):
        sheet = publish(riser_sheet())
        pf = self._proof(sheet)
        adopted = adopt(pf, sheet)
        assert isinstance(adopted, AdoptedComponent)
        assert len(adopted.universal) == 1
        assert len(adopted.existential) == 1
        assert len(adopted.guarantees) == 1

    def test_adopted_guarantee_is_usable(self):
        sheet = publish(riser_sheet())
        pf = self._proof(sheet)
        adopted = adopt(pf, sheet)
        rhs = pf.discharge(adopted.guarantees[0])
        live = pf.chain([pf.project(rhs, 0)])
        failures = [p for p, c in pf.verify_monolithic() if not c]
        assert failures == []

    def test_unregistered_component_rejected(self):
        sheet = publish(riser_sheet())
        env_only = CompositionProof(
            {"env": sheet.component().system()}  # wrong name
        )
        with pytest.raises(ProofError):
            adopt(env_only, sheet)

    def test_lying_sheet_caught_at_adoption(self):
        """Even an (unsoundly) published sheet is re-checked by the composer."""
        sheet = riser_sheet()
        sheet.universal = ["!x -> AX !x"]  # skip publish(): lie directly
        pf = self._proof(sheet)
        with pytest.raises(ProofError):
            adopt(pf, sheet)
