"""Tests for tautology checking and fairness-polarity analysis."""

import pytest
from hypothesis import given, settings

from tests.conftest import prop_formulas, systems
from repro.compositional.prop_logic import (
    entails,
    equivalent,
    is_fairness_monotone,
    is_tautology,
)
from repro.errors import LogicError
from repro.logic.ctl import (
    AF,
    AG,
    AU,
    AX,
    Const,
    EF,
    EG,
    EU,
    EX,
    And,
    Iff,
    Implies,
    Not,
    Or,
    atom,
    substitute,
)
from repro.logic.parser import parse_ctl

p, q = atom("p"), atom("q")


class TestTautology:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("p | !p", True),
            ("p -> p", True),
            ("(p -> q) <-> (!q -> !p)", True),
            ("p & !p", False),
            ("p -> q", False),
            ("true", True),
            ("false", False),
        ],
    )
    def test_cases(self, text, expected):
        assert is_tautology(parse_ctl(text)) == expected

    def test_rejects_temporal(self):
        with pytest.raises(LogicError):
            is_tautology(AX(p))

    def test_entails(self):
        assert entails(And(p, q), p)
        assert not entails(p, And(p, q))

    def test_equivalent(self):
        assert equivalent(Implies(p, q), Or(Not(p), q))
        assert not equivalent(p, q)

    @given(prop_formulas())
    @settings(max_examples=60, deadline=None)
    def test_self_equivalence(self, f):
        assert equivalent(f, f)
        assert entails(f, f)


class TestFairnessMonotone:
    @pytest.mark.parametrize(
        "f",
        [
            Implies(p, AX(q)),               # Lemma 11's shape
            AG(p),
            Implies(p, AU(p, q)),
            Implies(p, AF(q)),
            Not(EX(p)),                      # = AX ¬p
            Not(EU(p, q)),
            Implies(EX(p), AX(q)),           # E negative, A positive
            And(p, Not(q)),                  # propositional
        ],
    )
    def test_monotone_shapes(self, f):
        assert is_fairness_monotone(f)

    @pytest.mark.parametrize(
        "f",
        [
            EX(p),
            Implies(p, EX(q)),
            Implies(p, EU(p, q)),
            Not(AX(p)),                      # = EX ¬p
            Implies(AX(p), q),               # A in negative position
            EG(p),
            EF(p),
        ],
    )
    def test_non_monotone_shapes(self, f):
        assert not is_fairness_monotone(f)

    def test_iff_propositional_only(self):
        assert is_fairness_monotone(Iff(p, q))
        assert not is_fairness_monotone(Iff(AX(p), q))

    @given(systems(max_atoms=2), prop_formulas(atoms=("a", "b"), max_depth=2))
    @settings(max_examples=40, deadline=None)
    def test_monotone_formulas_survive_fairness(self, system, fair):
        """Semantic check: AG/AX truths persist under added fairness."""
        from repro.checking.explicit import ExplicitChecker
        from repro.logic.restriction import Restriction

        fair = substitute(
            fair, {a: Const(True) for a in fair.atoms() - system.sigma}
        )
        target = AG(atom(sorted(system.sigma)[0]))
        assert is_fairness_monotone(target)
        ck = ExplicitChecker(system)
        if ck.holds(target):
            assert ck.holds(target, Restriction(fairness=(fair,)))
