"""Tests for the ProgressChain high-level API."""

import pytest

from repro.compositional.progress import ProgressChain
from repro.compositional.proof import CompositionProof
from repro.errors import ProofError
from repro.logic.ctl import AF, And, Not, atom, land
from repro.systems.system import System

a, b = atom("a"), atom("b")


def two_stage_proof():
    """stage1 raises a; stage2 raises b once a holds."""
    stage1 = System.from_pairs({"a"}, [((), ("a",))])
    stage2 = System.from_pairs(
        {"a", "b"}, [(("a",), ("a", "b"))]
    )
    return CompositionProof({"stage1": stage1, "stage2": stage2})


class TestProgressChain:
    def test_two_step_chain(self):
        pf = two_stage_proof()
        chain = ProgressChain(pf)
        result = (
            chain.step("stage1", And(Not(a), Not(b)), And(a, Not(b)))
            .step("stage2", And(a, Not(b)), And(a, b))
            .conclude(b)
        )
        assert isinstance(result.formula.right, AF)
        assert result.formula.right.operand == b
        failures = [p for p, c in pf.verify_monolithic() if not c]
        assert failures == []

    def test_single_step(self):
        pf = two_stage_proof()
        result = ProgressChain(pf).step("stage1", Not(a), a).conclude()
        assert isinstance(result.formula.right, AF)

    def test_empty_chain_rejected(self):
        pf = two_stage_proof()
        with pytest.raises(ProofError):
            ProgressChain(pf).conclude()

    def test_broken_step_rejected(self):
        pf = two_stage_proof()
        with pytest.raises(ProofError):
            # stage1 cannot lower a
            ProgressChain(pf).step("stage1", a, Not(a))

    def test_rule5_step(self):
        from repro.casestudies.figures import (
            figure2_p_disjuncts,
            figure2_q,
            figure2_system,
        )

        pf = CompositionProof(
            {
                "cycle": figure2_system(),
                "env": System.from_pairs({"z"}, [((), ("z",))]),
            }
        )
        result = (
            ProgressChain(pf)
            .step_rule5("cycle", figure2_p_disjuncts(), figure2_q(), 0)
            .conclude()
        )
        assert isinstance(result.formula.right, AF)
        failures = [p for p, c in pf.verify_monolithic() if not c]
        assert failures == []

    def test_append_external_link(self):
        pf = two_stage_proof()
        chain1 = ProgressChain(pf).step("stage1", And(Not(a), Not(b)), And(a, Not(b)))
        external = pf.project(
            pf.discharge(pf.guarantee_rule4("stage2", And(a, Not(b)), And(a, b))),
            0,
        )
        result = chain1.append(external).conclude(b)
        assert result.formula.right.operand == b


class TestMutexViaChain:
    def test_token_ring_liveness_with_chain(self):
        """Re-derive the mutex entry liveness via the fluent API."""
        from repro.casestudies.mutex import TokenRing

        ring = TokenRing(2)
        pf = CompositionProof(ring.components())
        p = land(ring.tok(0), Not(ring.crit(0)), ring.valid())
        q = land(ring.tok(0), ring.crit(0), ring.valid())
        result = ProgressChain(pf).step("proc0", p, q).conclude(ring.crit(0))
        failures = [x for x, c in pf.verify_monolithic() if not c]
        assert failures == []
