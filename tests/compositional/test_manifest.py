"""Tests for conclusion manifests (save / load / re-check)."""

import json

from repro.compositional.manifest import (
    check_manifest,
    load_conclusions,
    save_conclusions,
)
from repro.compositional.proof import CompositionProof
from repro.logic.ctl import AX, Implies, Not, atom
from repro.systems.system import System

a = atom("a")


def finished_proof():
    riser = System.from_pairs({"a"}, [((), ("a",))])
    env = System.from_pairs({"b"}, [((), ("b",)), (("b",), ())])
    pf = CompositionProof({"riser": riser, "env": env})
    pf.universal(Implies(a, AX(a)))
    g = pf.guarantee_rule4("riser", Not(a), a)
    pf.chain([pf.project(pf.discharge(g), 0)])
    return pf


class TestRoundTrip:
    def test_save_is_valid_json(self):
        text = save_conclusions(finished_proof())
        data = json.loads(text)
        assert data["components"] == ["env", "riser"]
        assert len(data["conclusions"]) >= 3

    def test_load_reconstructs_pairs(self):
        pf = finished_proof()
        pairs = load_conclusions(save_conclusions(pf))
        assert len(pairs) == len(pf.conclusions)
        for (formula, restriction), proven in zip(pairs, pf.conclusions):
            assert formula == proven.formula
            assert restriction == proven.restriction

    def test_manifest_records_derivation_kinds(self):
        data = json.loads(save_conclusions(finished_proof()))
        kinds = {e["derived_by"] for e in data["conclusions"]}
        assert "rule2-universal" in kinds


class TestRecheck:
    def test_same_components_all_hold(self):
        pf = finished_proof()
        text = save_conclusions(pf)
        results = check_manifest(text, pf.components)
        assert all(holds for _, _, holds in results)

    def test_symbolic_backend_agrees(self):
        pf = finished_proof()
        text = save_conclusions(pf)
        explicit = check_manifest(text, pf.components)
        symbolic = check_manifest(text, pf.components, backend="symbolic")
        assert [h for *_, h in explicit] == [h for *_, h in symbolic]

    def test_regression_detected(self):
        """Swapping in a broken component makes the manifest fail."""
        pf = finished_proof()
        text = save_conclusions(pf)
        broken = dict(pf.components)
        broken["env"] = System.from_pairs({"a", "b"}, [(("a",), ())])
        results = check_manifest(text, broken)
        assert any(not holds for _, _, holds in results)
