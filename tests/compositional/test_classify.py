"""Tests for syntactic property classification (Rules 1–3)."""

import pytest

from repro.compositional.classify import (
    classify,
    conjuncts,
    is_ax_step,
    is_epath_step,
    is_ex_step,
    is_existential_form,
    is_universal_form,
)
from repro.compositional.properties import (
    Guarantees,
    PropertyClass,
    RestrictedProperty,
)
from repro.logic.ctl import (
    AF,
    AG,
    AX,
    EF,
    EU,
    EX,
    And,
    Implies,
    Not,
    Or,
    atom,
)
from repro.logic.restriction import Restriction

p, q, s = atom("p"), atom("q"), atom("s")


class TestShapes:
    def test_ax_step(self):
        assert is_ax_step(Implies(p, AX(q)))
        assert is_ax_step(Implies(And(p, q), AX(Or(p, q))))
        assert not is_ax_step(Implies(p, AX(AX(q))))
        assert not is_ax_step(Implies(EX(p), AX(q)))
        assert not is_ax_step(AX(q))

    def test_ex_step(self):
        assert is_ex_step(Implies(p, EX(q)))
        assert not is_ex_step(Implies(p, AX(q)))

    def test_epath_steps(self):
        assert is_epath_step(Implies(p, EX(q)))
        assert is_epath_step(Implies(p, EF(q)))
        assert is_epath_step(Implies(p, EU(q, s)))
        assert not is_epath_step(Implies(p, AF(q)))
        assert not is_epath_step(Implies(p, EF(EX(q))))

    def test_conjuncts_flatten(self):
        f = And(And(p, q), s)
        assert conjuncts(f) == [p, q, s]


class TestUniversalForm:
    def test_single_and_conjunction(self):
        assert is_universal_form(RestrictedProperty(Implies(p, AX(q))))
        f = And(Implies(p, AX(q)), Implies(q, AX(p)))
        assert is_universal_form(RestrictedProperty(f))

    def test_propositional_parts_allowed(self):
        f = And(Or(p, Not(p)), Implies(p, AX(q)))
        assert is_universal_form(RestrictedProperty(f))

    def test_requires_trivial_restriction(self):
        prop = RestrictedProperty(
            Implies(p, AX(q)), Restriction(fairness=(p,))
        )
        assert not is_universal_form(prop)

    def test_rejects_other_temporal(self):
        assert not is_universal_form(RestrictedProperty(AG(p)))
        assert not is_universal_form(RestrictedProperty(Implies(p, AF(q))))


class TestExistentialForm:
    def test_rule3_shapes(self):
        assert is_existential_form(RestrictedProperty(Implies(p, EX(q))))
        f = And(Implies(p, EX(q)), Implies(q, EF(p)))
        assert is_existential_form(RestrictedProperty(f))

    def test_rule1_propositional_with_init(self):
        prop = RestrictedProperty(Implies(p, q), Restriction(init=s))
        assert is_existential_form(prop)

    def test_rule1_rejects_temporal_init(self):
        prop = RestrictedProperty(p, Restriction(init=AX(s)))
        assert not is_existential_form(prop)

    def test_rule1_rejects_nontrivial_fairness(self):
        prop = RestrictedProperty(p, Restriction(init=s, fairness=(q,)))
        assert not is_existential_form(prop)

    def test_rejects_universal_temporal(self):
        assert not is_existential_form(RestrictedProperty(Implies(p, AX(q))))


class TestClassify:
    def test_guarantees_are_existential(self):
        g = Guarantees(
            RestrictedProperty(Implies(p, AX(q))),
            RestrictedProperty(Implies(p, AF(q))),
        )
        assert classify(g) == {PropertyClass.EXISTENTIAL}

    def test_propositional_is_both(self):
        got = classify(RestrictedProperty(Or(p, Not(p))))
        assert got == {PropertyClass.UNIVERSAL, PropertyClass.EXISTENTIAL}

    def test_unclassified(self):
        assert classify(RestrictedProperty(AG(p))) == {
            PropertyClass.UNCLASSIFIED
        }

    def test_rule2_only(self):
        assert classify(RestrictedProperty(Implies(p, AX(q)))) == {
            PropertyClass.UNIVERSAL
        }

    def test_rule3_only(self):
        assert classify(RestrictedProperty(Implies(p, EX(q)))) == {
            PropertyClass.EXISTENTIAL
        }
