"""Tests for the property dataclasses (RestrictedProperty, Guarantees)."""

from repro.compositional.properties import (
    Guarantees,
    PropertyClass,
    RestrictedProperty,
)
from repro.logic.ctl import AF, AX, Implies, atom
from repro.logic.restriction import Restriction

p, q = atom("p"), atom("q")


class TestRestrictedProperty:
    def test_default_restriction_is_trivial(self):
        prop = RestrictedProperty(p)
        assert prop.restriction.is_trivial

    def test_atoms_include_restriction(self):
        prop = RestrictedProperty(p, Restriction(init=q, fairness=(atom("r"),)))
        assert prop.atoms() == {"p", "q", "r"}

    def test_str_trivial(self):
        assert str(RestrictedProperty(p)) == "⊨ p"

    def test_str_with_restriction(self):
        text = str(RestrictedProperty(p, Restriction(init=q)))
        assert text.startswith("⊨_")
        assert "q" in text

    def test_hashable_and_equal(self):
        a = RestrictedProperty(Implies(p, AX(q)))
        b = RestrictedProperty(Implies(p, AX(q)))
        assert a == b
        assert len({a, b}) == 1


class TestGuarantees:
    def test_str_shows_both_sides(self):
        g = Guarantees(
            RestrictedProperty(Implies(p, AX(q))),
            RestrictedProperty(Implies(p, AF(q))),
        )
        text = str(g)
        assert "guarantees" in text
        assert "AX" in text and "AF" in text

    def test_structural_equality(self):
        make = lambda: Guarantees(
            RestrictedProperty(p), RestrictedProperty(q)
        )
        assert make() == make()


class TestPropertyClassEnum:
    def test_values(self):
        assert PropertyClass.UNIVERSAL.value == "universal"
        assert PropertyClass.EXISTENTIAL.value == "existential"
        assert PropertyClass.UNCLASSIFIED.value == "unclassified"
