"""Tests for incremental proof extension (CompositionProof.extend)."""

import pytest

from repro.compositional.proof import CompositionProof
from repro.errors import ProofError
from repro.logic.ctl import AX, Implies, Not, atom
from repro.systems.system import System

a, b, z = atom("a"), atom("b"), atom("z")


def base_proof():
    riser = System.from_pairs({"a"}, [((), ("a",))])
    env = System.from_pairs({"b"}, [((), ("b",)), (("b",), ())])
    pf = CompositionProof({"riser": riser, "env": env})
    pf.universal(Implies(a, AX(a)))  # a is absorbing — unless a saboteur joins
    g = pf.guarantee_rule4("riser", Not(a), a)
    rhs = pf.discharge(g)
    pf.chain([pf.project(rhs, 0)])
    return pf


class TestExtend:
    def test_conclusions_inherited_by_passive_component(self):
        pf = base_proof()
        observer = System.from_pairs({"z"}, [((), ("z",))])
        grown = pf.extend({"observer": observer})
        assert len(grown.conclusions) == len(pf.conclusions)
        assert grown.sigma_star == {"a", "b", "z"}
        failures = [p for p, c in grown.verify_monolithic() if not c]
        assert failures == []

    def test_hostile_component_rejected(self):
        pf = base_proof()
        # saboteur can clear `a`, breaking the universal left side
        saboteur = System.from_pairs({"a"}, [(("a",), ())])
        with pytest.raises(ProofError) as info:
            pf.extend({"saboteur": saboteur})
        assert "saboteur" in str(info.value)

    def test_duplicate_name_rejected(self):
        pf = base_proof()
        with pytest.raises(ProofError):
            pf.extend({"riser": System.from_pairs({"z"}, [])})

    def test_extension_steps_cite_original_derivations(self):
        pf = base_proof()
        grown = pf.extend({"obs": System.from_pairs({"z"}, [])})
        for proven in grown.conclusions:
            assert proven.step.kind == "extend"
            assert proven.step.premises  # links back to the old proof

    def test_chained_extension(self):
        pf = base_proof()
        grown = pf.extend({"o1": System.from_pairs({"z"}, [])})
        grown2 = grown.extend(
            {"o2": System.from_pairs({"w"}, [((), ("w",))])}
        )
        assert grown2.sigma_star == {"a", "b", "z", "w"}
        failures = [p for p, c in grown2.verify_monolithic() if not c]
        assert failures == []

    def test_new_work_possible_after_extension(self):
        pf = base_proof()
        grown = pf.extend({"zr": System.from_pairs({"z"}, [((), ("z",))])})
        g = grown.guarantee_rule4("zr", Not(z), z)
        rhs = grown.discharge(g)
        grown.chain([grown.project(rhs, 0)])
        failures = [p for p, c in grown.verify_monolithic() if not c]
        assert failures == []

    def test_afs1_extends_with_observer(self):
        """The whole AFS-1 liveness proof carries over to a larger system."""
        from repro.casestudies.afs1 import Afs1

        study = Afs1()
        pf, afs2 = study.prove_liveness()
        observer = System.from_pairs({"Observer.watching"}, [])
        grown = pf.extend({"observer": observer})
        failures = [p for p, c in grown.verify_monolithic() if not c]
        assert failures == []
