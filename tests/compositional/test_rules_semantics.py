"""Semantic validation of the paper's Rules 1–5 on randomized systems.

These are the load-bearing tests of the reproduction: each rule's *claim*
(a property class membership, or a guarantee) is checked against actual
composites built with the ∘ operator.  Hypothesis instantiates the rules
with random systems and propositional formulas; implications are tested
unconditionally (vacuously true instances also pass through, but the
deterministic cases pin non-vacuous coverage).
"""

import pytest
from hypothesis import given, settings

from tests.conftest import prop_formulas, systems
from repro.checking.explicit import ExplicitChecker
from repro.compositional.rules import (
    progress_restriction,
    rule4_guarantee,
    rule4_premise,
    rule5_guarantee,
    rule5_premise,
)
from repro.errors import LogicError
from repro.logic.ctl import (
    AX,
    Const,
    EF,
    EU,
    EX,
    Implies,
    Not,
    Or,
    atom,
    substitute,
)
from repro.logic.restriction import Restriction
from repro.systems.compose import compose, expand
from repro.systems.system import System

ATOMS = ("a", "b")


def _ground(f, sigma):
    return substitute(f, {x: Const(True) for x in f.atoms() - sigma})


def _holds(system, f, restriction=None):
    ck = ExplicitChecker(system)
    if restriction is None:
        return bool(ck.holds(f))
    return bool(ck.holds(f, restriction))


class TestRule1Semantics:
    @given(systems(atoms=ATOMS), systems(atoms=ATOMS),
           prop_formulas(atoms=ATOMS), prop_formulas(atoms=ATOMS))
    @settings(max_examples=60, deadline=None)
    def test_propositional_properties_are_existential(self, m1, m2, i, f):
        sigma = frozenset(m1.sigma) | frozenset(m2.sigma)
        i, f = _ground(i, m1.sigma), _ground(f, m1.sigma)
        r = Restriction(init=i)
        if _holds(m1, f, r):
            assert _holds(compose(m1, m2), f, r)


class TestRule2Semantics:
    @given(systems(atoms=ATOMS), systems(atoms=ATOMS),
           prop_formulas(atoms=ATOMS), prop_formulas(atoms=ATOMS))
    @settings(max_examples=60, deadline=None)
    def test_ax_step_is_universal(self, m1, m2, p, q):
        sigma = frozenset(m1.sigma) | frozenset(m2.sigma)
        p, q = _ground(p, sigma), _ground(q, sigma)
        f = Implies(p, AX(q))
        e1, e2 = expand(m1, sigma), expand(m2, sigma)
        if _holds(e1, f) and _holds(e2, f):
            assert _holds(compose(m1, m2), f)

    def test_non_vacuous_instance(self):
        m1 = System.from_pairs({"a"}, [((), ("a",))])
        m2 = System.from_pairs({"b"}, [((), ("b",))])
        f = Implies(atom("a"), AX(atom("a")))  # a is absorbing in both
        assert _holds(expand(m1, {"a", "b"}), f)
        assert _holds(expand(m2, {"a", "b"}), f)
        assert _holds(compose(m1, m2), f)

    def test_universal_needs_all_components(self):
        """One component can defeat a universal property of the other."""
        keeps_a = System.from_pairs({"a"}, [])
        drops_a = System.from_pairs({"a"}, [(("a",), ())])
        f = Implies(atom("a"), AX(atom("a")))
        assert _holds(expand(keeps_a, {"a"}), f)
        assert not _holds(compose(keeps_a, drops_a), f)


class TestRule3Semantics:
    @given(systems(atoms=ATOMS), systems(atoms=ATOMS),
           prop_formulas(atoms=ATOMS), prop_formulas(atoms=ATOMS))
    @settings(max_examples=60, deadline=None)
    def test_ex_step_is_existential(self, m1, m2, p, q):
        sigma = frozenset(m1.sigma) | frozenset(m2.sigma)
        p, q = _ground(p, sigma), _ground(q, sigma)
        f = Implies(p, EX(q))
        if _holds(expand(m1, sigma), f):
            assert _holds(compose(m1, m2), f)

    @given(systems(atoms=ATOMS), systems(atoms=ATOMS),
           prop_formulas(atoms=ATOMS), prop_formulas(atoms=ATOMS))
    @settings(max_examples=60, deadline=None)
    def test_extension_e1_ef_lifts(self, m1, m2, p, q):
        """Extension E1: positive E-path steps are existential too."""
        sigma = frozenset(m1.sigma) | frozenset(m2.sigma)
        p, q = _ground(p, sigma), _ground(q, sigma)
        for f in (Implies(p, EF(q)), Implies(p, EU(p, q))):
            if _holds(expand(m1, sigma), f):
                assert _holds(compose(m1, m2), f)

    def test_non_vacuous_instance(self):
        m1 = System.from_pairs({"a"}, [((), ("a",))])
        m2 = System.from_pairs({"b"}, [])
        f = Implies(Not(atom("a")), EX(atom("a")))
        assert _holds(expand(m1, {"a", "b"}), f)
        assert _holds(compose(m1, m2), f)


class TestRule4Semantics:
    @given(systems(atoms=ATOMS), systems(atoms=ATOMS),
           prop_formulas(atoms=ATOMS), prop_formulas(atoms=ATOMS))
    @settings(max_examples=40, deadline=None)
    def test_guarantee_claim(self, m1, m2, p, q):
        sigma = frozenset(m1.sigma) | frozenset(m2.sigma)
        p, q = _ground(p, sigma), _ground(q, sigma)
        if not _holds(expand(m1, sigma), rule4_premise(p, q)):
            return  # rule not applicable to this instance
        g = rule4_guarantee(p, q)
        composite = compose(m1, m2)
        if _holds(composite, g.lhs.formula, g.lhs.restriction):
            assert _holds(composite, g.rhs.formula, g.rhs.restriction)

    def test_paper_shape(self):
        g = rule4_guarantee(atom("p"), atom("q"))
        assert g.lhs.formula == Implies(atom("p"), AX(Or(atom("p"), atom("q"))))
        r = g.rhs.restriction
        assert r.fairness == (Or(Not(atom("p")), atom("q")),)

    def test_requires_propositional(self):
        with pytest.raises(LogicError):
            rule4_premise(EX(atom("p")), atom("q"))

    def test_non_vacuous_instance(self):
        helpful = System.from_pairs({"a"}, [((), ("a",))])
        env = System.from_pairs({"b"}, [((), ("b",)), (("b",), ())])
        p, q = Not(atom("a")), atom("a")
        assert _holds(helpful, rule4_premise(p, q))
        g = rule4_guarantee(p, q)
        composite = compose(helpful, env)
        assert _holds(composite, g.lhs.formula)
        assert _holds(composite, g.rhs.formula, g.rhs.restriction)


class TestRule5Semantics:
    def test_figure2_instance(self):
        from repro.casestudies.figures import (
            figure2_p,
            figure2_p_disjuncts,
            figure2_q,
            figure2_system,
        )

        m = figure2_system()
        env = System.from_pairs({"z"}, [((), ("z",))])
        disjuncts, q = figure2_p_disjuncts(), figure2_q()
        # Rule 4 is NOT applicable (premise fails) …
        assert not _holds(m, rule4_premise(figure2_p(), q))
        # … but Rule 5 is
        assert _holds(m, rule5_premise(disjuncts, q, 0))
        g = rule5_guarantee(disjuncts, q, 0)
        composite = compose(m, env)
        assert _holds(composite, g.lhs.formula)
        assert _holds(composite, g.rhs.formula, g.rhs.restriction)

    def test_helpful_index_validated(self):
        with pytest.raises(LogicError):
            rule5_premise((atom("p"),), atom("q"), 3)

    def test_progress_restriction_shape(self):
        r = progress_restriction(atom("p"), atom("q"))
        assert r.init == Const(True)
        assert len(r.fairness) == 1
