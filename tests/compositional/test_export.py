"""Tests for proof-certificate export (text trees, DOT, obligations)."""

from repro.compositional.export import obligations_report, proof_to_dot, proof_tree
from repro.compositional.proof import CompositionProof
from repro.logic.ctl import AX, Implies, Not, atom
from repro.systems.system import System

a = atom("a")


def _proof():
    riser = System.from_pairs({"a"}, [((), ("a",))])
    env = System.from_pairs({"b"}, [((), ("b",))])
    pf = CompositionProof({"riser": riser, "env": env})
    g = pf.guarantee_rule4("riser", Not(a), a)
    return pf, pf.discharge(g)


class TestProofTree:
    def test_contains_rule_kinds(self):
        _, proven = _proof()
        text = proof_tree(proven)
        assert "guarantee-apply" in text
        assert "rule4" in text
        assert "rule2-universal" in text

    def test_shows_obligations(self):
        _, proven = _proof()
        assert "checked:" in proof_tree(proven)

    def test_clipping(self):
        _, proven = _proof()
        for line in proof_tree(proven, max_width=40).splitlines():
            assert len(line) <= 40 + 20  # indent allowance


class TestProofDot:
    def test_well_formed(self):
        _, proven = _proof()
        dot = proof_to_dot(proven)
        assert dot.startswith("digraph proof")
        assert "goal" in dot
        assert dot.rstrip().endswith("}")

    def test_shared_steps_deduplicated(self):
        pf, proven = _proof()
        dot = proof_to_dot(proven)
        # rule4 appears once even though reachable from multiple paths
        assert dot.count('label="rule4') == 1

    def test_goal_label_escaped(self):
        # atoms may contain quote-like characters (primed copies, enum
        # encodings); the DOT label must escape them, not mangle them
        from repro.compositional.export import _dot_escape

        assert _dot_escape('say "hi"') == 'say \\"hi\\"'
        assert _dot_escape("a\\b") == "a\\\\b"
        assert _dot_escape("two\nlines") == "two\\nlines"

    def test_dot_has_no_raw_quotes_or_newlines_in_labels(self):
        _, proven = _proof()
        dot = proof_to_dot(proven)
        import re

        for label in re.findall(r'label="((?:[^"\\]|\\.)*)"', dot):
            # every quote/newline inside a label body is backslash-escaped
            assert '"' not in label.replace('\\"', "")
            assert "\n" not in label


class TestObligationsReport:
    def test_lists_every_unique_obligation(self):
        pf, _ = _proof()
        report = obligations_report(pf)
        assert "total: 3" in report  # 1 EX premise + 2 universal checks

    def test_deduplicates_repeats(self):
        pf, _ = _proof()
        pf.universal(Implies(a, AX(a)))
        pf.universal(Implies(a, AX(a)))  # re-checked → new results
        report = obligations_report(pf)
        assert "total: 7" in report
