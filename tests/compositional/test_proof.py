"""Tests for the proof engine: every rule, success and failure paths."""

import pytest

from repro.compositional.proof import CompositionProof
from repro.compositional.properties import RestrictedProperty
from repro.errors import ProofError
from repro.logic.ctl import (
    AF,
    AG,
    AU,
    AX,
    And,
    Const,
    EX,
    Implies,
    Not,
    Or,
    atom,
)
from repro.logic.restriction import Restriction
from repro.systems.system import System

a, b = atom("a"), atom("b")


def make_proof(backend="explicit"):
    """Helpful a-riser composed with a b-toggle environment."""
    riser = System.from_pairs({"a"}, [((), ("a",))])
    toggle = System.from_pairs({"b"}, [((), ("b",)), (("b",), ())])
    return CompositionProof({"riser": riser, "toggle": toggle}, backend=backend)


class TestConstruction:
    def test_needs_components(self):
        with pytest.raises(ProofError):
            CompositionProof({})

    def test_rejects_non_reflexive(self):
        raw = System.from_pairs({"a"}, [((), ("a",))], reflexive=False)
        with pytest.raises(ProofError):
            CompositionProof({"raw": raw})

    def test_sigma_star_is_union(self):
        assert make_proof().sigma_star == {"a", "b"}


class TestUniversal:
    def test_holds_on_all_expansions(self):
        pf = make_proof()
        proven = pf.universal(Implies(a, AX(a)))  # a is absorbing
        assert proven.formula == Implies(a, AX(a))

    def test_rejects_non_universal_shape(self):
        with pytest.raises(ProofError):
            make_proof().universal(AG(a))

    def test_fails_when_a_component_breaks_it(self):
        pf = make_proof()
        with pytest.raises(ProofError) as info:
            pf.universal(Implies(b, AX(b)))  # toggle drops b
        assert "toggle" in str(info.value)


class TestExistential:
    def test_witnessed_by_named_component(self):
        pf = make_proof()
        proven = pf.existential(Implies(Not(a), EX(a)), witness="riser")
        assert proven.prop.restriction.is_trivial

    def test_auto_witness_search(self):
        pf = make_proof()
        pf.existential(Implies(Not(b), EX(b)))  # found on toggle

    def test_no_witness_raises(self):
        pf = make_proof()
        with pytest.raises(ProofError):
            pf.existential(Implies(a, EX(Not(a))))

    def test_rule1_with_init(self):
        pf = make_proof()
        proven = pf.existential(a, restriction=Restriction(init=a))
        assert proven.restriction.init == a

    def test_rejects_universal_shape(self):
        with pytest.raises(ProofError):
            make_proof().existential(Implies(a, AX(a)))


class TestGuarantees:
    def test_rule4_and_apply(self):
        pf = make_proof()
        g = pf.guarantee_rule4("riser", Not(a), a)
        lhs = pf.universal(g.guarantee.lhs.formula)
        rhs = pf.apply_guarantee(g, lhs)
        assert isinstance(rhs.formula, And)

    def test_rule4_premise_failure(self):
        pf = make_proof()
        with pytest.raises(ProofError):
            pf.guarantee_rule4("riser", a, Not(a))  # a cannot fall

    def test_apply_rejects_wrong_lhs(self):
        pf = make_proof()
        g = pf.guarantee_rule4("riser", Not(a), a)
        other = pf.universal(Implies(a, AX(a)))
        with pytest.raises(ProofError):
            pf.apply_guarantee(g, other)

    def test_discharge_automatic(self):
        pf = make_proof()
        g = pf.guarantee_rule4("riser", Not(a), a)
        rhs = pf.discharge(g)
        au = pf.project(rhs, 0)
        assert isinstance(au.formula.right, AU)

    def test_rule5(self):
        from repro.casestudies.figures import (
            figure2_p_disjuncts,
            figure2_q,
            figure2_system,
        )

        pf = CompositionProof(
            {
                "cycle": figure2_system(),
                "env": System.from_pairs({"z"}, [((), ("z",))]),
            }
        )
        g = pf.guarantee_rule5("cycle", figure2_p_disjuncts(), figure2_q(), 0)
        rhs = pf.discharge(g)
        assert rhs.prop.restriction.fairness  # Rule 5's progress fairness


class TestInvariant:
    def test_invariant_rule(self):
        pf = make_proof()
        proven = pf.invariant(a, a)  # a absorbing in both components
        assert isinstance(proven.formula, AG)
        assert proven.restriction.init == a

    def test_init_must_imply_invariant(self):
        pf = make_proof()
        with pytest.raises(ProofError):
            pf.invariant(Const(True), a)

    def test_invariant_preservation_checked(self):
        pf = make_proof()
        with pytest.raises(ProofError):
            pf.invariant(b, b)  # toggle breaks b ⇒ AX b

    def test_ag_weaken(self):
        pf = make_proof()
        proven = pf.invariant(a, a)
        weak = pf.ag_weaken(proven, Or(a, b))
        assert weak.formula == AG(Or(a, b))

    def test_ag_weaken_needs_entailment(self):
        pf = make_proof()
        proven = pf.invariant(a, a)
        with pytest.raises(ProofError):
            pf.ag_weaken(proven, And(a, b))


class TestGlue:
    def _au(self, pf):
        g = pf.guarantee_rule4("riser", Not(a), a)
        return pf.project(pf.discharge(g), 0)

    def test_conjoin_and_project(self):
        pf = make_proof()
        u1 = pf.universal(Implies(a, AX(a)))
        u2 = pf.universal(Implies(a, AX(Or(a, b))))
        both = pf.conjoin(u1, u2)
        assert pf.project(both, 0).formula == u1.formula
        assert pf.project(both, 1).formula == u2.formula

    def test_project_bounds(self):
        pf = make_proof()
        u = pf.universal(Implies(a, AX(a)))
        with pytest.raises(ProofError):
            pf.project(u, 5)

    def test_conjoin_requires_same_restriction(self):
        pf = make_proof()
        u = pf.universal(Implies(a, AX(a)))
        au = self._au(pf)
        with pytest.raises(ProofError):
            pf.conjoin(u, au)

    def test_strengthen_fairness(self):
        pf = make_proof()
        u = pf.universal(Implies(a, AX(a)))
        stronger = pf.strengthen_fairness(u, b)
        assert b in stronger.restriction.fairness

    def test_strengthen_fairness_rejects_e_positive(self):
        pf = make_proof()
        e = pf.existential(Implies(Not(a), EX(a)))
        with pytest.raises(ProofError):
            pf.strengthen_fairness(e, b)

    def test_align_fairness(self):
        pf = make_proof()
        u1 = pf.strengthen_fairness(pf.universal(Implies(a, AX(a))), a)
        u2 = pf.strengthen_fairness(pf.universal(Implies(a, AX(Or(a, b)))), b)
        aligned = pf.align_fairness([u1, u2])
        assert aligned[0].restriction == aligned[1].restriction

    def test_au_to_af_and_weaken(self):
        pf = make_proof()
        au = self._au(pf)
        af = pf.au_to_af(au)
        assert isinstance(af.formula.right, AF)
        weak = pf.af_weaken(af, Or(a, b))
        assert weak.formula.right == AF(Or(a, b))

    def test_leads_to_chains(self):
        pf = make_proof()
        au = self._au(pf)
        af = pf.au_to_af(au)
        # chain ¬a ↝ a with a ↝ a (trivial second link via AF)
        second = pf.af_weaken(af, a)
        # build an a ⇒ AF a from the invariant-ish fact
        chained = pf.chain([au])
        assert isinstance(chained.formula.right, AF)

    def test_leads_to_requires_entailment(self):
        pf = make_proof()
        au = self._au(pf)   # ¬a ↝ a
        with pytest.raises(ProofError):
            pf.leads_to(au, au)  # a does not imply ¬a

    def test_to_initial(self):
        pf = make_proof()
        au = self._au(pf)
        af = pf.au_to_af(au)
        out = pf.to_initial(af, And(Not(a), Not(b)))
        assert out.restriction.init == And(Not(a), Not(b))
        assert out.formula == af.formula.right

    def test_to_initial_needs_antecedent(self):
        pf = make_proof()
        af = pf.au_to_af(self._au(pf))
        with pytest.raises(ProofError):
            pf.to_initial(af, a)  # a does not imply ¬a

    def test_implication_cases(self):
        pf = make_proof()
        af = pf.au_to_af(self._au(pf))           # ¬a ⇒ AF a
        af2 = pf.af_weaken(af, a)
        # second case: a ⇒ AF a — prove via chain on the absorbing state
        g = pf.guarantee_rule4("riser", a, a)
        af3 = pf.af_weaken(pf.au_to_af(pf.project(pf.discharge(g), 0)), a)
        cases = pf.align_fairness([af2, af3])
        out = pf.implication_cases(Const(True), cases)
        assert out.formula.left == Const(True)

    def test_implication_cases_mismatched_consequents(self):
        pf = make_proof()
        af = pf.au_to_af(self._au(pf))
        af_b = pf.af_weaken(af, Or(a, b))
        with pytest.raises(ProofError):
            pf.implication_cases(Const(True), [af, af_b])

    def test_strengthen_init(self):
        pf = make_proof()
        proven = pf.invariant(a, a)
        stronger = pf.strengthen_init(proven, And(a, b))
        assert stronger.restriction.init == And(a, b)
        with pytest.raises(ProofError):
            pf.strengthen_init(proven, b)


class TestValidationAndReporting:
    def test_verify_monolithic_all_hold(self):
        pf = make_proof()
        pf.universal(Implies(a, AX(a)))
        pf.existential(Implies(Not(a), EX(a)))
        pf.invariant(a, a)
        for proven, check in pf.verify_monolithic():
            assert bool(check), str(proven)

    def test_symbolic_backend_agrees(self):
        pf = make_proof(backend="symbolic")
        pf.universal(Implies(a, AX(a)))
        pf.invariant(a, a)
        for proven, check in pf.verify_monolithic():
            assert bool(check)

    def test_summary_mentions_conclusions(self):
        pf = make_proof()
        pf.universal(Implies(a, AX(a)))
        text = pf.summary()
        assert "riser" in text and "conclusions (1)" in text

    def test_unknown_component(self):
        pf = make_proof()
        with pytest.raises(ProofError):
            pf.guarantee_rule4("nope", Not(a), a)

    def test_proof_step_tree(self):
        pf = make_proof()
        g = pf.guarantee_rule4("riser", Not(a), a)
        rhs = pf.discharge(g)
        assert rhs.step.size() >= 3
        leaves = rhs.step.leaves()
        assert all(leaf.obligations or not leaf.premises for leaf in leaves)
