"""Tests for SMV elaboration (typing, resolution, formula translation)."""

import pytest

from repro.errors import ElaborationError
from repro.logic.ctl import AX, Const, Implies, Not, TRUE
from repro.smv.elaborate import SmvModel
from repro.smv.parser import parse_expr, parse_module, parse_spec


def model(source: str) -> SmvModel:
    return SmvModel(parse_module(source))


BASE = """
MODULE main
VAR
  b : boolean;
  s : {red, green, blue};
"""


class TestDeclarations:
    def test_boolean_encodes_to_own_atom(self):
        m = model(BASE)
        assert "b" in m.encoding.atoms

    def test_enum_encodes_to_bits(self):
        m = model(BASE)
        assert "s.0" in m.encoding.atoms and "s.1" in m.encoding.atoms

    def test_duplicate_variable_rejected(self):
        with pytest.raises(ElaborationError):
            model("MODULE main VAR x : boolean; x : boolean;")

    def test_assign_to_undeclared_rejected(self):
        with pytest.raises(ElaborationError):
            model("MODULE main VAR x : boolean; ASSIGN next(y) := 0;")

    def test_duplicate_assign_rejected(self):
        with pytest.raises(ElaborationError):
            model("MODULE main VAR x : boolean; ASSIGN next(x) := 0; next(x) := 1;")

    def test_free_variables_reported(self):
        m = model(BASE + "ASSIGN next(b) := b;")
        assert m.free_variables() == ("s",)


class TestBoolFormula:
    def test_comparisons(self):
        m = model(BASE)
        f = m.bool_formula(parse_expr("s = red"))
        assert f.atoms() == {"s.0", "s.1"}

    def test_neq_is_negation(self):
        m = model(BASE)
        f = m.bool_formula(parse_expr("s != red"))
        assert isinstance(f, Not)

    def test_boolean_var_as_condition(self):
        m = model(BASE)
        assert m.bool_formula(parse_expr("b")).atoms() == {"b"}

    def test_enum_var_in_boolean_position_rejected(self):
        m = model(BASE)
        with pytest.raises(ElaborationError):
            m.bool_formula(parse_expr("s"))

    def test_value_outside_domain_rejected(self):
        m = model(BASE)
        with pytest.raises(ElaborationError):
            m.bool_formula(parse_expr("s = purple"))

    def test_var_var_comparison(self):
        m = model(
            "MODULE main VAR a : {x, y}; c : {y, z};"
        )
        f = m.bool_formula(parse_expr("a = c"))
        # only the shared value y can make them equal
        assert f.atoms() == {"a.0", "c.0"}

    def test_numbers_as_booleans(self):
        m = model(BASE)
        assert m.bool_formula(parse_expr("b = 1")).atoms() == {"b"}
        assert m.bool_formula(parse_expr("1")) == Const(True)


class TestSpecTranslation:
    def test_temporal_structure_preserved(self):
        m = model(BASE)
        f = m.spec_formula(parse_spec("b -> AX b"))
        assert isinstance(f, Implies) and isinstance(f.right, AX)

    def test_until_translation(self):
        from repro.logic.ctl import AU

        m = model(BASE)
        f = m.spec_formula(parse_spec("A[b U s = red]"))
        assert isinstance(f, AU)


class TestValueAnalysis:
    def test_value_set_of_set_literal(self):
        m = model(BASE)
        vals = m.value_set(parse_expr("{red, blue}"), ("red", "green", "blue"))
        assert vals == ["red", "blue"]

    def test_value_set_of_case_unions_branches(self):
        m = model(BASE)
        vals = m.value_set(
            parse_expr("case b : red; 1 : green; esac"),
            ("red", "green", "blue"),
        )
        assert set(vals) == {"red", "green"}

    def test_value_out_of_domain_rejected(self):
        m = model(BASE)
        with pytest.raises(ElaborationError):
            m.value_set(parse_expr("purple"), ("red",))

    def test_boolean_expression_assigned_to_enum_rejected(self):
        m = model(BASE)
        with pytest.raises(ElaborationError):
            m.value_set(parse_expr("!b"), ("red", "green"))

    def test_possible_formula_case_first_match_wins(self):
        m = model(BASE + "ASSIGN next(s) := case b : red; 1 : green; esac;")
        cond = m.possible_formula(
            parse_expr("case b : red; 1 : red; esac"), "green", ("red", "green", "blue")
        )
        from repro.compositional.prop_logic import is_tautology
        from repro.logic.ctl import Not as LNot

        # green is never produced
        assert is_tautology(LNot(cond))


class TestEvaluation:
    def test_eval_bool(self):
        m = model(BASE)
        env = {"b": True, "s": "red"}
        assert m.eval_bool(parse_expr("b & s = red"), env)
        assert not m.eval_bool(parse_expr("s != red"), env)

    def test_eval_values_deterministic(self):
        m = model(BASE)
        env = {"b": False, "s": "red"}
        assert m.eval_values(parse_expr("s"), env, ("red", "green", "blue")) == ["red"]

    def test_eval_values_nondeterministic(self):
        m = model(BASE)
        env = {"b": False, "s": "red"}
        vals = m.eval_values(
            parse_expr("{green, blue}"), env, ("red", "green", "blue")
        )
        assert vals == ["green", "blue"]

    def test_eval_values_case_fallthrough_empty(self):
        m = model(BASE)
        env = {"b": False, "s": "red"}
        assert m.eval_values(
            parse_expr("case b : red; esac"), env, ("red",)
        ) == []


class TestInitialFormula:
    def test_init_assign_becomes_constraint(self):
        m = model(BASE + "ASSIGN init(b) := 1;")
        f = m.initial_formula()
        assert "b" in f.atoms()

    def test_validity_included_for_non_power_of_two(self):
        m = model(BASE)
        f = m.initial_formula()
        assert "s.0" in f.atoms()  # s has 3 of 4 patterns valid

    def test_trivial_when_no_junk_no_init(self):
        m = model("MODULE main VAR x : boolean; y : {a, b};")
        assert m.initial_formula() == TRUE
