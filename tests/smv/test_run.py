"""Tests for the end-to-end SMV driver and report formatting."""

import pytest

from repro.logic.ctl import atom
from repro.smv.run import check_model, check_source, load_model

GOOD = """
MODULE main
VAR x : boolean;
ASSIGN next(x) := 1;
SPEC x -> AX x
SPEC AF x
FAIRNESS x
"""

BAD = """
MODULE main
VAR x : boolean;
ASSIGN next(x) := {0, 1};
SPEC x -> AX x
"""


class TestCheckSource:
    def test_all_true(self):
        report = check_source(GOOD)
        assert report.all_true
        assert len(report.results) == 2

    def test_false_spec_detected(self):
        report = check_source(BAD)
        assert not report.all_true
        assert not report.results[0].holds

    def test_format_mimics_smv_output(self):
        text = check_source(GOOD).format()
        assert text.count("-- spec.") == 2
        assert "is true" in text
        assert "resources used:" in text
        assert "BDD nodes allocated:" in text
        assert "BDD nodes representing transition relation:" in text

    def test_format_shows_source_syntax(self):
        text = check_source(GOOD).format()
        assert "x -> AX x" in text

    def test_false_verdict_line(self):
        text = check_source(BAD).format()
        assert "is false" in text


class TestCheckModel:
    def test_extra_fairness(self):
        model = load_model(BAD)
        report, _ = check_model(model, extra_fairness=(atom("x"),))
        # under fairness {x}, paths stuttering at ¬x are discarded — but
        # x -> AX x still fails because x can step to ¬x
        assert not report.results[0].holds
        assert report.num_fairness == 1

    def test_extra_init(self):
        from repro.logic.ctl import Const

        model = load_model(BAD)
        report, _ = check_model(model, extra_init=Const(False))
        assert report.all_true  # vacuous: no initial states

    def test_reflexive_mode_changes_relation(self):
        src = """
MODULE main
VAR x : boolean;
ASSIGN next(x) := 1;
SPEC !x -> AX x
"""
        assert check_source(src).all_true
        # with stutter closure, ¬x may remain ¬x
        assert not check_source(src, reflexive=True).all_true

    def test_fairness_declaration_used(self):
        src = """
MODULE main
VAR x : boolean;
ASSIGN next(x) := {x, 1};
SPEC AF x
FAIRNESS x
"""
        assert check_source(src).all_true

    def test_report_counts_module_fairness(self):
        report = check_source(GOOD)
        assert report.num_fairness == 1
