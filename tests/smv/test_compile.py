"""Tests for SMV compilation: explicit and symbolic backends must agree."""

import pytest

from repro.errors import ElaborationError
from repro.logic.ctl import AX, EX, Implies, Not, atom
from repro.checking.explicit import ExplicitChecker
from repro.checking.symbolic import SymbolicChecker
from repro.smv.compile_explicit import to_system
from repro.smv.compile_symbolic import to_symbolic
from repro.smv.elaborate import SmvModel
from repro.smv.parser import parse_module

TOGGLE = """
MODULE main
VAR x : boolean;
ASSIGN next(x) := !x;
"""

COUNTER = """
MODULE main
VAR n : {0, 1, 2};
ASSIGN next(n) := case n = 0 : 1; n = 1 : 2; 1 : 0; esac;
"""

CHOICE = """
MODULE main
VAR s : {idle, busy};
ASSIGN next(s) := case s = idle : {idle, busy}; 1 : idle; esac;
"""

FREE = """
MODULE main
VAR x : boolean;
    inp : boolean;
ASSIGN next(x) := inp;
"""


def model(src: str) -> SmvModel:
    return SmvModel(parse_module(src))


class TestExplicitCompilation:
    def test_toggle_relation(self):
        m = to_system(model(TOGGLE), reflexive=False)
        E, X = frozenset(), frozenset({"x"})
        assert set(m.edges) == {(E, X), (X, E)}
        assert not m.reflexive

    def test_reflexive_closure_option(self):
        m = to_system(model(TOGGLE), reflexive=True)
        assert m.reflexive

    def test_counter_skips_junk_states(self):
        m = to_system(model(COUNTER), reflexive=False)
        # 3 valid states, each with exactly one successor
        assert len(m.edges) == 3

    def test_nondeterministic_choice(self):
        m = to_system(model(CHOICE), reflexive=False)
        enc = model(CHOICE).encoding
        idle = enc.state_of({"s": "idle"})
        busy = enc.state_of({"s": "busy"})
        assert m.successors(idle) == {idle, busy}
        assert m.successors(busy) == {idle}

    def test_free_variable_unconstrained(self):
        m = to_system(model(FREE), reflexive=False)
        # every state has 2 successors (inp free)
        for s in [frozenset(), frozenset({"inp"})]:
            assert len(m.successors(s)) == 2

    def test_fallthrough_case_rejected(self):
        src = """
MODULE main
VAR x : boolean;
ASSIGN next(x) := case x : 0; esac;
"""
        with pytest.raises(ElaborationError):
            to_system(model(src))

    def test_size_guard(self):
        decls = "\n".join(f"v{i} : {{a,b,c,d,e}};" for i in range(10))
        src = f"MODULE main\nVAR\n{decls}"
        with pytest.raises(ElaborationError):
            to_system(model(src))


class TestSymbolicCompilation:
    @pytest.mark.parametrize("src", [TOGGLE, COUNTER, CHOICE, FREE])
    def test_agrees_with_explicit(self, src):
        m = model(src)
        explicit = to_system(m, reflexive=False)
        symbolic = to_symbolic(m, reflexive=False)
        decoded = symbolic.to_explicit()
        # junk states get self-loops only in the symbolic backend (to keep
        # the relation total); the relations must agree on valid states
        symbolic_valid = {
            (s, t)
            for s, t in decoded.edges
            if m.encoding.decode(s) is not None
        }
        assert symbolic_valid == set(explicit.edges)

    @pytest.mark.parametrize("src", [TOGGLE, COUNTER, CHOICE])
    def test_checker_verdicts_agree(self, src):
        m = model(src)
        from repro.logic.restriction import Restriction

        r = Restriction(init=m.initial_formula())
        eck = ExplicitChecker(to_system(m, reflexive=False))
        sck = SymbolicChecker(to_symbolic(m, reflexive=False))
        for var in m.variables:
            for value in var.domain:
                f = Implies(
                    m.encoding.eq_formula(var.name, value),
                    EX(m.encoding.eq_formula(var.name, value)),
                )
                assert bool(eck.holds(f, r)) == bool(sck.holds(f, r))

    def test_relation_is_total(self):
        sym = to_symbolic(model(COUNTER), reflexive=False)
        assert sym.is_total()

    def test_fallthrough_rejected(self):
        src = """
MODULE main
VAR x : boolean;
ASSIGN next(x) := case x : 0; esac;
"""
        with pytest.raises(ElaborationError):
            to_symbolic(model(src))

    def test_reflexive_closure(self):
        sym = to_symbolic(model(TOGGLE), reflexive=True)
        back = sym.to_explicit()
        assert back.reflexive
