"""Tests for the DEFINE and INIT extensions of the SMV subset."""

import pytest

from repro.errors import ElaborationError, ParseError
from repro.smv.parser import parse_module
from repro.smv.run import check_source, load_model

WITH_DEFINE = """
MODULE main
VAR x : boolean;
    s : {idle, busy};
DEFINE ready := x & s = idle;
       stalled := !ready;
ASSIGN
  next(x) := x;
  next(s) := case ready : busy; 1 : s; esac;
SPEC ready -> AX s = busy
SPEC stalled & s = idle -> AX s = idle
"""


class TestDefine:
    def test_macro_used_in_assign_and_spec(self):
        report = check_source(WITH_DEFINE)
        assert report.all_true

    def test_nested_defines(self):
        src = """
MODULE main
VAR x : boolean;
DEFINE a := x;
       b := !a;
ASSIGN next(x) := b;
SPEC x -> AX !x
"""
        assert check_source(src).all_true

    def test_cyclic_define_rejected(self):
        src = """
MODULE main
VAR x : boolean;
DEFINE a := b; b := a;
ASSIGN next(x) := a;
"""
        with pytest.raises(ElaborationError):
            load_model(src)

    def test_define_shadowing_variable_rejected(self):
        src = """
MODULE main
VAR x : boolean;
DEFINE x := 1;
"""
        with pytest.raises(ElaborationError):
            load_model(src)

    def test_duplicate_define_rejected(self):
        src = """
MODULE main
VAR x : boolean;
DEFINE a := 1; a := 0;
"""
        with pytest.raises(ParseError):
            parse_module(src)

    def test_defines_not_part_of_state(self):
        model = load_model(WITH_DEFINE)
        assert {v.name for v in model.variables} == {"x", "s"}


class TestInitConstraint:
    def test_init_narrows_checked_states(self):
        src = """
MODULE main
VAR x : boolean;
ASSIGN next(x) := x;
INIT x
SPEC x
"""
        assert check_source(src).all_true

    def test_without_init_spec_fails(self):
        src = """
MODULE main
VAR x : boolean;
ASSIGN next(x) := x;
SPEC x
"""
        assert not check_source(src).all_true

    def test_multiple_init_constraints_conjoined(self):
        src = """
MODULE main
VAR a : boolean; b : boolean;
ASSIGN next(a) := a; next(b) := b;
INIT a
INIT b
SPEC a & b
"""
        assert check_source(src).all_true

    def test_init_appears_in_initial_formula(self):
        model = load_model(
            "MODULE main VAR a : boolean; INIT !a"
        )
        assert "a" in model.initial_formula().atoms()
