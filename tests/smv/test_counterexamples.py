"""Tests for SMV-style counterexample traces in check reports."""

from repro.smv.run import check_source

CHAIN = """
MODULE main
VAR s : {idle, busy, broken};
ASSIGN next(s) := case s = idle : busy; s = busy : broken; 1 : s; esac;
"""


class TestAgCounterexample:
    def test_trace_reaches_violation(self):
        report = check_source(CHAIN + "SPEC AG (s != broken)")
        trace = report.counterexamples[0]
        assert trace is not None
        assert trace[-1] == {"s": "broken"}

    def test_trace_is_shortest(self):
        report = check_source(CHAIN + "SPEC AG (s != broken)")
        # shortest violating run from a failing initial state
        assert len(report.counterexamples[0]) <= 3

    def test_consecutive_states_are_transitions(self):
        from repro.smv.compile_explicit import to_system
        from repro.smv.run import load_model

        model = load_model(CHAIN + "SPEC AG (s != broken)")
        report = check_source(CHAIN + "SPEC AG (s != broken)")
        system = to_system(model, reflexive=False)
        trace = report.counterexamples[0]
        for a, b in zip(trace, trace[1:]):
            assert system.has_transition(
                model.encoding.state_of(a), model.encoding.state_of(b)
            )

    def test_format_includes_sequence(self):
        text = check_source(CHAIN + "SPEC AG (s != broken)").format()
        assert "execution sequence" in text
        assert "state 1.1:" in text
        assert "s = broken" in text

    def test_format_can_suppress_traces(self):
        report = check_source(CHAIN + "SPEC AG (s != broken)")
        assert "execution sequence" not in report.format(
            with_counterexamples=False
        )


class TestAxCounterexample:
    def test_failing_state_plus_offender(self):
        report = check_source(CHAIN + "SPEC s = idle -> AX s = idle")
        trace = report.counterexamples[0]
        assert trace == [{"s": "idle"}, {"s": "busy"}]


class TestNoTraceCases:
    def test_true_spec_has_none(self):
        report = check_source(CHAIN + "SPEC EF s = broken")
        assert report.counterexamples[0] is None

    def test_unsupported_shape_gets_single_state(self):
        # AF is not a supported trace shape: fall back to a failing state
        report = check_source(CHAIN + "SPEC s = broken")
        trace = report.counterexamples[0]
        assert trace is not None and len(trace) == 1
