"""Tests for the SMV pretty-printer (round-trip through the parser)."""

import pytest

from repro.smv.parser import parse_expr, parse_spec
from repro.smv.pretty import expr_to_str, spec_to_str


class TestExprRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "a = b",
            "a != b",
            "!x",
            "a = b & c = d",
            "a = b | c = d & e",
            "x -> y -> z",
            "{fetch, null}",
            "case a = b : x; 1 : y; esac",
            "(a | b) & c",
        ],
    )
    def test_reparse_gives_same_tree(self, text):
        tree = parse_expr(text)
        assert parse_expr(expr_to_str(tree)) == tree


class TestSpecRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "belief = valid -> AX belief = valid",
            "AG (x = a -> AF x = b)",
            "A[x = a U x = b]",
            "E[p U q]",
            "!time & response != val",
            "(a = b -> AX (a = b | c = d)) & (e = f -> EX e = g)",
        ],
    )
    def test_reparse_gives_same_tree(self, text):
        tree = parse_spec(text)
        assert parse_spec(spec_to_str(tree)) == tree

    def test_until_renders_with_brackets(self):
        assert spec_to_str(parse_spec("A[p U q]")).startswith("A[")
