"""Tests for SMV process instances → interleaving components."""

import pytest

from repro.errors import ElaborationError
from repro.smv.processes import check_processes, load_processes

PING_PONG = """
MODULE main
VAR
  turn : {pings, pongs};
  ping : process player(turn, pings, pongs);
  pong : process player(turn, pongs, pings);
INIT turn = pings & ping.count = 0 & pong.count = 0
SPEC AG (ping.count <= 2)
SPEC EF (pong.count = 2)

MODULE player(t, me, other)
VAR count : 0..2;
ASSIGN
  next(count) := case t = me & count < 2 : {1, 2}; 1 : count; esac;
  next(t) := case t = me : other; 1 : t; esac;
"""

BROKEN_MIXED = """
MODULE main
VAR
  a : process leaf;
  b : leaf;
MODULE leaf
VAR x : boolean;
"""


class TestSplitting:
    def test_components_and_shared_state(self):
        split = load_processes(PING_PONG)
        assert set(split.components) == {"ping", "pong"}
        for model in split.components.values():
            names = {v.name for v in model.variables}
            assert "turn" in names  # shared state declared in each

    def test_pinning_only_unassigned_shared_vars(self):
        # both players assign `turn` (via the parameter), so neither pins it
        split = load_processes(PING_PONG)
        for model in split.components.values():
            assert "turn" in model.next_assign

    def test_vocabulary_covers_everything(self):
        split = load_processes(PING_PONG)
        names = {v.name for v in split.vocabulary.variables}
        assert names == {"turn", "ping.count", "pong.count"}

    def test_requires_process_instances(self):
        with pytest.raises(ElaborationError):
            load_processes("MODULE main\nVAR x : boolean;\n")

    def test_rejects_mixed_instances(self):
        with pytest.raises(ElaborationError):
            load_processes(BROKEN_MIXED)

    def test_rejects_main_level_assign(self):
        src = """
MODULE main
VAR x : boolean;
    p : process leaf;
ASSIGN next(x) := x;
MODULE leaf
VAR y : boolean;
"""
        with pytest.raises(ElaborationError):
            load_processes(src)


class TestChecking:
    def test_main_specs_checked_against_interleaving(self):
        report = check_processes(PING_PONG)
        assert report.all_true
        assert len(report.results) == 2

    def test_explicit_backend_agrees(self):
        symbolic = check_processes(PING_PONG, backend="symbolic")
        explicit = check_processes(PING_PONG, backend="explicit")
        assert [r.holds for r in symbolic.results] == [
            r.holds for r in explicit.results
        ]

    def test_interleaving_not_synchronous(self):
        """Only one player moves per step: counts never jump together."""
        src = PING_PONG + (
            "\nMODULE dummy\nVAR z : boolean;\n"
        )
        split = load_processes(PING_PONG)
        from repro.systems.compose import compose_all

        composite = compose_all(list(split.systems().values()))
        enc = split.vocabulary.encoding
        zero_zero = enc.eq_formula("ping.count", 0) & enc.eq_formula(
            "pong.count", 0
        )
        both_moved = enc.eq_formula("ping.count", 1) & enc.eq_formula(
            "pong.count", 1
        )
        from repro.checking.explicit import ExplicitChecker
        from repro.logic.ctl import AX, EX, Implies, Not

        ck = ExplicitChecker(composite)
        assert ck.holds(Implies(zero_zero, Not(EX(both_moved))))


class TestCompositionalRoute:
    def test_afs1_in_one_file_proof(self):
        """The paper's whole Section 4.2 workflow from a single source."""
        from repro.casestudies.afs1 import AFS1_PROCESS_PROGRAM as src

        # the monolithic interleaving semantics confirms the main SPEC …
        assert check_processes(src).all_true
        # … and the compositional route proves it without the product
        from repro.logic.ctl import Implies, land

        split = load_processes(src)
        pf = split.proof()
        enc = split.vocabulary.encoding
        safe = Implies(
            enc.eq_formula("client.belief", "valid"),
            enc.eq_formula("server.belief", "valid"),
        )
        inv = land(
            safe,
            Implies(
                enc.eq_formula("r", "val"),
                enc.eq_formula("server.belief", "valid"),
            ),
        )
        final = pf.ag_weaken(pf.invariant(split.init, inv), safe)
        failures = [p for p, c in pf.verify_monolithic() if not c]
        assert failures == []
