"""Tests for integer range types and ordering comparisons (Fig. 3 talk)."""

import pytest

from repro.errors import ElaborationError, ParseError
from repro.smv.parser import parse_module
from repro.smv.run import check_source, load_model

COUNTER = """
MODULE main
VAR x : 0..3;
ASSIGN
  next(x) := case x < 3 : {0, 1, 2, 3}; 1 : 0; esac;
"""


class TestRangeDeclarations:
    def test_range_becomes_integer_domain(self):
        model = load_model(COUNTER)
        assert model.encoding.var("x").domain == (0, 1, 2, 3)

    def test_two_bits_for_four_values(self):
        model = load_model(COUNTER)
        assert model.encoding.var("x").bits == ("x.0", "x.1")

    def test_empty_range_rejected(self):
        with pytest.raises(ParseError):
            parse_module("MODULE main VAR x : 3..1;")

    def test_singleton_range(self):
        model = load_model("MODULE main VAR x : 5..5;")
        assert model.encoding.var("x").domain == (5,)


class TestOrderingComparisons:
    def test_figure3_x_less_than_2(self):
        """The paper's §3.4 example: (x < 2) maps to ¬x.1."""
        from repro.compositional.prop_logic import equivalent
        from repro.logic.ctl import Atom, Not
        from repro.smv.parser import parse_expr

        model = load_model("MODULE main VAR x : 0..3;")
        mapped = model.bool_formula(parse_expr("x < 2"))
        assert equivalent(mapped, Not(Atom("x.1")))

    @pytest.mark.parametrize(
        "spec,expected",
        [
            ("AG (x <= 3)", True),
            ("AG (x < 3)", False),
            ("AG (x >= 0)", True),
            ("EF (x > 2)", True),
            ("AG (x > 0 -> x >= 1)", True),
            ("AG (2 <= x | x < 2)", True),
        ],
    )
    def test_spec_verdicts(self, spec, expected):
        report = check_source(COUNTER + f"SPEC {spec}\n")
        assert report.results[0].holds == expected

    def test_var_var_comparison(self):
        src = """
MODULE main
VAR a : 0..2;
    b : 0..2;
ASSIGN next(a) := a; next(b) := b;
SPEC (a < b & b < a) -> 0
SPEC a < b -> a != b
"""
        assert check_source(src).all_true

    def test_guard_comparisons_in_assignments(self):
        src = """
MODULE main
VAR x : 0..2;
ASSIGN next(x) := case x < 2 : 2; 1 : x; esac;
SPEC x < 2 -> AX x = 2
SPEC x = 2 -> AX x = 2
"""
        assert check_source(src).all_true

    def test_enum_ordering_rejected(self):
        from repro.smv.parser import parse_expr

        model = load_model("MODULE main VAR s : {low, high};")
        with pytest.raises(ElaborationError):
            model.bool_formula(parse_expr("s < high"))

    def test_simulation_with_ranges(self):
        from repro.smv.simulate import simulate

        model = load_model(COUNTER)
        trace = simulate(model, steps=8, seed=4)
        assert all(0 <= s["x"] <= 3 for s in trace)

    def test_explicit_and_symbolic_agree(self):
        from repro.smv.compile_explicit import to_system
        from repro.smv.compile_symbolic import to_symbolic

        model = load_model(COUNTER)
        explicit = to_system(model, reflexive=False)
        decoded = to_symbolic(model, reflexive=False).to_explicit()
        valid = {
            (s, t)
            for s, t in decoded.edges
            if model.encoding.decode(s) is not None
        }
        assert valid == set(explicit.edges)
