"""Tests for module instantiation and flattening (extension E3)."""

import pytest

from repro.errors import ElaborationError, ParseError
from repro.smv.ast import InstanceType
from repro.smv.modules import flatten
from repro.smv.parser import parse_module, parse_program
from repro.smv.run import check_source, load_model

PROGRAM = """
MODULE main
VAR
  ch : {null, req};
  s : server(ch);
ASSIGN
  next(ch) := case !s.busy : req; 1 : null; esac;
INIT !s.busy & s.count = zero
SPEC AG (s.busy -> s.count = one)

MODULE server(link)
VAR
  busy : boolean;
  count : {zero, one};
ASSIGN
  next(busy) := case link = req : 1; 1 : busy; esac;
  next(count) := case link = req : one; 1 : count; esac;
SPEC busy -> AX busy
"""


class TestParsing:
    def test_parse_program_collects_modules(self):
        program = parse_program(PROGRAM)
        assert set(program) == {"main", "server"}
        assert program["server"].params == ("link",)

    def test_instance_decl_parsed(self):
        program = parse_program(PROGRAM)
        decl = program["main"].variables[1]
        assert decl.is_instance
        assert isinstance(decl.type, InstanceType)
        assert decl.type.module == "server"

    def test_parse_module_rejects_multi(self):
        with pytest.raises(ParseError):
            parse_module(PROGRAM)

    def test_duplicate_module_rejected(self):
        with pytest.raises(ParseError):
            parse_program("MODULE main\nMODULE main\n")


class TestFlattening:
    def test_variables_prefixed(self):
        flat = flatten(parse_program(PROGRAM))
        names = {v.name for v in flat.variables}
        assert names == {"ch", "s.busy", "s.count"}

    def test_parameters_substituted(self):
        model = load_model(PROGRAM)
        # s.busy rises when ch = req — the `link` formal became `ch`
        report = check_source(PROGRAM)
        assert report.all_true

    def test_submodule_specs_carried_up(self):
        flat = flatten(parse_program(PROGRAM))
        assert len(flat.specs) == 2  # main's AG + server's AX spec

    def test_nested_instances(self):
        nested = """
MODULE main
VAR outer : middle;
SPEC outer.inner.x -> AX outer.inner.x

MODULE middle
VAR inner : leaf;

MODULE leaf
VAR x : boolean;
ASSIGN next(x) := case x : 1; 1 : x; esac;
"""
        flat = flatten(parse_program(nested))
        assert {v.name for v in flat.variables} == {"outer.inner.x"}
        assert check_source(nested).all_true

    def test_two_instances_are_independent(self):
        twin = """
MODULE main
VAR a : cell; b : cell;
ASSIGN next(a.v) := 1;
SPEC b.v -> AX b.v

MODULE cell
VAR v : boolean;
"""
        flat = flatten(parse_program(twin))
        assert {v.name for v in flat.variables} == {"a.v", "b.v"}
        # b.v is free (unassigned) so the spec must fail
        assert not check_source(twin).all_true

    def test_shared_parameter_couples_instances(self):
        coupled = """
MODULE main
VAR bus : boolean;
    p : watcher(bus);
    q : watcher(bus);
ASSIGN next(bus) := bus;
SPEC (bus -> AX (p.seen | !bus)) & (p.seen -> AX p.seen)

MODULE watcher(sig)
VAR seen : boolean;
ASSIGN next(seen) := case sig : 1; 1 : seen; esac;
"""
        assert check_source(coupled).all_true


class TestErrors:
    def test_unknown_module(self):
        with pytest.raises(ElaborationError):
            flatten(parse_program("MODULE main\nVAR x : ghost;\n"))

    def test_arity_mismatch(self):
        bad = """
MODULE main
VAR s : server(1, 2);
MODULE server(link)
VAR b : boolean;
"""
        with pytest.raises(ElaborationError):
            flatten(parse_program(bad))

    def test_process_instances_rejected_by_flatten(self):
        src = """
MODULE main
VAR p : process leaf;
MODULE leaf
VAR x : boolean;
"""
        with pytest.raises(ElaborationError) as info:
            flatten(parse_program(src))
        assert "load_processes" in str(info.value)

    def test_recursive_instantiation(self):
        loop = """
MODULE main
VAR a : ouroboros;
MODULE ouroboros
VAR inner : ouroboros;
"""
        with pytest.raises(ElaborationError):
            flatten(parse_program(loop))

    def test_defines_inside_modules(self):
        src = """
MODULE main
VAR c : counter;
SPEC c.top -> AX c.top

MODULE counter
VAR n : {zero, one};
DEFINE top := n = one;
ASSIGN next(n) := case top : n; 1 : one; esac;
"""
        assert check_source(src).all_true
