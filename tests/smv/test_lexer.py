"""Tests for the SMV tokenizer."""

import pytest

from repro.errors import ParseError
from repro.smv.lexer import tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


class TestTokens:
    def test_keywords_get_own_kind(self):
        assert kinds("MODULE main")[:2] == ["MODULE", "ident"]

    def test_assign_vs_colon(self):
        toks = tokenize("next(x) := case 1 : x; esac;")
        assert [t.kind for t in toks[:5]] == ["next", "lpar", "ident", "rpar", "assign"]
        assert "colon" in kinds("1 : x;")

    def test_neq_vs_not(self):
        assert kinds("a != b") == ["ident", "neq", "ident", "eof"]
        assert kinds("!a = b") == ["not", "ident", "eq", "ident", "eof"]

    def test_operators(self):
        assert kinds("a -> b <-> c | d & !e") == [
            "ident", "imp", "ident", "iff", "ident", "or",
            "ident", "and", "not", "ident", "eof",
        ]

    def test_braces_and_commas(self):
        assert kinds("{a, b}") == ["lbrace", "ident", "comma", "ident", "rbrace", "eof"]

    def test_numbers(self):
        assert kinds("01 23") == ["number", "number", "eof"]

    def test_dotted_identifiers(self):
        toks = tokenize("Server.belief1")
        assert toks[0].kind == "ident" and toks[0].text == "Server.belief1"


class TestCommentsAndPositions:
    def test_comments_skipped(self):
        assert kinds("a -- comment with := junk\nb") == ["ident", "ident", "eof"]

    def test_line_numbers(self):
        toks = tokenize("a\n  b")
        assert toks[0].line == 1
        assert toks[1].line == 2 and toks[1].column == 3

    def test_bad_character(self):
        with pytest.raises(ParseError) as info:
            tokenize("a @ b")
        assert "@" in str(info.value)

    def test_eof_token_always_present(self):
        assert tokenize("")[-1].kind == "eof"
