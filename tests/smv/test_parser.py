"""Tests for the SMV parser."""

import pytest

from repro.errors import ParseError
from repro.smv.ast import (
    Assign,
    BinOp,
    BoolLit,
    Case,
    IntLit,
    Name,
    SetLit,
    SpecAtom,
    SpecBinary,
    SpecUnary,
    UnaryOp,
    VarDecl,
)
from repro.smv.parser import parse_expr, parse_module, parse_spec

MINIMAL = """
MODULE main
VAR
  x : boolean;
  s : {a, b, c};
ASSIGN
  init(x) := 0;
  next(x) := !x;
  next(s) := case x : a; 1 : s; esac;
SPEC x -> AX !x
FAIRNESS x
"""


class TestModuleStructure:
    def test_sections_parsed(self):
        mod = parse_module(MINIMAL)
        assert mod.name == "main"
        assert mod.variables == [
            VarDecl("x", "boolean"),
            VarDecl("s", ("a", "b", "c")),
        ]
        assert [a.kind for a in mod.assigns] == ["init", "next", "next"]
        assert len(mod.specs) == 1
        assert len(mod.fairness) == 1

    def test_numeric_enum_values(self):
        mod = parse_module("MODULE main VAR n : {0, 1, 2};")
        assert mod.variables[0].type == (0, 1, 2)

    def test_unexpected_top_level_token(self):
        with pytest.raises(ParseError):
            parse_module("MODULE main GARBAGE")

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_module("MODULE main VAR x : boolean")


class TestExpressions:
    def test_case_branches(self):
        e = parse_expr("case a = b : x; 1 : y; esac")
        assert isinstance(e, Case)
        assert len(e.branches) == 2
        assert e.branches[1][0] == IntLit(1)

    def test_set_literal(self):
        assert parse_expr("{fetch, null}") == SetLit((Name("fetch"), Name("null")))

    def test_comparison_precedence(self):
        e = parse_expr("a = b & c = d")
        assert isinstance(e, BinOp) and e.op == "&"
        assert e.left == BinOp("=", Name("a"), Name("b"))

    def test_not_binds_operand_only(self):
        e = parse_expr("!a & b")
        assert e == BinOp("&", UnaryOp("!", Name("a")), Name("b"))

    def test_implication_right_assoc(self):
        e = parse_expr("a -> b -> c")
        assert e == BinOp("->", Name("a"), BinOp("->", Name("b"), Name("c")))

    def test_true_false_literals(self):
        assert parse_expr("TRUE") == BoolLit(True)
        assert parse_expr("FALSE") == BoolLit(False)

    def test_trailing_input_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("a b")


class TestSpecs:
    def test_comparison_atom(self):
        s = parse_spec("belief = valid")
        assert s == SpecAtom(BinOp("=", Name("belief"), Name("valid")))

    def test_temporal_unary(self):
        s = parse_spec("AX belief = valid")
        assert isinstance(s, SpecUnary) and s.op == "AX"

    def test_nested_parenthesized(self):
        s = parse_spec("(belief = valid) -> AX (belief = valid)")
        assert isinstance(s, SpecBinary) and s.op == "->"

    def test_until(self):
        s = parse_spec("A[x = a U x = b]")
        assert isinstance(s, SpecBinary) and s.op == "AU"

    def test_eu(self):
        s = parse_spec("E[p U q]")
        assert s.op == "EU"

    def test_negated_atom(self):
        s = parse_spec("!time")
        assert s == SpecUnary("!", SpecAtom(Name("time")))

    def test_parenthesized_atom_then_comparison(self):
        s = parse_spec("(x) = a")
        assert s == SpecAtom(BinOp("=", Name("x"), Name("a")))

    def test_conjunction_of_implications(self):
        s = parse_spec("(a = b -> AX a = b) & (c = d -> AX c = d)")
        assert isinstance(s, SpecBinary) and s.op == "&"

    def test_until_requires_u(self):
        with pytest.raises(ParseError):
            parse_spec("A[p V q]")
