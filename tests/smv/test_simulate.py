"""Tests for the SMV trace simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ElaborationError
from repro.logic.ctl import Not, atom
from repro.smv.compile_explicit import to_system
from repro.smv.run import load_model
from repro.smv.simulate import (
    check_trace,
    format_trace,
    initial_state,
    simulate,
    step,
)

TOGGLE = """
MODULE main
VAR x : boolean;
ASSIGN init(x) := 0; next(x) := !x;
"""

PROTOCOL = """
MODULE main
VAR s : {idle, req, done};
    go : boolean;
ASSIGN
  init(s) := idle;
  next(s) := case
    s = idle & go : req;
    s = req : {req, done};
    1 : s;
  esac;
"""

CONSTRAINED = """
MODULE main
VAR a : boolean;
    b : boolean;
INIT a = b
ASSIGN next(a) := a; next(b) := b;
"""


class TestDeterministicRuns:
    def test_toggle_alternates(self):
        trace = simulate(load_model(TOGGLE), steps=5, seed=0)
        values = [s["x"] for s in trace]
        assert values == [False, True, False, True, False, True]

    def test_seed_reproducible(self):
        model = load_model(PROTOCOL)
        assert simulate(model, 10, seed=7) == simulate(model, 10, seed=7)

    def test_trace_length(self):
        assert len(simulate(load_model(TOGGLE), steps=3, seed=0)) == 4


class TestSemanticsAgreement:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_every_step_is_a_compiled_transition(self, seed):
        """Simulated steps must be edges of the compiled raw relation."""
        model = load_model(PROTOCOL)
        system = to_system(model, reflexive=False)
        trace = simulate(model, steps=8, seed=seed)
        for s, t in zip(trace, trace[1:]):
            assert system.has_transition(
                model.encoding.state_of(s), model.encoding.state_of(t)
            )

    def test_initial_state_respects_init(self):
        import random

        model = load_model(PROTOCOL)
        for seed in range(10):
            state = initial_state(model, random.Random(seed))
            assert state["s"] == "idle"

    def test_init_constraint_rejection_sampling(self):
        import random

        model = load_model(CONSTRAINED)
        for seed in range(10):
            state = initial_state(model, random.Random(seed))
            assert state["a"] == state["b"]


class TestTraceChecking:
    def test_invariant_violation_located(self):
        model = load_model(TOGGLE)
        trace = simulate(model, steps=4, seed=0)
        # "x is false" breaks at state 1
        assert check_trace(model, trace, Not(atom("x"))) == 1

    def test_invariant_holds(self):
        model = load_model(CONSTRAINED)
        trace = simulate(model, steps=4, seed=1)
        from repro.logic.ctl import Iff

        assert check_trace(model, trace, Iff(atom("a"), atom("b"))) is None


class TestFormatting:
    def test_only_changes_printed(self):
        model = load_model(PROTOCOL)
        trace = simulate(model, steps=5, seed=3)
        text = format_trace(trace)
        assert text.startswith("-> State 0 <-")
        # a state where nothing changed prints just its header
        assert "State 5" in text

    def test_booleans_rendered_as_bits(self):
        model = load_model(TOGGLE)
        text = format_trace(simulate(model, steps=1, seed=0))
        assert "x = 0" in text and "x = 1" in text


class TestErrors:
    def test_fallthrough_step_raises(self):
        model = load_model(
            """
MODULE main
VAR x : boolean;
ASSIGN next(x) := case x : 0; esac;
"""
        )
        with pytest.raises(ElaborationError):
            simulate(model, steps=2, seed=0, start={"x": False})
