"""Property-based fuzzing of the SMV front end.

Random modules (enum/boolean variables, random guarded case assignments
with set-literal nondeterminism, some free variables) are pushed through
both compilation backends and the simulator; all three views of the
semantics must coincide.
"""

import random

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.smv.ast import (
    Assign,
    BinOp,
    BoolLit,
    Case,
    IntLit,
    Module,
    Name,
    SetLit,
    UnaryOp,
    VarDecl,
)
from repro.smv.compile_explicit import to_system
from repro.smv.compile_symbolic import to_symbolic
from repro.smv.elaborate import SmvModel
from repro.smv.simulate import simulate

_DOMAINS = {
    "v0": ("a", "b"),
    "v1": ("p", "q", "r"),
    "v2": "boolean",
}


@st.composite
def conditions(draw):
    """A random boolean guard over the fixed variable pool."""
    kind = draw(st.integers(0, 3))
    if kind == 0:
        var = draw(st.sampled_from(["v0", "v1"]))
        dom = _DOMAINS[var]
        return BinOp("=", Name(var), Name(draw(st.sampled_from(dom))))
    if kind == 1:
        return Name("v2")
    if kind == 2:
        return UnaryOp("!", draw(conditions()))
    op = draw(st.sampled_from(["&", "|"]))
    return BinOp(op, draw(conditions()), draw(conditions()))


@st.composite
def value_exprs(draw, var: str):
    """A random RHS for ``next(var)``: constant, copy, or set literal."""
    dom = _DOMAINS[var]
    if dom == "boolean":
        return draw(
            st.sampled_from(
                [Name(var), UnaryOp("!", Name(var)), IntLit(0), IntLit(1)]
            )
        )
    choices = [Name(v) for v in dom] + [Name(var)]
    kind = draw(st.integers(0, 1))
    if kind == 0:
        return draw(st.sampled_from(choices))
    picked = draw(st.lists(st.sampled_from(choices), min_size=1, max_size=2))
    return SetLit(tuple(picked))


@st.composite
def modules(draw):
    decls = [
        VarDecl("v0", _DOMAINS["v0"]),
        VarDecl("v1", _DOMAINS["v1"]),
        VarDecl("v2", "boolean"),
    ]
    assigns = []
    for name in ("v0", "v1", "v2"):
        if draw(st.booleans()):
            continue  # leave the variable free
        branches = []
        for _ in range(draw(st.integers(0, 2))):
            branches.append(
                (draw(conditions()), draw(value_exprs(name)))
            )
        branches.append((IntLit(1), draw(value_exprs(name))))  # default
        assigns.append(Assign("next", name, Case(tuple(branches))))
    return Module(name="main", variables=decls, assigns=assigns)


@given(modules())
@settings(max_examples=60, deadline=None)
def test_backends_agree_on_valid_edges(module):
    model = SmvModel(module)
    explicit = to_system(model, reflexive=False)
    symbolic = to_symbolic(model, reflexive=False).to_explicit()
    valid_states = [
        model.encoding.state_of(env)
        for env in model.encoding.all_assignments()
    ]

    def relation(system):
        # compare via successor queries so implicit/explicit self-loop
        # storage (the decoder may detect reflexivity) doesn't matter
        return {(s, t) for s in valid_states for t in system.successors(s)}

    assert relation(symbolic) == relation(explicit)


@given(modules())
@settings(max_examples=40, deadline=None)
def test_partition_matches_monolithic(module):
    model = SmvModel(module)
    sym = to_symbolic(model, reflexive=False)
    assert sym.bdd.conj(sym.partitions) == sym.transition


@given(modules(), st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_simulation_walks_the_compiled_relation(module, seed):
    model = SmvModel(module)
    system = to_system(model, reflexive=False)
    trace = simulate(model, steps=6, seed=seed)
    for s, t in zip(trace, trace[1:]):
        assert system.has_transition(
            model.encoding.state_of(s), model.encoding.state_of(t)
        )


@given(modules())
@settings(max_examples=30, deadline=None)
def test_partitioned_pre_image_exact_on_random_models(module):
    model = SmvModel(module)
    sym = to_symbolic(model, reflexive=False)
    bdd = sym.bdd
    targets = [bdd.var(sym.atoms[0])]
    xor = bdd.var(sym.atoms[0])
    for name in sym.atoms[1:]:
        xor = bdd.apply("xor", xor, bdd.var(name))
    targets.append(xor)
    for target in targets:
        assert sym.pre_image_partitioned(target) == sym.pre_image(target)


@given(modules())
@settings(max_examples=30, deadline=None)
def test_every_valid_state_total(module):
    """The compiled raw relation is total on finite-domain states."""
    model = SmvModel(module)
    system = to_system(model, reflexive=False)
    for env in model.encoding.all_assignments():
        assert system.successors(model.encoding.state_of(env))
