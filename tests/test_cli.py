"""Tests for the command-line interface."""

import pytest

from repro.cli import main

GOOD = """
MODULE main
VAR x : boolean;
ASSIGN next(x) := 1;
SPEC x -> AX x
"""

BAD = """
MODULE main
VAR x : boolean;
ASSIGN next(x) := {0, 1};
SPEC x -> AX x
"""


@pytest.fixture
def good_file(tmp_path):
    path = tmp_path / "good.smv"
    path.write_text(GOOD)
    return str(path)


@pytest.fixture
def bad_file(tmp_path):
    path = tmp_path / "bad.smv"
    path.write_text(BAD)
    return str(path)


class TestCheck:
    def test_exit_zero_when_true(self, good_file, capsys):
        assert main(["check", good_file]) == 0
        out = capsys.readouterr().out
        assert "is true" in out and "BDD nodes allocated" in out

    def test_exit_one_when_false(self, bad_file, capsys):
        assert main(["check", bad_file]) == 1
        assert "is false" in capsys.readouterr().out

    def test_explicit_engine(self, good_file, capsys):
        assert main(["check", "--explicit", good_file]) == 0
        assert "is true" in capsys.readouterr().out

    def test_stats_flag_symbolic(self, good_file, capsys):
        assert main(["check", "--stats", good_file]) == 0
        out = capsys.readouterr().out
        assert "BDD cache:" in out and "hit rate" in out
        assert "BDD unique table: peak" in out
        assert "fixpoint iterations:" in out

    def test_stats_flag_explicit(self, good_file, capsys):
        assert main(["check", "--explicit", "--stats", good_file]) == 0
        out = capsys.readouterr().out
        assert "resources used:" in out
        assert "subformulas evaluated:" in out

    def test_no_stats_by_default(self, good_file, capsys):
        assert main(["check", good_file]) == 0
        assert "BDD cache:" not in capsys.readouterr().out

    def test_reflexive_flag_changes_semantics(self, tmp_path, capsys):
        path = tmp_path / "m.smv"
        path.write_text(
            "MODULE main\nVAR x : boolean;\nASSIGN next(x) := 1;\nSPEC !x -> AX x\n"
        )
        assert main(["check", str(path)]) == 0
        assert main(["check", "--reflexive", str(path)]) == 1


class TestCheckCache:
    def test_cold_then_warm_stdout_identical(self, good_file, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        assert main(["check", good_file, "--cache", cache]) == 0
        cold = capsys.readouterr()
        assert "result store: 0 hit(s), 1 miss(es)" in cold.err
        assert main(["check", good_file, "--cache", cache]) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out  # byte-identical report
        assert "result store: 1 hit(s), 0 miss(es)" in warm.err

    def test_cache_preserves_failure_exit_code(self, bad_file, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        assert main(["check", bad_file, "--cache", cache]) == 1
        cold = capsys.readouterr().out
        assert "execution sequence" in cold
        assert main(["check", bad_file, "--cache", cache]) == 1
        assert capsys.readouterr().out == cold

    def test_cache_explicit_engine(self, good_file, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        assert main(["check", "--explicit", good_file, "--cache", cache]) == 0
        assert "is true" in capsys.readouterr().out
        assert main(["check", "--explicit", good_file, "--cache", cache]) == 0
        assert "result store: 1 hit(s)" in capsys.readouterr().err

    def test_cached_report_matches_plain_check(self, good_file, capsys, tmp_path):
        assert main(["check", good_file]) == 0
        plain = capsys.readouterr().out
        assert main(["check", good_file, "--cache", str(tmp_path / "c")]) == 0
        cached = capsys.readouterr().out

        def stable(text):  # wall time is the one legitimate difference
            return [
                line
                for line in text.splitlines()
                if not line.startswith("user time:")
            ]

        assert stable(cached) == stable(plain)


class TestCheckJson:
    def test_json_payload_shape(self, good_file, capsys):
        import json

        assert main(["check", good_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.check-report/1"
        assert payload["all_true"] is True
        assert payload["cache"] is None
        (spec,) = payload["specs"]
        assert spec["holds"] is True and len(spec["fingerprint"]) == 64

    def test_json_exit_code_and_counterexample(self, bad_file, capsys):
        import json

        assert main(["check", bad_file, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["all_true"] is False
        assert payload["specs"][0]["counterexample"]

    def test_json_with_cache_reports_hits(self, good_file, capsys, tmp_path):
        import json

        cache = str(tmp_path / "cache")
        assert main(["check", good_file, "--json", "--cache", cache]) == 0
        capsys.readouterr()
        assert main(["check", good_file, "--json", "--cache", cache]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache"] == {"hits": 1, "misses": 0}
        assert payload["specs"][0]["cached"] is True


class TestServeSubmit:
    def test_round_trip_over_http(self, good_file, bad_file, capsys, tmp_path):
        import threading

        from repro.serve.http import create_server
        from repro.serve.jobs import JobManager
        from repro.store import ResultStore

        store = ResultStore(tmp_path / "cache")
        manager = JobManager(jobs=1, store=store, metrics=store.metrics)
        server = create_server(manager=manager)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        url = f"http://127.0.0.1:{server.port}"
        try:
            assert main(["submit", good_file, "--url", url]) == 0
            out = capsys.readouterr().out
            assert "is true" in out and "result store:" in out
            assert main(["submit", good_file, bad_file, "--url", url]) == 1
            out = capsys.readouterr().out
            assert "is false" in out and "==" in out  # per-file headers
        finally:
            server.shutdown()
            server.server_close()
            manager.stop()

    def test_submit_unreachable_exits_2(self, good_file, capsys):
        code = main(
            ["submit", good_file, "--url", "http://127.0.0.1:1", "--wait", "1"]
        )
        assert code == 2
        assert "repro:" in capsys.readouterr().err


class TestSimulate:
    def test_prints_states(self, good_file, capsys):
        assert main(["simulate", good_file, "-n", "3", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "-> State 0 <-" in out and "-> State 3 <-" in out


class TestGraph:
    def test_dot_output(self, good_file, capsys):
        assert main(["graph", good_file]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_decoded_output(self, good_file, capsys):
        assert main(["graph", "--decoded", good_file]) == 0
        assert "x=" in capsys.readouterr().out


class TestReachable:
    def test_stats(self, good_file, capsys):
        assert main(["reachable", good_file]) == 0
        out = capsys.readouterr().out
        assert "reachable states" in out
        assert "diameter" in out


class TestObservability:
    def test_trace_writes_chrome_events(self, good_file, tmp_path, capsys):
        import json

        out = tmp_path / "trace.json"
        assert main(["check", good_file, "--trace", str(out)]) == 0
        document = json.loads(out.read_text())
        events = document["traceEvents"]
        assert any(e["ph"] == "X" for e in events)
        names = {e["name"] for e in events}
        assert {"smv.parse", "smv.check_model", "check.symbolic"} <= names
        assert "trace written to" in capsys.readouterr().err

    def test_trace_format_jsonl(self, good_file, tmp_path):
        import json

        out = tmp_path / "trace.jsonl"
        code = main(
            ["check", good_file, "--trace", str(out), "--trace-format", "jsonl"]
        )
        assert code == 0
        records = [
            json.loads(line) for line in out.read_text().splitlines() if line
        ]
        assert records and records[0]["id"] == 0
        assert {"smv.parse", "check.symbolic"} <= {r["name"] for r in records}

    def test_profile_prints_span_tree_and_table(self, good_file, capsys):
        assert main(["check", good_file, "--profile"]) == 0
        out = capsys.readouterr().out
        assert "span tree (inclusive wall time):" in out
        assert "by span name (sorted by inclusive time):" in out
        assert "smv.check_model" in out

    def test_trace_preserves_exit_code(self, bad_file, tmp_path):
        out = tmp_path / "trace.json"
        assert main(["check", bad_file, "--trace", str(out)]) == 1
        assert out.exists()

    def test_no_trace_flags_leave_tracer_disabled(self, good_file):
        from repro.obs.tracer import TRACER

        TRACER.reset()
        assert main(["check", good_file]) == 0
        assert list(TRACER.spans()) == []

    def test_demo_supports_profile(self, capsys):
        assert main(["demo", "afs1-safety", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "proof.obligation" in out
        assert "by span name (sorted by inclusive time):" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_missing_file_exits_2(capsys):
    assert main(["check", "/nonexistent/model.smv"]) == 2
    assert "repro:" in capsys.readouterr().err


def test_syntax_error_exits_2(tmp_path, capsys):
    path = tmp_path / "broken.smv"
    path.write_text("MODULE main VAR x :")
    assert main(["check", str(path)]) == 2
    assert "repro:" in capsys.readouterr().err


class TestObsCommand:
    @pytest.fixture
    def event_log(self, tmp_path):
        import json

        path = tmp_path / "events.jsonl"
        records = [
            {"ts": 10.0, "level": "info", "event": "job.submitted",
             "trace_id": "t1", "job_id": "j1", "checks": 2},
            {"ts": 11.0, "level": "debug", "event": "job.check",
             "trace_id": "t1", "job_id": "j1", "index": 0},
            {"ts": 12.0, "level": "info", "event": "job.done",
             "trace_id": "t1", "job_id": "j1", "total_seconds": 2.0},
            {"ts": 13.0, "level": "error", "event": "job.failed",
             "trace_id": "t2", "job_id": "j2", "error": "boom"},
        ]
        path.write_text(
            "".join(json.dumps(r) + "\n" for r in records)
        )
        return str(path)

    def test_tail_renders_events(self, event_log, capsys):
        assert main(["obs", "tail", event_log]) == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        assert len(lines) == 4
        assert "job.submitted" in lines[0] and "trace_id=t1" in lines[0]
        assert lines[-1].split()[1] == "ERROR"

    def test_tail_respects_line_count_and_level(self, event_log, capsys):
        assert main(["obs", "tail", event_log, "-n", "1"]) == 0
        assert len(capsys.readouterr().out.splitlines()) == 1
        assert main(["obs", "tail", event_log, "--level", "error"]) == 0
        out = capsys.readouterr().out
        assert "job.failed" in out and "job.done" not in out

    def test_tail_filters_by_trace_id(self, event_log, capsys):
        assert main(["obs", "tail", event_log, "--trace-id", "t2"]) == 0
        out = capsys.readouterr().out
        assert "job.failed" in out and "job.submitted" not in out

    def test_summary_counts_and_latency(self, event_log, capsys):
        assert main(["obs", "summary", event_log]) == 0
        out = capsys.readouterr().out
        assert "events: 4 (1 error(s))" in out
        assert "job.submitted" in out and "job.done" in out
        assert "job.done latency: n=1" in out
        assert "mean=2.0000s" in out

    def test_serve_log_file_round_trip(self, good_file, tmp_path, capsys):
        """repro serve --log-file events feed repro obs summary."""
        import pathlib
        import time

        from repro.obs.log import EventLog
        from repro.serve.jobs import JobManager, JobRequest

        log_path = tmp_path / "serve.jsonl"
        log = EventLog(path=log_path)
        manager = JobManager(jobs=1, queue_size=2, log=log)
        manager.start()
        try:
            job = manager.submit(
                [JobRequest(source=pathlib.Path(good_file).read_text())]
            )
            deadline = time.monotonic() + 60
            while not job.terminal and time.monotonic() < deadline:
                time.sleep(0.01)
            assert job.state == "done"
        finally:
            manager.stop()
            log.close()
        assert main(["obs", "summary", str(log_path)]) == 0
        out = capsys.readouterr().out
        assert "job.done" in out


class TestStoreCommand:
    @pytest.fixture
    def populated(self, good_file, tmp_path, capsys):
        cache = tmp_path / "cache"
        main(["check", good_file, "--cache", str(cache)])
        main(["check", good_file, "--cache", str(cache)])
        capsys.readouterr()
        return cache

    def test_stats_reports_inventory_and_counters(self, populated, capsys):
        assert main(["store", "stats", str(populated)]) == 0
        out = capsys.readouterr().out
        assert f"result store: {populated}" in out
        assert "by kind:" in out and "spec" in out
        assert "hits.spec: 1" in out and "misses.spec: 1" in out

    def test_stats_json(self, populated, capsys):
        import json

        assert main(["store", "stats", str(populated), "--json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["records"] == len(list(populated.glob("objects/*/*.json")))
        assert info["counters"]["writes.spec"] == 1

    def test_gc_to_zero_evicts_everything(self, populated, capsys):
        assert main(
            ["store", "gc", str(populated), "--max-bytes", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert "0 remain (0 bytes)" in out
        assert not list(populated.glob("objects/*/*.json"))

    def test_clear_removes_records(self, populated, capsys):
        assert main(["store", "clear", str(populated)]) == 0
        assert "record(s)" in capsys.readouterr().out
        assert not list(populated.glob("objects/*/*.json"))


class TestDemoCache:
    def test_demo_cache_cold_then_warm(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["demo", "afs2-safety", "--cache", cache]) == 0
        cold = capsys.readouterr()
        assert "0 hit(s), 3 miss(es)" in cold.err
        assert main(["demo", "afs2-safety", "--cache", cache]) == 0
        warm = capsys.readouterr()
        assert "3 hit(s), 0 miss(es)" in warm.err
        assert warm.out == cold.out

    def test_demo_without_cache_prints_no_store_line(self, capsys):
        assert main(["demo", "mutex"]) == 0
        assert "result store" not in capsys.readouterr().err
