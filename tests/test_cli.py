"""Tests for the command-line interface."""

import pytest

from repro.cli import main

GOOD = """
MODULE main
VAR x : boolean;
ASSIGN next(x) := 1;
SPEC x -> AX x
"""

BAD = """
MODULE main
VAR x : boolean;
ASSIGN next(x) := {0, 1};
SPEC x -> AX x
"""


@pytest.fixture
def good_file(tmp_path):
    path = tmp_path / "good.smv"
    path.write_text(GOOD)
    return str(path)


@pytest.fixture
def bad_file(tmp_path):
    path = tmp_path / "bad.smv"
    path.write_text(BAD)
    return str(path)


class TestCheck:
    def test_exit_zero_when_true(self, good_file, capsys):
        assert main(["check", good_file]) == 0
        out = capsys.readouterr().out
        assert "is true" in out and "BDD nodes allocated" in out

    def test_exit_one_when_false(self, bad_file, capsys):
        assert main(["check", bad_file]) == 1
        assert "is false" in capsys.readouterr().out

    def test_explicit_engine(self, good_file, capsys):
        assert main(["check", "--explicit", good_file]) == 0
        assert "is true" in capsys.readouterr().out

    def test_stats_flag_symbolic(self, good_file, capsys):
        assert main(["check", "--stats", good_file]) == 0
        out = capsys.readouterr().out
        assert "BDD cache:" in out and "hit rate" in out
        assert "BDD unique table: peak" in out
        assert "fixpoint iterations:" in out

    def test_stats_flag_explicit(self, good_file, capsys):
        assert main(["check", "--explicit", "--stats", good_file]) == 0
        out = capsys.readouterr().out
        assert "resources used:" in out
        assert "subformulas evaluated:" in out

    def test_no_stats_by_default(self, good_file, capsys):
        assert main(["check", good_file]) == 0
        assert "BDD cache:" not in capsys.readouterr().out

    def test_reflexive_flag_changes_semantics(self, tmp_path, capsys):
        path = tmp_path / "m.smv"
        path.write_text(
            "MODULE main\nVAR x : boolean;\nASSIGN next(x) := 1;\nSPEC !x -> AX x\n"
        )
        assert main(["check", str(path)]) == 0
        assert main(["check", "--reflexive", str(path)]) == 1


class TestSimulate:
    def test_prints_states(self, good_file, capsys):
        assert main(["simulate", good_file, "-n", "3", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "-> State 0 <-" in out and "-> State 3 <-" in out


class TestGraph:
    def test_dot_output(self, good_file, capsys):
        assert main(["graph", good_file]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_decoded_output(self, good_file, capsys):
        assert main(["graph", "--decoded", good_file]) == 0
        assert "x=" in capsys.readouterr().out


class TestReachable:
    def test_stats(self, good_file, capsys):
        assert main(["reachable", good_file]) == 0
        out = capsys.readouterr().out
        assert "reachable states" in out
        assert "diameter" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_missing_file_exits_2(capsys):
    assert main(["check", "/nonexistent/model.smv"]) == 2
    assert "repro:" in capsys.readouterr().err


def test_syntax_error_exits_2(tmp_path, capsys):
    path = tmp_path / "broken.smv"
    path.write_text("MODULE main VAR x :")
    assert main(["check", str(path)]) == 2
    assert "repro:" in capsys.readouterr().err
