"""Tests for the symbolic system representation."""

import pytest
from hypothesis import given, settings

from tests.conftest import systems
from repro.bdd.manager import FALSE, TRUE
from repro.systems.compose import compose, expand
from repro.systems.symbolic import (
    SymbolicSystem,
    primed,
    symbolic_compose,
    symbolic_compose_all,
    symbolic_expand,
)
from repro.systems.system import System

E = frozenset()
X = frozenset({"x"})


class TestRoundTrip:
    @given(systems())
    @settings(max_examples=50, deadline=None)
    def test_explicit_symbolic_explicit(self, m):
        assert SymbolicSystem.from_explicit(m).to_explicit() == m

    def test_raw_system_round_trip(self):
        raw = System({"x"}, [(E, X), (X, X)], reflexive=False)
        back = SymbolicSystem.from_explicit(raw).to_explicit()
        assert back == raw
        assert not back.reflexive


class TestRelationStructure:
    def test_identity_relation_is_total_frame(self):
        sym = SymbolicSystem({"x", "y"})
        assert sym.transition == sym.identity_relation()
        assert sym.is_total()

    def test_frame_of_empty_set_is_true(self):
        sym = SymbolicSystem({"x"})
        assert sym.frame([]) == TRUE

    def test_set_transition_reflexive_closure(self):
        sym = SymbolicSystem({"x"})
        edge = sym.bdd.apply(
            "and", sym.state_cube(E), sym.state_cube(X, next_state=True)
        )
        sym.set_transition(edge, reflexive=True)
        assert sym.to_explicit() == System({"x"}, [(E, X)])

    def test_node_count_positive(self):
        sym = SymbolicSystem.from_explicit(System({"x"}, [(E, X)]))
        assert sym.node_count() > 0


class TestImages:
    def setup_method(self):
        self.m = System.from_pairs({"x"}, [((), ("x",))])
        self.sym = SymbolicSystem.from_explicit(self.m)

    def test_pre_image_of_x(self):
        x_set = self.sym.bdd.var("x")
        pre = self.sym.pre_image(x_set)
        assert pre == TRUE  # both states can reach x in one step

    def test_pre_image_of_not_x(self):
        notx = self.sym.bdd.nvar("x")
        pre = self.sym.pre_image(notx)
        assert pre == notx  # only ∅ (by stutter) reaches ¬x

    def test_post_image(self):
        notx = self.sym.bdd.nvar("x")
        post = self.sym.post_image(notx)
        assert post == TRUE  # ∅ steps to both ∅ and {x}


class TestSymbolicComposition:
    @given(systems(atoms=("a", "b")), systems(atoms=("b", "c")))
    @settings(max_examples=40, deadline=None)
    def test_matches_explicit_composition(self, m1, m2):
        explicit = compose(m1, m2)
        symbolic = symbolic_compose(
            SymbolicSystem.from_explicit(m1), SymbolicSystem.from_explicit(m2)
        )
        assert symbolic.to_explicit() == explicit

    @given(systems(atoms=("a", "b"), max_atoms=2))
    @settings(max_examples=30, deadline=None)
    def test_expand_matches_explicit(self, m):
        assert symbolic_expand(
            SymbolicSystem.from_explicit(m), {"z"}
        ).to_explicit() == expand(m, {"z"})

    def test_compose_all(self):
        ms = [System({"a"}, [(E, frozenset({"a"}))]), System({"b"}), System({"c"})]
        got = symbolic_compose_all([SymbolicSystem.from_explicit(m) for m in ms])
        from repro.systems.compose import compose_all

        assert got.to_explicit() == compose_all(ms)

    def test_compose_all_empty_rejected(self):
        from repro.errors import SystemError_

        with pytest.raises(SystemError_):
            symbolic_compose_all([])


def test_primed_naming():
    assert primed("x") == "x'"
    sym = SymbolicSystem({"x"})
    assert set(sym.bdd.var_names) == {"x", "x'"}
