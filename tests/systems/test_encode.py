"""Tests for the finite-domain boolean encoding — incl. paper Figure 3."""

import pytest

from repro.casestudies.figures import (
    figure3_encoding,
    figure3_less_than_2,
    figure3_system,
)
from repro.checking.explicit import ExplicitChecker
from repro.errors import LogicError
from repro.logic.ctl import AX, Atom, Implies, Not, TRUE
from repro.systems.encode import Encoding, FiniteVar


class TestFiniteVar:
    def test_nbits(self):
        assert FiniteVar("x", (0,)).nbits == 1
        assert FiniteVar("x", (0, 1)).nbits == 1
        assert FiniteVar("x", (0, 1, 2)).nbits == 2
        assert FiniteVar("x", tuple(range(9))).nbits == 4

    def test_boolean_uses_bare_name(self):
        v = FiniteVar("flag", (False, True))
        assert v.is_boolean
        assert v.bits == ("flag",)

    def test_enum_bit_names(self):
        v = FiniteVar("x", ("a", "b", "c"))
        assert v.bits == ("x.0", "x.1")

    def test_bit_values_little_endian(self):
        v = FiniteVar("x", ("a", "b", "c", "d"))
        assert v.bit_values("c") == {"x.0": False, "x.1": True}

    def test_empty_domain_rejected(self):
        with pytest.raises(LogicError):
            FiniteVar("x", ())

    def test_duplicate_values_rejected(self):
        with pytest.raises(LogicError):
            FiniteVar("x", ("a", "a"))

    def test_index_of_unknown_value(self):
        with pytest.raises(LogicError):
            FiniteVar("x", ("a",)).index_of("z")


class TestEncoding:
    def setup_method(self):
        self.enc = Encoding(
            [FiniteVar("x", (0, 1, 2)), FiniteVar("b", (False, True))]
        )

    def test_atoms_grouped_in_order(self):
        assert self.enc.atoms == ("x.0", "x.1", "b")

    def test_duplicate_names_rejected(self):
        with pytest.raises(LogicError):
            Encoding([FiniteVar("x", (0,)), FiniteVar("x", (1,))])

    def test_state_of_roundtrips_decode(self):
        for assignment in self.enc.all_assignments():
            state = self.enc.state_of(assignment)
            assert self.enc.decode(state) == assignment

    def test_decode_junk_returns_none(self):
        junk = frozenset({"x.0", "x.1"})  # index 3 ∉ {0,1,2}
        assert self.enc.decode(junk) is None

    def test_state_of_missing_variable(self):
        with pytest.raises(LogicError):
            self.enc.state_of({"x": 0})

    def test_all_assignments_cartesian(self):
        assert len(self.enc.all_assignments()) == 6

    def test_eq_formula_pins_all_bits(self):
        f = self.enc.eq_formula("x", 2)
        assert f.atoms() == {"x.0", "x.1"}

    def test_in_formula(self):
        f = self.enc.in_formula("x", [0, 1])
        # x ∈ {0,1} iff ¬x.1
        assert "x.1" in f.atoms()

    def test_valid_formula_skips_power_of_two(self):
        enc = Encoding([FiniteVar("y", ("a", "b"))])
        assert enc.valid_formula() == TRUE

    def test_valid_formula_excludes_junk(self):
        f = self.enc.valid_formula()
        states = [self.enc.state_of(a) for a in self.enc.all_assignments()]
        # every real assignment satisfies it, the junk pattern does not
        from repro.systems.system import System

        ck = ExplicitChecker(System(self.enc.atoms))
        sat = ck.states_satisfying(f)
        for s in states:
            assert sat[ck._index(s)]
        assert not sat[ck._index(frozenset({"x.0", "x.1"}))]


class TestPaperFigure3:
    def test_two_bits_for_four_values(self):
        enc = figure3_encoding()
        assert enc.atoms == ("x.0", "x.1")

    def test_counter_preserves_transitions(self):
        """The boolean system has exactly the 0→1→2→3→0 structure."""
        m = figure3_system()
        enc = figure3_encoding()
        state = lambda v: enc.state_of({"x": v})
        for v in range(4):
            assert m.has_transition(state(v), state((v + 1) % 4))
        assert not m.has_transition(state(0), state(2))

    def test_x_less_than_2_maps_to_not_high_bit(self):
        """Paper: the formula (x < 2) is mapped to (¬x₁)."""
        from repro.compositional.prop_logic import equivalent

        assert equivalent(figure3_less_than_2(), Not(Atom("x.1")))

    def test_mapped_formula_agrees_with_original(self):
        enc = figure3_encoding()
        ck = ExplicitChecker(figure3_system())
        sat = ck.states_satisfying(figure3_less_than_2())
        for v in range(4):
            assert sat[ck._index(enc.state_of({"x": v}))] == (v < 2)

    def test_next_step_property_is_universal_form(self):
        """p ⇒ AXq over the mapped propositions — §3.4's point."""
        from repro.compositional.classify import is_ax_step

        enc = figure3_encoding()
        f = Implies(enc.eq_formula("x", 0), AX(enc.eq_formula("x", 1)))
        assert is_ax_step(f)
