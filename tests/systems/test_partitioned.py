"""Tests for the conjunctive transition-relation partition."""

from pathlib import Path

import pytest

from repro.errors import SystemError_
from repro.logic.ctl import Implies, EX
from repro.smv.compile_symbolic import to_symbolic
from repro.smv.elaborate import SmvModel
from repro.smv.parser import parse_module
from repro.systems.symbolic import SymbolicSystem, primed

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

MODEL = """
MODULE main
VAR a : {x, y, z};
    b : boolean;
    inp : boolean;
ASSIGN
  next(a) := case b : x; a = x : y; 1 : a; esac;
  next(b) := !b;
"""


def _sym():
    return to_symbolic(SmvModel(parse_module(MODEL)))


class TestPartitionStructure:
    def test_one_partition_per_variable(self):
        sym = _sym()
        assert sym.partitions is not None
        assert len(sym.partitions) == 3  # a, b, inp

    def test_conjunction_equals_monolithic(self):
        sym = _sym()
        assert sym.bdd.conj(sym.partitions) == sym.transition

    def test_reflexive_compile_has_no_partition(self):
        sym = to_symbolic(SmvModel(parse_module(MODEL)), reflexive=True)
        assert sym.partitions is None
        assert not sym.prefer_partitions

    def test_prefer_partitions_on_by_default(self):
        # ≥ 2 conjunctive partitions → the compiler opts the system in
        assert _sym().prefer_partitions

    def test_single_variable_model_stays_monolithic(self):
        sym = to_symbolic(
            SmvModel(
                parse_module(
                    "MODULE main\nVAR x : boolean;\nASSIGN next(x) := !x;"
                )
            )
        )
        assert not sym.prefer_partitions


class TestPartitionedPreImage:
    def test_matches_monolithic_on_state_sets(self):
        sym = _sym()
        sym.prefer_partitions = False  # pin pre_image to the monolithic path
        bdd = sym.bdd
        # a spread of target sets: literals, cubes, xor-chains
        targets = [bdd.var("b"), bdd.nvar("inp")]
        targets.append(bdd.apply("and", bdd.var("a.0"), bdd.nvar("a.1")))
        xor = bdd.var(sym.atoms[0])
        for atom_name in sym.atoms[1:]:
            xor = bdd.apply("xor", xor, bdd.var(atom_name))
        targets.append(xor)
        for target in targets:
            assert sym.pre_image_partitioned(target) == sym.pre_image(target)

    def test_prefer_partitions_switch(self):
        sym = _sym()
        sym.prefer_partitions = False
        target = sym.bdd.var("b")
        expected = sym.pre_image(target)
        sym.prefer_partitions = True
        assert sym.pre_image(target) == expected

    def test_figure1_pre_images_agree(self):
        """Partitioned and monolithic pre-images agree on every subset
        shape of the paper's Figure 1 model."""
        model = SmvModel(
            parse_module((EXAMPLES / "figure1.smv").read_text())
        )
        sym = to_symbolic(model)
        bdd = sym.bdd
        targets = [bdd.var(a) for a in sym.atoms]
        targets += [bdd.negate(t) for t in list(targets)]
        targets.append(sym.bdd.conj(bdd.var(a) for a in sym.atoms))
        for target in targets:
            mono = bdd.and_exists(
                sym.transition,
                bdd.rename(target, {a: primed(a) for a in sym.atoms}),
                [primed(a) for a in sym.atoms],
            )
            assert sym.pre_image_partitioned(target) == mono

    def test_missing_partition_raises(self):
        plain = SymbolicSystem({"a"})
        with pytest.raises(SystemError_):
            plain.pre_image_partitioned(plain.bdd.var("a"))


class TestCheckerWithPartitions:
    def test_verdicts_identical(self):
        from repro.checking.symbolic import SymbolicChecker
        from repro.logic.restriction import Restriction

        model = SmvModel(parse_module(MODEL))
        mono = to_symbolic(model)
        mono.prefer_partitions = False
        part = to_symbolic(model)
        assert part.prefer_partitions  # compiler default since the flip
        r = Restriction(init=model.initial_formula())
        spec = Implies(
            model.encoding.eq_formula("a", "x"),
            EX(model.encoding.eq_formula("a", "y")),
        )
        assert bool(SymbolicChecker(mono).holds(spec, r)) == bool(
            SymbolicChecker(part).holds(spec, r)
        )
