"""Tests for the conjunctive transition-relation partition."""

import pytest

from repro.errors import SystemError_
from repro.logic.ctl import Implies, EX
from repro.smv.compile_symbolic import to_symbolic
from repro.smv.elaborate import SmvModel
from repro.smv.parser import parse_module
from repro.systems.symbolic import SymbolicSystem

MODEL = """
MODULE main
VAR a : {x, y, z};
    b : boolean;
    inp : boolean;
ASSIGN
  next(a) := case b : x; a = x : y; 1 : a; esac;
  next(b) := !b;
"""


def _sym():
    return to_symbolic(SmvModel(parse_module(MODEL)))


class TestPartitionStructure:
    def test_one_partition_per_variable(self):
        sym = _sym()
        assert sym.partitions is not None
        assert len(sym.partitions) == 3  # a, b, inp

    def test_conjunction_equals_monolithic(self):
        sym = _sym()
        assert sym.bdd.conj(sym.partitions) == sym.transition

    def test_reflexive_compile_has_no_partition(self):
        sym = to_symbolic(SmvModel(parse_module(MODEL)), reflexive=True)
        assert sym.partitions is None


class TestPartitionedPreImage:
    def test_matches_monolithic_on_state_sets(self):
        sym = _sym()
        bdd = sym.bdd
        # a spread of target sets: literals, cubes, xor-chains
        targets = [bdd.var("b"), bdd.nvar("inp")]
        targets.append(bdd.apply("and", bdd.var("a.0"), bdd.nvar("a.1")))
        xor = bdd.var(sym.atoms[0])
        for atom_name in sym.atoms[1:]:
            xor = bdd.apply("xor", xor, bdd.var(atom_name))
        targets.append(xor)
        for target in targets:
            assert sym.pre_image_partitioned(target) == sym.pre_image(target)

    def test_prefer_partitions_switch(self):
        sym = _sym()
        target = sym.bdd.var("b")
        expected = sym.pre_image(target)
        sym.prefer_partitions = True
        assert sym.pre_image(target) == expected

    def test_missing_partition_raises(self):
        plain = SymbolicSystem({"a"})
        with pytest.raises(SystemError_):
            plain.pre_image_partitioned(plain.bdd.var("a"))


class TestCheckerWithPartitions:
    def test_verdicts_identical(self):
        from repro.checking.symbolic import SymbolicChecker
        from repro.logic.restriction import Restriction

        model = SmvModel(parse_module(MODEL))
        mono = to_symbolic(model)
        part = to_symbolic(model)
        part.prefer_partitions = True
        r = Restriction(init=model.initial_formula())
        spec = Implies(
            model.encoding.eq_formula("a", "x"),
            EX(model.encoding.eq_formula("a", "y")),
        )
        assert bool(SymbolicChecker(mono).holds(spec, r)) == bool(
            SymbolicChecker(part).holds(spec, r)
        )
