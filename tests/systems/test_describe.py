"""Tests for variable-level formula rendering (Encoding.describe)."""

import pytest
from hypothesis import given, settings

from tests.conftest import prop_formulas
from repro.logic.ctl import (
    AF,
    AG,
    And,
    Const,
    EU,
    Implies,
    Not,
    Or,
    atom,
    substitute,
)
from repro.logic.evaluate import evaluate_propositional
from repro.logic.parser import parse_ctl
from repro.systems.encode import Encoding, FiniteVar


@pytest.fixture
def enc():
    return Encoding(
        [
            FiniteVar("belief", ("none", "invalid", "valid")),
            FiniteVar("r", ("null", "fetch", "val")),
            FiniteVar("flag", (False, True)),
        ]
    )


class TestPropositional:
    def test_single_equality(self, enc):
        assert enc.describe(enc.eq_formula("belief", "valid")) == "belief = valid"

    def test_value_set(self, enc):
        f = enc.in_formula("belief", ["none", "invalid"])
        assert enc.describe(f) == "belief in {none, invalid}"

    def test_boolean_variable(self, enc):
        assert enc.describe(atom("flag")) == "flag"
        assert enc.describe(Not(atom("flag"))) == "!flag"

    def test_product_form(self, enc):
        f = And(enc.eq_formula("belief", "valid"), enc.eq_formula("r", "val"))
        assert enc.describe(f) == "belief = valid & r = val"

    def test_constants(self, enc):
        assert enc.describe(Const(True)) == "true"
        assert enc.describe(Const(False)) == "false"
        # a contradiction over bits also collapses
        f = And(enc.eq_formula("r", "val"), enc.eq_formula("r", "null"))
        assert enc.describe(f) == "false"

    def test_implication_recursion(self, enc):
        f = Implies(
            enc.eq_formula("belief", "valid"), enc.eq_formula("r", "val")
        )
        assert enc.describe(f) == "(belief = valid -> r = val)"

    def test_small_dnf(self, enc):
        f = Or(
            And(enc.eq_formula("belief", "valid"), enc.eq_formula("r", "val")),
            And(enc.eq_formula("belief", "none"), enc.eq_formula("r", "null")),
        )
        described = enc.describe(f)
        assert "belief = valid & r = val" in described
        assert "belief = none & r = null" in described

    def test_foreign_atoms_fall_back(self, enc):
        f = And(atom("mystery"), enc.eq_formula("r", "val"))
        # not decodable as a whole, but sub-terms still decode
        assert "r = val" in enc.describe(f)
        assert "mystery" in enc.describe(f)


class TestTemporal:
    def test_ag_body_decoded(self, enc):
        f = AG(Implies(enc.eq_formula("belief", "valid"), atom("flag")))
        assert enc.describe(f) == "AG ((belief = valid -> flag))"

    def test_af_decoded(self, enc):
        assert enc.describe(AF(enc.eq_formula("r", "val"))) == "AF (r = val)"

    def test_until(self, enc):
        f = EU(enc.eq_formula("r", "fetch"), enc.eq_formula("r", "val"))
        assert enc.describe(f) == "E[r = fetch U r = val]"


class TestFaithfulness:
    @given(prop_formulas(atoms=("belief.0", "belief.1", "flag"), max_depth=3))
    @settings(max_examples=80, deadline=None)
    def test_description_reparses_equivalently(self, f):
        """Decoded text, re-parsed, must be equivalent on real assignments."""
        enc = Encoding(
            [
                FiniteVar("belief", ("none", "invalid", "valid")),
                FiniteVar("flag", (False, True)),
            ]
        )
        described = enc.describe(f)
        if " in {" in described:
            return  # set syntax is display-only, not SMV-parseable
        # descriptions use SMV-level syntax: re-elaborate them over the
        # same variables and compare truth tables
        from repro.smv.parser import parse_spec
        from repro.smv.run import load_model

        model = load_model(
            "MODULE main\n"
            "VAR belief : {none, invalid, valid};\n"
            "    flag : boolean;\n"
        )
        source = described.replace("true", "1").replace("false", "0")
        reparsed = model.spec_formula(parse_spec(source))
        for assignment in enc.all_assignments():
            state = enc.state_of(assignment)
            assert evaluate_propositional(f, state) == evaluate_propositional(
                reparsed, state
            )
