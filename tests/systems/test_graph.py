"""Tests for graph views of systems."""

import networkx as nx

from repro.casestudies.figures import figure1_m, figure3_encoding, figure3_system
from repro.systems.graph import (
    decoded_graph,
    isomorphic,
    reachable_subgraph,
    to_dot,
    to_networkx,
)
from repro.systems.system import System

E = frozenset()
X = frozenset({"x"})


class TestNetworkx:
    def test_nodes_and_edges(self):
        g = to_networkx(figure1_m())
        assert g.number_of_nodes() == 2
        assert g.number_of_edges() == 2  # both directions, no stutter

    def test_include_stutter(self):
        g = to_networkx(figure1_m(), include_stutter=True)
        assert g.number_of_edges() == 4

    def test_custom_label(self):
        g = to_networkx(figure1_m(), label=lambda s: len(s))
        assert set(g.nodes) == {0, 1}


class TestReachable:
    def test_only_reachable_states(self):
        m = System.from_pairs({"x", "y"}, [((), ("x",))])
        g = reachable_subgraph(m, {E})
        # from ∅ we reach only ∅ and {x}
        assert set(g.nodes) == {(), ("x",)}


class TestDecodedGraph:
    def test_decodes_to_assignments(self):
        g = decoded_graph(figure3_system(), figure3_encoding())
        assert (("x", 0),) in g.nodes
        assert g.has_edge((("x", 0),), (("x", 1),))

    def test_junk_dropped_by_default(self):
        enc = figure3_encoding()
        assert all(n[0][0] == "x" for n in decoded_graph(figure3_system(), enc).nodes)


class TestDot:
    def test_dot_well_formed(self):
        text = to_dot(figure1_m())
        assert text.startswith("digraph")
        assert '"{}" -> "{x}";' in text

    def test_dot_with_stutter(self):
        text = to_dot(figure1_m(), include_stutter=True)
        assert '"{x}" -> "{x}";' in text


class TestIsomorphism:
    def test_isomorphic_relabelings(self):
        m1 = System.from_pairs({"x"}, [((), ("x",))])
        m2 = System.from_pairs({"y"}, [(("y",), ())])
        assert isomorphic(to_networkx(m1), to_networkx(m2))

    def test_non_isomorphic(self):
        m1 = System.from_pairs({"x"}, [((), ("x",)), (("x",), ())])
        m2 = System.from_pairs({"x"}, [((), ("x",))])
        assert not isomorphic(to_networkx(m1), to_networkx(m2))
