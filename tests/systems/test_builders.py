"""Tests for the convenience system builders."""

import pytest

from repro.checking.explicit import ExplicitChecker
from repro.errors import SystemError_
from repro.logic.ctl import AX, EF, EX, Implies, Not, atom
from repro.systems.builders import (
    chain,
    cycle,
    riser,
    system_from_function,
    toggle,
)
from repro.systems.encode import Encoding, FiniteVar


class TestFunctionBuilder:
    def setup_method(self):
        self.enc = Encoding([FiniteVar("n", (0, 1, 2)), FiniteVar("b", (False, True))])

    def test_deterministic_function(self):
        m = system_from_function(
            self.enc, lambda s: [{**s, "n": (s["n"] + 1) % 3}]
        )
        ck = ExplicitChecker(m)
        assert ck.holds(
            Implies(self.enc.eq_formula("n", 0), EX(self.enc.eq_formula("n", 1)))
        )

    def test_nondeterministic_function(self):
        m = system_from_function(
            self.enc, lambda s: [{**s, "b": True}, {**s, "b": False}],
            reflexive=False,
        )
        # every finite-domain state reaches both b-values in one step
        # (junk bit patterns have no successors in the raw relation)
        from repro.logic.restriction import Restriction

        valid = Restriction(init=self.enc.valid_formula())
        ck = ExplicitChecker(m)
        assert ck.holds(EX(atom("b")), valid)
        assert ck.holds(EX(Not(atom("b"))), valid)

    def test_empty_successors_mean_stutter_only(self):
        m = system_from_function(self.enc, lambda s: [])
        for s in [self.enc.state_of(a) for a in self.enc.all_assignments()]:
            assert m.successors(s) == {s}

    def test_out_of_domain_result_rejected(self):
        with pytest.raises(Exception):
            system_from_function(self.enc, lambda s: [{**s, "n": 99}])

    def test_size_guard(self):
        big = Encoding([FiniteVar(f"v{i}", tuple(range(8))) for i in range(6)])
        with pytest.raises(SystemError_):
            system_from_function(big, lambda s: [s])


class TestStockShapes:
    def test_toggle_matches_figure1(self):
        from repro.casestudies.figures import figure1_m

        assert toggle("x") == figure1_m()

    def test_riser_is_one_way(self):
        m = riser("a")
        ck = ExplicitChecker(m)
        assert ck.holds(Implies(atom("a"), AX(atom("a"))))
        assert ck.holds(Implies(Not(atom("a")), EX(atom("a"))))

    def test_chain_rises_in_order(self):
        m = chain(["a", "b", "c"])
        ck = ExplicitChecker(m)
        start = frozenset()
        # a before b before c along the intended run
        assert m.has_transition(start, frozenset({"a"}))
        assert m.has_transition(frozenset({"a"}), frozenset({"a", "b"}))
        assert not m.has_transition(start, frozenset({"b"}))
        from repro.logic.ctl import land

        start_pred = land(Not(atom("a")), Not(atom("b")), Not(atom("c")))
        assert ck.holds(Implies(start_pred, EF(atom("c"))))

    def test_chain_needs_atoms(self):
        with pytest.raises(SystemError_):
            chain([])

    def test_cycle_visits_whole_domain(self):
        enc = Encoding([FiniteVar("s", ("p", "q", "r"))])
        m = cycle(enc, "s")
        ck = ExplicitChecker(m)
        for value in ("q", "r"):
            assert ck.holds(
                Implies(enc.eq_formula("s", "p"), EF(enc.eq_formula("s", value)))
            )
