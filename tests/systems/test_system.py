"""Tests for the explicit System representation."""

import pytest

from repro.errors import SystemError_
from repro.systems.system import (
    MAX_EXPLICIT_ATOMS,
    System,
    all_states,
    identity_system,
)

E = frozenset()
X = frozenset({"x"})
Y = frozenset({"y"})
XY = frozenset({"x", "y"})


class TestConstruction:
    def test_self_loops_dropped_in_reflexive_mode(self):
        m = System({"x"}, [(X, X), (E, X)])
        assert m.edges == frozenset({(E, X)})

    def test_self_loops_kept_in_raw_mode(self):
        m = System({"x"}, [(X, X), (E, X)], reflexive=False)
        assert (X, X) in m.edges

    def test_foreign_atoms_rejected(self):
        with pytest.raises(SystemError_):
            System({"x"}, [(E, Y)])

    def test_from_pairs(self):
        m = System.from_pairs({"x"}, [((), ("x",))])
        assert m.edges == frozenset({(E, X)})

    def test_equality_includes_flag(self):
        a = System({"x"}, [(E, X)])
        b = System({"x"}, [(E, X)], reflexive=False)
        assert a != b
        assert a == System({"x"}, [(E, X)])

    def test_hashable(self):
        assert len({System({"x"}), System({"x"})}) == 1


class TestStateSpace:
    def test_all_states_is_powerset(self):
        assert set(all_states({"x", "y"})) == {E, X, Y, XY}

    def test_num_states(self):
        assert System({"x", "y"}).num_states() == 4

    def test_all_states_guard(self):
        with pytest.raises(SystemError_):
            list(all_states([f"a{i}" for i in range(MAX_EXPLICIT_ATOMS + 1)]))


class TestRelation:
    def test_successors_include_self_when_reflexive(self):
        m = System({"x"}, [(E, X)])
        assert m.successors(E) == {E, X}
        assert m.successors(X) == {X}

    def test_successors_raw_mode(self):
        m = System({"x"}, [(E, X)], reflexive=False)
        assert m.successors(E) == {X}
        assert m.successors(X) == set()

    def test_predecessors(self):
        m = System({"x"}, [(E, X)])
        assert m.predecessors(X) == {E, X}

    def test_has_transition(self):
        m = System({"x"}, [(E, X)])
        assert m.has_transition(E, X)
        assert m.has_transition(X, X)  # implicit stutter
        assert not m.has_transition(X, E)

    def test_relation_includes_implicit_loops(self):
        m = System({"x"}, [(E, X)])
        assert set(m.relation()) == {(E, X), (E, E), (X, X)}

    def test_num_transitions(self):
        m = System({"x"}, [(E, X)])
        assert m.num_transitions() == 3

    def test_is_total(self):
        assert System({"x"}, [(E, X)]).is_total()
        assert not System({"x"}, [(E, X)], reflexive=False).is_total()
        full = System({"x"}, [(E, X), (X, X), (X, E), (E, E)], reflexive=False)
        assert full.is_total()

    def test_reflexive_closure(self):
        raw = System({"x"}, [(E, X), (X, X)], reflexive=False)
        closed = raw.reflexive_closure()
        assert closed.reflexive
        assert closed.edges == frozenset({(E, X)})
        assert closed.reflexive_closure() is closed


def test_identity_system_has_no_edges():
    m = identity_system({"x", "y"})
    assert m.edges == frozenset()
    assert m.successors(XY) == {XY}
