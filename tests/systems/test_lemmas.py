"""Machine-checks of the paper's Lemmas 1–11 on concrete and random systems."""

import pytest
from hypothesis import given, settings

from tests.conftest import prop_formulas, systems
from repro.logic.ctl import Atom, Not, Or, TRUE, atom
from repro.systems import lemmas
from repro.systems.system import System

E = frozenset()
X = frozenset({"x"})


@pytest.fixture
def m_pair():
    m1 = System.from_pairs({"a", "b"}, [((), ("a",)), (("a",), ("a", "b"))])
    m2 = System.from_pairs({"b", "c"}, [(("b",), ("c",)), (("c",), ())])
    return m1, m2


class TestAlgebraicLemmas:
    def test_lemma1_concrete(self, m_pair):
        assert lemmas.lemma_1_commutative(*m_pair)
        assert lemmas.lemma_1_associative(*m_pair, System({"d"}, [(E, frozenset({"d"}))]))

    @given(systems(), systems())
    @settings(max_examples=40, deadline=None)
    def test_lemma1_random(self, m1, m2):
        assert lemmas.lemma_1_commutative(m1, m2)

    def test_lemma2_union(self):
        m1 = System({"x"}, [(E, X)])
        m2 = System({"x"}, [(X, E)])
        assert lemmas.lemma_2_same_alphabet_union(m1, m2)

    def test_lemma2_requires_equal_alphabets(self):
        with pytest.raises(ValueError):
            lemmas.lemma_2_same_alphabet_union(System({"x"}), System({"y"}))

    @given(systems())
    @settings(max_examples=30, deadline=None)
    def test_lemma3_identity(self, m):
        assert lemmas.lemma_3_identity(m)

    @given(systems(atoms=("a", "b")), systems(atoms=("b", "c")))
    @settings(max_examples=30, deadline=None)
    def test_lemma4_expansions(self, m1, m2):
        assert lemmas.lemma_4_expansion_composition(m1, m2)


class TestPreservationLemmas:
    @given(systems(atoms=("a", "b"), max_atoms=2), prop_formulas(atoms=("a", "b")))
    @settings(max_examples=40, deadline=None)
    def test_lemma5_random_propositional(self, m, f):
        from repro.logic.ctl import substitute, Const

        f = substitute(f, {x: Const(True) for x in f.atoms() - m.sigma})
        assert lemmas.lemma_5_expansion_preserves(m, {"z"}, f)

    def test_lemma5_temporal(self):
        from repro.logic.ctl import AF, EX, Implies

        m = System.from_pairs({"x"}, [((), ("x",))])
        assert lemmas.lemma_5_expansion_preserves(
            m, {"y"}, Implies(Not(atom("x")), EX(atom("x")))
        )

    def test_lemma5_rejects_foreign_atoms(self):
        with pytest.raises(ValueError):
            lemmas.lemma_5_expansion_preserves(System({"x"}), {"y"}, atom("y"))

    @given(systems(max_atoms=2), prop_formulas(atoms=("a", "b")), prop_formulas(atoms=("a", "b")))
    @settings(max_examples=40, deadline=None)
    def test_lemma6_and_7_random(self, m, f, g):
        from repro.logic.ctl import Const, substitute

        f = substitute(f, {x: Const(False) for x in f.atoms() - m.sigma})
        g = substitute(g, {x: Const(False) for x in g.atoms() - m.sigma})
        assert lemmas.lemma_6_ax_structural(m, f, g)
        assert lemmas.lemma_7_ex_structural(m, f, g)

    def test_lemma6_rejects_temporal(self):
        from repro.logic.ctl import EX

        with pytest.raises(ValueError):
            lemmas.lemma_6_ax_structural(System({"x"}), EX(atom("x")), atom("x"))


class TestTransferLemmas:
    def test_lemma8_concrete(self):
        m = System.from_pairs({"x"}, [((), ("x",))])
        assert lemmas.lemma_8_conjunctive_transfer(
            m, Not(atom("x")), Or(atom("x"), Not(atom("x"))), atom("z"), {"z"}
        )

    @given(
        systems(atoms=("a", "b"), max_atoms=2),
        prop_formulas(atoms=("a", "b")),
        prop_formulas(atoms=("a", "b")),
    )
    @settings(max_examples=30, deadline=None)
    def test_lemma8_random(self, m, p, q):
        from repro.logic.ctl import Const, substitute

        p = substitute(p, {x: Const(True) for x in p.atoms() - m.sigma})
        q = substitute(q, {x: Const(True) for x in q.atoms() - m.sigma})
        assert lemmas.lemma_8_conjunctive_transfer(m, p, q, atom("z"), {"z"})

    @given(
        systems(atoms=("a", "b"), max_atoms=2),
        prop_formulas(atoms=("a", "b")),
        prop_formulas(atoms=("a", "b")),
    )
    @settings(max_examples=30, deadline=None)
    def test_lemma9_random(self, m, p, q):
        from repro.logic.ctl import Const, substitute

        p = substitute(p, {x: Const(True) for x in p.atoms() - m.sigma})
        q = substitute(q, {x: Const(True) for x in q.atoms() - m.sigma})
        assert lemmas.lemma_9_disjunctive_transfer(m, p, q, Not(atom("z")), {"z"})

    def test_lemma8_rejects_local_p_prime(self):
        m = System({"x"})
        with pytest.raises(ValueError):
            lemmas.lemma_8_conjunctive_transfer(m, atom("x"), atom("x"), atom("x"), {"z"})


class TestProjectionLemma:
    @given(systems(atoms=("a", "b"), max_atoms=2), prop_formulas(atoms=("a",)))
    @settings(max_examples=30, deadline=None)
    def test_lemma10_random(self, m_small, p):
        m_big = System(
            set(m_small.sigma) | {"z"},
            [],
        )
        m = System(("a",))
        from repro.logic.ctl import Const, substitute

        p = substitute(p, {x: Const(True) for x in p.atoms() - m.sigma})
        assert lemmas.lemma_10_state_projection(m, m_big, p)

    def test_lemma10_requires_subset(self):
        with pytest.raises(ValueError):
            lemmas.lemma_10_state_projection(System({"x"}), System({"y"}), atom("x"))


class TestFairnessLemma:
    @given(
        systems(max_atoms=2),
        prop_formulas(atoms=("a", "b")),
        prop_formulas(atoms=("a", "b")),
        prop_formulas(atoms=("a", "b")),
    )
    @settings(max_examples=30, deadline=None)
    def test_lemma11_random(self, m, f, g, fair):
        from repro.logic.ctl import Const, substitute

        sub = lambda h: substitute(h, {x: Const(True) for x in h.atoms() - m.sigma})
        assert lemmas.lemma_11_fairness_strengthening(
            m, sub(f), sub(g), (sub(fair),)
        )
