"""Tests for interleaving composition and expansion — incl. paper Figure 1."""

import pytest
from hypothesis import given, settings

from tests.conftest import systems
from repro.casestudies.figures import (
    figure1_expected_composition,
    figure1_m,
    figure1_m_prime,
)
from repro.errors import SystemError_
from repro.systems.compose import compose, compose_all, expand
from repro.systems.system import System, identity_system

E = frozenset()
X = frozenset({"x"})
Y = frozenset({"y"})
XY = frozenset({"x", "y"})


class TestPaperFigure1:
    def test_composition_matches_paper_exactly(self):
        got = compose(figure1_m(), figure1_m_prime())
        assert got == figure1_expected_composition()

    def test_alphabet_is_union(self):
        got = compose(figure1_m(), figure1_m_prime())
        assert got.sigma == {"x", "y"}

    def test_each_step_moves_one_component(self):
        got = compose(figure1_m(), figure1_m_prime())
        for s, t in got.edges:
            changed_x = ("x" in s) != ("x" in t)
            changed_y = ("y" in s) != ("y" in t)
            assert changed_x != changed_y  # exactly one moves


class TestFrameLifting:
    def test_private_atoms_stutter(self):
        m = System({"x"}, [(E, X)])
        n = identity_system({"y"})
        c = compose(m, n)
        # x can rise with y in either value, y never changes on m-steps
        assert (E, X) in c.edges
        assert (Y, XY) in c.edges
        assert (E, XY) not in c.edges

    def test_shared_atoms_not_lifted(self):
        m = System({"x", "s"}, [(frozenset({"s"}), E)])
        n = System({"y", "s"}, [])
        c = compose(m, n)
        src = frozenset({"s"})
        assert (src, E) in c.edges
        assert (frozenset({"s", "y"}), Y) in c.edges
        # m's step cannot silently change y at the same time
        assert (frozenset({"s", "y"}), E) not in c.edges


class TestAlgebra:
    @given(systems(), systems())
    @settings(max_examples=50, deadline=None)
    def test_commutative(self, m1, m2):
        assert compose(m1, m2) == compose(m2, m1)

    @given(systems(atoms=("a", "b")), systems(atoms=("b", "c")), systems(atoms=("c", "a")))
    @settings(max_examples=30, deadline=None)
    def test_associative(self, m1, m2, m3):
        assert compose(compose(m1, m2), m3) == compose(m1, compose(m2, m3))

    @given(systems())
    @settings(max_examples=30, deadline=None)
    def test_identity_element(self, m):
        assert compose(m, identity_system(m.sigma)) == m

    def test_compose_all_folds(self):
        m = figure1_m()
        n = figure1_m_prime()
        assert compose_all([m, n]) == compose(m, n)

    def test_compose_all_empty_rejected(self):
        with pytest.raises(SystemError_):
            compose_all([])


class TestExpansion:
    def test_expand_adds_frame_atoms(self):
        m = System({"x"}, [(E, X)])
        ex = expand(m, {"y"})
        assert ex.sigma == {"x", "y"}
        assert (Y, XY) in ex.edges

    def test_expand_with_no_new_atoms_is_identity(self):
        m = System({"x"}, [(E, X)])
        assert expand(m, {"x"}) == m

    def test_alphabet_guard(self):
        m = System({f"a{i}" for i in range(12)})
        n = System({f"b{i}" for i in range(12)})
        with pytest.raises(SystemError_):
            compose(m, n)
