"""Tests for restrictions r = (I, F)."""

from repro.logic.ctl import AX, Atom, Implies, Not, Or, TRUE, atom
from repro.logic.restriction import UNRESTRICTED, Restriction


class TestNormalization:
    def test_default_is_trivial(self):
        assert UNRESTRICTED.is_trivial
        assert UNRESTRICTED.init == TRUE
        assert UNRESTRICTED.fairness == (TRUE,)

    def test_empty_fairness_normalizes_to_true(self):
        assert Restriction(fairness=()).fairness == (TRUE,)

    def test_true_members_dropped(self):
        r = Restriction(fairness=(TRUE, atom("p"), TRUE))
        assert r.fairness == (atom("p"),)

    def test_duplicates_dropped_order_preserved(self):
        r = Restriction(fairness=(atom("p"), atom("q"), atom("p")))
        assert r.fairness == (atom("p"), atom("q"))

    def test_structural_equality_after_normalization(self):
        assert Restriction(fairness=(TRUE, atom("p"))) == Restriction(
            fairness=(atom("p"),)
        )


class TestPredicates:
    def test_trivial_fairness_with_init(self):
        r = Restriction(init=atom("p"))
        assert not r.is_trivial
        assert r.has_trivial_fairness

    def test_is_propositional(self):
        assert Restriction(init=atom("p"), fairness=(Or(atom("q"), atom("r")),)).is_propositional()
        assert not Restriction(init=AX(atom("p"))).is_propositional()
        assert not Restriction(fairness=(AX(atom("p")),)).is_propositional()


class TestBuilders:
    def test_with_init(self):
        r = UNRESTRICTED.with_init(atom("p"))
        assert r.init == atom("p")
        assert r.fairness == (TRUE,)

    def test_with_fairness_replaces(self):
        r = Restriction(fairness=(atom("p"),)).with_fairness(atom("q"))
        assert r.fairness == (atom("q"),)

    def test_and_fairness_appends(self):
        r = Restriction(fairness=(atom("p"),)).and_fairness(atom("q"))
        assert r.fairness == (atom("p"), atom("q"))

    def test_atoms_union(self):
        r = Restriction(init=atom("p"), fairness=(Implies(atom("q"), atom("r")),))
        assert r.atoms() == {"p", "q", "r"}

    def test_str_shows_both_parts(self):
        r = Restriction(init=atom("p"), fairness=(Not(atom("q")),))
        assert "p" in str(r) and "q" in str(r)
