"""Tests for the CTL text parser."""

import pytest

from repro.errors import ParseError
from repro.logic.ctl import (
    AF,
    AG,
    AU,
    AX,
    EF,
    EG,
    EU,
    EX,
    And,
    Atom,
    Const,
    Iff,
    Implies,
    Not,
    Or,
)
from repro.logic.parser import parse_ctl


class TestPrimary:
    def test_atom(self):
        assert parse_ctl("p") == Atom("p")

    def test_dotted_atom(self):
        assert parse_ctl("Server.belief.0") == Atom("Server.belief.0")

    def test_constants(self):
        assert parse_ctl("true") == Const(True)
        assert parse_ctl("TRUE") == Const(True)
        assert parse_ctl("false") == Const(False)
        assert parse_ctl("1") == Const(True)
        assert parse_ctl("0") == Const(False)

    def test_parentheses(self):
        assert parse_ctl("((p))") == Atom("p")


class TestPrecedence:
    def test_and_over_or(self):
        assert parse_ctl("p | q & r") == Or(Atom("p"), And(Atom("q"), Atom("r")))

    def test_or_over_implies(self):
        assert parse_ctl("p | q -> r") == Implies(
            Or(Atom("p"), Atom("q")), Atom("r")
        )

    def test_implies_right_associative(self):
        assert parse_ctl("p -> q -> r") == Implies(
            Atom("p"), Implies(Atom("q"), Atom("r"))
        )

    def test_iff_lowest(self):
        assert parse_ctl("p -> q <-> r") == Iff(
            Implies(Atom("p"), Atom("q")), Atom("r")
        )

    def test_not_tightest(self):
        assert parse_ctl("!p & q") == And(Not(Atom("p")), Atom("q"))

    def test_double_negation(self):
        assert parse_ctl("!!p") == Not(Not(Atom("p")))


class TestTemporal:
    @pytest.mark.parametrize(
        "text,node",
        [
            ("AX p", AX), ("EX p", EX), ("AF p", AF),
            ("EF p", EF), ("AG p", AG), ("EG p", EG),
        ],
    )
    def test_unary_temporal(self, text, node):
        assert parse_ctl(text) == node(Atom("p"))

    def test_temporal_binds_tighter_than_and(self):
        assert parse_ctl("AX p & q") == And(AX(Atom("p")), Atom("q"))

    def test_nested_temporal(self):
        assert parse_ctl("AG (p -> AF q)") == AG(
            Implies(Atom("p"), AF(Atom("q")))
        )

    def test_until_brackets(self):
        assert parse_ctl("A[p U q]") == AU(Atom("p"), Atom("q"))
        assert parse_ctl("E[p U q]") == EU(Atom("p"), Atom("q"))

    def test_until_parens_paper_style(self):
        assert parse_ctl("A(p U q)") == AU(Atom("p"), Atom("q"))
        assert parse_ctl("E(p U q)") == EU(Atom("p"), Atom("q"))

    def test_until_nested_formulas(self):
        got = parse_ctl("E[p & q U AX r]")
        assert got == EU(And(Atom("p"), Atom("q")), AX(Atom("r")))


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        ["", "p &", "(p", "A[p U", "A[p q]", "p q", "p @ q", "A(p U q]"],
    )
    def test_syntax_errors(self, text):
        with pytest.raises(ParseError):
            parse_ctl(text)

    def test_error_reports_position(self):
        with pytest.raises(ParseError) as info:
            parse_ctl("p &\n& q")
        assert "line 2" in str(info.value)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "p -> AX (p | q)",
            "AG (p -> AF q)",
            "E[!p U (q & r)]",
            "!(p <-> q)",
            "A[true U x]",
        ],
    )
    def test_str_reparses_to_same_tree(self, text):
        tree = parse_ctl(text)
        assert parse_ctl(str(tree)) == tree
