"""Unit and property tests for the CTL abstract syntax."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

import tests.oracle as oracle
from tests.conftest import ctl_formulas, systems
from repro.logic.ctl import (
    AF,
    AG,
    AU,
    AX,
    EF,
    EG,
    EU,
    EX,
    FALSE,
    TRUE,
    And,
    Atom,
    Const,
    Iff,
    Implies,
    Not,
    Or,
    atom,
    dual,
    expand_derived,
    is_propositional,
    land,
    lor,
    subformulas,
    substitute,
)


class TestConstruction:
    def test_structural_equality(self):
        assert And(Atom("p"), Atom("q")) == And(Atom("p"), Atom("q"))
        assert And(Atom("p"), Atom("q")) != And(Atom("q"), Atom("p"))

    def test_hashable(self):
        d = {EU(Atom("p"), Atom("q")): 1}
        assert d[EU(atom("p"), atom("q"))] == 1

    def test_operator_sugar(self):
        p, q = atom("p"), atom("q")
        assert (p & q) == And(p, q)
        assert (p | q) == Or(p, q)
        assert (~p) == Not(p)
        assert (p >> q) == Implies(p, q)

    def test_land_lor_empty(self):
        assert land() == TRUE
        assert lor() == FALSE

    def test_land_order(self):
        p, q, r = atom("p"), atom("q"), atom("r")
        assert land(p, q, r) == And(And(p, q), r)


class TestHashCaching:
    """Structural hashes are cached per node (hot path in the checkers)."""

    def test_equal_trees_share_hash(self):
        f1 = AU(And(atom("p"), atom("q")), EX(atom("r")))
        f2 = AU(And(atom("p"), atom("q")), EX(atom("r")))
        assert f1 == f2
        assert hash(f1) == hash(f2)
        assert {f1: "x"}[f2] == "x"

    def test_cache_attribute_materializes(self):
        f = And(atom("p"), atom("q"))
        hash(f)
        assert "_hash_cache" in f.__dict__
        assert hash(f) == f.__dict__["_hash_cache"]

    def test_cache_does_not_leak_into_equality(self):
        f1, f2 = atom("p"), atom("p")
        hash(f1)  # only f1 caches
        assert f1 == f2


class TestAtoms:
    def test_atoms_collects_all(self):
        f = Implies(atom("p"), AX(Or(atom("q"), Not(atom("p")))))
        assert f.atoms() == {"p", "q"}

    def test_const_has_no_atoms(self):
        assert TRUE.atoms() == frozenset()

    def test_substitute(self):
        f = And(atom("p"), EX(atom("q")))
        g = substitute(f, {"p": Not(atom("r"))})
        assert g == And(Not(atom("r")), EX(atom("q")))

    def test_subformulas_preorder_contains_self(self):
        f = AU(atom("p"), atom("q"))
        subs = list(subformulas(f))
        assert f in subs and atom("p") in subs and atom("q") in subs


class TestPropositionality:
    def test_boolean_only(self):
        assert is_propositional(Implies(atom("p"), And(atom("q"), TRUE)))

    @pytest.mark.parametrize(
        "f",
        [
            EX(atom("p")),
            AX(atom("p")),
            EU(atom("p"), atom("q")),
            AU(atom("p"), atom("q")),
            EF(atom("p")),
            AG(atom("p")),
            Not(EG(atom("p"))),
            And(atom("p"), AF(atom("q"))),
        ],
    )
    def test_temporal_rejected(self, f):
        assert not is_propositional(f)


class TestStr:
    def test_paper_like_rendering(self):
        assert str(EU(atom("p"), atom("q"))) == "E[p U q]"
        assert str(AU(atom("p"), atom("q"))) == "A[p U q]"
        assert str(AX(atom("p"))) == "AX(p)"
        assert str(TRUE) == "true"


class TestExpandDerived:
    def test_ef_definition(self):
        assert expand_derived(EF(atom("p"))) == EU(TRUE, atom("p"))

    def test_af_definition(self):
        assert expand_derived(AF(atom("p"))) == AU(TRUE, atom("p"))

    def test_ag_definition(self):
        assert expand_derived(AG(atom("p"))) == Not(EU(TRUE, Not(atom("p"))))

    def test_eg_definition(self):
        assert expand_derived(EG(atom("p"))) == Not(AU(TRUE, Not(atom("p"))))

    def test_or_definition(self):
        got = expand_derived(Or(atom("p"), atom("q")))
        assert got == Not(And(Not(atom("p")), Not(atom("q"))))

    @given(systems(), ctl_formulas(max_depth=2))
    @settings(max_examples=60, deadline=None)
    def test_expansion_is_semantically_equivalent(self, system, f):
        """The derived-operator table preserves meaning on real systems."""
        from repro.checking.explicit import ExplicitChecker

        ck = ExplicitChecker(system)
        f = substitute(f, {a: Const(True) for a in f.atoms() - system.sigma})
        original = ck.states_satisfying(f)
        expanded = ck.states_satisfying(expand_derived(f))
        assert (original == expanded).all()


class TestDual:
    @given(systems(), ctl_formulas(max_depth=2))
    @settings(max_examples=60, deadline=None)
    def test_dual_preserves_meaning(self, system, f):
        from repro.checking.explicit import ExplicitChecker

        ck = ExplicitChecker(system)
        f = substitute(f, {a: Const(True) for a in f.atoms() - system.sigma})
        assert (ck.states_satisfying(f) == ck.states_satisfying(dual(f))).all()

    def test_dual_only_rewrites_a_operators(self):
        f = EX(atom("p"))
        assert dual(f) == f
        assert dual(AX(atom("p"))) == Not(EX(Not(atom("p"))))
