"""Tests for grafting worker span records into a parent tracer.

The edge cases here are the ones multi-worker merging actually hits:
workers that recorded nothing, span ids that collide across workers
(every worker numbers its records from 0), records arriving out of
wall-clock order, and request trace-id stamping.
"""

from repro.obs.export import to_jsonl_records
from repro.obs.merge import graft_records, rebase_records
from repro.obs.tracer import Tracer


def records_for(names_and_parents):
    """Minimal JSONL-layout records: [(name, parent_id), ...]."""
    return [
        {
            "id": i,
            "parent": parent,
            "depth": 0 if parent is None else 1,
            "name": name,
            "cat": "test",
            "start_us": float(i * 10),
            "dur_us": 5.0,
        }
        for i, (name, parent) in enumerate(names_and_parents)
    ]


class TestEmptyAndShape:
    def test_empty_records_graft_nothing(self):
        tracer = Tracer(enabled=True)
        assert graft_records(tracer, []) == []
        assert tracer.roots == []

    def test_tree_structure_rebuilt(self):
        tracer = Tracer(enabled=True)
        roots = graft_records(
            tracer, records_for([("root", None), ("child", 0), ("leaf", 1)])
        )
        assert len(roots) == 1
        (root,) = roots
        assert root.name == "root"
        assert [c.name for c in root.children] == ["child"]
        assert [c.name for c in root.children[0].children] == ["leaf"]

    def test_grafts_under_open_span(self):
        tracer = Tracer(enabled=True)
        with tracer.span("parent"):
            graft_records(tracer, records_for([("worker.item", None)]))
        (parent,) = tracer.roots
        assert [c.name for c in parent.children] == ["worker.item"]


class TestDuplicateIdsAcrossWorkers:
    def test_two_workers_with_identical_ids_do_not_collide(self):
        # both workers number their spans from 0 — two graft calls must
        # build two independent subtrees, not cross-link records
        tracer = Tracer(enabled=True)
        first = graft_records(
            tracer,
            records_for([("worker.item", None), ("check", 0)]),
            pid=101,
        )
        second = graft_records(
            tracer,
            records_for([("worker.item", None), ("check", 0)]),
            pid=202,
        )
        assert first[0] is not second[0]
        assert first[0].children[0] is not second[0].children[0]
        assert len(tracer.roots) == 2
        assert first[0].attrs["pid"] == 101
        assert second[0].attrs["pid"] == 202
        # each worker's child landed under its own root
        assert first[0].children[0].attrs["pid"] == 101


class TestTimestamps:
    def test_out_of_order_start_times_preserved(self):
        # records whose children start before a later sibling but appear
        # after it in the flat list: offsets must be honored as given
        records = [
            {"id": 0, "parent": None, "depth": 0, "name": "root",
             "cat": "", "start_us": 0.0, "dur_us": 100.0},
            {"id": 1, "parent": 0, "depth": 1, "name": "late",
             "cat": "", "start_us": 50.0, "dur_us": 10.0},
            {"id": 2, "parent": 0, "depth": 1, "name": "early",
             "cat": "", "start_us": 5.0, "dur_us": 10.0},
        ]
        tracer = Tracer(enabled=True)
        (root,) = graft_records(tracer, records)
        late, early = root.children
        assert early.start < late.start
        assert early.start - root.start == 5e-6 * 1.0 or abs(
            (early.start - root.start) - 5e-6
        ) < 1e-9

    def test_wall_origin_rebases_onto_parent_clock(self):
        tracer = Tracer(enabled=True)
        # a worker whose wall origin is 2 s after the parent's epoch
        origin = tracer.epoch_wall + 2.0
        base = rebase_records(tracer, [], wall_origin=origin)
        assert abs(base - (tracer.epoch_perf + 2.0)) < 1e-9
        (root,) = graft_records(
            tracer,
            records_for([("worker.item", None)]),
            wall_origin=origin,
        )
        assert abs(root.start - base) < 1e-9

    def test_zero_wall_origin_falls_back_to_trace_start(self):
        tracer = Tracer(enabled=True)
        assert rebase_records(tracer, [], 0.0) == tracer.start_time


class TestTraceIdStamping:
    def test_trace_id_stamped_on_every_span(self):
        tracer = Tracer(enabled=True)
        (root,) = graft_records(
            tracer,
            records_for([("worker.item", None), ("check", 0)]),
            trace_id="t-123",
        )
        assert root.attrs["trace_id"] == "t-123"
        assert root.children[0].attrs["trace_id"] == "t-123"

    def test_existing_trace_id_kept(self):
        tracer = Tracer(enabled=True)
        records = records_for([("worker.item", None)])
        records[0]["attrs"] = {"trace_id": "original"}
        (root,) = graft_records(tracer, records, trace_id="other")
        assert root.attrs["trace_id"] == "original"


class TestRoundTrip:
    def test_export_then_graft_preserves_counters_and_attrs(self):
        worker = Tracer(enabled=True)
        with worker.span("worker.item", category="parallel", label="spec0") as sp:
            sp.add("iterations", 7)
        records = to_jsonl_records(worker)

        parent = Tracer(enabled=True)
        (root,) = graft_records(parent, records, pid=99)
        assert root.name == "worker.item"
        assert root.attrs["label"] == "spec0"
        assert root.attrs["pid"] == 99
        assert root.counters == {"iterations": 7}
        assert abs(root.duration - worker.roots[0].duration) < 1e-6
