"""Round-trip tests for the JSONL and Chrome trace-event exporters."""

import json

import pytest

from repro.obs.export import (
    read_jsonl,
    to_chrome_trace,
    to_jsonl_records,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.tracer import Tracer


@pytest.fixture
def traced():
    """A tracer holding a small two-root trace with attrs and counters."""
    t = Tracer(enabled=True)
    with t.span("check", category="check", formula="AG p") as root:
        root.add("iterations", 3)
        with t.span("eval", category="eval"):
            with t.span("image", category="bdd") as image:
                image.add("mk_calls", 7)
        with t.span("eval", category="eval"):
            pass
    with t.span("report"):
        pass
    return t


class TestJsonl:
    def test_round_trips_through_file(self, traced, tmp_path):
        path = write_jsonl(tmp_path / "trace.jsonl", traced)
        assert read_jsonl(path) == to_jsonl_records(traced)

    def test_each_line_is_json(self, traced, tmp_path):
        path = write_jsonl(tmp_path / "trace.jsonl", traced)
        lines = path.read_text().splitlines()
        assert len(lines) == 5
        for line in lines:
            json.loads(line)

    def test_parent_links_rebuild_the_tree(self, traced):
        records = to_jsonl_records(traced)
        by_id = {r["id"]: r for r in records}
        # ids are the pre-order index
        assert [r["id"] for r in records] == list(range(len(records)))
        roots = [r for r in records if r["parent"] is None]
        assert [r["name"] for r in roots] == ["check", "report"]
        image = next(r for r in records if r["name"] == "image")
        assert by_id[image["parent"]]["name"] == "eval"
        assert image["depth"] == by_id[image["parent"]]["depth"] + 1

    def test_children_nest_within_parent_interval(self, traced):
        records = to_jsonl_records(traced)
        by_id = {r["id"]: r for r in records}
        for r in records:
            if r["parent"] is None:
                continue
            parent = by_id[r["parent"]]
            assert r["start_us"] >= parent["start_us"]
            assert (
                r["start_us"] + r["dur_us"]
                <= parent["start_us"] + parent["dur_us"] + 0.001
            )

    def test_timestamps_monotonic_in_preorder(self, traced):
        records = to_jsonl_records(traced)
        starts = [r["start_us"] for r in records]
        assert starts == sorted(starts)
        assert starts[0] == 0.0

    def test_attrs_and_counters_survive(self, traced):
        records = to_jsonl_records(traced)
        root = records[0]
        assert root["attrs"] == {"formula": "AG p"}
        assert root["counters"] == {"iterations": 3.0}
        image = next(r for r in records if r["name"] == "image")
        assert image["counters"] == {"mk_calls": 7.0}

    def test_empty_tracer_exports_nothing(self, tmp_path):
        path = write_jsonl(tmp_path / "empty.jsonl", Tracer(enabled=True))
        assert read_jsonl(path) == []


class TestChromeTrace:
    def test_written_file_is_valid_json(self, traced, tmp_path):
        path = write_chrome_trace(tmp_path / "trace.json", traced)
        document = json.loads(path.read_text())
        assert document == to_chrome_trace(traced)

    def test_document_shape(self, traced):
        document = to_chrome_trace(traced)
        assert set(document) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert document["displayTimeUnit"] == "ms"
        assert isinstance(document["otherData"]["epoch_wall"], float)

    def test_one_complete_event_per_span_plus_metadata(self, traced):
        events = to_chrome_trace(traced)["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(metadata) == 1
        assert metadata[0]["name"] == "process_name"
        assert len(complete) == len(list(traced.spans()))

    def test_events_carry_ts_dur_and_args(self, traced):
        complete = [
            e for e in to_chrome_trace(traced)["traceEvents"] if e["ph"] == "X"
        ]
        for event in complete:
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert event["pid"] == 1 and event["tid"] == 1
        root = complete[0]
        assert root["name"] == "check"
        assert root["cat"] == "check"
        assert root["args"] == {"formula": "AG p", "iterations": 3.0}

    def test_uncategorized_spans_get_default_cat(self, traced):
        complete = [
            e for e in to_chrome_trace(traced)["traceEvents"] if e["ph"] == "X"
        ]
        report = next(e for e in complete if e["name"] == "report")
        assert report["cat"] == "span"

    def test_events_nest_by_interval(self, traced):
        complete = [
            e for e in to_chrome_trace(traced)["traceEvents"] if e["ph"] == "X"
        ]
        by_name = {e["name"]: e for e in complete}
        check, image = by_name["check"], by_name["image"]
        assert check["ts"] <= image["ts"]
        assert image["ts"] + image["dur"] <= check["ts"] + check["dur"] + 0.001
