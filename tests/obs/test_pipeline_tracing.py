"""End-to-end tracing of the instrumented pipeline.

These tests exercise the real parse → compile → check path under the
global tracer and pin down the acceptance properties: the span tree has
the expected shape, counters are attached, ``user_time`` agrees with the
root span, and a disabled tracer records nothing.
"""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import TRACER, tracing
from repro.smv.run import check_source

SOURCE = """
MODULE main
VAR x : boolean; y : boolean;
ASSIGN
  next(x) := !x;
  next(y) := x;
SPEC AG (x -> AX !x)
SPEC AG EF x
"""


def test_check_source_produces_expected_span_tree():
    with tracing() as t:
        check_source(SOURCE)
    names = [s.name for s in t.spans()]
    for expected in (
        "smv.parse",
        "smv.elaborate",
        "smv.check_model",
        "smv.compile_symbolic",
        "check.symbolic",
        "fixpoint.eu",
        "image.pre",
        "bdd.and_exists",
    ):
        assert expected in names, f"missing span {expected!r}"
    # one check.symbolic span per SPEC, nested under smv.check_model
    check_model = next(r for r in t.roots if r.name == "smv.check_model")
    checks = [c for c in check_model.children if c.name == "check.symbolic"]
    assert len(checks) == 2
    assert all("formula" in c.attrs for c in checks)


def test_user_time_matches_root_span_duration():
    with tracing() as t:
        report = check_source(SOURCE)
    root = next(r for r in t.roots if r.name == "smv.check_model")
    assert report.user_time <= root.duration
    assert report.user_time == pytest.approx(root.duration, rel=0.05)


def test_check_span_carries_engine_counters():
    with tracing() as t:
        check_source(SOURCE)
    checks = [s for s in t.spans() if s.name == "check.symbolic"]
    first = checks[0]
    assert first.counters.get("bdd.mk_calls", 0) > 0
    assert first.counters.get("bdd.cache_lookups", 0) > 0
    # AG EF x actually iterates its EU fixpoint
    total_iter = sum(c.counters.get("fixpoint_iterations", 0) for c in checks)
    assert total_iter > 0


def test_disabled_tracer_records_nothing_but_times_report():
    TRACER.reset()
    assert not TRACER.enabled
    report = check_source(SOURCE)
    assert list(TRACER.spans()) == []
    assert report.user_time > 0.0  # span timing works without recording


def test_explicit_engine_traces_too():
    from repro.checking.explicit import ExplicitChecker
    from repro.logic.restriction import Restriction
    from repro.smv.compile_explicit import to_system
    from repro.smv.run import load_model

    model = load_model(SOURCE)
    checker = ExplicitChecker(to_system(model))
    with tracing() as t:
        result = checker.holds(
            model.specs[1], Restriction(init=model.initial_formula())
        )
    assert result.holds
    names = [s.name for s in t.spans()]
    assert "check.explicit" in names
    assert "fixpoint.eu" in names
    check = next(s for s in t.spans() if s.name == "check.explicit")
    assert check.counters.get("subformulas_evaluated", 0) > 0


def test_metrics_registry_aggregates_a_real_trace():
    with tracing() as t:
        report = check_source(SOURCE)
    reg = MetricsRegistry().collect(t.spans())
    reg.record_check_stats(report.check_stats)
    assert reg.get("check.symbolic.calls") == 2.0
    # per-spec user times sum up under check.user_time…
    assert reg.get("check.user_time") == pytest.approx(
        report.check_stats.user_time, rel=1e-6
    )
    # …and are bounded by the whole run's wall time
    assert reg.get("check.user_time") <= report.user_time
    assert reg.get("bdd.and_exists.calls") > 0
