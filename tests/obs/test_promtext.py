"""The Prometheus text parser/renderer pair and the federation fold.

The pair must be *lossless* over everything the serve layer emits —
``to_prometheus_text`` → ``parse_prometheus_text`` →
``render_prometheus_text`` byte-identical — because the router
re-serves the federated document in the same dialect its members speak.
"""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.export import to_prometheus_text
from repro.obs.metrics import MetricsRegistry
from repro.obs.promtext import (
    Federation,
    MetricFamily,
    PromTextError,
    Sample,
    federate_scrapes,
    parse_prometheus_text,
    render_prometheus_text,
)
from repro.serve.http import _build_info_text


def round_trip(text: str) -> str:
    return render_prometheus_text(parse_prometheus_text(text))


class TestParse:
    def test_gauge_and_histogram_families(self):
        reg = MetricsRegistry()
        reg.add("serve.jobs_submitted", 3)
        reg.observe("submit_seconds", 0.05, bounds=(0.1, 1.0))
        reg.observe("submit_seconds", 5.0, bounds=(0.1, 1.0))
        families = parse_prometheus_text(to_prometheus_text(reg))
        by_name = {f.name: f for f in families}
        gauge = by_name["repro_serve_jobs_submitted"]
        assert gauge.type == "gauge"
        assert gauge.scalar() == 3
        hist = by_name["repro_submit_seconds"]
        assert hist.type == "histogram"
        assert hist.buckets() == [("0.1", 1), ("1", 1), ("+Inf", 2)]
        assert hist.scalar("_sum") == pytest.approx(5.05)
        assert hist.scalar("_count") == 2

    def test_labels_with_escapes(self):
        [family] = parse_prometheus_text(
            'weird{path="C:\\\\tmp",msg="say \\"hi\\"\\n"} 1\n'
        )
        [sample] = family.samples
        assert sample.label("path") == "C:\\tmp"
        assert sample.label("msg") == 'say "hi"\n'
        assert family.type == "untyped"

    def test_help_and_timestamps_survive(self):
        text = "# HELP thing What it is.\n# TYPE thing gauge\nthing 4 1700000000\n"
        [family] = parse_prometheus_text(text)
        assert family.help == "What it is."
        assert family.samples[0].value == 4

    def test_special_values(self):
        families = parse_prometheus_text("a +Inf\nb -Inf\nc NaN\n")
        values = [f.samples[0].value for f in families]
        assert values[0] == math.inf
        assert values[1] == -math.inf
        assert math.isnan(values[2])

    def test_unparsable_line_raises(self):
        with pytest.raises(PromTextError, match="line 2"):
            parse_prometheus_text("ok 1\nthis is not a sample\n")
        with pytest.raises(PromTextError, match="bad label"):
            parse_prometheus_text("x{oops} 1\n")


class TestRoundTrip:
    def test_serve_document_is_byte_identical(self):
        reg = MetricsRegistry()
        reg.add("serve.jobs_submitted", 7)
        reg.add("serve.checks_submitted", 12)
        reg.add("bdd.peak_unique_nodes", 4096)
        reg.observe("router.submit_seconds", 0.004)
        reg.observe("router.submit_seconds", 2.5)
        text = to_prometheus_text(reg) + _build_info_text()
        assert round_trip(text) == text

    def test_empty_document(self):
        assert round_trip("") == ""
        assert render_prometheus_text([]) == ""

    @given(
        gauges=st.dictionaries(
            st.from_regex(r"[a-z][a-z_]{0,10}", fullmatch=True),
            st.one_of(
                st.integers(min_value=0, max_value=10**9).map(float),
                st.floats(min_value=0, max_value=1e6, allow_nan=False),
            ),
            max_size=6,
        ),
        hists=st.dictionaries(
            st.from_regex(r"h[a-z_]{0,8}_seconds", fullmatch=True),
            st.lists(
                st.floats(min_value=0, max_value=50, allow_nan=False),
                max_size=6,
            ),
            max_size=3,
        ),
    )
    def test_random_registry_round_trips(self, gauges, hists):
        reg = MetricsRegistry()
        for name, value in gauges.items():
            reg.add(name, value)
        for name, values in hists.items():
            for value in values:
                reg.observe(name, value)
        text = to_prometheus_text(reg)
        if not text.strip():
            # an empty registry renders as a lone newline, which is
            # whitespace-only and so parses (correctly) to no families
            assert round_trip(text) == ""
            return
        # %g is not injective — 999999.5 renders "1e+06", which parses
        # to 1000000.0 and re-renders bare as "1000000" — so byte
        # identity only holds once the document has been normalised
        # through one parse/render pass.  Semantics must survive the
        # normalisation, and the normal form must be a fixed point.
        normal = round_trip(text)
        assert parse_prometheus_text(normal) == parse_prometheus_text(text)
        assert round_trip(normal) == normal


def member_text(**metrics) -> str:
    reg = MetricsRegistry()
    for name, value in metrics.items():
        reg.add(name, value)
    return to_prometheus_text(reg)


class TestFederation:
    def test_counters_sum_and_peaks_max(self):
        fed = federate_scrapes(
            {
                "a:1": member_text(
                    jobs_submitted=3, **{"bdd.peak_unique_nodes": 100}
                ),
                "b:2": member_text(
                    jobs_submitted=5, **{"bdd.peak_unique_nodes": 700}
                ),
            }
        )
        assert fed.value("repro_cluster_jobs_submitted") == 8
        assert fed.value("repro_cluster_bdd_peak_unique_nodes") == 700
        assert fed.value("repro_cluster_members") == 2
        assert fed.value("repro_cluster_scraped") == 2
        assert fed.value("repro_cluster_scrape_errors") == 0
        assert fed.errors == {}

    def test_histogram_buckets_sum_bucket_by_bucket(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.observe("submit_seconds", 0.05, bounds=(0.1, 1.0))
        right.observe("submit_seconds", 0.5, bounds=(0.1, 1.0))
        right.observe("submit_seconds", 9.0, bounds=(0.1, 1.0))
        fed = federate_scrapes(
            {
                "a:1": to_prometheus_text(left),
                "b:2": to_prometheus_text(right),
            }
        )
        [merged] = [
            f
            for f in fed.families
            if f.name == "repro_cluster_submit_seconds"
        ]
        assert merged.type == "histogram"
        assert merged.buckets() == [("0.1", 1), ("1", 2), ("+Inf", 3)]
        assert merged.scalar("_sum") == pytest.approx(9.55)
        assert merged.scalar("_count") == 3

    def test_per_shard_series_keep_their_identity(self):
        fed = federate_scrapes(
            {
                "a:1": member_text(jobs_submitted=3),
                "b:2": member_text(jobs_submitted=5),
            }
        )
        assert fed.value("repro_jobs_submitted", shard="a:1") == 3
        assert fed.value("repro_jobs_submitted", shard="b:2") == 5
        rendered = fed.render()
        assert 'repro_jobs_submitted{shard="a:1"} 3' in rendered
        # the federated document itself re-parses cleanly
        assert parse_prometheus_text(rendered)

    def test_failed_and_unparsable_scrapes_become_errors(self):
        fed = federate_scrapes(
            {
                "a:1": member_text(jobs_submitted=3),
                "b:2": None,
                "c:3": "!! not prometheus at all {{{\n",
            },
            errors={"b:2": "connection refused"},
        )
        assert fed.scraped == 1  # only a:1 contributed a parsed document
        assert fed.errors["b:2"] == "connection refused"
        assert "unparsable" in fed.errors["c:3"]
        assert fed.value("repro_cluster_scrape_errors") == 2
        assert fed.value("repro_cluster_jobs_submitted") == 3

    def test_mismatched_buckets_drop_the_dissenting_shard(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.observe("submit_seconds", 0.05, bounds=(0.1, 1.0))
        right.observe("submit_seconds", 0.05, bounds=(0.5,))
        fed = federate_scrapes(
            {
                "a:1": to_prometheus_text(left),
                "b:2": to_prometheus_text(right),
            }
        )
        assert "bucket bounds disagree" in fed.errors["b:2"]
        [merged] = [
            f
            for f in fed.families
            if f.name == "repro_cluster_submit_seconds"
        ]
        assert merged.scalar("_count") == 1  # only the first shard

    def test_build_info_stays_per_shard_only(self):
        text = member_text(jobs_submitted=1) + _build_info_text()
        fed = federate_scrapes({"a:1": text})
        names = {f.name for f in fed.families}
        assert "repro_cluster_build_info" not in names
        assert fed.value(
            "repro_build_info", shard="a:1"
        ) == 1  # identity survives, labelled

    def test_nested_federation_does_not_double_prefix(self):
        inner = federate_scrapes({"a:1": member_text(jobs_submitted=2)})
        outer = federate_scrapes({"router:1": inner.render()})
        assert outer.value("repro_cluster_jobs_submitted") == 2
