"""Tests for the structured JSONL event log."""

import io
import json
import threading

import pytest

from repro.obs.log import (
    EventLog,
    format_event,
    read_events,
    redact_fields,
    source_digest,
)


def make_log(level="info"):
    stream = io.StringIO()
    return EventLog(stream=stream, level=level, clock=lambda: 123.0), stream


def events_of(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestEmission:
    def test_record_shape(self):
        log, stream = make_log()
        log.event("job.done", job_id="ab", seconds=0.25)
        (record,) = events_of(stream)
        assert record == {
            "ts": 123.0,
            "level": "info",
            "event": "job.done",
            "job_id": "ab",
            "seconds": 0.25,
        }

    def test_level_threshold(self):
        log, stream = make_log(level="warning")
        log.debug("noise")
        log.event("info-noise")
        log.warning("kept")
        log.error("also-kept")
        assert [e["event"] for e in events_of(stream)] == ["kept", "also-kept"]

    def test_no_sink_is_silent(self):
        log = EventLog()
        assert not log.enabled
        log.event("dropped")  # must not raise

    def test_unknown_level_rejected(self):
        log, _ = make_log()
        with pytest.raises(ValueError):
            log.event("x", level="loud")
        with pytest.raises(ValueError):
            EventLog(level="loud")


class TestBinding:
    def test_bound_fields_attach_to_every_event(self):
        log, stream = make_log()
        with log.bind(trace_id="t1", job_id="j1"):
            log.event("inner")
        log.event("outer")
        inner, outer = events_of(stream)
        assert inner["trace_id"] == "t1" and inner["job_id"] == "j1"
        assert "trace_id" not in outer

    def test_bindings_nest(self):
        log, stream = make_log()
        with log.bind(trace_id="t1"):
            with log.bind(job_id="j1"):
                log.event("deep")
        (record,) = events_of(stream)
        assert record["trace_id"] == "t1" and record["job_id"] == "j1"

    def test_bindings_are_thread_isolated(self):
        log, stream = make_log()
        seen = {}

        def worker():
            seen["in_thread"] = log.bound()

        with log.bind(trace_id="t1"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["in_thread"] == {}  # the other thread saw no binding


class TestRedaction:
    def test_source_fields_become_digests(self):
        log, stream = make_log()
        log.event("job.submitted", source="MODULE main", checks=1)
        (record,) = events_of(stream)
        assert record["source"] == source_digest("MODULE main")
        assert record["source"].startswith("sha256:")
        assert "MODULE" not in stream.getvalue()
        assert record["checks"] == 1

    def test_redact_fields_copies(self):
        fields = {"smv_source": "MODULE m", "label": "x"}
        redacted = redact_fields(fields)
        assert redacted["smv_source"].startswith("sha256:")
        assert redacted["label"] == "x"
        assert fields["smv_source"] == "MODULE m"  # input untouched

    def test_digest_is_stable_and_sized(self):
        assert source_digest("abc") == source_digest("abc")
        assert source_digest("abc").endswith("/3B")


class TestFileSink:
    def test_path_sink_and_read_back(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path=path, clock=lambda: 1.0)
        log.event("one", n=1)
        log.event("two", n=2)
        log.close()
        events = read_events(path)
        assert [e["event"] for e in events] == ["one", "two"]

    def test_read_events_skips_garbage_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"event": "ok"}\nnot json\n\n[1,2]\n')
        assert [e["event"] for e in read_events(path)] == ["ok"]

    def test_stream_and_path_mutually_exclusive(self, tmp_path):
        with pytest.raises(ValueError):
            EventLog(stream=io.StringIO(), path=tmp_path / "x")


class TestRotation:
    def test_rotates_to_dot_one_at_cap(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path=path, clock=lambda: 1.0, max_bytes=200)
        for i in range(20):
            log.event("fill", n=i)
        log.close()
        rolled = tmp_path / "events.jsonl.1"
        assert rolled.exists(), "no rollover happened"
        assert path.stat().st_size <= 200
        assert rolled.stat().st_size <= 200
        # both generations stay parseable, together covering every event
        total = len(read_events(rolled)) + len(read_events(path))
        assert 0 < total <= 20

    def test_second_rotation_replaces_previous_rollover(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path=path, clock=lambda: 1.0, max_bytes=120)
        for i in range(40):
            log.event("fill", n=i)
        log.close()
        # only ever two generations on disk
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "events.jsonl",
            "events.jsonl.1",
        ]

    def test_oversized_single_record_still_written(self, tmp_path):
        # a record bigger than the cap must not rotate forever: an empty
        # file is never rotated, the record lands in it
        path = tmp_path / "events.jsonl"
        log = EventLog(path=path, max_bytes=10)
        log.event("huge", payload="x" * 100)
        log.close()
        assert len(read_events(path)) == 1
        assert not (tmp_path / "events.jsonl.1").exists()

    def test_no_cap_never_rotates(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path=path)
        for i in range(50):
            log.event("fill", n=i)
        log.close()
        assert len(read_events(path)) == 50
        assert not (tmp_path / "events.jsonl.1").exists()

    def test_reopened_log_counts_existing_bytes(self, tmp_path):
        path = tmp_path / "events.jsonl"
        first = EventLog(path=path, max_bytes=300)
        first.event("seed", payload="x" * 120)
        first.close()
        size = path.stat().st_size
        second = EventLog(path=path, max_bytes=300)
        second.event("next", payload="y" * 120)
        second.close()
        # the reopened log resumed byte accounting from the existing file
        assert second._written >= size


class TestFormatting:
    def test_format_event_line(self):
        line = format_event(
            {"ts": 0.0, "level": "error", "event": "job.failed", "job_id": "ab"}
        )
        assert line == "1970-01-01T00:00:00Z ERROR job.failed job_id=ab"

    def test_format_event_compacts_floats_and_json(self):
        line = format_event(
            {"ts": 0.0, "event": "e", "v": 0.123456789, "d": {"a": 1}}
        )
        assert "v=0.123457" in line
        assert 'd={"a":1}' in line
