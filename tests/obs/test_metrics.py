"""Tests for MetricsRegistry aggregation semantics."""

import pytest

from repro.checking.result import CheckStats
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


class TestAccumulation:
    def test_plain_counters_sum(self):
        reg = MetricsRegistry()
        reg.add("check.fixpoint_iterations", 3)
        reg.add("check.fixpoint_iterations", 4)
        assert reg.get("check.fixpoint_iterations") == 7.0

    def test_peak_counters_take_max(self):
        reg = MetricsRegistry()
        reg.add("bdd.peak_unique_nodes", 100)
        reg.add("bdd.peak_unique_nodes", 40)
        reg.add("check.bdd_nodes_allocated", 10)
        reg.add("check.bdd_nodes_allocated", 25)
        assert reg.get("bdd.peak_unique_nodes") == 100.0
        assert reg.get("check.bdd_nodes_allocated") == 25.0

    def test_get_default(self):
        assert MetricsRegistry().get("missing") == 0.0
        assert MetricsRegistry().get("missing", -1.0) == -1.0


class TestStructuredFeeders:
    def test_record_check_stats(self):
        reg = MetricsRegistry()
        stats = CheckStats(
            user_time=0.5,
            fixpoint_iterations=12,
            bdd_cache_lookups=100,
            bdd_cache_hits=60,
            bdd_peak_unique_nodes=500,
        )
        reg.record_check_stats(stats)
        reg.record_check_stats(stats)
        assert reg.get("check.user_time") == pytest.approx(1.0)
        assert reg.get("check.fixpoint_iterations") == 24.0
        assert reg.get("check.bdd_cache_lookups") == 200.0
        # peak: max, not sum
        assert reg.get("check.bdd_peak_unique_nodes") == 500.0

    def test_record_check_stats_skips_zero_fields(self):
        reg = MetricsRegistry()
        reg.record_check_stats(CheckStats())
        assert len(reg) == 0

    def test_record_bdd_delta_duck_typed(self):
        class Counter:
            lookups, hits, inserts = 10, 6, 4

        class Delta:
            mk_calls = 42
            peak_unique_nodes = 7
            ops = {"and": Counter()}

        reg = MetricsRegistry()
        reg.record_bdd_delta(Delta())
        assert reg.get("bdd.mk_calls") == 42.0
        assert reg.get("bdd.peak_unique_nodes") == 7.0
        assert reg.get("bdd.and.lookups") == 10.0
        assert reg.get("bdd.and.hits") == 6.0


class TestSpanCollection:
    def test_collect_groups_by_span_name(self):
        t = Tracer(enabled=True)
        with t.span("check") as root:
            root.add("iterations", 2)
            with t.span("image"):
                pass
            with t.span("image"):
                pass
        reg = MetricsRegistry().collect(t.spans())
        assert reg.get("check.calls") == 1.0
        assert reg.get("image.calls") == 2.0
        assert reg.get("check.iterations") == 2.0
        assert reg.get("check.seconds") >= reg.get("image.seconds")
        assert reg.get("check.self_seconds") == pytest.approx(
            reg.get("check.seconds") - reg.get("image.seconds")
        )


class TestReporting:
    def test_as_dict_sorted(self):
        reg = MetricsRegistry()
        reg.add("b", 2)
        reg.add("a", 1)
        assert list(reg.as_dict()) == ["a", "b"]

    def test_format_renders_ints_and_floats(self):
        reg = MetricsRegistry()
        reg.add("calls", 3)
        reg.add("seconds", 0.25)
        assert reg.format() == "calls = 3\nseconds = 0.25"


class TestRegistryMerge:
    def test_merge_sums_plain_counters(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.add("parallel.items", 3)
        worker.add("parallel.items", 2)
        worker.add("parallel.check_seconds", 0.5)
        parent.merge(worker)
        assert parent.get("parallel.items") == 5.0
        assert parent.get("parallel.check_seconds") == 0.5

    def test_merge_takes_max_of_peaks_across_workers(self):
        # regression: per-worker memory high-water marks must aggregate
        # as max, not sum — no process ever held the summed node count
        parent = MetricsRegistry()
        parent.add("parallel.bdd.peak_unique_nodes", 900)
        for peak in (700, 1200, 300):
            worker = MetricsRegistry()
            worker.add("parallel.bdd.peak_unique_nodes", peak)
            parent.merge(worker)
        assert parent.get("parallel.bdd.peak_unique_nodes") == 1200.0

    def test_merge_covers_every_peak_suffix(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        for name in (
            "check.bdd_nodes_allocated",
            "check.transition_nodes",
            "bdd.peak_unique_nodes",
        ):
            parent.add(name, 100)
            worker.add(name, 40)
        parent.merge(worker)
        for name in (
            "check.bdd_nodes_allocated",
            "check.transition_nodes",
            "bdd.peak_unique_nodes",
        ):
            assert parent.get(name) == 100.0, name

    def test_merge_combines_histograms_bucket_by_bucket(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.observe("request.duration_seconds", 0.05, bounds=(0.1, 1.0))
        worker.observe("request.duration_seconds", 0.5, bounds=(0.1, 1.0))
        worker.observe("request.duration_seconds", 5.0, bounds=(0.1, 1.0))
        parent.merge(worker)
        hist = parent.histogram("request.duration_seconds", bounds=(0.1, 1.0))
        assert hist.count == 3
        assert hist.cumulative() == [1, 2]

    def test_merge_returns_self(self):
        reg = MetricsRegistry()
        assert reg.merge(MetricsRegistry()) is reg
