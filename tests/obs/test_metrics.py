"""Tests for MetricsRegistry aggregation semantics."""

import pytest

from repro.checking.result import CheckStats
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


class TestAccumulation:
    def test_plain_counters_sum(self):
        reg = MetricsRegistry()
        reg.add("check.fixpoint_iterations", 3)
        reg.add("check.fixpoint_iterations", 4)
        assert reg.get("check.fixpoint_iterations") == 7.0

    def test_peak_counters_take_max(self):
        reg = MetricsRegistry()
        reg.add("bdd.peak_unique_nodes", 100)
        reg.add("bdd.peak_unique_nodes", 40)
        reg.add("check.bdd_nodes_allocated", 10)
        reg.add("check.bdd_nodes_allocated", 25)
        assert reg.get("bdd.peak_unique_nodes") == 100.0
        assert reg.get("check.bdd_nodes_allocated") == 25.0

    def test_get_default(self):
        assert MetricsRegistry().get("missing") == 0.0
        assert MetricsRegistry().get("missing", -1.0) == -1.0


class TestStructuredFeeders:
    def test_record_check_stats(self):
        reg = MetricsRegistry()
        stats = CheckStats(
            user_time=0.5,
            fixpoint_iterations=12,
            bdd_cache_lookups=100,
            bdd_cache_hits=60,
            bdd_peak_unique_nodes=500,
        )
        reg.record_check_stats(stats)
        reg.record_check_stats(stats)
        assert reg.get("check.user_time") == pytest.approx(1.0)
        assert reg.get("check.fixpoint_iterations") == 24.0
        assert reg.get("check.bdd_cache_lookups") == 200.0
        # peak: max, not sum
        assert reg.get("check.bdd_peak_unique_nodes") == 500.0

    def test_record_check_stats_skips_zero_fields(self):
        reg = MetricsRegistry()
        reg.record_check_stats(CheckStats())
        assert len(reg) == 0

    def test_record_bdd_delta_duck_typed(self):
        class Counter:
            lookups, hits, inserts = 10, 6, 4

        class Delta:
            mk_calls = 42
            peak_unique_nodes = 7
            ops = {"and": Counter()}

        reg = MetricsRegistry()
        reg.record_bdd_delta(Delta())
        assert reg.get("bdd.mk_calls") == 42.0
        assert reg.get("bdd.peak_unique_nodes") == 7.0
        assert reg.get("bdd.and.lookups") == 10.0
        assert reg.get("bdd.and.hits") == 6.0


class TestSpanCollection:
    def test_collect_groups_by_span_name(self):
        t = Tracer(enabled=True)
        with t.span("check") as root:
            root.add("iterations", 2)
            with t.span("image"):
                pass
            with t.span("image"):
                pass
        reg = MetricsRegistry().collect(t.spans())
        assert reg.get("check.calls") == 1.0
        assert reg.get("image.calls") == 2.0
        assert reg.get("check.iterations") == 2.0
        assert reg.get("check.seconds") >= reg.get("image.seconds")
        assert reg.get("check.self_seconds") == pytest.approx(
            reg.get("check.seconds") - reg.get("image.seconds")
        )


class TestReporting:
    def test_as_dict_sorted(self):
        reg = MetricsRegistry()
        reg.add("b", 2)
        reg.add("a", 1)
        assert list(reg.as_dict()) == ["a", "b"]

    def test_format_renders_ints_and_floats(self):
        reg = MetricsRegistry()
        reg.add("calls", 3)
        reg.add("seconds", 0.25)
        assert reg.format() == "calls = 3\nseconds = 0.25"
