"""Tests for fixed-bucket latency histograms and their Prometheus export."""

import pytest

from repro.obs.export import to_prometheus_text
from repro.obs.hist import DEFAULT_BUCKETS, Histogram
from repro.obs.metrics import MetricsRegistry


class TestObserve:
    def test_bucket_placement_le_semantics(self):
        h = Histogram(bounds=(0.1, 1.0))
        h.observe(0.1)  # on the bound: counts in the 0.1 bucket (le)
        h.observe(0.5)
        h.observe(2.0)  # overflow
        assert h.counts == [1, 1, 1]
        assert h.count == 3
        assert h.sum == pytest.approx(2.6)

    def test_cumulative_covers_finite_bounds_only(self):
        h = Histogram.of((0.05, 0.2, 0.3, 5.0), bounds=(0.1, 1.0))
        assert h.cumulative() == [1, 3]
        assert h.count == 4  # the +Inf bucket is implied by count

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 0.5))
        with pytest.raises(ValueError):
            Histogram(bounds=(0.5, 0.5))
        with pytest.raises(ValueError):
            Histogram(bounds=())


class TestMerge:
    def test_merge_adds_bucket_by_bucket(self):
        a = Histogram.of((0.05, 0.2), bounds=(0.1, 1.0))
        b = Histogram.of((0.05, 5.0), bounds=(0.1, 1.0))
        a.merge(b)
        assert a.counts == [2, 1, 1]
        assert a.count == 4
        assert a.sum == pytest.approx(5.3)

    def test_merge_rejects_mismatched_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(0.1, 1.0)).merge(Histogram(bounds=(0.1,)))

    def test_mismatch_error_describes_both_bucket_layouts(self):
        with pytest.raises(ValueError, match=r"2 buckets .* vs 1 bucket"):
            Histogram(bounds=(0.1, 1.0)).merge(Histogram(bounds=(0.1,)))

    def test_merge_empty_into_populated_is_identity(self):
        a = Histogram.of((0.05, 0.2, 5.0), bounds=(0.1, 1.0))
        before = a.to_dict()
        a.merge(Histogram(bounds=(0.1, 1.0)))
        assert a.to_dict() == before

    def test_merge_populated_into_empty_copies_it(self):
        a = Histogram(bounds=(0.1, 1.0))
        b = Histogram.of((0.05, 0.2, 5.0), bounds=(0.1, 1.0))
        a.merge(b)
        assert a.to_dict() == b.to_dict()

    def test_registry_merge_names_the_offending_metric(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.observe("submit_seconds", 0.1, bounds=(0.1, 1.0))
        right.observe("submit_seconds", 0.2, bounds=(0.5,))
        with pytest.raises(ValueError, match="submit_seconds"):
            left.merge(right)


class TestQuantiles:
    def test_empty_histogram_quantile_is_zero(self):
        assert Histogram().quantile(0.5) == 0.0

    def test_linear_interpolation_within_bucket(self):
        # 10 observations all landing in the (0.1, 0.2] bucket: the
        # median interpolates to the bucket midpoint, PromQL-style.
        h = Histogram.of([0.15] * 10, bounds=(0.1, 0.2, 0.4))
        assert h.quantile(0.5) == pytest.approx(0.15)
        assert h.quantile(1.0) == pytest.approx(0.2)

    def test_overflow_clamps_to_highest_bound(self):
        h = Histogram.of((10.0, 20.0), bounds=(0.1, 1.0))
        assert h.quantile(0.99) == 1.0

    def test_percentiles_keys(self):
        p = Histogram.of((0.05, 0.2), bounds=(0.1, 1.0)).percentiles()
        assert set(p) == {"p50", "p90", "p99"}

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram().quantile(0.0)
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)


class TestSerialization:
    def test_round_trip(self):
        h = Histogram.of((0.05, 0.2, 7.0), bounds=(0.1, 1.0))
        restored = Histogram.from_dict(h.to_dict())
        assert restored.counts == h.counts
        assert restored.sum == pytest.approx(h.sum)
        assert restored.count == h.count
        assert restored.bounds == h.bounds


class TestPrometheusExport:
    def test_histogram_family_rendering(self):
        reg = MetricsRegistry()
        reg.observe("request.duration_seconds", 0.05, bounds=(0.1, 1.0))
        reg.observe("request.duration_seconds", 0.5, bounds=(0.1, 1.0))
        reg.observe("request.duration_seconds", 9.0, bounds=(0.1, 1.0))
        reg.add("serve.jobs_completed", 3)
        text = to_prometheus_text(reg)
        assert "# TYPE repro_serve_jobs_completed gauge" in text
        assert "# TYPE repro_request_duration_seconds histogram" in text
        assert 'repro_request_duration_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_request_duration_seconds_bucket{le="1"} 2' in text
        assert 'repro_request_duration_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_request_duration_seconds_count 3" in text
        assert "repro_request_duration_seconds_sum 9.55" in text
        assert text.endswith("\n")

    def test_empty_histogram_still_renders_family(self):
        reg = MetricsRegistry()
        reg.histogram("request.duration_seconds", bounds=(0.1,))
        text = to_prometheus_text(reg)
        assert 'repro_request_duration_seconds_bucket{le="+Inf"} 0' in text
        assert "repro_request_duration_seconds_count 0" in text
