"""Live progress: emitter throttle, bus semantics, engine heartbeats."""

import threading

from repro.obs.progress import (
    PROGRESS,
    ProgressBus,
    ProgressConfig,
    ProgressEmitter,
    ProgressPrinter,
    format_progress_event,
)

TOGGLE = """
MODULE main
VAR x : boolean;
ASSIGN next(x) := !x;
SPEC AG EF x
SPEC EG (x | !x)
"""


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestEmitter:
    def test_disabled_by_default(self):
        emitter = ProgressEmitter()
        assert not emitter.enabled
        emitter.emit("obligation.tick")  # no sink: must not raise

    def test_first_due_passes_immediately(self):
        clock = FakeClock(100.0)
        emitter = ProgressEmitter(clock=clock)
        emitter.activate(lambda e: None, interval=0.05)
        assert emitter.due()  # activation resets the throttle

    def test_due_throttles_by_interval(self):
        clock = FakeClock()
        emitter = ProgressEmitter(clock=clock)
        emitter.activate(lambda e: None, interval=0.05)
        assert emitter.due()
        assert not emitter.due()  # same instant: gated
        clock.now += 0.01
        assert not emitter.due()  # within the interval: gated
        clock.now += 0.05
        assert emitter.due()  # past the interval: passes once
        assert not emitter.due()

    def test_zero_interval_always_due(self):
        clock = FakeClock()
        emitter = ProgressEmitter(clock=clock)
        emitter.activate(lambda e: None, interval=0.0)
        assert emitter.due() and emitter.due() and emitter.due()

    def test_tick_shape_and_field_stamping(self):
        clock = FakeClock(10.0)
        emitter = ProgressEmitter(clock=clock)
        events = []
        emitter.activate(events.append, obligation="c0.spec1", pid=7)
        clock.now = 10.5
        emitter.tick("eu", iterations=18, size=4211)
        (event,) = events
        assert event == {
            "kind": "obligation.tick",
            "obligation": "c0.spec1",
            "pid": 7,
            "phase": "eu",
            "iterations": 18,
            "size": 4211,
            "elapsed": 0.5,
        }

    def test_deactivate_stops_emission(self):
        emitter = ProgressEmitter()
        events = []
        emitter.activate(events.append)
        emitter.deactivate()
        emitter.emit("obligation.start")
        assert events == [] and not emitter.enabled
        emitter.deactivate()  # idempotent

    def test_active_context_manager_restores(self):
        emitter = ProgressEmitter()
        events = []
        with emitter.active(events.append, obligation="spec0"):
            assert emitter.enabled
            emitter.emit("obligation.start")
        assert not emitter.enabled
        assert events == [{"kind": "obligation.start", "obligation": "spec0"}]


class TestBus:
    def test_publish_stamps_seq_and_ts(self):
        bus = ProgressBus(clock=FakeClock(42.0))
        first = bus.publish({"kind": "a"})
        second = bus.publish({"kind": "b"})
        assert first["seq"] == 1 and second["seq"] == 2
        assert first["ts"] == 42.0
        assert bus.last_seq == 2

    def test_events_since_resumes_mid_stream(self):
        bus = ProgressBus()
        for kind in "abcd":
            bus.publish({"kind": kind})
        assert [e["kind"] for e in bus.events_since(2)] == ["c", "d"]
        assert bus.events_since(4) == []

    def test_bounded_retention_drops_oldest(self):
        bus = ProgressBus(maxlen=3)
        for i in range(5):
            bus.publish({"i": i})
        retained = bus.events_since(0)
        assert [e["seq"] for e in retained] == [3, 4, 5]
        assert bus.last_seq == 5  # sequence numbers never reset

    def test_wait_returns_existing_events_immediately(self):
        bus = ProgressBus()
        bus.publish({"kind": "a"})
        assert [e["kind"] for e in bus.wait(0, timeout=0.0)] == ["a"]

    def test_wait_times_out_empty(self):
        bus = ProgressBus()
        assert bus.wait(0, timeout=0.01) == []

    def test_wait_wakes_on_publish(self):
        bus = ProgressBus()
        got = []

        def waiter():
            got.extend(bus.wait(0, timeout=5.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        bus.publish({"kind": "late"})
        thread.join(timeout=5.0)
        assert [e["kind"] for e in got] == ["late"]

    def test_close_wakes_waiters_for_good(self):
        bus = ProgressBus()
        done = threading.Event()

        def waiter():
            bus.wait(0, timeout=30.0)
            done.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        bus.close()
        assert done.wait(5.0)
        thread.join(timeout=5.0)
        assert bus.closed
        assert bus.wait(0, timeout=0.0) == []  # closed + empty: no block

    def test_publish_after_close_is_dropped(self):
        bus = ProgressBus()
        bus.publish({"kind": "job.state", "state": "done"})
        bus.close()
        late = bus.publish({"kind": "obligation.tick", "obligation": "spec0"})
        assert "seq" not in late  # returned unstamped, not buffered
        assert bus.last_seq == 1
        assert [e["kind"] for e in bus.events_since(0)] == ["job.state"]


class TestConfig:
    def test_obligation_names_are_prefixed(self):
        config = ProgressConfig(publish=lambda e: None, prefix="c2.")
        assert config.obligation(0) == "c2.spec0"
        assert config.obligation(11) == "c2.spec11"

    def test_default_prefix_is_bare(self):
        config = ProgressConfig(publish=lambda e: None)
        assert config.obligation(3) == "spec3"


class TestRendering:
    def test_printer_computes_tick_rate(self):
        import io

        stream = io.StringIO()
        printer = ProgressPrinter(stream)
        printer(
            {"kind": "obligation.tick", "obligation": "spec0",
             "phase": "eu", "iterations": 10, "size": 5, "elapsed": 1.0}
        )
        printer(
            {"kind": "obligation.tick", "obligation": "spec0",
             "phase": "eu", "iterations": 30, "size": 5, "elapsed": 2.0}
        )
        first, second = stream.getvalue().splitlines()
        assert "(" not in first  # no rate on the first tick
        assert "(20 it/s)" in second

    def test_format_covers_lifecycle_kinds(self):
        assert format_progress_event(
            {"kind": "obligation.queued", "obligation": "s", "engine": "symbolic"}
        ) == "s queued (symbolic)"
        assert format_progress_event(
            {"kind": "obligation.cache_hit", "obligation": "s"}
        ) == "s cached"
        assert "STALLED" in format_progress_event(
            {"kind": "obligation.stall", "obligation": "s",
             "idle_seconds": 1.5, "deadline": 0.5}
        )
        assert format_progress_event(
            {"kind": "job.state", "state": "running"}
        ) == "job running"


class TestEngineHeartbeats:
    """Ticks really come from inside the fixpoint loops of both engines."""

    def run_with_progress(self, engine):
        from repro.store.cached import cached_check

        events = []
        config = ProgressConfig(publish=events.append, interval=0.0)
        run = cached_check(TOGGLE, engine=engine, progress=config)
        assert run.all_true
        assert not PROGRESS.enabled  # always deactivated afterwards
        return events

    def test_symbolic_fixpoints_tick(self):
        events = self.run_with_progress("symbolic")
        kinds = [e["kind"] for e in events]
        assert kinds.count("obligation.start") == 2
        assert kinds.count("obligation.finish") == 2
        ticks = [e for e in events if e["kind"] == "obligation.tick"]
        assert ticks, "no heartbeat from inside the symbolic fixpoints"
        phases = {t["phase"] for t in ticks}
        assert phases <= {"eu", "eg", "eg_fair"} and "eu" in phases
        for tick in ticks:
            assert tick["iterations"] >= 1
            assert tick["size"] >= 1  # BDD nodes allocated
            assert tick["elapsed"] >= 0.0

    def test_explicit_fixpoints_tick(self):
        events = self.run_with_progress("explicit")
        ticks = [e for e in events if e["kind"] == "obligation.tick"]
        assert ticks, "no heartbeat from inside the explicit fixpoints"
        assert {t["phase"] for t in ticks} <= {"eu", "eg", "eg_fair"}

    def test_no_progress_config_emits_nothing(self):
        from repro.store.cached import cached_check

        run = cached_check(TOGGLE, engine="symbolic")
        assert run.all_true and not PROGRESS.enabled
