"""Tests for the --profile text renderer."""

from repro.obs.profile import (
    format_profile,
    format_profile_table,
    format_span_tree,
)
from repro.obs.tracer import Tracer


def make_trace():
    t = Tracer(enabled=True)
    with t.span("check", formula="AG p"):
        with t.span("eval"):
            with t.span("eval"):  # recursive frame
                pass
        with t.span("image"):
            pass
    return t


class TestSpanTree:
    def test_indentation_follows_depth(self):
        lines = format_span_tree(make_trace()).splitlines()
        assert lines[0].startswith("check")
        assert lines[1].startswith("  eval")
        assert lines[2].startswith("    eval")
        assert lines[3].startswith("  image")

    def test_first_attr_shown_as_detail(self):
        assert "[AG p]" in format_span_tree(make_trace()).splitlines()[0]

    def test_long_detail_truncated(self):
        t = Tracer(enabled=True)
        with t.span("check", formula="x" * 80):
            pass
        line = format_span_tree(t).splitlines()[0]
        assert "x" * 40 + "…" in line
        assert "x" * 41 not in line

    def test_max_depth_limits_tree(self):
        text = format_span_tree(make_trace(), max_depth=0)
        assert text.splitlines()[0].startswith("check")
        assert "eval" not in text


class TestProfileTable:
    def test_calls_and_columns(self):
        table = format_profile_table(make_trace())
        assert table.splitlines()[0].split() == [
            "span", "calls", "incl", "ms", "excl", "ms", "incl", "%",
        ]
        eval_row = next(
            line for line in table.splitlines() if line.startswith("eval")
        )
        assert eval_row.split()[1] == "2"

    def test_recursive_frames_not_double_counted(self):
        t = make_trace()
        table = format_profile_table(t)
        root = t.roots[0]
        outer_eval = root.children[0]
        eval_row = next(
            line for line in table.splitlines() if line.startswith("eval")
        )
        # inclusive ms equals the OUTERMOST eval frame only
        assert float(eval_row.split()[2]) == round(
            outer_eval.duration * 1e3, 3
        )

    def test_root_row_is_total(self):
        table = format_profile_table(make_trace())
        check_row = next(
            line for line in table.splitlines() if line.startswith("check")
        )
        assert check_row.split()[-1] == "100.0%"


class TestFormatProfile:
    def test_combines_tree_and_table(self):
        text = format_profile(make_trace())
        assert "span tree (inclusive wall time):" in text
        assert "by span name (sorted by inclusive time):" in text

    def test_empty_trace_message(self):
        assert "trace is empty" in format_profile(Tracer(enabled=True))
