"""Tests for the span tracer: nesting, gating, counters, lifecycle."""

import pytest

from repro.obs.tracer import TRACER, Span, Tracer, tracing


class TestSpanNesting:
    def test_nested_spans_form_a_tree(self):
        t = Tracer(enabled=True)
        with t.span("root"):
            with t.span("a"):
                with t.span("a1"):
                    pass
            with t.span("b"):
                pass
        assert [r.name for r in t.roots] == ["root"]
        (root,) = t.roots
        assert [c.name for c in root.children] == ["a", "b"]
        assert [c.name for c in root.children[0].children] == ["a1"]

    def test_sibling_roots(self):
        t = Tracer(enabled=True)
        with t.span("first"):
            pass
        with t.span("second"):
            pass
        assert [r.name for r in t.roots] == ["first", "second"]

    def test_preorder_traversal(self):
        t = Tracer(enabled=True)
        with t.span("root"):
            with t.span("a"):
                with t.span("a1"):
                    pass
            with t.span("b"):
                pass
        assert [s.name for s in t.spans()] == ["root", "a", "a1", "b"]

    def test_current_tracks_innermost_open_span(self):
        t = Tracer(enabled=True)
        assert t.current() is None
        with t.span("outer"):
            assert t.current().name == "outer"
            with t.span("inner"):
                assert t.current().name == "inner"
            assert t.current().name == "outer"
        assert t.current() is None

    def test_stack_recovers_when_span_leaks_across_raise(self):
        t = Tracer(enabled=True)
        outer = t.span("outer")
        inner = t.span("inner")
        outer.__enter__()
        inner.__enter__()
        # exiting the outer span pops the leaked inner one too
        outer.__exit__(None, None, None)
        assert t.current() is None


class TestEnabledGating:
    def test_disabled_tracer_records_nothing(self):
        t = Tracer(enabled=False)
        with t.span("invisible"):
            pass
        assert t.roots == []
        assert list(t.spans()) == []

    def test_disabled_span_still_times(self):
        t = Tracer(enabled=False)
        with t.span("timed") as span:
            pass
        assert span.recorded is False
        assert span.end is not None
        assert span.duration >= 0.0

    def test_elapsed_usable_before_close(self):
        t = Tracer(enabled=False)
        with t.span("open") as span:
            assert span.elapsed() >= 0.0
            assert span.duration == 0.0  # not closed yet

    def test_global_tracer_disabled_by_default(self):
        assert TRACER.enabled is False


class TestDurations:
    def test_child_duration_within_parent(self):
        t = Tracer(enabled=True)
        with t.span("parent") as parent:
            with t.span("child") as child:
                pass
        assert parent.start <= child.start
        assert child.end <= parent.end
        assert child.duration <= parent.duration

    def test_exclusive_subtracts_children(self):
        t = Tracer(enabled=True)
        with t.span("parent") as parent:
            with t.span("child"):
                pass
        assert parent.exclusive == pytest.approx(
            parent.duration - parent.children[0].duration
        )

    def test_start_time_is_earliest_root(self):
        t = Tracer(enabled=True)
        with t.span("first") as first:
            pass
        with t.span("second"):
            pass
        assert t.start_time == first.start


class TestCounters:
    def test_add_accumulates(self):
        span = Span(Tracer(), "s", "", {})
        span.add("mk_calls", 3)
        span.add("mk_calls", 4)
        assert span.counters == {"mk_calls": 7.0}

    def test_add_counter_targets_current_span(self):
        t = Tracer(enabled=True)
        with t.span("outer"):
            with t.span("inner") as inner:
                t.add_counter("iterations")
                t.add_counter("iterations")
        assert inner.counters == {"iterations": 2.0}

    def test_add_counter_noop_when_idle(self):
        t = Tracer(enabled=True)
        t.add_counter("iterations")  # no open span: silently dropped
        assert list(t.spans()) == []


class TestLifecycle:
    def test_reset_clears_spans(self):
        t = Tracer(enabled=True)
        with t.span("old"):
            pass
        t.reset()
        assert t.roots == []

    def test_tracing_contextmanager_enables_then_disables(self):
        assert TRACER.enabled is False
        with tracing() as t:
            assert t is TRACER
            assert t.enabled is True
            with t.span("work"):
                pass
        assert TRACER.enabled is False
        assert [s.name for s in TRACER.spans()] == ["work"]

    def test_tracing_resets_previous_capture(self):
        with tracing() as t:
            with t.span("first-run"):
                pass
        with tracing() as t:
            with t.span("second-run"):
                pass
        assert [s.name for s in t.spans()] == ["second-run"]

    def test_tracing_disables_on_exception(self):
        with pytest.raises(RuntimeError):
            with tracing():
                raise RuntimeError("boom")
        assert TRACER.enabled is False
