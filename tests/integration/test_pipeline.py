"""End-to-end integration: SMV text → components → compositional proof.

Builds a fresh toy protocol (producer / consumer over a shared slot) that
exists nowhere else in the codebase, drives it through every layer, and
cross-checks the two engines against each other at each stage.
"""

import pytest

from repro.casestudies.afs_common import ProtocolComponent
from repro.checking.explicit import ExplicitChecker
from repro.checking.symbolic import SymbolicChecker
from repro.compositional.progress import ProgressChain
from repro.compositional.proof import CompositionProof
from repro.logic.ctl import AG, Implies, Not, Or, land
from repro.logic.restriction import Restriction
from repro.systems.compose import compose
from repro.systems.symbolic import SymbolicSystem, symbolic_compose

PRODUCER = """
MODULE main
VAR slot : {empty, full};
    produced : boolean;
ASSIGN
  next(slot) := case slot = empty & !produced : full; 1 : slot; esac;
  next(produced) := case slot = empty & !produced : 1; 1 : produced; esac;
"""

CONSUMER = """
MODULE main
VAR slot : {empty, full};
    consumed : boolean;
ASSIGN
  next(slot) := case slot = full & !consumed : empty; 1 : slot; esac;
  next(consumed) := case slot = full & !consumed : 1; 1 : consumed; esac;
"""


@pytest.fixture
def components():
    return {
        "producer": ProtocolComponent("producer", PRODUCER),
        "consumer": ProtocolComponent("consumer", CONSUMER),
    }


class TestCrossBackend:
    def test_composites_agree(self, components):
        explicit = compose(
            components["producer"].system(), components["consumer"].system()
        )
        symbolic = symbolic_compose(
            components["producer"].symbolic(), components["consumer"].symbolic()
        )
        assert symbolic.to_explicit() == explicit

    def test_checkers_agree_on_composite(self, components):
        producer, consumer = components["producer"], components["consumer"]
        composite = compose(producer.system(), consumer.system())
        eck = ExplicitChecker(composite)
        sck = SymbolicChecker(SymbolicSystem.from_explicit(composite))
        specs = [
            Implies(producer.eq("produced", True), AG(producer.eq("produced", True))),
            Implies(consumer.eq("consumed", True), AG(consumer.eq("consumed", True))),
            Implies(
                consumer.eq("consumed", True),
                Or(producer.eq("produced", True), Not(producer.eq("slot", "empty"))),
            ),
        ]
        for spec in specs:
            assert bool(eck.holds(spec)) == bool(sck.holds(spec))


class TestCompositionalStory:
    def test_safety_consumed_implies_produced(self, components):
        """consumed ⇒ produced — an inductive cross-component invariant."""
        producer, consumer = components["producer"], components["consumer"]
        pf = CompositionProof(
            {"producer": producer.system(), "consumer": consumer.system()}
        )
        init = land(
            producer.eq("slot", "empty"),
            Not(producer.eq("produced", True)),
            Not(consumer.eq("consumed", True)),
        )
        inv = land(
            # a full slot or a consumption implies production happened
            Implies(producer.eq("slot", "full"), producer.eq("produced", True)),
            Implies(consumer.eq("consumed", True), producer.eq("produced", True)),
        )
        ag_inv = pf.invariant(init, inv)
        safety = pf.ag_weaken(
            ag_inv,
            Implies(consumer.eq("consumed", True), producer.eq("produced", True)),
        )
        for proven, check in pf.verify_monolithic():
            assert bool(check), str(proven)

    def test_liveness_item_flows_through(self, components):
        """empty&unproduced ↝ produced ↝ consumed via a two-hop chain."""
        producer, consumer = components["producer"], components["consumer"]
        pf = CompositionProof(
            {"producer": producer.system(), "consumer": consumer.system()}
        )
        fresh = land(
            producer.eq("slot", "empty"),
            Not(producer.eq("produced", True)),
            Not(consumer.eq("consumed", True)),
        )
        handed_over = land(
            producer.eq("slot", "full"),
            producer.eq("produced", True),
            Not(consumer.eq("consumed", True)),
        )
        done = consumer.eq("consumed", True)
        result = (
            ProgressChain(pf)
            .step("producer", fresh, handed_over)
            .step("consumer", handed_over, done)
            .conclude(done)
        )
        assert result.formula.right.operand == done
        failures = [p for p, c in pf.verify_monolithic() if not c]
        assert failures == []

    def test_symbolic_backend_replays_the_same_proof(self, components):
        producer, consumer = components["producer"], components["consumer"]
        pf = CompositionProof(
            {
                "producer": producer.symbolic(),
                "consumer": consumer.symbolic(),
            },
            backend="symbolic",
        )
        fresh = land(
            producer.eq("slot", "empty"),
            Not(producer.eq("produced", True)),
            Not(consumer.eq("consumed", True)),
        )
        handed_over = land(
            producer.eq("slot", "full"),
            producer.eq("produced", True),
            Not(consumer.eq("consumed", True)),
        )
        done = consumer.eq("consumed", True)
        result = (
            ProgressChain(pf)
            .step("producer", fresh, handed_over)
            .step("consumer", handed_over, done)
            .conclude(done)
        )
        failures = [p for p, c in pf.verify_monolithic() if not c]
        assert failures == []
