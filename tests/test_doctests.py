"""Run the doctests embedded in public modules' docstrings."""

import doctest

import pytest

import repro.bdd.manager
import repro.checking.explicit
import repro.checking.symbolic
import repro.compositional.prop_logic
import repro.logic.evaluate
import repro.logic.parser
import repro.smv.parser
import repro.smv.run
import repro.systems.encode
import repro.systems.system

MODULES = [
    repro.bdd.manager,
    repro.logic.parser,
    repro.logic.evaluate,
    repro.systems.system,
    repro.systems.encode,
    repro.checking.explicit,
    repro.checking.symbolic,
    repro.smv.parser,
    repro.smv.run,
    repro.compositional.prop_logic,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    failures, attempted = doctest.testmod(
        module, verbose=False, raise_on_error=False
    )[:2]
    assert attempted > 0, f"{module.__name__} lost its doctests"
    assert failures == 0
