"""The bounded selector-loop fan-out client, against stdlib servers."""

import json
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.cluster.fanout import FanoutRequest, fanout


class _EchoHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def _reply(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path.startswith("/slow"):
            time.sleep(1.0)
        self._reply({"path": self.path})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        length = int(self.headers.get("Content-Length", "0"))
        data = json.loads(self.rfile.read(length) or b"{}")
        self._reply({"echo": data}, status=202)


@pytest.fixture
def echo_server():
    server = ThreadingHTTPServer(("127.0.0.1", 0), _EchoHandler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{server.server_address[1]}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


def closed_port_url() -> str:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return f"http://127.0.0.1:{sock.getsockname()[1]}"


class TestFanout:
    def test_responses_in_input_order(self, echo_server):
        requests = [
            FanoutRequest(url=f"{echo_server}/r{i}", timeout=5.0)
            for i in range(10)
        ]
        responses = fanout(requests, max_parallel=3)  # bounded < items
        assert [r.json()["path"] for r in responses] == [
            f"/r{i}" for i in range(10)
        ]
        assert all(r.ok and r.status == 200 for r in responses)

    def test_post_body_roundtrip(self, echo_server):
        [response] = fanout(
            [
                FanoutRequest(
                    url=f"{echo_server}/v1/check",
                    method="POST",
                    payload={"checks": [{"source": "m"}]},
                    timeout=5.0,
                )
            ]
        )
        assert response.status == 202
        assert response.json() == {"echo": {"checks": [{"source": "m"}]}}

    def test_one_dead_peer_does_not_poison_the_rest(self, echo_server):
        requests = [
            FanoutRequest(url=f"{echo_server}/ok", timeout=5.0),
            FanoutRequest(url=f"{closed_port_url()}/dead", timeout=1.0),
            FanoutRequest(url=f"{echo_server}/also-ok", timeout=5.0),
        ]
        responses = fanout(requests)
        assert responses[0].ok and responses[2].ok
        assert not responses[1].ok and responses[1].error is not None

    def test_deadline_enforced_per_request(self, echo_server):
        started = time.perf_counter()
        responses = fanout(
            [
                FanoutRequest(url=f"{echo_server}/slow", timeout=0.2),
                FanoutRequest(url=f"{echo_server}/fast", timeout=5.0),
            ]
        )
        elapsed = time.perf_counter() - started
        assert responses[0].error is not None  # timed out
        assert "timed out" in responses[0].error
        assert responses[1].ok
        assert elapsed < 4.0  # the slow request did not serialize the loop

    def test_empty_input(self):
        assert fanout([]) == []
