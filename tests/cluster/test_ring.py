"""Hypothesis properties of the consistent-hash ring.

The three properties the cluster tier leans on, each stated over the
ring itself rather than over sampled traffic wherever possible:

* **balance** — at the default 128 vnodes, max/mean keyspace share
  stays within 1.35x for realistic membership sizes;
* **determinism** — owners are a pure function of (members, vnodes),
  identical across processes (``PYTHONHASHSEED`` independence proven
  by recomputing in a subprocess);
* **minimal remapping** — membership changes only move keys to/from
  the changed member, and the moved fraction is ≈ 1/N.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.ring import (
    DEFAULT_VNODES,
    HashRing,
    RingConfig,
    request_fingerprint,
    shard_id_of,
)
from repro.errors import ReproError

#: Member-name strategy shaped like real shard ids (host:port).
members_strategy = st.lists(
    st.integers(min_value=1024, max_value=65535).map(
        lambda p: f"10.0.0.{p % 250 + 1}:{p}"
    ),
    min_size=2,
    max_size=8,
    unique=True,
)

keys_strategy = st.lists(
    st.text(min_size=1, max_size=40), min_size=1, max_size=50, unique=True
)


class TestBalance:
    @settings(max_examples=25, deadline=None)
    @given(members=members_strategy)
    def test_max_over_mean_share_bounded(self, members):
        """Exact keyspace shares: max/mean ≤ 1.35 at 128 vnodes."""
        ring = HashRing(members, vnodes=DEFAULT_VNODES)
        shares = ring.shares()
        assert abs(sum(shares.values()) - 1.0) < 1e-9
        mean = 1.0 / len(members)
        # 128 vnodes keeps the spread tight but not unboundedly so: the
        # worst observed max/mean over small memberships sits just under
        # 1.3, so assert the 1.35 envelope rather than the average case.
        assert max(shares.values()) / mean <= 1.35

    def test_two_member_ring_balanced(self):
        """The cluster_smoke configuration specifically."""
        ring = HashRing(["127.0.0.1:8124", "127.0.0.1:8125"])
        shares = ring.shares()
        assert max(shares.values()) / 0.5 <= 1.25


class TestDeterminism:
    @settings(max_examples=10, deadline=None)
    @given(members=members_strategy, keys=keys_strategy)
    def test_owner_is_pure_function(self, members, keys):
        a = HashRing(members)
        b = HashRing(list(reversed(members)))  # input order irrelevant
        for key in keys:
            assert a.owner(key) == b.owner(key)

    def test_owners_identical_across_processes(self):
        """A fresh interpreter (different hash seed) agrees exactly."""
        members = ["10.0.0.1:8124", "10.0.0.2:8125", "10.0.0.3:8126"]
        keys = [f"key-{i}" for i in range(64)]
        local = [HashRing(members).owner(k) for k in keys]
        script = (
            "import json, sys\n"
            "from repro.cluster.ring import HashRing\n"
            "members, keys = json.load(sys.stdin)\n"
            "print(json.dumps([HashRing(members).owner(k) for k in keys]))\n"
        )
        import repro

        src = str(Path(repro.__file__).resolve().parents[1])
        out = subprocess.run(
            [sys.executable, "-c", script],
            input=json.dumps([members, keys]),
            capture_output=True,
            text=True,
            env={"PYTHONHASHSEED": "12345", "PYTHONPATH": src},
            check=True,
        )
        assert json.loads(out.stdout) == local

    def test_request_fingerprint_stable(self):
        check = {"source": "MODULE main\n", "engine": "symbolic"}
        assert request_fingerprint(check) == request_fingerprint(dict(check))
        assert request_fingerprint(check) != request_fingerprint(
            {**check, "engine": "explicit"}
        )
        assert request_fingerprint(check) != request_fingerprint(
            {**check, "reflexive": True}
        )


class TestRemapping:
    @settings(max_examples=15, deadline=None)
    @given(members=members_strategy, keys=keys_strategy)
    def test_join_moves_keys_only_to_new_member(self, members, keys):
        ring = HashRing(members)
        new = "192.168.7.7:9999"
        grown = ring.with_member(new)
        for key in keys:
            before, after = ring.owner(key), grown.owner(key)
            if before != after:
                assert after == new  # minimal remapping on join

    @settings(max_examples=15, deadline=None)
    @given(members=members_strategy, keys=keys_strategy)
    def test_leave_moves_only_departed_members_keys(self, members, keys):
        ring = HashRing(members)
        gone = members[0]
        shrunk = ring.without_member(gone)
        for key in keys:
            before, after = ring.owner(key), shrunk.owner(key)
            if before != gone:
                assert after == before  # untouched keys keep their owner

    def test_moved_fraction_about_one_over_n(self):
        """≤ K/N expected movement, with slack for vnode variance."""
        members = [f"10.0.0.{i}:81{i:02d}" for i in range(1, 6)]
        ring = HashRing(members)
        grown = ring.with_member("10.0.9.9:9999")
        keys = [f"fingerprint-{i}" for i in range(2000)]
        moved = sum(1 for k in keys if ring.owner(k) != grown.owner(k))
        expected = len(keys) / (len(members) + 1)
        assert moved <= expected * 1.6  # 1/N with generous variance slack


class TestPreference:
    def test_preference_starts_at_owner_and_is_distinct(self):
        ring = HashRing(["a:1", "b:2", "c:3"])
        order = ring.preference("some-key")
        assert order[0] == ring.owner("some-key")
        assert sorted(order) == sorted(ring.members)

    def test_preference_count_bounds(self):
        ring = HashRing(["a:1", "b:2", "c:3"])
        assert len(ring.preference("k", count=2)) == 2


class TestRingConfig:
    def test_parse_normalizes_and_identifies_self(self):
        cfg = RingConfig.parse(
            "127.0.0.1:8124, http://127.0.0.1:8125/",
            self_url="127.0.0.1:8124",
        )
        assert cfg.shard_ids == ("127.0.0.1:8124", "127.0.0.1:8125")
        assert cfg.self_id == "127.0.0.1:8124"
        assert cfg.peers() == ("http://127.0.0.1:8125",)
        assert cfg.url_of("127.0.0.1:8125") == "http://127.0.0.1:8125"

    def test_parse_rejects_bad_specs(self):
        with pytest.raises(ReproError):
            RingConfig.parse("")
        with pytest.raises(ReproError):
            RingConfig.parse("a:1,a:1")
        with pytest.raises(ReproError):
            RingConfig.parse("a:1,b:2", self_url="c:3")

    def test_shard_id_of(self):
        assert shard_id_of("http://127.0.0.1:8124/") == "127.0.0.1:8124"
        assert shard_id_of("127.0.0.1:8124") == "127.0.0.1:8124"

    def test_ring_rejects_degenerate_inputs(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing(["a:1"], vnodes=0)
        with pytest.raises(ValueError):
            HashRing(["a:1"]).without_member("a:1")
