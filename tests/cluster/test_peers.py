"""Peer store tier: breaker state machine, fetch/push, degradation.

The dead-peer test here is the ISSUE's acceptance scenario in
miniature: a ring member that is *not listening* (a port we bound and
closed) while checks proceed — every ``get`` degrades to a clean local
miss, ``cluster.peer_fetch.error`` counts, the breaker opens (an
observable ``circuit-open`` event), and subsequent lookups skip the
corpse entirely.  Deterministic: no live racing server involved.
"""

import hashlib
import socket
import threading

import pytest

from repro.cluster.peers import (
    CircuitBreaker,
    PeerAwareStore,
    PeerSet,
)
from repro.cluster.ring import RingConfig
from repro.serve.client import ServeClient
from repro.serve.http import create_server
from repro.serve.jobs import JobManager
from repro.store import ResultStore
from repro.store.store import StoreRecord


def free_port() -> int:
    """A port that was just free — and is now closed (nobody listens)."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def fingerprint_owned_by(config: RingConfig, shard: str) -> str:
    """A well-formed fingerprint whose ring owner is ``shard``."""
    for i in range(10_000):
        candidate = hashlib.sha256(f"probe-{i}".encode()).hexdigest()
        if config.ring.owner(candidate) == shard:
            return candidate
    raise AssertionError("no fingerprint found for shard")  # pragma: no cover


@pytest.fixture
def live_peer(tmp_path):
    """A real serving instance whose store holds one record."""
    store = ResultStore(tmp_path / "peer-store")
    manager = JobManager(jobs=1, queue_size=4, store=store, metrics=store.metrics)
    server = create_server(manager=manager)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server, store
    server.shutdown()
    server.server_close()
    manager.stop()
    thread.join(timeout=10)


class TestCircuitBreaker:
    def test_opens_after_threshold_and_half_opens_after_reset(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=3, reset_seconds=10.0, clock=lambda: clock[0]
        )
        assert breaker.state == "closed"
        assert not breaker.record_failure()
        assert not breaker.record_failure()
        assert breaker.record_failure()  # third failure opens
        assert breaker.state == "open"
        assert not breaker.allow()
        clock[0] = 9.9
        assert not breaker.allow()
        clock[0] = 10.0  # cool-down elapsed: one half-open probe
        assert breaker.state == "half-open"
        assert breaker.allow()
        assert breaker.record_failure()  # half-open failure re-opens
        assert breaker.state == "open"
        clock[0] = 20.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        assert not breaker.record_failure()  # streak restarted
        assert breaker.state == "closed"


class TestDeadPeerDegradation:
    def _store(self, tmp_path, **peer_kwargs):
        dead = f"127.0.0.1:{free_port()}"
        me = f"127.0.0.1:{free_port()}"
        config = RingConfig.parse(f"{me},{dead}", self_url=me)
        store = PeerAwareStore(
            tmp_path / "local",
            config,
            timeout=0.25,
            retries=0,
            **peer_kwargs,
        )
        return store, dead

    def test_get_degrades_to_miss_and_opens_circuit(self, tmp_path):
        clock = [0.0]
        store, dead = self._store(
            tmp_path, failure_threshold=2, clock=lambda: clock[0]
        )
        fp = fingerprint_owned_by(store.peers.config, dead)
        # every probe of the dead peer is an error, never an exception
        assert store.get(fp, kind="spec") is None
        assert store.metrics.get("cluster.peer_fetch.error") == 1
        assert store.metrics.get("store.misses") == 1
        assert store.get(fp, kind="spec") is None  # second failure: opens
        assert store.metrics.get("cluster.peer_fetch.error") == 2
        description = store.peers.describe()
        assert description["peers"][dead]["state"] == "open"
        events = [e for e in description["events"] if e["kind"] == "circuit-open"]
        assert events and events[0]["peer"] == dead
        assert store.metrics.get("cluster.circuit.open") == 1
        # circuit open: the corpse is skipped, not re-probed
        assert store.get(fp, kind="spec") is None
        assert store.metrics.get("cluster.peer_fetch.error") == 2
        assert store.metrics.get("cluster.peer_fetch.skipped") == 1
        # ...and local operation is entirely unaffected
        store.put(fp, StoreRecord(verdict=True, kind="spec"))
        assert store.get(fp, kind="spec").verdict is True

    def test_push_to_dead_owner_is_best_effort(self, tmp_path):
        store, dead = self._store(tmp_path, failure_threshold=1)
        fp = fingerprint_owned_by(store.peers.config, dead)
        store.put(fp, StoreRecord(verdict=True, kind="spec"))
        assert store.peers.flush(timeout=5.0)
        assert store.metrics.get("cluster.peer_push.error") == 1
        # the local record survives the failed replication
        assert store.get(fp, kind="spec").verdict is True


class TestLivePeerFetch:
    def test_read_through_write_back(self, tmp_path, live_peer):
        server, peer_store = live_peer
        peer = f"127.0.0.1:{server.port}"
        me = f"127.0.0.1:{free_port()}"
        config = RingConfig.parse(f"{me},{peer}", self_url=me)
        store = PeerAwareStore(tmp_path / "local", config, timeout=2.0)
        fp = fingerprint_owned_by(config, peer)
        peer_store.put(fp, StoreRecord(verdict=True, spec_text="AG x", kind="spec"))
        record = store.get(fp, kind="spec")
        assert record is not None and record.spec_text == "AG x"
        assert store.metrics.get("cluster.peer_fetch.hit") == 1
        assert store.metrics.get("store.remote_hits") == 1
        assert store.metrics.get("store.hits") == 1
        # write-back: now present locally, served without a second probe
        assert store.path_for(fp).is_file()
        assert store.get(fp, kind="spec").spec_text == "AG x"
        assert store.metrics.get("cluster.peer_fetch.hit") == 1

    def test_remote_miss_counts_miss_not_error(self, tmp_path, live_peer):
        server, _ = live_peer
        peer = f"127.0.0.1:{server.port}"
        me = f"127.0.0.1:{free_port()}"
        config = RingConfig.parse(f"{me},{peer}", self_url=me)
        store = PeerAwareStore(tmp_path / "local", config, timeout=2.0)
        fp = fingerprint_owned_by(config, peer)
        assert store.get(fp) is None
        assert store.metrics.get("cluster.peer_fetch.miss") == 1
        assert store.metrics.get("cluster.peer_fetch.error") == 0

    def test_push_to_owner_lands_remotely(self, tmp_path, live_peer):
        server, peer_store = live_peer
        peer = f"127.0.0.1:{server.port}"
        me = f"127.0.0.1:{free_port()}"
        config = RingConfig.parse(f"{me},{peer}", self_url=me)
        store = PeerAwareStore(tmp_path / "local", config, timeout=2.0)
        fp = fingerprint_owned_by(config, peer)
        store.put(fp, StoreRecord(verdict=False, spec_text="AF y", kind="spec"))
        assert store.peers.flush(timeout=5.0)
        assert store.metrics.get("cluster.peer_push.sent") == 1
        landed = peer_store.peek_local(fp)
        assert landed is not None and landed.spec_text == "AF y"

    def test_store_endpoint_rejects_bad_fingerprints(self, live_peer):
        server, _ = live_peer
        client = ServeClient(f"http://127.0.0.1:{server.port}", retries=0)
        from repro.serve.client import ServeClientError

        with pytest.raises(ServeClientError) as exc:
            client._request("GET", "/v1/store/not-a-fingerprint")
        assert exc.value.status == 400
        with pytest.raises(ServeClientError) as exc:
            client._request("GET", f"/v1/store/{'a' * 64}")
        assert exc.value.status == 404


class TestPeerSetRouting:
    def test_self_owned_fingerprints_are_not_probed(self, tmp_path):
        me = "127.0.0.1:18124"
        other = "127.0.0.1:18125"
        config = RingConfig.parse(f"{me},{other}", self_url=me)
        peers = PeerSet(config)
        fp = fingerprint_owned_by(config, me)
        # owner is us: with sibling probing the other member still
        # appears (it may hold a not-yet-pushed record)...
        assert peers.candidates(fp) == [other]
        # ...without it, nothing is probed at all
        peers.probe_siblings = False
        assert peers.candidates(fp) == []
        lone = PeerSet(RingConfig.parse(me, self_url=me))
        assert lone.candidates(fp) == []
