"""The router front end over real serving instances on loopback."""

import socket
import threading

import pytest

from repro.cluster.ring import RingConfig, request_fingerprint
from repro.cluster.router import RouterManager, create_router
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.http import create_server
from repro.serve.jobs import JobManager
from repro.store import ResultStore

GOOD = """
MODULE main
VAR x : boolean;
ASSIGN next(x) := 1;
SPEC x -> AX x
"""

BAD = """
MODULE main
VAR x : boolean;
INIT x
ASSIGN next(x) := {0, 1};
SPEC AG x
"""


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


@pytest.fixture
def cluster(tmp_path):
    """Two real shards + a router, all on ephemeral loopback ports."""
    instances = []
    for name in ("a", "b"):
        store = ResultStore(tmp_path / f"{name}-store")
        manager = JobManager(
            jobs=1, queue_size=8, store=store, metrics=store.metrics
        )
        server = create_server(manager=manager)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        instances.append((server, manager, thread))
    urls = ",".join(
        f"127.0.0.1:{server.port}" for server, _, _ in instances
    )
    config = RingConfig.parse(urls)
    router = create_router(config=config, timeout=5.0)
    router_thread = threading.Thread(target=router.serve_forever, daemon=True)
    router_thread.start()
    client = ServeClient(f"http://127.0.0.1:{router.port}")
    yield router, config, client
    router.shutdown()
    router.server_close()
    router_thread.join(timeout=10)
    for server, manager, thread in instances:
        server.shutdown()
        server.server_close()
        manager.stop()
        thread.join(timeout=10)


class TestRouting:
    def test_batch_split_and_fanned_back_in_order(self, cluster):
        router, config, client = cluster
        checks = [
            {"source": GOOD, "label": "good-0"},
            {"source": BAD, "label": "bad-1"},
            {"source": GOOD + "-- variant\n", "label": "good-2"},
        ]
        accepted = client.submit(checks)
        assert accepted["checks"] == 3
        job = client.wait(accepted["id"], timeout=60.0)
        assert job["state"] == "done"
        labels = [report["label"] for report in job["reports"]]
        assert labels == ["good-0", "bad-1", "good-2"]  # caller's order
        assert job["reports"][0]["all_true"] is True
        assert job["reports"][1]["all_true"] is False
        # the shards block attributes every check to a ring member
        routed = {i for part in job["shards"] for i in part["indices"]}
        assert routed == {0, 1, 2}
        for part in job["shards"]:
            expected = {
                i
                for i, check in enumerate(checks)
                if config.ring.owner(request_fingerprint(check))
                == part["shard"]
            }
            assert set(part["indices"]) == expected

    def test_single_check_payload(self, cluster):
        _, _, client = cluster
        job = client.check(GOOD, wait_timeout=60.0)
        assert job["state"] == "done"
        assert job["reports"][0]["all_true"] is True

    def test_unknown_job_404(self, cluster):
        _, _, client = cluster
        with pytest.raises(ServeClientError) as exc:
            client.job("feedfeedfeed")
        assert exc.value.status == 404

    def test_bad_payload_rejected_at_edge(self, cluster):
        _, _, client = cluster
        with pytest.raises(ServeClientError) as exc:
            client.submit({"source": ""})
        assert exc.value.status == 400

    def test_healthz_and_metrics(self, cluster):
        router, config, client = cluster
        doc = client.healthz()
        assert doc["role"] == "router"
        assert doc["ring"]["members"] == list(config.shard_ids)
        assert all(s["reachable"] for s in doc["shards"].values())
        client.check([{"source": GOOD}, {"source": BAD}], wait_timeout=60.0)
        text = client.metrics_text()
        assert "repro_router_jobs_submitted" in text
        assert "repro_router_checks_routed" in text
        assert "repro_router_submit_seconds" in text


class TestFailover:
    def test_dead_shard_fails_over_to_live_member(self, tmp_path):
        """One live shard + one corpse: every check still completes."""
        store = ResultStore(tmp_path / "store")
        manager = JobManager(
            jobs=1, queue_size=8, store=store, metrics=store.metrics
        )
        server = create_server(manager=manager)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        dead = f"127.0.0.1:{free_port()}"
        config = RingConfig.parse(f"127.0.0.1:{server.port},{dead}")
        router_manager = RouterManager(config, timeout=2.0)
        router = create_router(config=config, manager=router_manager)
        router_thread = threading.Thread(
            target=router.serve_forever, daemon=True
        )
        router_thread.start()
        client = ServeClient(f"http://127.0.0.1:{router.port}")
        try:
            # enough checks that some certainly hash to the dead member
            checks = [
                {"source": GOOD + f"-- v{i}\n", "label": f"c{i}"}
                for i in range(4)
            ]
            assert any(
                config.ring.owner(request_fingerprint(c)) == dead
                for c in checks
            ), "test batch never routed to the dead shard"
            job = client.check(checks, wait_timeout=60.0)
            assert job["state"] == "done"
            assert [r["label"] for r in job["reports"]] == [
                f"c{i}" for i in range(4)
            ]
            assert router_manager.metrics.get("router.failovers") >= 1
            assert router_manager.metrics.get("router.shard_errors") >= 1
            health = client.healthz()
            assert health["shards"][dead]["reachable"] is False
        finally:
            router.shutdown()
            router.server_close()
            router_thread.join(timeout=10)
            server.shutdown()
            server.server_close()
            manager.stop()
            thread.join(timeout=10)
