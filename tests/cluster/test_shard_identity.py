"""Shard identity surfaces: job documents, SSE events, /healthz."""

import threading

import pytest

from repro.serve.client import ServeClient
from repro.serve.http import create_server
from repro.serve.jobs import JobManager
from repro.store import ResultStore

GOOD = """
MODULE main
VAR x : boolean;
ASSIGN next(x) := 1;
SPEC x -> AX x
"""


@pytest.fixture
def shard_service(tmp_path):
    store = ResultStore(tmp_path)
    manager = JobManager(
        jobs=1,
        queue_size=4,
        store=store,
        metrics=store.metrics,
        shard_id="127.0.0.1:8124",
    )
    server = create_server(manager=manager)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServeClient(f"http://127.0.0.1:{server.port}")
    yield client
    server.shutdown()
    server.server_close()
    manager.stop()
    thread.join(timeout=10)


class TestShardIdentity:
    def test_job_document_and_events_carry_shard(self, shard_service):
        client = shard_service
        accepted = client.submit(GOOD)
        events = list(client.iter_events(accepted["id"]))
        job = client.wait(accepted["id"])
        assert job["state"] == "done"
        assert job["shard"] == "127.0.0.1:8124"
        # every progress event is stamped with the executing shard
        assert events
        assert all(e.get("shard") == "127.0.0.1:8124" for e in events)
        # reports stay shard-free: byte-identity across topologies
        assert "shard" not in job["reports"][0]

    def test_healthz_reports_shard(self, shard_service):
        doc = shard_service.healthz()
        assert doc["shard"] == "127.0.0.1:8124"
        assert doc["cluster"] is None  # plain store: no peer tier

    def test_standalone_shard_is_none(self, tmp_path):
        manager = JobManager(jobs=1, queue_size=2)
        job = manager.submit(
            [__import__("repro.serve.jobs", fromlist=["JobRequest"])
             .JobRequest(source=GOOD)]
        )
        assert job.to_dict()["shard"] is None
        assert manager.stats()["shard"] is None
        manager.stop()
