"""The router's observability plane over real shards on loopback.

Covers the three cluster-observability capabilities end to end:
stitched distributed traces (``GET /v1/jobs/<id>/trace``), federated
metrics (``/metrics`` + ``/v1/cluster/metrics``), and the multiplexed
progress stream (``GET /v1/jobs/<id>/events``) — all against two real
serving instances behind one router.
"""

import re
import socket
import threading

import pytest

from repro.cluster.ring import RingConfig, request_fingerprint
from repro.cluster.router import create_router
from repro.obs.promtext import parse_prometheus_text
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.http import create_server
from repro.serve.jobs import JobManager
from repro.store import ResultStore

GOOD = """
MODULE main
VAR x : boolean;
ASSIGN next(x) := 1;
SPEC x -> AX x
"""

BAD = """
MODULE main
VAR x : boolean;
INIT x
ASSIGN next(x) := {0, 1};
SPEC AG x
"""


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def both_shard_batch(config: RingConfig) -> list[dict]:
    """A batch guaranteed to route to *both* members of the ring."""
    checks = [
        {"source": GOOD + f"-- v{i}\n", "label": f"c{i}"} for i in range(6)
    ]
    owners = {
        config.ring.owner(request_fingerprint(c)) for c in checks
    }
    assert owners == set(config.shard_ids), "batch stayed on one shard"
    return checks


@pytest.fixture
def cluster(tmp_path):
    """Two real shards + a router, all on ephemeral loopback ports."""
    instances = []
    for name in ("a", "b"):
        store = ResultStore(tmp_path / f"{name}-store")
        manager = JobManager(
            jobs=1, queue_size=8, store=store, metrics=store.metrics
        )
        server = create_server(manager=manager)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        instances.append((server, manager, thread))
    urls = ",".join(f"127.0.0.1:{server.port}" for server, _, _ in instances)
    config = RingConfig.parse(urls)
    router = create_router(config=config, timeout=5.0)
    router_thread = threading.Thread(target=router.serve_forever, daemon=True)
    router_thread.start()
    client = ServeClient(f"http://127.0.0.1:{router.port}")
    yield router, config, client
    router.shutdown()
    router.server_close()
    router_thread.join(timeout=10)
    for server, manager, thread in instances:
        server.shutdown()
        server.server_close()
        manager.stop()
        thread.join(timeout=10)


class TestTraceStitching:
    def test_router_mints_and_propagates_trace_id(self, cluster):
        _, _, client = cluster
        accepted = client.submit([{"source": GOOD}])
        assert re.fullmatch(r"[0-9a-f]{32}", accepted["trace_id"])
        job = client.wait(accepted["id"], timeout=60.0)
        # the job document and every shard slice carry the router's id
        assert job["trace_id"] == accepted["trace_id"]
        for part in job["shards"]:
            assert part["trace_id"] == accepted["trace_id"]

    def test_stitched_trace_spans_both_shards(self, cluster):
        _, config, client = cluster
        checks = both_shard_batch(config)
        accepted = client.submit(checks)
        client.wait(accepted["id"], timeout=60.0)
        trace = client.job_trace(accepted["id"])
        assert trace["trace_id"] == accepted["trace_id"]
        spans = trace["spans"]
        # exactly one root: the synthetic router span
        roots = [s for s in spans if s["parent"] is None]
        assert len(roots) == 1
        assert roots[0]["name"] == "router.job"
        assert roots[0]["cat"] == "router"
        # worker spans from two distinct shards, all one trace id
        shards_seen = {
            s["attrs"]["shard"]
            for s in spans
            if "attrs" in s and "shard" in s["attrs"]
        }
        assert shards_seen == set(config.shard_ids)
        trace_ids = {
            s["attrs"]["trace_id"]
            for s in spans
            if "attrs" in s and "trace_id" in s["attrs"]
        }
        assert trace_ids == {accepted["trace_id"]}
        # offsets rebased under the stretched root: never negative
        assert all(s["start_us"] >= 0 for s in spans)
        assert trace["shards"] == {s: "ok" for s in config.shard_ids}
        assert trace["wall_origin"] > 0

    def test_trace_of_unknown_job_is_404(self, cluster):
        _, _, client = cluster
        with pytest.raises(ServeClientError) as exc:
            client.job_trace("feedfeedfeed")
        assert exc.value.status == 404


class TestMetricsFederation:
    def test_cluster_counters_equal_sum_of_member_scrapes(self, cluster):
        _, config, client = cluster
        checks = both_shard_batch(config)
        client.check(checks, wait_timeout=60.0)

        def value(text: str, name: str) -> float | None:
            for family in parse_prometheus_text(text):
                for sample in family.samples:
                    if sample.name == name and not sample.labels:
                        return sample.value
            return None

        member_total = 0.0
        for url in config.urls:
            text = ServeClient(url).metrics_text()
            member_total += value(text, "repro_serve_checks_submitted") or 0
        assert member_total == len(checks)
        federated = client.metrics_text()
        assert (
            value(federated, "repro_cluster_serve_checks_submitted")
            == member_total
        )
        assert value(federated, "repro_cluster_members") == 2
        assert value(federated, "repro_cluster_scraped") == 2
        assert value(federated, "repro_cluster_scrape_errors") == 0
        # per-shard series survive with a shard label
        for shard in config.shard_ids:
            assert f'{{shard="{shard}"}}' in federated
        # the router's own counters lead the document
        assert "repro_router_jobs_submitted" in federated

    def test_unreachable_member_surfaces_as_scrape_error(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        manager = JobManager(
            jobs=1, queue_size=8, store=store, metrics=store.metrics
        )
        server = create_server(manager=manager)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        dead = f"127.0.0.1:{free_port()}"
        config = RingConfig.parse(f"127.0.0.1:{server.port},{dead}")
        router = create_router(config=config, timeout=2.0)
        try:
            federation = router.manager.scrape_members()
            assert federation.scraped == 1
            assert set(federation.errors) == {dead}
            assert federation.value("repro_cluster_scrape_errors") == 1
        finally:
            server.shutdown()
            server.server_close()
            manager.stop()
            thread.join(timeout=10)
            router.server_close()

    def test_cluster_metrics_json_twin(self, cluster):
        router, config, client = cluster
        client.check(GOOD, wait_timeout=60.0)
        doc = client._request("GET", "/v1/cluster/metrics")
        assert doc["role"] == "router"
        assert doc["members"] == list(config.shard_ids)
        assert doc["scraped"] == 2
        assert doc["errors"] == {}
        assert doc["aggregates"]["repro_cluster_members"] == 2
        assert set(doc["shards"]) == set(config.shard_ids)
        # each shard block holds that member's own series
        assert any(
            "repro_serve_jobs_submitted" in series
            for series in doc["shards"].values()
        )


class TestProgressMux:
    def test_merged_stream_is_ordered_and_shard_tagged(self, cluster):
        _, config, client = cluster
        checks = both_shard_batch(config)
        accepted = client.submit(checks)
        events = list(client.iter_events(accepted["id"]))
        assert events, "router stream yielded nothing"
        # one total order from the merged bus
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)
        # the preamble announces the routing and the trace identity
        assert events[0]["kind"] == "job.routed"
        assert events[0]["trace_id"] == accepted["trace_id"]
        assert set(events[0]["shards"]) == set(config.shard_ids)
        # every relayed shard event is attributed and keeps its local seq
        relayed = [e for e in events if e["kind"] != "job.routed"]
        assert relayed
        assert {e["shard"] for e in relayed} == set(config.shard_ids)
        assert all("shard_seq" in e for e in relayed)
        # per shard, relayed events preserve the shard-local order
        for shard in config.shard_ids:
            local = [e["shard_seq"] for e in relayed if e["shard"] == shard]
            assert local == sorted(local)
        # obligation progress folds monotonically per shard
        states = [e for e in relayed if e["kind"] == "job.state"]
        assert states, "no job.state events relayed"
        job = client.wait(accepted["id"], timeout=60.0)
        assert job["state"] == "done"

    def test_resume_with_since_skips_delivered_events(self, cluster):
        _, config, client = cluster
        accepted = client.submit(both_shard_batch(config))
        client.wait(accepted["id"], timeout=60.0)
        everything = list(client.iter_events(accepted["id"]))
        assert len(everything) >= 3
        middle = everything[len(everything) // 2]["seq"]
        tail = list(client.iter_events(accepted["id"], since=middle))
        assert [e["seq"] for e in tail] == [
            e["seq"] for e in everything if e["seq"] > middle
        ]

    def test_events_of_unknown_job_is_404(self, cluster):
        _, _, client = cluster
        with pytest.raises(ServeClientError) as exc:
            list(client.iter_events("feedfeedfeed"))
        assert exc.value.status == 404


class TestClusterStatus:
    def test_status_document_covers_members_and_totals(self, cluster):
        router, config, client = cluster
        client.check(GOOD, wait_timeout=60.0)
        doc = client._request("GET", "/v1/cluster/status")
        assert doc["role"] == "router"
        assert set(doc["members"]) == set(config.shard_ids)
        shares = 0.0
        for entry in doc["members"].values():
            assert entry["reachable"] is True
            assert entry["status"] == "ok"
            assert entry["breaker"] == "closed"
            assert entry["queued"] >= 0
            assert entry["hit_rate"] is not None
            # plain-store members have no peers; the key is still there
            assert entry["peer_breakers"] == {}
            assert entry["open_breakers"] == 0
            shares += entry["ring_share"]
        assert shares == pytest.approx(1.0, abs=0.01)
        assert doc["scrape_errors"] == {}
        assert doc["totals"]["serve_jobs_submitted"] >= 1
