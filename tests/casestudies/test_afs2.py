"""AFS-2 case-study tests: figures, parametric safety proof, failure injection."""

import pytest

from repro.casestudies.afs2 import (
    Afs2,
    check_client_figure,
    check_server_figure,
    client_source,
    prove_afs2_safety,
    server_source,
)
from repro.smv.run import check_source


class TestFigure15ServerOutput:
    def test_srv1_srv2_true(self):
        report = check_server_figure()
        assert len(report.results) == 2
        assert report.all_true

    def test_bdd_nodes_same_order_as_paper(self):
        """Paper reports 2737 allocated / 1145+6 for the transition."""
        report = check_server_figure()
        assert 500 < report.bdd_nodes_allocated < 30000

    def test_single_client_variant(self):
        assert check_server_figure(n=1).all_true


class TestFigure17ClientOutput:
    def test_cli1_true(self):
        report = check_client_figure()
        assert len(report.results) == 1
        assert report.all_true

    def test_bdd_nodes_same_order_as_paper(self):
        """Paper reports 592 allocated / 120+6 for the transition."""
        report = check_client_figure()
        assert 100 < report.bdd_nodes_allocated < 6000


class TestSourceGenerators:
    def test_server_scales_with_n(self):
        assert "belief3" in server_source(3, rename=False)
        assert "belief3" not in server_source(2, rename=False)

    def test_update_revokes_other_callbacks(self):
        src = server_source(2, rename=False)
        assert "(request2 = update)" in src  # in belief1's cases

    def test_rename_prefixes(self):
        src = server_source(2)
        assert "Server.belief1" in src
        cl = client_source(2)
        assert "Client2.belief" in cl and "request2" in cl

    def test_n_must_be_positive(self):
        with pytest.raises(ValueError):
            server_source(0)


class TestSafetyProof:
    @pytest.mark.parametrize("n", [1, 2])
    def test_proof_succeeds(self, n):
        pf, afs1 = prove_afs2_safety(n=n)
        assert "AG" in str(afs1.formula)

    def test_conclusions_validate_monolithically(self):
        pf, _ = prove_afs2_safety(n=2)
        for proven, check in pf.verify_monolithic():
            assert bool(check), str(proven)

    def test_obligations_linear_in_components(self):
        pf, _ = prove_afs2_safety(n=3)
        unique = {
            id(o)
            for s in pf.log
            for leaf in s.leaves()
            for o in leaf.obligations
        }
        assert len(unique) == 4  # server + 3 clients

    def test_invariant_mentions_every_client(self):
        study = Afs2(3)
        inv = study.invariant()
        atoms = inv.atoms()
        for i in (1, 2, 3):
            assert any(f"Client{i}.belief" in a for a in atoms)


class TestTransmissionDelay:
    """The AFS-1 invariant is *not* valid for AFS-2 (§4.3.1) — the
    weakened, time-aware invariant is required."""

    def test_unweakened_invariant_rejected(self):
        from repro.compositional.proof import CompositionProof
        from repro.errors import ProofError
        from repro.logic.ctl import Implies, land

        study = Afs2(2)
        pf = study.proof()
        # AFS-1 style: client-valid ⇒ server-valid, without the ¬time escape
        naive = land(
            *(
                Implies(study.cb(i, "valid"), study.sb(i, "valid"))
                for i in (1, 2)
            )
        )
        with pytest.raises(ProofError):
            pf.invariant(study.initial(), naive)


class TestFailureInjection:
    def test_server_ignoring_updates_fails_proof(self):
        """Remove the callback revocation: the invariant is no longer inductive."""
        from repro.casestudies.afs_common import ProtocolComponent
        from repro.compositional.proof import CompositionProof
        from repro.errors import ProofError

        study = Afs2(2)
        broken_src = server_source(2).replace(
            "(Server.belief1 = valid) & ((request2 = update)) : 0;", ""
        )
        assert broken_src != server_source(2)
        broken = ProtocolComponent("server", broken_src)
        components = {"server": broken.symbolic()}
        for i, c in enumerate(study.clients, start=1):
            components[f"client{i}"] = c.symbolic()
        pf = CompositionProof(components, backend="symbolic")
        with pytest.raises(ProofError):
            pf.invariant(study.initial(), study.invariant())

    def test_eager_client_fails_cli1(self):
        broken = client_source(rename=False).replace(
            "(belief = suspect) & (response = inval) : nofile;",
            "(belief = suspect) & (response = inval) : valid;",
        )
        from repro.casestudies.afs2 import CLIENT_SPECS_FIGURE

        report = check_source(broken + CLIENT_SPECS_FIGURE)
        assert not report.all_true
