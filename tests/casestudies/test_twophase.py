"""Tests for the two-phase-commit case study."""

import pytest

from repro.casestudies.twophase import (
    TwoPhaseCommit,
    coordinator_source,
    participant_source,
)
from repro.smv.run import check_source


class TestSources:
    def test_coordinator_scales(self):
        assert "vote3" in coordinator_source(3)
        assert "vote3" not in coordinator_source(2)

    def test_participant_owns_its_vote(self):
        src = participant_source(2)
        assert "next(vote2)" in src
        assert "next(decision) := decision" in src

    def test_n_positive(self):
        with pytest.raises(ValueError):
            coordinator_source(0)
        with pytest.raises(ValueError):
            TwoPhaseCommit(0)

    def test_coordinator_commit_requires_all_yes(self):
        src = coordinator_source(2) + """
SPEC (decision = none & vote1 = yes & vote2 = no) -> AX decision = abort
SPEC (decision = none & vote1 = yes & vote2 = yes) -> AX decision = commit
SPEC decision = commit -> AX decision = commit
"""
        assert check_source(src).all_true


class TestAtomicity:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_proven_compositionally(self, n):
        pf, result = TwoPhaseCommit(n).prove_atomicity()
        assert "AG" in str(result.formula)

    def test_conclusions_validate_monolithically(self):
        pf, _ = TwoPhaseCommit(2).prove_atomicity()
        for proven, check in pf.verify_monolithic():
            assert bool(check), str(proven)

    def test_obligations_linear(self):
        pf, _ = TwoPhaseCommit(3).prove_atomicity()
        unique = {
            id(o)
            for s in pf.log
            for leaf in s.leaves()
            for o in leaf.obligations
        }
        assert len(unique) == 4  # coordinator + 3 participants

    def test_symbolic_backend(self):
        pf, result = TwoPhaseCommit(2, backend="symbolic").prove_atomicity()
        for proven, check in pf.verify_monolithic():
            assert bool(check)


class TestTermination:
    @pytest.mark.parametrize("n", [1, 2])
    def test_proven_compositionally(self, n):
        pf, result = TwoPhaseCommit(n).prove_termination()
        assert "AF" in str(result.formula)

    def test_conclusions_validate_monolithically(self):
        pf, _ = TwoPhaseCommit(2).prove_termination()
        failures = [p for p, c in pf.verify_monolithic() if not c]
        assert failures == []

    def test_conclusion_shape(self):
        study = TwoPhaseCommit(2)
        pf, result = study.prove_termination()
        assert result.restriction.init == study.initial()
        # fairness: one progress constraint per participant + coordinator
        assert len(result.restriction.fairness) == 3


class TestFailureInjection:
    def test_rogue_coordinator_breaks_invariant(self):
        """A coordinator that commits on any vote violates atomicity."""
        from repro.casestudies.afs_common import ProtocolComponent
        from repro.compositional.proof import CompositionProof
        from repro.errors import ProofError

        study = TwoPhaseCommit(2)
        broken_src = coordinator_source(2).replace(
            "(decision = none) & (vote1 = yes) & (vote2 = yes) : commit;",
            "(decision = none) : commit;",
        )
        components = {
            "coordinator": ProtocolComponent("coordinator", broken_src).system()
        }
        for i, p in enumerate(study.participants, start=1):
            components[f"participant{i}"] = p.system()
        pf = CompositionProof(components)
        with pytest.raises(ProofError):
            pf.invariant(study.initial(), study.invariant())

    def test_stubborn_participant_breaks_termination_premise(self):
        """A participant that never votes fails its Rule-4 premise."""
        from repro.casestudies.afs_common import ProtocolComponent
        from repro.compositional.proof import CompositionProof
        from repro.errors import ProofError
        from repro.logic.ctl import Or, land

        study = TwoPhaseCommit(2)
        broken_src = participant_source(1).replace(
            "next(vote1) := case vote1 = none : {yes, no}; 1 : vote1; esac;",
            "next(vote1) := vote1;",
        )
        components = {
            "coordinator": study.coordinator.system(),
            "participant1": ProtocolComponent("participant1", broken_src).system(),
            "participant2": study.participants[1].system(),
        }
        pf = CompositionProof(components)
        V = study.valid()
        with pytest.raises(ProofError):
            pf.guarantee_rule4(
                "participant1",
                land(study.vote(1, "none"), V),
                land(Or(study.vote(1, "yes"), study.vote(1, "no")), V),
            )
