"""AFS-1 case-study tests: figures, proofs, and failure injection."""

import pytest

from repro.casestudies.afs1 import (
    AFS1_CLIENT_FIGURE,
    AFS1_SERVER_FIGURE,
    Afs1,
    check_client_figure,
    check_server_figure,
    prove_afs1_liveness,
    prove_afs1_safety,
)
from repro.smv.run import check_source


class TestFigure7ServerOutput:
    """Figure 7: all five server specs are true."""

    def test_all_specs_true(self):
        report = check_server_figure()
        assert len(report.results) == 5
        assert report.all_true

    def test_output_format(self):
        text = check_server_figure().format()
        assert text.count("is true") == 5
        assert "BDD nodes allocated" in text

    def test_bdd_nodes_same_order_as_paper(self):
        """Paper reports 403 allocated / 43+7 for the transition."""
        report = check_server_figure()
        assert 100 < report.bdd_nodes_allocated < 4000
        assert 10 < report.transition_nodes < 500


class TestFigure10ClientOutput:
    """Figure 10: all six client specs are true."""

    def test_all_specs_true(self):
        report = check_client_figure()
        assert len(report.results) == 6
        assert report.all_true

    def test_bdd_nodes_same_order_as_paper(self):
        """Paper reports 330 allocated / 34+7 for the transition."""
        report = check_client_figure()
        assert 100 < report.bdd_nodes_allocated < 4000
        assert report.transition_nodes < report.bdd_nodes_allocated


class TestFigure4TransitionGraphs:
    """Figure 4: the protocol state-transition graphs."""

    def test_server_nonstutter_moves(self):
        """Server graph: 5 labeled transitions (2 fetch paths share shape)."""
        from repro.casestudies.afs1 import SERVER
        from repro.systems.graph import decoded_graph

        g = decoded_graph(
            SERVER.system(reflexive=False), SERVER.model.encoding
        )
        real = [(s, t) for s, t in g.edges if s != t]
        # (none,fetch)→(valid,val), (invalid,fetch)→(valid,val),
        # (valid,fetch)→(valid,val), (none,validate)→(valid,val)|(invalid,inval)
        # each for both values of validFile where applicable
        assert len(real) >= 5

    def test_client_run_structure(self):
        """Client graph contains both protocol runs of Figure 4."""
        from repro.casestudies.afs1 import CLIENT

        model = CLIENT.model
        system = CLIENT.system(reflexive=False)
        enc = model.encoding
        st = lambda b, r: enc.state_of({"Client.belief": b, "r": r})
        # nofile run
        assert system.has_transition(st("nofile", "null"), st("nofile", "fetch"))
        assert system.has_transition(st("nofile", "val"), st("valid", "val"))
        # suspect run
        assert system.has_transition(st("suspect", "null"), st("suspect", "validate"))
        assert system.has_transition(st("suspect", "val"), st("valid", "val"))
        assert system.has_transition(st("suspect", "inval"), st("nofile", "null"))
        # no invented transitions
        assert not system.has_transition(st("nofile", "null"), st("valid", "val"))


class TestSafetyProof:
    def test_proof_succeeds(self):
        pf, afs1 = prove_afs1_safety()
        assert "AG" in str(afs1.formula)

    def test_every_conclusion_validates_monolithically(self):
        pf, _ = prove_afs1_safety()
        for proven, check in pf.verify_monolithic():
            assert bool(check), str(proven)

    def test_symbolic_backend(self):
        pf, afs1 = prove_afs1_safety(backend="symbolic")
        for proven, check in pf.verify_monolithic():
            assert bool(check)

    def test_obligations_are_per_component(self):
        pf, _ = prove_afs1_safety()
        # the invariant rule checks Inv ⇒ AX Inv on both expansions only
        unique_obligations = {
            id(o)
            for s in pf.log
            for leaf in s.leaves()
            for o in leaf.obligations
        }
        assert len(unique_obligations) == len(pf.components)


class TestLivenessProof:
    def test_proof_succeeds(self):
        pf, afs2 = prove_afs1_liveness()
        assert "AF" in str(afs2.formula)

    def test_every_conclusion_validates_monolithically(self):
        pf, _ = prove_afs1_liveness()
        failures = [p for p, c in pf.verify_monolithic() if not c]
        assert failures == []

    def test_conclusion_is_the_paper_afs2(self):
        study = Afs1()
        pf, afs2 = study.prove_liveness()
        # the conclusion: from the paper's I, AF(Client.belief = valid)
        assert afs2.restriction.init == study.initial
        assert str(study.cb("valid")) in str(afs2.formula)


class TestFailureInjection:
    """Broken protocol variants must fail their specs."""

    def test_lying_server_fails_srv2(self):
        # server answers val for validate even when the file is invalid
        broken = AFS1_SERVER_FIGURE.replace(
            "(belief = none) & (r = validate) & !validFile : inval;",
            "(belief = none) & (r = validate) & !validFile : val;",
        )
        report = check_source(broken)
        assert not report.all_true

    def test_forgetful_server_fails_srv1(self):
        # server may forget its valid belief
        broken = AFS1_SERVER_FIGURE.replace(
            "1 : belief;", "(belief = valid) & (r = val) : none;\n      1 : belief;"
        )
        report = check_source(broken)
        assert not report.results[0].holds  # Srv1

    def test_impatient_client_fails_cli1(self):
        # client believes valid without a val response
        broken = AFS1_CLIENT_FIGURE.replace(
            "(belief = suspect) & (r = inval) : nofile;",
            "(belief = suspect) & (r = inval) : valid;",
        )
        report = check_source(broken)
        assert not report.results[0].holds  # Cli1

    def test_broken_safety_proof_rejected(self):
        """The proof engine refuses the invariant on a lying server."""
        from repro.casestudies.afs_common import ProtocolComponent
        from repro.casestudies import afs1 as afs1mod
        from repro.compositional.proof import CompositionProof
        from repro.errors import ProofError

        broken_src = afs1mod._SERVER_PROOF_SOURCE.replace(
            "(Server.belief = none) & (r = validate) & !validFile : inval;",
            "(Server.belief = none) & (r = validate) & !validFile : val;",
        )
        study = Afs1()
        broken = ProtocolComponent("server", broken_src)
        pf = CompositionProof(
            {"server": broken.system(), "client": study.client.system()}
        )
        with pytest.raises(ProofError):
            pf.invariant(study.initial, study.safety_invariant())
