"""Tests for the token-ring mutual-exclusion case study."""

import pytest

from repro.casestudies.mutex import TokenRing
from repro.checking.explicit import ExplicitChecker
from repro.logic.ctl import AG, And, Not


class TestStructure:
    def test_process_alphabet(self):
        ring = TokenRing(2)
        p0 = ring.process(0)
        assert "c0" in p0.sigma
        assert all(a.startswith(("tok", "c0")) for a in p0.sigma)

    def test_needs_two_processes(self):
        with pytest.raises(ValueError):
            TokenRing(1)

    def test_token_passes_around_ring(self):
        ring = TokenRing(3)
        composite = ring.composite()
        ck = ExplicitChecker(composite)
        from repro.logic.ctl import EF, Implies

        # from tok=0 every other holder value is reachable
        for i in (1, 2):
            assert ck.holds(Implies(ring.tok(0), EF(ring.tok(i))))


class TestSafety:
    @pytest.mark.parametrize("n", [2, 3])
    def test_mutual_exclusion_proven(self, n):
        ring = TokenRing(n)
        pf, safety = ring.prove_safety()
        assert isinstance(safety.formula, AG)
        for proven, check in pf.verify_monolithic():
            assert bool(check), str(proven)

    def test_invariant_is_necessary(self):
        """A variant where a process enters without the token breaks it."""
        from repro.compositional.proof import CompositionProof
        from repro.errors import ProofError
        from repro.systems.system import System

        ring = TokenRing(2)
        components = ring.components()
        rogue_sigma = components["proc1"].sigma
        rogue_edges = set(components["proc1"].edges)
        # rogue: enters critical section regardless of the token
        rogue_edges.add((frozenset(), frozenset({"c1"})))
        components["proc1"] = System(rogue_sigma, rogue_edges)
        pf = CompositionProof(components)
        with pytest.raises(ProofError):
            pf.invariant(ring.initial(), ring.mutex_invariant())


class TestLiveness:
    def test_token_holder_enters(self):
        ring = TokenRing(2)
        pf, live = ring.prove_enter_liveness(0)
        for proven, check in pf.verify_monolithic():
            assert bool(check), str(proven)

    def test_any_process_index(self):
        ring = TokenRing(3)
        _, live = ring.prove_enter_liveness(2)
        assert "c2" in str(live.formula)
