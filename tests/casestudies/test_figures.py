"""Tests for the illustrative-figure systems (Figures 1, 2, 3)."""

from repro.casestudies.figures import (
    FIGURE2_CYCLE,
    figure1_expected_composition,
    figure1_m,
    figure1_m_prime,
    figure2_encoding,
    figure2_p,
    figure2_p_disjuncts,
    figure2_q,
    figure2_system,
    figure3_encoding,
    figure3_system,
)
from repro.checking.explicit import ExplicitChecker
from repro.compositional.rules import progress_restriction
from repro.logic.ctl import AF, AU, Implies, Not
from repro.systems.compose import compose


class TestFigure1:
    def test_paper_figure1_composition(self):
        assert compose(figure1_m(), figure1_m_prime()) == figure1_expected_composition()

    def test_expected_edge_count(self):
        # the paper lists 8 moving transitions + 4 stutters
        c = figure1_expected_composition()
        assert len(c.edges) == 8
        assert c.num_transitions() == 12


class TestFigure2:
    def test_cycle_structure(self):
        m = figure2_system()
        enc = figure2_encoding()
        st = lambda v: enc.state_of({"loc": v})
        for i in range(1, FIGURE2_CYCLE + 1):
            nxt = f"p{i % FIGURE2_CYCLE + 1}"
            assert m.has_transition(st(f"p{i}"), st(nxt))
        assert m.has_transition(st("p1"), st("q"))
        assert not m.has_transition(st("p3"), st("q"))

    def test_progress_needs_fairness(self):
        m = figure2_system()
        ck = ExplicitChecker(m)
        p, q = figure2_p(), figure2_q()
        # without fairness the cycle spins forever
        assert not ck.holds(Implies(p, AF(q)))
        # with the progress restriction it terminates
        r = progress_restriction(p, q)
        assert ck.holds(Implies(p, AU(p, q)), r)

    def test_disjuncts_cover_p(self):
        from repro.compositional.prop_logic import equivalent
        from repro.logic.ctl import lor

        assert equivalent(figure2_p(), lor(*figure2_p_disjuncts()))

    def test_q_disjoint_from_p(self):
        from repro.compositional.prop_logic import is_tautology
        from repro.logic.ctl import And, Not

        assert is_tautology(Not(And(figure2_p(), figure2_q())))


class TestFigure3:
    def test_counter_cycles(self):
        m = figure3_system()
        enc = figure3_encoding()
        ck = ExplicitChecker(m)
        # from x=0 the only fair way forward is 1 (EF x=3 still true)
        from repro.logic.ctl import EF

        res = ck.holds(
            Implies(enc.eq_formula("x", 0), EF(enc.eq_formula("x", 3)))
        )
        assert res
