"""An independent fair-CTL oracle built on networkx graph algorithms.

The production checkers compute fixpoints (NumPy bitsets / BDDs).  This
oracle instead evaluates formulas with explicit graph reachability and
SCC analysis, so agreement between the two is strong evidence both are
right.  Only usable on tiny systems — it materializes the whole state
space as a digraph.

Fair-path characterization used here: a state has an F-fair path iff it
can reach a cycle that visits, for every constraint ``c ∈ F``, at least
one state satisfying ``c``.  Within one strongly connected component that
contains a cycle, such a combined cycle exists iff the SCC intersects
every constraint's satisfaction set.
"""

from __future__ import annotations

import networkx as nx

from repro.logic.ctl import (
    AF,
    AG,
    AU,
    AX,
    EF,
    EG,
    EU,
    EX,
    And,
    Atom,
    Const,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    TRUE,
)
from repro.systems.system import System

State = frozenset


def _graph(system: System) -> "nx.DiGraph":
    g = nx.DiGraph()
    for s in system.states():
        g.add_node(s)
    for s, t in system.relation():
        g.add_edge(s, t)
    return g


def _has_cycle_through(g: "nx.DiGraph", scc: set[State]) -> bool:
    """Does the SCC contain at least one edge (i.e. an actual cycle)?"""
    if len(scc) > 1:
        return True
    (s,) = scc
    return g.has_edge(s, s)


def fair_states(
    system: System, constraint_sets: list[set[State]]
) -> set[State]:
    """States from which some path visits every constraint infinitely often."""
    g = _graph(system)
    fair_cores: set[State] = set()
    for scc in nx.strongly_connected_components(g):
        scc = set(scc)
        if not _has_cycle_through(g, scc):
            continue
        if all(scc & cset for cset in constraint_sets):
            fair_cores |= scc
    out: set[State] = set()
    for s in g.nodes:
        if s in fair_cores or any(
            nx.has_path(g, s, core) for core in fair_cores
        ):
            out.add(s)
    return out


def _restricted_graph(system: System, allowed: set[State]) -> "nx.DiGraph":
    g = nx.DiGraph()
    for s in allowed:
        g.add_node(s)
    for s, t in system.relation():
        if s in allowed and t in allowed:
            g.add_edge(s, t)
    return g


def sat_states(
    system: System,
    formula: Formula,
    fairness: tuple[Formula, ...] = (TRUE,),
) -> set[State]:
    """The set of states satisfying ``formula`` over ``fairness``-fair paths."""
    all_states = set(system.states())
    # TRUE constraints are satisfied everywhere; special-casing them also
    # grounds the recursion (constraints are themselves evaluated with the
    # default (TRUE,) fairness).
    constraint_sets = [
        set(all_states) if c == TRUE else sat_states(system, c)
        for c in fairness
    ]
    fair = fair_states(system, constraint_sets)
    g = _graph(system)

    def ev(f: Formula) -> set[State]:
        if isinstance(f, Const):
            return set(all_states) if f.value else set()
        if isinstance(f, Atom):
            return {s for s in all_states if f.name in s}
        if isinstance(f, Not):
            return all_states - ev(f.operand)
        if isinstance(f, And):
            return ev(f.left) & ev(f.right)
        if isinstance(f, Or):
            return ev(f.left) | ev(f.right)
        if isinstance(f, Implies):
            return (all_states - ev(f.left)) | ev(f.right)
        if isinstance(f, Iff):
            l, r = ev(f.left), ev(f.right)
            return (l & r) | (all_states - l - r)
        if isinstance(f, EX):
            target = ev(f.operand) & fair
            return {s for s in all_states if any(t in target for t in g.successors(s))}
        if isinstance(f, AX):
            return ev(Not(EX(Not(f.operand))))
        if isinstance(f, EF):
            return ev(EU(TRUE, f.operand))
        if isinstance(f, AF):
            return ev(Not(EG(Not(f.operand))))
        if isinstance(f, AG):
            return ev(Not(EU(TRUE, Not(f.operand))))
        if isinstance(f, EU):
            p, q = ev(f.left), ev(f.right) & fair
            # backward reachability to q through p-states
            out = set(q)
            changed = True
            while changed:
                changed = False
                for s in all_states - out:
                    if s in p and any(t in out for t in g.successors(s)):
                        out.add(s)
                        changed = True
            return out
        if isinstance(f, AU):
            p, q = f.left, f.right
            bad = Or(EU(Not(q), And(Not(p), Not(q))), EG(Not(q)))
            return all_states - ev(bad)
        if isinstance(f, EG):
            p = ev(f.operand)
            sub = _restricted_graph(system, p)
            cores: set[State] = set()
            for scc in nx.strongly_connected_components(sub):
                scc = set(scc)
                if not _has_cycle_through(sub, scc):
                    continue
                if all(scc & cset for cset in constraint_sets):
                    cores |= scc
            out = set()
            for s in sub.nodes:
                if s in cores or any(nx.has_path(sub, s, c) for c in cores):
                    out.add(s)
            return out
        raise TypeError(f"oracle cannot evaluate {type(f).__name__}")

    return ev(formula)


def holds(
    system: System,
    formula: Formula,
    init: Formula = TRUE,
    fairness: tuple[Formula, ...] = (TRUE,),
) -> bool:
    """Oracle version of ``M ⊨_(init, fairness) formula``."""
    init_states = sat_states(system, init)
    good = sat_states(system, formula, fairness)
    return init_states <= good
