"""Fingerprint semantics: what must collide and what must not."""

from repro.smv.run import load_model
from repro.store.fingerprint import (
    behavior_text,
    fingerprint_payload,
    report_fingerprint,
    spec_fingerprint,
)

BASE = """
MODULE main
VAR x : boolean;
ASSIGN next(x) := 1;
SPEC x -> AX x
SPEC AG EF x
"""

# same model, different whitespace/comments/section order noise
RESTYLED = """
-- a comment the canonical form must erase
MODULE main
VAR
  x : boolean;   -- trailing noise
ASSIGN
  next(x) := 1;
SPEC x -> AX x
SPEC AG EF x
"""

DIFFERENT = """
MODULE main
VAR x : boolean;
ASSIGN next(x) := {0, 1};
SPEC x -> AX x
SPEC AG EF x
"""

EXTRA_SPEC = """
MODULE main
VAR x : boolean;
ASSIGN next(x) := 1;
SPEC x -> AX x
SPEC AG EF x
SPEC EF x
"""


def _parts(source):
    from repro.logic.ctl import TRUE
    from repro.logic.restriction import Restriction

    model = load_model(source)
    restriction = Restriction(
        init=model.initial_formula(),
        fairness=tuple(model.fairness) or (TRUE,),
    )
    return model, restriction


class TestPayload:
    def test_deterministic(self):
        assert fingerprint_payload({"a": 1}) == fingerprint_payload({"a": 1})

    def test_key_order_is_canonical(self):
        assert fingerprint_payload({"a": 1, "b": 2}) == fingerprint_payload(
            {"b": 2, "a": 1}
        )

    def test_value_changes_hash(self):
        assert fingerprint_payload({"a": 1}) != fingerprint_payload({"a": 2})


class TestSpecFingerprint:
    def test_whitespace_and_comments_collide(self):
        model_a, r_a = _parts(BASE)
        model_b, r_b = _parts(RESTYLED)
        assert behavior_text(model_a) == behavior_text(model_b)
        for spec_a, spec_b in zip(model_a.specs, model_b.specs):
            assert spec_fingerprint(
                model_a, spec_a, r_a, "symbolic"
            ) == spec_fingerprint(model_b, spec_b, r_b, "symbolic")

    def test_transition_change_misses(self):
        model_a, r_a = _parts(BASE)
        model_b, r_b = _parts(DIFFERENT)
        assert spec_fingerprint(
            model_a, model_a.specs[0], r_a, "symbolic"
        ) != spec_fingerprint(model_b, model_b.specs[0], r_b, "symbolic")

    def test_spec_list_edit_preserves_other_specs(self):
        # adding a SPEC must not invalidate records for the untouched ones
        model_a, r_a = _parts(BASE)
        model_b, r_b = _parts(EXTRA_SPEC)
        for spec_a, spec_b in zip(model_a.specs, model_b.specs):
            assert spec_fingerprint(
                model_a, spec_a, r_a, "symbolic"
            ) == spec_fingerprint(model_b, spec_b, r_b, "symbolic")

    def test_engine_and_options_discriminate(self):
        model, r = _parts(BASE)
        spec = model.specs[0]
        sym = spec_fingerprint(model, spec, r, "symbolic")
        assert sym != spec_fingerprint(model, spec, r, "explicit")
        assert sym != spec_fingerprint(
            model, spec, r, "symbolic", {"reflexive": True}
        )

    def test_specs_discriminate(self):
        model, r = _parts(BASE)
        assert spec_fingerprint(
            model, model.specs[0], r, "symbolic"
        ) != spec_fingerprint(model, model.specs[1], r, "symbolic")


class TestReportFingerprint:
    def test_spec_list_edit_invalidates_report(self):
        # the report record covers the whole spec set, so it must miss
        model_a, r_a = _parts(BASE)
        model_b, r_b = _parts(EXTRA_SPEC)
        assert report_fingerprint(
            model_a, r_a, "symbolic"
        ) != report_fingerprint(model_b, r_b, "symbolic")

    def test_restyled_source_replays(self):
        model_a, r_a = _parts(BASE)
        model_b, r_b = _parts(RESTYLED)
        assert report_fingerprint(
            model_a, r_a, "symbolic"
        ) == report_fingerprint(model_b, r_b, "symbolic")
