"""ResultStore mechanics: atomicity, healing, eviction, counters."""

import json
import os

from repro.store.store import ResultStore, StoreRecord


def _record(i=0):
    return StoreRecord(
        verdict=True, result={"i": i}, spec_text=f"spec {i}"
    )


FP = "ab" + "0" * 62


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(FP, _record())
        record = store.get(FP)
        assert record is not None
        assert record.verdict is True and record.result == {"i": 0}

    def test_missing_is_none(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get(FP) is None

    def test_contains_and_len(self, tmp_path):
        store = ResultStore(tmp_path)
        assert FP not in store and len(store) == 0
        store.put(FP, _record())
        assert FP in store and len(store) == 1

    def test_layout_shards_by_prefix(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(FP, _record())
        assert path == tmp_path / "objects" / FP[:2] / f"{FP}.json"
        assert path.is_file()

    def test_record_fields_survive(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(
            FP,
            StoreRecord(
                verdict=False,
                result={"holds": False},
                spec_text="AG x",
                counterexample=[{"x": True}, {"x": False}],
                certificate="THEOREM ...",
                meta={"user_time": 1.5},
            ),
        )
        record = store.get(FP)
        assert record.counterexample == [{"x": True}, {"x": False}]
        assert record.certificate == "THEOREM ..."
        assert record.meta == {"user_time": 1.5}

    def test_no_tmp_litter(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(FP, _record())
        leftovers = [
            p for p in (tmp_path / "objects").rglob("*") if ".tmp-" in p.name
        ]
        assert leftovers == []


class TestHealing:
    def test_corrupt_record_misses_and_heals(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(FP, _record())
        path.write_text("{not json")
        assert store.get(FP) is None
        assert not path.exists()
        assert store.counters()["misses"] == 1

    def test_wrong_shape_misses(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(FP, _record())
        path.write_text(json.dumps({"no": "verdict"}))
        assert store.get(FP) is None


class TestEviction:
    def test_lru_eviction_respects_cap(self, tmp_path):
        store = ResultStore(tmp_path)
        fp2 = "cd" + "0" * 62
        store.put(FP, _record(0))
        # cap the store at exactly one record: the next put must evict
        store.max_bytes = store.total_bytes()
        store.put(fp2, _record(1))
        assert len(store) == 1
        assert store.counters()["evictions"] >= 1
        assert fp2 in store and FP not in store

    def test_get_touch_protects_hot_records(self, tmp_path):
        store = ResultStore(tmp_path)
        fp2 = "cd" + "0" * 62
        a = store.put(FP, _record(0))
        store.put(fp2, _record(1))
        # make both records look stale, then serve the first (touch)
        os.utime(a, (1, 1))
        b = store.path_for(fp2)
        os.utime(b, (2, 2))
        assert store.get(FP) is not None
        # room for two records: the third put evicts exactly one — the
        # cold record, not the hot (just-served) one
        store.max_bytes = store.total_bytes()
        store.put("ef" + "0" * 62, _record(2))
        assert not b.exists()
        assert FP in store

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(FP, _record())
        assert store.clear() == 1
        assert len(store) == 0 and store.total_bytes() == 0


class TestCounters:
    def test_hit_miss_write_counts(self, tmp_path):
        store = ResultStore(tmp_path)
        store.get(FP)
        store.put(FP, _record())
        store.get(FP)
        assert store.counters() == {"hits": 1, "misses": 1, "writes": 1}

    def test_shared_registry(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        store = ResultStore(tmp_path, metrics=registry)
        store.get(FP)
        assert registry.as_dict().get("store.misses") == 1


class TestTrashEviction:
    """Eviction goes through rename-to-trash: readers racing an evictor
    see either the full record or a clean miss — never torn JSON."""

    def test_evicted_record_leaves_no_partial_file(self, tmp_path):
        store = ResultStore(tmp_path)
        fp2 = "cd" + "0" * 62
        store.put(FP, _record(0))
        store.max_bytes = store.total_bytes()
        store.put(fp2, _record(1))  # evicts FP via rename-to-trash
        assert not store.path_for(FP).exists()
        # a reader holding the evicted fingerprint gets a miss, and the
        # trash directory is not part of the record namespace
        assert store.get(FP) is None
        assert len(store) == 1

    def test_discard_is_atomic_replace(self, tmp_path, monkeypatch):
        """The published path disappears atomically: an interrupted
        discard (crash between replace and unlink) leaves the bytes in
        trash, not a half-written record at the original path."""
        store = ResultStore(tmp_path)
        path = store.put(FP, _record(0))
        original = path.read_text()
        monkeypatch.setattr(
            "pathlib.Path.unlink",
            lambda self, *a, **k: (_ for _ in ()).throw(OSError("crash")),
        )
        assert store._discard(path) is True  # replace happened anyway
        monkeypatch.undo()
        assert not path.exists()
        leftovers = list((tmp_path / "trash").iterdir())
        assert len(leftovers) == 1
        assert leftovers[0].read_text() == original  # full bytes, not torn

    def test_gc_sweeps_stale_trash(self, tmp_path):
        store = ResultStore(tmp_path)
        trash = tmp_path / "trash"
        trash.mkdir()
        (trash / "leftover.json.123.dead").write_text("{}")
        store.gc()
        assert list(trash.iterdir()) == []

    def test_clear_uses_trash_and_sweeps(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(FP, _record())
        assert store.clear() == 1
        assert len(store) == 0
        trash = tmp_path / "trash"
        assert not trash.exists() or list(trash.iterdir()) == []


class TestPeekLocal:
    def test_peek_does_not_count_or_heal(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.peek_local(FP) is None
        store.put(FP, _record(3))
        record = store.peek_local(FP)
        assert record is not None and record.result == {"i": 3}
        # no hits/misses recorded: peeks serve peer probes, not clients
        assert store.counters() == {"writes": 1}
