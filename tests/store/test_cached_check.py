"""cached_check: replay fidelity across engines and schedulers."""

import pytest

from repro.store import ResultStore
from repro.store.cached import cached_check

GOOD = """
MODULE main
VAR x : boolean;
ASSIGN next(x) := 1;
SPEC x -> AX x
SPEC AG EF x
"""

BAD = """
MODULE main
VAR x : boolean;
INIT x
ASSIGN next(x) := {0, 1};
SPEC AG x
"""


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path)


class TestColdWarm:
    def test_cold_run_populates(self, store):
        run = cached_check(GOOD, store=store)
        assert run.all_true
        assert run.cached_flags == [False, False]
        assert store.counters()["writes"] == 3  # 2 specs + report meta

    def test_warm_run_replays(self, store):
        cold = cached_check(GOOD, store=store)
        warm = cached_check(GOOD, store=store)
        assert warm.cached_flags == [True, True]
        assert [r.holds for r in warm.results] == [
            r.holds for r in cold.results
        ]

    def test_warm_report_is_byte_identical(self, store):
        cold = cached_check(GOOD, store=store)
        warm = cached_check(GOOD, store=store)
        assert warm.to_report().format(with_stats=True) == cold.to_report().format(
            with_stats=True
        )

    def test_no_store_still_works(self):
        run = cached_check(GOOD)
        assert run.all_true and run.hits == 0
        assert all(len(fp) == 64 for fp in run.fingerprints)

    def test_partial_hit(self, store):
        cached_check(GOOD, store=store)
        extended = GOOD + "SPEC EF x\n"
        run = cached_check(extended, store=store)
        # the two original specs replay; only the new one is computed
        assert run.cached_flags == [True, True, False]
        assert run.all_true


class TestCounterexamples:
    def test_failure_and_trace_replay(self, store):
        cold = cached_check(BAD, store=store)
        assert not cold.all_true
        assert cold.counterexamples[0]  # decoded trace present
        warm = cached_check(BAD, store=store)
        assert warm.cached_flags == [True]
        assert warm.counterexamples == cold.counterexamples
        assert warm.to_report().format() == cold.to_report().format()


class TestEngines:
    def test_explicit_engine_round_trip(self, store):
        cold = cached_check(GOOD, engine="explicit", store=store)
        warm = cached_check(GOOD, engine="explicit", store=store)
        assert cold.all_true and warm.cached_flags == [True, True]

    def test_engines_do_not_share_records(self, store):
        cached_check(GOOD, engine="symbolic", store=store)
        run = cached_check(GOOD, engine="explicit", store=store)
        assert run.cached_flags == [False, False]

    def test_reflexive_flag_discriminates(self, store):
        cached_check(GOOD, store=store)
        run = cached_check(GOOD, reflexive=True, store=store)
        assert run.cached_flags == [False, False]


class TestScheduled:
    def test_scheduler_path_matches_inprocess(self, tmp_path):
        from repro.parallel import shared_scheduler, shutdown_shared

        store_a = ResultStore(tmp_path / "a")
        store_b = ResultStore(tmp_path / "b")
        try:
            seq = cached_check(GOOD, store=store_a)
            par = cached_check(
                GOOD, store=store_b, scheduler=shared_scheduler(2)
            )
            assert [r.holds for r in par.results] == [
                r.holds for r in seq.results
            ]
            # and a warm replay of the parallel store matches it
            warm = cached_check(GOOD, store=store_b)
            assert warm.cached_flags == [True, True]
            assert warm.to_report().format() == par.to_report().format()
        finally:
            shutdown_shared()
