"""Incremental compositional proofs: edit one component, recheck one.

The contract under test, per the acceptance criteria of the feature:

* a warm recheck replays every obligation from the store (sequentially
  and through the pool, where cached obligations are never submitted);
* editing one AFS-2 component invalidates exactly that component's
  obligations;
* replayed certificates are byte-identical to the run that wrote them,
  and identical to a cache-disabled run up to measured wall time —
  across both engines and ``jobs`` 1/2;
* failing obligations replay the same failure.
"""

import pytest

from repro.casestudies.afs2 import Afs2
from repro.compositional.proof import CompositionProof
from repro.errors import ProofError
from repro.logic.ctl import AX, Implies, atom
from repro.parallel.pool import shared_scheduler
from repro.store import ResultStore
from repro.systems.system import System

N = 3
COMPONENTS = ("server", "client1", "client2", "client3")


def _prove(store, jobs=None, backend="symbolic", variant=None, n=N):
    study = Afs2(
        n, backend=backend, jobs=jobs, store=store, variant_client=variant
    )
    pf, proven = study.prove_safety()
    assert proven.formula is not None
    return pf


def _results(pf):
    """Leaf obligation results, in discharge order."""
    return [o for s in pf.log for leaf in s.leaves() for o in leaf.obligations]


def _dicts(pf, keep_time=True):
    out = []
    for result in _results(pf):
        d = result.to_dict()
        if not keep_time:
            d["stats"] = dict(d["stats"], user_time=0.0)
        out.append(d)
    return out


def _ledger(pf):
    ledger = pf.cache_ledger()
    assert ledger is not None
    return ledger


class TestSequentialColdWarm:
    def test_cold_misses_then_warm_hits(self, tmp_path):
        store = ResultStore(tmp_path)
        cold = _prove(store)
        ledger = _ledger(cold)
        assert ledger["hits"] == 0 and ledger["misses"] == len(COMPONENTS)
        assert sorted(e["component"] for e in ledger["obligations"]) == sorted(
            COMPONENTS
        )

        warm = _prove(store)
        ledger = _ledger(warm)
        assert ledger["misses"] == 0 and ledger["hits"] == len(COMPONENTS)
        # byte-identical to the run that populated the store — stats
        # included, since stored records replay verbatim
        assert _dicts(warm) == _dicts(cold)
        assert [r.explain() for r in _results(warm)] == [
            r.explain() for r in _results(cold)
        ]

    def test_warm_matches_cache_disabled_run(self, tmp_path):
        fresh = _prove(None)
        store = ResultStore(tmp_path)
        _prove(store)
        warm = _prove(store)
        # identical up to measured wall time (the one field that cannot
        # survive a re-measurement)
        assert _dicts(warm, keep_time=False) == _dicts(fresh, keep_time=False)
        assert [r.explain() for r in _results(warm)] == [
            r.explain() for r in _results(fresh)
        ]
        assert warm.summary() == fresh.summary()

    def test_proof_fingerprint_stable_across_replay(self, tmp_path):
        store = ResultStore(tmp_path)
        a = _ledger(_prove(store))["proof_fingerprint"]
        b = _ledger(_prove(store))["proof_fingerprint"]
        assert a == b


class TestEditRecheck:
    def test_edit_rechecks_only_edited_component(self, tmp_path):
        store = ResultStore(tmp_path)
        _prove(store)  # populate
        edited = _prove(store, variant=2)
        ledger = _ledger(edited)
        missed = [
            e["component"] for e in ledger["obligations"] if not e["cached"]
        ]
        assert missed == ["client2"]
        assert ledger["hits"] == len(COMPONENTS) - 1
        assert all(e["holds"] for e in ledger["obligations"])

    def test_edit_changes_proof_fingerprint(self, tmp_path):
        store = ResultStore(tmp_path)
        base = _ledger(_prove(store))["proof_fingerprint"]
        edited = _ledger(_prove(store, variant=2))["proof_fingerprint"]
        assert base != edited

    def test_edited_store_serves_both_versions(self, tmp_path):
        store = ResultStore(tmp_path)
        _prove(store)
        _prove(store, variant=2)
        # both compositions now replay fully
        assert _ledger(_prove(store))["misses"] == 0
        assert _ledger(_prove(store, variant=2))["misses"] == 0


class TestParallelDischarge:
    def test_scheduler_skips_cached_obligations(self, tmp_path):
        store = ResultStore(tmp_path)
        metrics = shared_scheduler(2).metrics

        before = metrics.get("parallel.items")
        _prove(store, jobs=2)
        assert metrics.get("parallel.items") == before + len(COMPONENTS)

        before = metrics.get("parallel.items")
        hits_before = metrics.get("parallel.store_hits")
        warm = _prove(store, jobs=2)
        # cached obligations never reach the pool
        assert metrics.get("parallel.items") == before
        assert metrics.get("parallel.store_hits") == hits_before + len(
            COMPONENTS
        )
        assert _ledger(warm)["hits"] == len(COMPONENTS)

    def test_edit_submits_only_edited_component(self, tmp_path):
        store = ResultStore(tmp_path)
        _prove(store, jobs=2)
        metrics = shared_scheduler(2).metrics
        before = metrics.get("parallel.items")
        edited = _prove(store, jobs=2, variant=2)
        assert metrics.get("parallel.items") == before + 1
        missed = [
            e["component"]
            for e in _ledger(edited)["obligations"]
            if not e["cached"]
        ]
        assert missed == ["client2"]

    def test_records_interoperate_across_jobs(self, tmp_path):
        store = ResultStore(tmp_path)
        cold = _prove(store, jobs=2)  # pool-written records
        warm = _prove(store, jobs=None)  # sequential replay
        assert _ledger(warm)["hits"] == len(COMPONENTS)
        assert _dicts(warm) == _dicts(cold)

        other = ResultStore(store.root)
        warm2 = _prove(other, jobs=2)  # and back through the pool
        assert _ledger(warm2)["hits"] == len(COMPONENTS)


@pytest.mark.parametrize("backend", ["explicit", "symbolic"])
@pytest.mark.parametrize("jobs", [None, 2])
class TestByteIdentityMatrix:
    # n=2 keeps the product small enough for the explicit engine
    def test_certificates_match_cache_disabled_run(
        self, tmp_path, backend, jobs
    ):
        fresh = _prove(None, jobs=jobs, backend=backend, n=2)
        store = ResultStore(tmp_path)
        cold = _prove(store, jobs=jobs, backend=backend, n=2)
        warm = _prove(store, jobs=jobs, backend=backend, n=2)
        assert _ledger(warm)["hits"] == 3
        assert _dicts(warm) == _dicts(cold)
        assert _dicts(warm, keep_time=False) == _dicts(fresh, keep_time=False)
        assert [r.explain() for r in _results(warm)] == [
            r.explain() for r in _results(fresh)
        ]


class TestFailureReplay:
    def _components(self):
        holds = System({"p"}, [(frozenset({"p"}), frozenset({"p"}))])
        breaks = System({"p"}, [(frozenset({"p"}), frozenset())])
        return {"good": holds, "bad": breaks}

    def test_failing_obligation_replays_identically(self, tmp_path):
        store = ResultStore(tmp_path)
        p = atom("p")
        step = Implies(p, AX(p))

        pf = CompositionProof(self._components(), store=store)
        with pytest.raises(ProofError) as cold:
            pf.universal(step)
        ledger = _ledger(pf)
        assert [e["cached"] for e in ledger["obligations"]].count(True) == 0
        assert ledger["obligations"][-1]["holds"] is False

        pf = CompositionProof(self._components(), store=store)
        with pytest.raises(ProofError) as warm:
            pf.universal(step)
        ledger = _ledger(pf)
        assert all(e["cached"] for e in ledger["obligations"])
        assert str(warm.value) == str(cold.value)
