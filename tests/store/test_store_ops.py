"""Store operations: deterministic eviction, kind counters, sidecar.

The ``repro store`` CLI and the incremental proof engine lean on three
ops-facing behaviors tested here: evictions are a pure function of
``(st_mtime_ns, name)`` (no filesystem-order nondeterminism, even for
records written within the same second), hit/miss/write counters split
by record kind, and lifetime counters survive process exits via the
``counters.json`` sidecar.
"""

import json
import os

from repro.store.store import ResultStore, StoreRecord


def _record(i=0, kind=""):
    return StoreRecord(
        verdict=True, result={"i": i}, spec_text=f"spec {i}", kind=kind
    )


def _fp(prefix):
    return prefix + "0" * (64 - len(prefix))


class TestDeterministicEviction:
    def test_same_second_ties_break_by_name(self, tmp_path):
        store = ResultStore(tmp_path)
        fps = [_fp("aa"), _fp("bb"), _fp("cc")]
        paths = [store.put(fp, _record(i)) for i, fp in enumerate(fps)]
        # identical timestamps: mtime alone cannot order these records
        for path in paths:
            os.utime(path, ns=(1_000_000_000, 1_000_000_000))
        one = max(p.stat().st_size for p in paths)
        evicted = store.gc(max_bytes=one)
        assert evicted == 2
        # ties break lexicographically: the largest name survives
        assert [fp for fp in fps if fp in store] == [_fp("cc")]

    def test_eviction_order_is_oldest_first(self, tmp_path):
        store = ResultStore(tmp_path)
        fps = [_fp("aa"), _fp("bb"), _fp("cc")]
        paths = [store.put(fp, _record(i)) for i, fp in enumerate(fps)]
        # reverse-chronological on purpose: "cc" is the oldest record
        for age, path in enumerate(paths):
            t = (10 - age) * 1_000_000_000
            os.utime(path, ns=(t, t))
        store.gc(max_bytes=max(p.stat().st_size for p in paths))
        assert [fp for fp in fps if fp in store] == [_fp("aa")]

    def test_gc_reports_count_and_flushes(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(_fp("aa"), _record())
        assert store.gc(max_bytes=0) == 1
        sidecar = json.loads((tmp_path / "counters.json").read_text())
        assert sidecar["evictions"] == 1

    def test_gc_within_cap_is_a_noop(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(_fp("aa"), _record())
        assert store.gc() == 0
        assert len(store) == 1


class TestKindCounters:
    def test_events_split_by_kind(self, tmp_path):
        store = ResultStore(tmp_path)
        store.get(_fp("aa"), kind="obligation")  # miss
        store.put(_fp("aa"), _record(), kind="obligation")
        store.get(_fp("aa"), kind="obligation")  # hit
        store.put(_fp("bb"), _record(kind="report"))
        counters = store.counters()
        assert counters["misses.obligation"] == 1
        assert counters["hits.obligation"] == 1
        assert counters["writes.obligation"] == 1
        assert counters["writes.report"] == 1
        assert counters["writes"] == 2

    def test_kindless_calls_keep_flat_counters(self, tmp_path):
        store = ResultStore(tmp_path)
        store.get(_fp("aa"))
        store.put(_fp("aa"), _record())
        assert store.counters() == {"misses": 1, "writes": 1}

    def test_put_stamps_kind_into_record(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(_fp("aa"), _record(), kind="spec")
        assert store.get(_fp("aa")).kind == "spec"

    def test_stats_counts_records_by_kind(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(_fp("aa"), _record(kind="obligation"))
        store.put(_fp("bb"), _record(kind="obligation"))
        store.put(_fp("cc"), _record(kind="report"))
        store.put(_fp("dd"), _record())  # legacy, kindless → "?"
        path = store.path_for(_fp("ee"))
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("not json")  # unreadable records also count as "?"
        info = store.stats()
        assert info["records_by_kind"] == {
            "?": 2,
            "obligation": 2,
            "report": 1,
        }
        assert info["records"] == 5
        assert info["total_bytes"] == store.total_bytes()


class TestCounterSidecar:
    def test_counters_survive_process_exit(self, tmp_path):
        store = ResultStore(tmp_path)
        store.get(_fp("aa"), kind="obligation")
        store.put(_fp("aa"), _record(), kind="obligation")
        store.flush_counters()
        # a fresh instance models the next process
        later = ResultStore(tmp_path)
        merged = later.persistent_counters()
        assert merged["misses.obligation"] == 1
        assert merged["writes.obligation"] == 1

    def test_repeated_flush_is_idempotent(self, tmp_path):
        store = ResultStore(tmp_path)
        store.get(_fp("aa"))
        store.flush_counters()
        store.flush_counters()
        assert ResultStore(tmp_path).persistent_counters() == {
            "misses": 1
        }

    def test_flushes_accumulate_across_instances(self, tmp_path):
        for _ in range(3):
            store = ResultStore(tmp_path)
            store.get(_fp("aa"))
            store.flush_counters()
        merged = ResultStore(tmp_path).persistent_counters()
        assert merged["misses"] == 3

    def test_corrupt_sidecar_is_replaced(self, tmp_path):
        (tmp_path / "counters.json").write_text("{broken")
        store = ResultStore(tmp_path)
        store.get(_fp("aa"))
        merged = store.flush_counters()
        assert merged == {"misses": 1}
        assert json.loads((tmp_path / "counters.json").read_text()) == {
            "misses": 1
        }

    def test_persistent_counters_include_unflushed_deltas(self, tmp_path):
        store = ResultStore(tmp_path)
        store.get(_fp("aa"))
        store.flush_counters()
        store.get(_fp("bb"))  # not yet flushed
        assert store.persistent_counters()["misses"] == 2
