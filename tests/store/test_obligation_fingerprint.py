"""Obligation-fingerprint semantics: what replays and what misses.

The incremental proof engine is only sound if the fingerprint is
*stable* under noise (option insertion order, Σ* ordering, source
restyling, edge enumeration order) and *sensitive* to anything a
verdict depends on (component edits, the composite alphabet, the
formula, the restriction, the engine and its reorder mode).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.casestudies.afs2 import client_source, client_source_variant
from repro.casestudies.afs_common import ProtocolComponent
from repro.logic.ctl import AX, Implies, atom
from repro.logic.restriction import UNRESTRICTED, Restriction
from repro.store.fingerprint import (
    component_fingerprint,
    obligation_fingerprint,
    proof_fingerprint,
)
from repro.systems.system import System

p, q = atom("p"), atom("q")
STEP = Implies(p, AX(p))
SIGMA = ("p", "q", "r")

# a tiny explicit component; its digest keys the hypothesis examples
TOY = System({"p", "q"}, [(frozenset({"p"}), frozenset({"p", "q"}))])
DIGEST = component_fingerprint(TOY)


def _fp(**overrides):
    base = dict(
        component=DIGEST,
        sigma_star=SIGMA,
        formula=STEP,
        restriction=UNRESTRICTED,
        engine="explicit",
        options=None,
    )
    base.update(overrides)
    return obligation_fingerprint(**base)


# ----------------------------------------------------------------------
# stability: representation noise must collide
# ----------------------------------------------------------------------
_option_values = st.one_of(
    st.booleans(),
    st.integers(-8, 8),
    st.sampled_from(["none", "sift", "auto"]),
)
_options = st.dictionaries(
    st.sampled_from(["reorder", "reflexive", "alpha", "beta", "gamma"]),
    _option_values,
    max_size=5,
)


class TestStability:
    @settings(max_examples=50, deadline=None)
    @given(options=_options)
    def test_option_insertion_order_washes_out(self, options):
        forward = dict(options.items())
        backward = dict(reversed(list(options.items())))
        assert _fp(options=forward) == _fp(options=backward)

    def test_empty_options_and_none_collide(self):
        assert _fp(options=None) == _fp(options={})

    @settings(max_examples=30, deadline=None)
    @given(perm=st.permutations(list("pqrstu")))
    def test_sigma_star_order_washes_out(self, perm):
        assert _fp(sigma_star=perm) == _fp(sigma_star=sorted(perm))

    @settings(max_examples=40, deadline=None)
    @given(
        edges=st.lists(
            st.tuples(
                st.frozensets(st.sampled_from("abc"), max_size=3),
                st.frozensets(st.sampled_from("abc"), max_size=3),
            ),
            min_size=1,
            max_size=6,
            unique=True,
        ),
        data=st.data(),
    )
    def test_edge_enumeration_order_washes_out(self, edges, data):
        shuffled = data.draw(st.permutations(edges))
        a = component_fingerprint(System(set("abc"), edges))
        b = component_fingerprint(System(set("abc"), shuffled))
        assert a == b

    def test_smv_restyling_washes_out(self):
        source = client_source(1)
        restyled = "-- a comment the canonical form must erase\n" + (
            source.replace(";\n", ";  -- trailing noise\n", 1)
        )
        a = ProtocolComponent("Client1", source).symbolic()
        b = ProtocolComponent("Client1", restyled).symbolic()
        assert component_fingerprint(a) == component_fingerprint(b)

    def test_digest_and_system_forms_agree(self):
        assert _fp(component=TOY) == _fp(component=DIGEST)


# ----------------------------------------------------------------------
# sensitivity: anything the verdict depends on must miss
# ----------------------------------------------------------------------
class TestSensitivity:
    def test_component_edit_misses(self):
        original = ProtocolComponent("Client1", client_source(1)).symbolic()
        edited = ProtocolComponent(
            "Client1", client_source_variant(1)
        ).symbolic()
        assert component_fingerprint(original) != component_fingerprint(edited)

    def test_sigma_star_growth_misses(self):
        assert _fp(sigma_star=SIGMA) != _fp(sigma_star=SIGMA + ("s",))

    def test_formula_misses(self):
        assert _fp(formula=STEP) != _fp(formula=Implies(q, AX(q)))

    def test_restriction_misses(self):
        assert _fp(restriction=UNRESTRICTED) != _fp(
            restriction=Restriction(init=p)
        )

    def test_engine_misses(self):
        assert _fp(engine="explicit") != _fp(engine="symbolic")

    def test_reorder_mode_misses(self):
        fps = {
            _fp(options={"reorder": mode})
            for mode in ("none", "sift", "auto")
        }
        assert len(fps) == 3

    def test_explicit_edge_change_misses(self):
        grown = System(
            {"p", "q"},
            [
                (frozenset({"p"}), frozenset({"p", "q"})),
                (frozenset({"q"}), frozenset()),
            ],
        )
        assert component_fingerprint(TOY) != component_fingerprint(grown)

    def test_reflexivity_misses(self):
        pairs = [(frozenset({"p"}), frozenset({"p", "q"}))]
        assert component_fingerprint(
            System({"p", "q"}, pairs, reflexive=True)
        ) != component_fingerprint(System({"p", "q"}, pairs, reflexive=False))


# ----------------------------------------------------------------------
# proof-level fingerprints: a sorted multiset
# ----------------------------------------------------------------------
class TestProofFingerprint:
    @settings(max_examples=30, deadline=None)
    @given(
        fps=st.lists(st.text("0123456789abcdef", min_size=4, max_size=4)),
        data=st.data(),
    )
    def test_order_washes_out_multiplicity_does_not(self, fps, data):
        shuffled = data.draw(st.permutations(fps))
        assert proof_fingerprint(fps) == proof_fingerprint(shuffled)
        assert proof_fingerprint(fps + ["ffff"]) != proof_fingerprint(fps)

    def test_duplicates_are_kept(self):
        assert proof_fingerprint(["aa", "aa"]) != proof_fingerprint(["aa"])
