"""Smoke tests: every example script runs to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)

ARGS = {
    "afs2_scaling.py": ["2"],     # keep the sweep short in CI
    "token_ring.py": ["2"],
    "two_phase_commit.py": ["2"],
}


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)] + ARGS.get(script.name, []),
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout  # every example narrates what it does


def test_examples_exist():
    assert len(EXAMPLES) >= 3  # the deliverable floor; we ship more
