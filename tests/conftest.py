"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

from itertools import combinations

import hypothesis.strategies as st
import pytest

from repro.logic.ctl import (
    AF,
    AG,
    AU,
    AX,
    EF,
    EG,
    EU,
    EX,
    And,
    Atom,
    Const,
    Implies,
    Not,
    Or,
)
from repro.systems.system import System

#: Small atom pools keep the explicit state spaces tiny but interesting.
ATOMS = ("a", "b", "c")


def _all_states(atoms: tuple[str, ...]):
    out = []
    for k in range(len(atoms) + 1):
        for combo in combinations(atoms, k):
            out.append(frozenset(combo))
    return out


@st.composite
def systems(draw, atoms: tuple[str, ...] = ATOMS, max_atoms: int = 3):
    """A random reflexive system over a random sub-alphabet."""
    n = draw(st.integers(min_value=1, max_value=min(max_atoms, len(atoms))))
    sigma = atoms[:n]
    states = _all_states(sigma)
    pairs = [(s, t) for s in states for t in states if s != t]
    edges = draw(
        st.lists(st.sampled_from(pairs), max_size=min(len(pairs), 10), unique=True)
        if pairs
        else st.just([])
    )
    return System(sigma, edges)


@st.composite
def prop_formulas(draw, atoms: tuple[str, ...] = ATOMS, max_depth: int = 3):
    """A random propositional formula over ``atoms``."""
    leaf = st.one_of(
        st.sampled_from([Atom(a) for a in atoms]),
        st.sampled_from([Const(True), Const(False)]),
    )

    def extend(children):
        return st.one_of(
            children.map(Not),
            st.tuples(children, children).map(lambda p: And(*p)),
            st.tuples(children, children).map(lambda p: Or(*p)),
            st.tuples(children, children).map(lambda p: Implies(*p)),
        )

    return draw(st.recursive(leaf, extend, max_leaves=2**max_depth))


@st.composite
def ctl_formulas(draw, atoms: tuple[str, ...] = ATOMS, max_depth: int = 3):
    """A random CTL formula over ``atoms`` (all operators)."""
    leaf = st.one_of(
        st.sampled_from([Atom(a) for a in atoms]),
        st.sampled_from([Const(True), Const(False)]),
    )

    def extend(children):
        unary = st.sampled_from([Not, EX, AX, EF, AF, EG, AG])
        binary = st.sampled_from([And, Or, Implies, EU, AU])
        return st.one_of(
            st.tuples(unary, children).map(lambda p: p[0](p[1])),
            st.tuples(binary, children, children).map(lambda p: p[0](p[1], p[2])),
        )

    return draw(st.recursive(leaf, extend, max_leaves=2**max_depth))


@pytest.fixture
def toggle_x() -> System:
    """Figure-1 style one-bit toggle over {x}."""
    return System.from_pairs({"x"}, [((), ("x",)), (("x",), ())])


@pytest.fixture
def one_way_x() -> System:
    """{x}: only ∅ → {x} (plus stutter); x is absorbing."""
    return System.from_pairs({"x"}, [((), ("x",))])
