"""ServeClient.iter_events against a deliberately flaky SSE server.

The live-progress tests exercise reconnection only incidentally (an
idle timeout might or might not fire); here a purpose-built server
drops the connection at a *known* point, so the resume position, the
``on_reconnect`` callback payload and the delivered-event set are all
deterministic.
"""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.serve.client import ServeClient, ServeClientError


class _FlakyStreamHandler(BaseHTTPRequestHandler):
    """Serves ``/v1/jobs/<id>/events`` and drops after two events.

    First connection: events 1 and 2, then an abrupt close with no
    ``end`` frame.  Every later connection: the events after the
    client's ``Last-Event-ID``, then a clean ``end``.
    """

    protocol_version = "HTTP/1.1"
    events = [
        {"seq": 1, "kind": "job.state", "state": "running"},
        {"seq": 2, "kind": "obligation.progress", "done": 1},
        {"seq": 3, "kind": "job.state", "state": "done"},
    ]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def _frame(self, event: dict) -> bytes:
        return (
            f"id: {event['seq']}\ndata: {json.dumps(event)}\n\n".encode()
        )

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        server = self.server
        since = int(self.headers.get("Last-Event-ID", "0"))
        server.seen_since.append(since)
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Connection", "close")
        self.end_headers()
        first = len(server.seen_since) == 1
        for event in self.events:
            if event["seq"] <= since:
                continue
            if first and event["seq"] > 2:
                break  # drop mid-stream, no end frame
            self.wfile.write(self._frame(event))
        if not first:
            self.wfile.write(b"event: end\ndata: {}\n\n")
        self.wfile.flush()


@pytest.fixture
def flaky_server():
    server = ThreadingHTTPServer(("127.0.0.1", 0), _FlakyStreamHandler)
    server.seen_since = []
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


class TestReconnect:
    def test_drop_resumes_without_loss_or_repeat(self, flaky_server):
        client = ServeClient(
            f"http://127.0.0.1:{flaky_server.server_address[1]}"
        )
        reconnects = []
        events = list(
            client.iter_events("job1", on_reconnect=reconnects.append)
        )
        assert [e["seq"] for e in events] == [1, 2, 3]
        # exactly one drop, reported before the retry slept
        assert len(reconnects) == 1
        info = reconnects[0]
        assert info["attempt"] == 1
        assert info["since"] == 2  # resume position = last delivered
        assert info["delay"] == pytest.approx(0.05)
        assert "end frame" in info["error"]
        # the server saw the resumed Last-Event-ID, not a replay from 0
        assert flaky_server.seen_since == [0, 2]

    def test_reconnect_disabled_stops_at_the_drop(self, flaky_server):
        client = ServeClient(
            f"http://127.0.0.1:{flaky_server.server_address[1]}"
        )
        events = list(client.iter_events("job1", reconnect=False))
        assert [e["seq"] for e in events] == [1, 2]

    def test_exhausted_reconnects_raise(self, flaky_server):
        class AlwaysDrop(_FlakyStreamHandler):
            events = []

            def do_GET(self):  # noqa: N802
                self.server.seen_since.clear()  # every request is "first"
                super().do_GET()

        flaky_server.RequestHandlerClass = AlwaysDrop
        client = ServeClient(
            f"http://127.0.0.1:{flaky_server.server_address[1]}"
        )
        with pytest.raises(ServeClientError, match="dropped"):
            list(client.iter_events("job1", max_reconnects=2))
