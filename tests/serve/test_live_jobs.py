"""Live jobs: SSE streaming, the obligation state machine, the watchdog.

These tests drive real worker pools through the HTTP surface — they
assert what an operator of ``repro serve`` relies on: events stream in
order while a job runs, per-obligation states only ever advance,
dropped consumers resume without loss, and a wedged worker is flagged
by the watchdog within its deadline.
"""

import threading
import time
from contextlib import contextmanager

import pytest

from repro.serve.client import ServeClient, ServeClientError
from repro.serve.http import create_server
from repro.serve.jobs import JobManager, JobRequest
from repro.store import ResultStore

TOGGLE = """
MODULE main
VAR x : boolean;
ASSIGN next(x) := !x;
SPEC AG EF x
SPEC AG EF !x
"""

#: Progress event kind → the obligation state it drives (the serve
#: layer's state machine; ``repro.serve.jobs._on_progress``).
KIND_STATE = {
    "obligation.queued": "pending",
    "obligation.start": "running",
    "obligation.tick": "running",
    "obligation.cache_hit": "cached",
    "obligation.finish": "done",
    "obligation.result": "done",
}

RANK = {"pending": 0, "running": 1, "done": 2, "cached": 2}


@contextmanager
def service(**manager_kwargs):
    manager_kwargs.setdefault("jobs", 1)
    manager_kwargs.setdefault("queue_size", 8)
    manager_kwargs.setdefault("progress_interval", 0.0)
    manager = JobManager(**manager_kwargs)
    server = create_server(manager=manager)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServeClient(f"http://127.0.0.1:{server.port}")
    try:
        yield manager, client
    finally:
        server.shutdown()
        server.server_close()
        manager.stop()
        thread.join(timeout=10)


def assert_monotone_states(events):
    """Per-obligation states derived from the stream never move backwards."""
    states: dict[str, str] = {}
    for event in events:
        state = KIND_STATE.get(event.get("kind", ""))
        name = event.get("obligation")
        if state is None or not name:
            continue
        previous = states.get(name, "pending")
        assert RANK[state] >= RANK[previous], (
            f"{name} regressed {previous} -> {state}"
        )
        states[name] = state
    return states


class TestEventStream:
    def test_sse_streams_ordered_events_for_live_batch(self):
        with service(jobs=2) as (manager, client):
            accepted = client.submit(
                [{"source": TOGGLE, "label": "a"}, {"source": TOGGLE}]
            )
            events = list(client.iter_events(accepted["id"]))
            assert events, "stream delivered nothing"
            seqs = [e["seq"] for e in events]
            assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
            # heartbeats from inside the fixpoints made it across processes
            ticks = [e for e in events if e["kind"] == "obligation.tick"]
            assert ticks and all("phase" in t and "pid" in t for t in ticks)
            final = assert_monotone_states(events)
            # batch obligations are namespaced per check
            assert {"c0.spec0", "c0.spec1", "c1.spec0", "c1.spec1"} <= set(
                final
            )
            assert all(RANK[s] == 2 for s in final.values())
            terminal = [e for e in events if e["kind"] == "job.state"]
            assert terminal[-1]["state"] == "done"
            job = client.job(accepted["id"])
            assert job["state"] == "done"
            obligations = job["obligations"]
            assert all(o["state"] == "done" for o in obligations.values())
            assert all(o["stalled"] is False for o in obligations.values())
            # at least one obligation ran a live fixpoint (the others may
            # finish instantly off a worker's formula-memo cache)
            assert sum(o["ticks"] for o in obligations.values()) >= 1
            assert job["progress_events"] == seqs[-1]
            # internal bookkeeping (_last_heartbeat) never leaks
            assert not any(
                key.startswith("_")
                for o in obligations.values()
                for key in o
            )

    def test_resume_with_last_event_id_replays_exact_tail(self):
        with service() as (manager, client):
            job = client.check(TOGGLE)
            assert job["state"] == "done"
            full = list(client.iter_events(job["id"]))
            assert len(full) >= 3
            mid = full[len(full) // 2]["seq"]
            tail = list(client.iter_events(job["id"], since=mid))
            assert tail == [e for e in full if e["seq"] > mid]

    def test_long_poll_fallback_returns_json_document(self):
        with service() as (manager, client):
            job = client.check(TOGGLE)
            doc = client._request(
                "GET", f"/v1/jobs/{job['id']}/events?poll=1&since=0"
            )
            assert doc["id"] == job["id"] and doc["closed"] is True
            assert doc["events"] and doc["next"] == doc["events"][-1]["seq"]
            assert_monotone_states(doc["events"])

    def test_bad_since_rejected(self):
        with service() as (manager, client):
            job = client.check(TOGGLE)
            with pytest.raises(ServeClientError) as exc:
                client._request(
                    "GET", f"/v1/jobs/{job['id']}/events?poll=1&since=nope"
                )
            assert exc.value.status == 400

    def test_events_404_for_unknown_job(self):
        with service() as (manager, client):
            with pytest.raises(ServeClientError) as exc:
                list(client.iter_events("deadbeef"))
            assert exc.value.status == 404

    def test_progress_disabled_turns_events_off(self):
        with service(progress=False) as (manager, client):
            job = client.check(TOGGLE)
            assert job["state"] == "done"
            assert job["obligations"] is None
            assert job["progress_events"] is None
            with pytest.raises(ServeClientError) as exc:
                list(client.iter_events(job["id"]))
            assert exc.value.status == 404

    def test_cache_hits_show_as_cached_state(self, tmp_path):
        with service(store=ResultStore(tmp_path)) as (manager, client):
            client.check(TOGGLE)
            second = client.check(TOGGLE)
            obligations = second["obligations"]
            assert obligations and all(
                o["state"] == "cached" and o["holds"] is True
                for o in obligations.values()
            )


class TestLiveJobRaces:
    def test_trace_409_while_running_then_available(self, monkeypatch):
        from repro.parallel.pool import shutdown_shared

        # the worker-side stall hook holds the obligation open long
        # enough to observe the running job from outside
        monkeypatch.setenv("REPRO_PROGRESS_TEST_STALL", "0.8")
        shutdown_shared()  # a fresh pool must fork with the hook set
        try:
            with service() as (manager, client):
                accepted = client.submit(TOGGLE)
                deadline = time.monotonic() + 30
                while client.job(accepted["id"])["state"] == "queued":
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
                assert client.job(accepted["id"])["state"] == "running"
                with pytest.raises(ServeClientError) as exc:
                    client.job_trace(accepted["id"])
                assert exc.value.status == 409
                job = client.wait(accepted["id"])
                assert job["state"] == "done"
                trace = client.job_trace(accepted["id"])
                assert trace["spans"]
        finally:
            shutdown_shared()  # drop the stall-hooked workers

    def test_delete_racing_job_start_is_consistent(self):
        # every race outcome is legal, but each must leave a consistent
        # job document: 200 -> cancelled with a closed stream, 409 ->
        # the job runs to a terminal state untouched
        with service(jobs=2) as (manager, client):
            for _ in range(6):
                accepted = client.submit(TOGGLE)
                try:
                    cancelled = client.cancel(accepted["id"])
                    assert cancelled["state"] == "cancelled"
                    job = client.job(accepted["id"])
                    assert job["state"] == "cancelled"
                    assert job["reports"] is None
                    # the bus closed with the terminal state on it
                    events = list(
                        client.iter_events(accepted["id"], reconnect=False)
                    )
                    assert events[-1]["kind"] == "job.state"
                    assert events[-1]["state"] == "cancelled"
                except ServeClientError as exc:
                    # lost the race: the runner picked the job up first
                    assert exc.status == 409
                    job = client.wait(accepted["id"])
                    assert job["state"] == "done"

    def test_delete_while_runner_is_busy_cancels_queued_job(self):
        # park the runner on its first job so the second stays queued:
        # the deterministic direction of the cancel race
        release = threading.Event()
        with service() as (manager, client):
            original = manager._execute

            def parked(job):
                job.state = "running"
                release.wait(30)
                job.state = "done"

            manager._execute = parked
            try:
                blocker = client.submit(TOGGLE)
                deadline = time.monotonic() + 10
                while manager._idle.is_set():
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
                queued = client.submit(TOGGLE)
                cancelled = client.cancel(queued["id"])
                assert cancelled["state"] == "cancelled"
                events = list(
                    client.iter_events(queued["id"], reconnect=False)
                )
                assert events[-1]["kind"] == "job.state"
                assert events[-1]["state"] == "cancelled"
                with pytest.raises(ServeClientError) as exc:
                    client.cancel(blocker["id"])  # already running: 409
                assert exc.value.status == 409
            finally:
                manager._execute = original
                release.set()

    def test_cancelled_queued_job_closes_its_stream(self):
        # runner parked on a stalling first job keeps the second queued
        manager = JobManager(jobs=1, queue_size=8, progress_interval=0.0)
        job = manager.submit([JobRequest(source=TOGGLE)])
        assert manager.cancel(job.id) == "cancelled"
        assert job.progress.closed
        events = job.progress.events_since(0)
        assert events[-1]["kind"] == "job.state"
        assert events[-1]["state"] == "cancelled"

    def test_stale_heartbeats_after_result_are_dropped(self):
        # the parent publishes obligation.result as soon as the pool
        # returns the outcome; that worker's last heartbeats may still
        # sit in the progress queue.  Late ticks must not reach the bus
        # (the stream stays monotone) nor pad the tick counter.
        manager = JobManager(jobs=1, queue_size=8, progress_interval=0.0)
        job = manager.submit([JobRequest(source=TOGGLE)])
        manager._on_progress(
            job, {"kind": "obligation.start", "obligation": "c0.spec0"}
        )
        manager._on_progress(
            job,
            {
                "kind": "obligation.tick",
                "obligation": "c0.spec0",
                "phase": "eu",
                "iterations": 1,
                "size": 3,
            },
        )
        manager._on_progress(
            job,
            {
                "kind": "obligation.result",
                "obligation": "c0.spec0",
                "holds": True,
            },
        )
        before = job.progress.last_seq
        manager._on_progress(
            job,
            {
                "kind": "obligation.tick",
                "obligation": "c0.spec0",
                "phase": "eu",
                "iterations": 2,
                "size": 3,
            },
        )
        assert job.progress.last_seq == before  # late tick never published
        entry = job.obligations["c0.spec0"]
        assert entry["state"] == "done" and entry["ticks"] == 1
        assert_monotone_states(job.progress.events_since(0))


class TestWatchdog:
    def test_stalled_worker_is_flagged_within_deadline(self, monkeypatch):
        from repro.parallel.pool import shutdown_shared

        monkeypatch.setenv("REPRO_PROGRESS_TEST_STALL", "1.0")
        shutdown_shared()
        try:
            with service(stall_deadline=0.2) as (manager, client):
                accepted = client.submit(TOGGLE)
                events = list(client.iter_events(accepted["id"]))
                stalls = [
                    e for e in events if e["kind"] == "obligation.stall"
                ]
                assert stalls, "watchdog never flagged the wedged worker"
                assert all(
                    s["idle_seconds"] > 0.2 and s["deadline"] == 0.2
                    for s in stalls
                )
                job = client.wait(accepted["id"])
                assert job["state"] == "done"  # the sleep ends; job recovers
                # the flag cleared when heartbeats resumed, the evidence
                # stayed: gauge, healthz and the warning in the event log
                assert all(
                    o["stalled"] is False
                    for o in job["obligations"].values()
                )
                health = client.healthz()
                assert health["stalled_obligations"] >= 1
                assert "repro_stalled_obligations 0" not in (
                    client.metrics_text()
                )
        finally:
            shutdown_shared()

    def test_quiet_jobs_never_stall(self):
        with service(stall_deadline=30.0) as (manager, client):
            job = client.check(TOGGLE)
            assert job["state"] == "done"
            assert client.healthz()["stalled_obligations"] == 0
            assert "repro_stalled_obligations 0" in client.metrics_text()

    def test_zero_deadline_disables_watchdog(self):
        with service(stall_deadline=0.0) as (manager, client):
            assert manager._watchdog is None
            health = client.healthz()
            assert health["config"]["stall_deadline_seconds"] == 0.0


class TestOperationalSurface:
    def test_healthz_exposes_config_block(self):
        with service(
            jobs=2, default_timeout=45.0, stall_deadline=7.5
        ) as (manager, client):
            config = client.healthz()["config"]
            assert config == {
                "jobs": 2,
                "queue_size": 8,
                "default_timeout_seconds": 45.0,
                "progress": True,
                "progress_interval_seconds": 0.0,
                "stall_deadline_seconds": 7.5,
                "trace_requests": True,
            }

    def test_metrics_include_build_info_gauge(self):
        from repro import __version__

        with service() as (manager, client):
            text = client.metrics_text()
            assert "# TYPE repro_build_info gauge" in text
            assert f'repro_build_info{{version="{__version__}"' in text
            assert 'python="' in text

    def test_client_per_request_timeout_overrides_default(self, monkeypatch):
        import urllib.request

        captured = []

        class FakeResponse:
            headers = {"Content-Type": "application/json"}

            def read(self):
                return b"{}"

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

        def fake_urlopen(request, timeout=None):
            captured.append(timeout)
            return FakeResponse()

        monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
        client = ServeClient("http://example.invalid", timeout=12.5)
        client.healthz()  # no override: the client default applies
        client.healthz(request_timeout=3.0)  # per-request override wins
        client.job("x", request_timeout=0.5)
        assert captured == [12.5, 3.0, 0.5]
