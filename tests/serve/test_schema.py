"""The check-report payload: shape, determinism, rendering."""

import json

from repro.serve.schema import REPORT_SCHEMA, format_payload, report_payload
from repro.store import ResultStore
from repro.store.cached import cached_check

GOOD = """
MODULE main
VAR x : boolean;
ASSIGN next(x) := 1;
SPEC x -> AX x
"""

BAD = """
MODULE main
VAR x : boolean;
INIT x
ASSIGN next(x) := {0, 1};
SPEC AG x
"""


class TestReportPayload:
    def test_shape(self):
        payload = report_payload(cached_check(GOOD), with_cache=False)
        assert payload["schema"] == REPORT_SCHEMA
        assert payload["module"] == "main"
        assert payload["engine"] == "symbolic"
        assert payload["all_true"] is True
        assert payload["cache"] is None
        (spec,) = payload["specs"]
        assert spec["holds"] is True and spec["cached"] is False
        assert len(spec["fingerprint"]) == 64
        assert "resources" in payload

    def test_json_serializable(self):
        payload = report_payload(cached_check(BAD))
        round_tripped = json.loads(json.dumps(payload))
        assert round_tripped["all_true"] is False
        assert round_tripped["specs"][0]["counterexample"]

    def test_cache_block(self, tmp_path):
        store = ResultStore(tmp_path)
        cached_check(GOOD, store=store)
        payload = report_payload(cached_check(GOOD, store=store))
        assert payload["cache"] == {"hits": 1, "misses": 0}

    def test_warm_payload_matches_cold(self, tmp_path):
        store = ResultStore(tmp_path)
        cold = report_payload(cached_check(GOOD, store=store))
        warm = report_payload(cached_check(GOOD, store=store))
        cold.pop("cache")
        warm.pop("cache")
        for spec in cold["specs"]:
            spec.pop("cached")
        for spec in warm["specs"]:
            spec.pop("cached")
        assert cold == warm


class TestFormatPayload:
    def test_renders_like_a_report(self):
        text = format_payload(report_payload(cached_check(GOOD)))
        assert "-- spec. x -> AX x is true" in text
        assert "resources used:" in text
        assert "BDD nodes allocated:" in text

    def test_counterexample_rendering(self):
        text = format_payload(report_payload(cached_check(BAD)))
        assert "is false" in text
        assert "execution sequence" in text
        assert "state 1.1:" in text

    def test_cache_line(self, tmp_path):
        store = ResultStore(tmp_path)
        cached_check(GOOD, store=store)
        text = format_payload(
            report_payload(cached_check(GOOD, store=store))
        )
        assert "result store: 1 hit(s), 0 miss(es)" in text

    def test_stats_line_optional(self):
        payload = report_payload(cached_check(GOOD))
        assert "BDD cache:" not in format_payload(payload)
        assert "BDD cache:" in format_payload(payload, with_stats=True)
