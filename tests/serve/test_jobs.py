"""JobManager lifecycle: queueing, backpressure, cancel, drain."""

import pytest

from repro.serve.jobs import Job, JobManager, JobRequest, QueueFullError
from repro.store import ResultStore

GOOD = """
MODULE main
VAR x : boolean;
ASSIGN next(x) := 1;
SPEC x -> AX x
"""

BROKEN = "MODULE main\nVAR x : nonsense_type;\n"


@pytest.fixture
def manager(tmp_path):
    manager = JobManager(
        jobs=1, queue_size=2, store=ResultStore(tmp_path), default_timeout=60
    )
    yield manager
    manager.stop()


def _wait(manager, job, timeout=60.0):
    import time

    deadline = time.monotonic() + timeout
    while not job.terminal:
        assert time.monotonic() < deadline, f"job stuck in {job.state}"
        time.sleep(0.01)
    return job


class TestJobRequest:
    def test_from_dict_minimal(self):
        request = JobRequest.from_dict({"source": GOOD})
        assert request.engine == "symbolic" and not request.reflexive

    def test_rejects_empty_source(self):
        with pytest.raises(ValueError):
            JobRequest.from_dict({"source": "  "})
        with pytest.raises(ValueError):
            JobRequest.from_dict({})

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            JobRequest.from_dict({"source": GOOD, "engine": "quantum"})


class TestExecution:
    def test_job_runs_to_done(self, manager):
        manager.start()
        job = manager.submit([JobRequest(source=GOOD)])
        assert isinstance(job, Job) and job.state == "queued"
        _wait(manager, job)
        assert job.state == "done"
        (report,) = job.reports
        assert report["all_true"] is True
        assert report["cache"] == {"hits": 0, "misses": 1}

    def test_second_submission_hits_cache(self, manager):
        manager.start()
        first = _wait(manager, manager.submit([JobRequest(source=GOOD)]))
        second = _wait(manager, manager.submit([JobRequest(source=GOOD)]))
        assert first.reports[0]["cache"]["misses"] == 1
        assert second.reports[0]["cache"] == {"hits": 1, "misses": 0}

    def test_bad_source_fails_cleanly(self, manager):
        manager.start()
        job = _wait(manager, manager.submit([JobRequest(source=BROKEN)]))
        assert job.state == "failed"
        assert job.error and job.reports is None

    def test_label_rides_along(self, manager):
        manager.start()
        job = _wait(
            manager,
            manager.submit([JobRequest(source=GOOD, label="toggle")]),
        )
        assert job.reports[0]["label"] == "toggle"


class TestBackpressure:
    def test_queue_full_raises(self, tmp_path):
        # no runner thread: jobs stay queued, so the third submit bounces
        manager = JobManager(jobs=1, queue_size=2)
        manager.submit([JobRequest(source=GOOD)])
        manager.submit([JobRequest(source=GOOD)])
        with pytest.raises(QueueFullError):
            manager.submit([JobRequest(source=GOOD)])
        assert manager.metrics.as_dict()["serve.queue_full_rejections"] == 1

    def test_empty_batch_rejected(self, manager):
        with pytest.raises(ValueError):
            manager.submit([])

    def test_draining_rejects(self, manager):
        manager.draining = True
        with pytest.raises(QueueFullError):
            manager.submit([JobRequest(source=GOOD)])


class TestCancel:
    def test_cancel_queued(self):
        manager = JobManager(jobs=1, queue_size=4)  # runner not started
        job = manager.submit([JobRequest(source=GOOD)])
        assert manager.cancel(job.id) == "cancelled"
        assert job.state == "cancelled"

    def test_cancel_unknown(self, manager):
        assert manager.cancel("nope") is None

    def test_cancel_terminal_returns_state(self, manager):
        manager.start()
        job = _wait(manager, manager.submit([JobRequest(source=GOOD)]))
        assert manager.cancel(job.id) == "done"

    def test_cancelled_job_is_skipped(self, tmp_path):
        manager = JobManager(jobs=1, queue_size=4)
        job = manager.submit([JobRequest(source=GOOD)])
        manager.cancel(job.id)
        manager.start()
        try:
            other = _wait(
                manager, manager.submit([JobRequest(source=GOOD)])
            )
            assert other.state == "done"
            assert job.state == "cancelled" and job.reports is None
        finally:
            manager.stop()


class TestDrain:
    def test_drain_finishes_backlog(self, tmp_path):
        manager = JobManager(jobs=1, queue_size=8)
        jobs = [
            manager.submit([JobRequest(source=GOOD)]) for _ in range(3)
        ]
        manager.start()
        assert manager.drain(timeout=60)
        assert all(job.state == "done" for job in jobs)
        assert manager.draining

    def test_stats(self, manager):
        manager.submit([JobRequest(source=GOOD)])
        stats = manager.stats()
        assert stats["queued"] == 1 and stats["jobs_total"] == 1
        assert stats["draining"] is False


class TestRequestObservability:
    def test_job_records_trace_and_timings(self, manager):
        manager.start()
        job = _wait(manager, manager.submit([JobRequest(source=GOOD)]))
        assert job.state == "done"
        assert len(job.trace_id) == 32
        names = {record["name"] for record in job.trace}
        assert {"serve.job", "serve.check", "store.probe"} <= names
        assert job.timings["total_seconds"] > 0
        assert job.timings["queue_wait_seconds"] >= 0
        # the job document exposes timings but not the span dump
        doc = job.to_dict()
        assert doc["trace_id"] == job.trace_id
        assert doc["timings"] == job.timings
        assert "trace" not in doc

    def test_trace_requests_off_skips_recording(self, tmp_path):
        manager = JobManager(
            jobs=1, queue_size=2, store=ResultStore(tmp_path),
            trace_requests=False,
        )
        manager.start()
        try:
            job = _wait(manager, manager.submit([JobRequest(source=GOOD)]))
            assert job.state == "done"
            assert job.trace is None
            assert job.timings is not None  # stage timers still run
        finally:
            manager.stop()

    def test_submitted_trace_context_is_used(self, manager):
        from repro.obs.tracer import TraceContext

        manager.start()
        ctx = TraceContext.mint()
        job = _wait(
            manager, manager.submit([JobRequest(source=GOOD)], trace=ctx)
        )
        assert job.trace_id == ctx.trace_id

    def test_histograms_observe_each_job(self, manager):
        manager.start()
        _wait(manager, manager.submit([JobRequest(source=GOOD)]))
        _wait(manager, manager.submit([JobRequest(source=GOOD)]))
        hists = manager.metrics.histograms
        assert hists["request.duration_seconds"].count == 2
        assert hists["request.stage.check_seconds"].count == 2
        assert hists["request.stage.queue_wait_seconds"].count == 2

    def test_event_log_records_lifecycle(self, tmp_path):
        import io
        import json

        from repro.obs.log import EventLog

        stream = io.StringIO()
        log = EventLog(stream=stream, level="debug")
        manager = JobManager(
            jobs=1, queue_size=2, store=ResultStore(tmp_path), log=log
        )
        manager.start()
        try:
            job = _wait(manager, manager.submit([JobRequest(source=GOOD)]))
        finally:
            manager.stop()
        events = [json.loads(line) for line in stream.getvalue().splitlines()]
        names = [event["event"] for event in events]
        assert names[0] == "job.submitted"
        assert "job.started" in names and "job.done" in names
        for event in events:
            if event["event"] == "job.submitted":
                assert all(
                    digest.startswith("sha256:")
                    for digest in event["sources"]
                )
            if event["event"] in ("job.started", "job.done"):
                assert event["trace_id"] == job.trace_id
                assert event["job_id"] == job.id
        done = next(e for e in events if e["event"] == "job.done")
        assert done["state"] == "done"
        assert done["total_seconds"] >= 0

    def test_failed_job_logs_error_event(self, tmp_path):
        import io
        import json

        from repro.obs.log import EventLog

        stream = io.StringIO()
        log = EventLog(stream=stream)
        manager = JobManager(jobs=1, queue_size=2, log=log)
        manager.start()
        try:
            job = _wait(manager, manager.submit([JobRequest(source=BROKEN)]))
        finally:
            manager.stop()
        assert job.state == "failed"
        events = [json.loads(line) for line in stream.getvalue().splitlines()]
        failed = next(e for e in events if e["event"] == "job.failed")
        assert failed["level"] == "error"
        assert failed["error"]
