"""The HTTP surface, driven through ServeClient on an ephemeral port."""

import threading

import pytest

from repro.serve.client import ServeClient, ServeClientError
from repro.serve.http import create_server
from repro.serve.jobs import JobManager, JobRequest
from repro.store import ResultStore

GOOD = """
MODULE main
VAR x : boolean;
ASSIGN next(x) := 1;
SPEC x -> AX x
"""

BAD = """
MODULE main
VAR x : boolean;
INIT x
ASSIGN next(x) := {0, 1};
SPEC AG x
"""


@pytest.fixture
def service(tmp_path):
    store = ResultStore(tmp_path)
    manager = JobManager(
        jobs=1, queue_size=4, store=store, metrics=store.metrics
    )
    server = create_server(manager=manager)  # port 0: ephemeral
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServeClient(f"http://127.0.0.1:{server.port}")
    yield server, manager, client
    server.shutdown()
    server.server_close()
    manager.stop()
    thread.join(timeout=10)


class TestCheckEndpoint:
    def test_single_check(self, service):
        _, _, client = service
        accepted = client.submit(GOOD)
        assert accepted["state"] == "queued" and accepted["checks"] == 1
        job = client.wait(accepted["id"])
        assert job["state"] == "done"
        assert job["reports"][0]["all_true"] is True

    def test_batch(self, service):
        _, _, client = service
        job = client.check([{"source": GOOD}, {"source": BAD}])
        assert job["state"] == "done" and len(job["reports"]) == 2
        assert job["reports"][0]["all_true"] is True
        assert job["reports"][1]["all_true"] is False

    def test_second_batch_served_from_cache(self, service):
        _, _, client = service
        client.check(GOOD)
        job = client.check(GOOD)
        assert job["reports"][0]["cache"] == {"hits": 1, "misses": 0}

    def test_malformed_payloads(self, service):
        _, _, client = service
        for payload in ({"source": ""}, {"checks": "x"}, {"nope": 1}):
            with pytest.raises(ServeClientError) as exc:
                client.submit(payload)
            assert exc.value.status == 400

    def test_unknown_route_404(self, service):
        _, _, client = service
        with pytest.raises(ServeClientError) as exc:
            client._request("POST", "/v2/check", {})
        assert exc.value.status == 404

    def test_queue_full_429(self, tmp_path):
        import time

        release = threading.Event()
        manager = JobManager(jobs=1, queue_size=1)
        # park the runner on its first job so the queue stays occupied
        manager._execute = lambda job: release.wait(30)
        server = create_server(manager=manager)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        # retries=0: this test asserts the raw 429 (the default client
        # would honor Retry-After and re-submit)
        client = ServeClient(f"http://127.0.0.1:{server.port}", retries=0)
        try:
            client.submit(GOOD)
            deadline = time.monotonic() + 10
            while manager._idle.is_set() and time.monotonic() < deadline:
                time.sleep(0.01)  # wait for the runner to pick the job up
            client.submit(GOOD)  # fills the single queue slot
            with pytest.raises(ServeClientError) as exc:
                client.submit(GOOD)
            assert exc.value.status == 429
            assert exc.value.retry_after == 1.0  # Retry-After surfaced
        finally:
            release.set()
            server.shutdown()
            server.server_close()
            manager.stop()

    def test_draining_503(self, service):
        _, manager, client = service
        manager.draining = True
        with pytest.raises(ServeClientError) as exc:
            client.submit(GOOD)
        assert exc.value.status == 503


class TestJobEndpoints:
    def test_get_unknown_job(self, service):
        _, _, client = service
        with pytest.raises(ServeClientError) as exc:
            client.job("deadbeef")
        assert exc.value.status == 404

    def test_cancel_conflict_on_done(self, service):
        _, _, client = service
        job = client.check(GOOD)
        with pytest.raises(ServeClientError) as exc:
            client.cancel(job["id"])
        assert exc.value.status == 409

    def test_cancel_queued(self, tmp_path):
        import time

        release = threading.Event()
        manager = JobManager(jobs=1, queue_size=4)
        # park the runner on its first job; the second stays queued
        manager._execute = lambda job: release.wait(30)
        server = create_server(manager=manager)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = ServeClient(f"http://127.0.0.1:{server.port}")
        try:
            client.submit(GOOD)
            deadline = time.monotonic() + 10
            while manager._idle.is_set() and time.monotonic() < deadline:
                time.sleep(0.01)
            queued = client.submit(GOOD)
            assert client.cancel(queued["id"])["state"] == "cancelled"
        finally:
            release.set()
            server.shutdown()
            server.server_close()
            manager.stop()


class TestOperationalEndpoints:
    def test_healthz(self, service):
        _, _, client = service
        health = client.healthz()
        assert health["status"] == "ok" and health["draining"] is False

    def test_metrics_exposes_store_and_serve_counters(self, service):
        _, _, client = service
        client.check(GOOD)
        client.check(GOOD)
        text = client.metrics_text()
        assert "# TYPE repro_store_hits gauge" in text
        # warm replay touches the spec record and the report-meta record
        assert "repro_store_hits 2" in text
        assert "repro_store_misses" in text
        assert "repro_serve_jobs_completed 2" in text

    def test_drain_then_healthz_503(self, service):
        _, manager, client = service
        assert manager.drain(timeout=30)
        with pytest.raises(ServeClientError) as exc:
            client.healthz()
        assert exc.value.status == 503


class TestJobManagerScheduler:
    def test_scheduled_execution(self, tmp_path):
        # jobs=2 exercises the worker-pool path end to end
        from repro.parallel import shutdown_shared

        store = ResultStore(tmp_path)
        manager = JobManager(jobs=2, queue_size=4, store=store)
        manager.start()
        try:
            job = manager.submit(
                [JobRequest(source=GOOD), JobRequest(source=BAD)]
            )
            import time

            deadline = time.monotonic() + 120
            while not job.terminal and time.monotonic() < deadline:
                time.sleep(0.02)
            assert job.state == "done"
            assert job.reports[0]["all_true"] is True
            assert job.reports[1]["all_true"] is False
            assert job.reports[1]["specs"][0]["counterexample"]
        finally:
            manager.stop()
            shutdown_shared()


class TestObservabilityEndpoints:
    def test_acceptance_carries_trace_id_and_header(self, service):
        import json
        import urllib.request

        server, _, client = service
        accepted = client.submit(GOOD)
        assert len(accepted["trace_id"]) == 32
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/v1/check",
            data=json.dumps({"source": GOOD}).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request) as response:
            payload = json.loads(response.read())
            header = response.headers.get("X-Repro-Trace-Id")
        assert header == payload["trace_id"]

    def test_each_request_gets_its_own_trace(self, service):
        _, _, client = service
        first = client.check(GOOD)
        second = client.check(GOOD)
        assert first["trace_id"] and second["trace_id"]
        assert first["trace_id"] != second["trace_id"]

    def _submit_with_trace_header(self, server, header_value):
        import json
        import urllib.request

        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/v1/check",
            data=json.dumps({"source": GOOD}).encode(),
            headers={
                "Content-Type": "application/json",
                "X-Repro-Trace-Id": header_value,
            },
        )
        with urllib.request.urlopen(request) as response:
            return json.loads(response.read())

    def test_inbound_trace_header_is_honored_end_to_end(self, service):
        # a router propagates its minted id; the shard must adopt it
        server, _, client = service
        minted = "ab" * 16
        payload = self._submit_with_trace_header(server, minted)
        assert payload["trace_id"] == minted
        job = client.wait(payload["id"])
        assert job["trace_id"] == minted
        trace = client.job_trace(payload["id"])
        assert trace["trace_id"] == minted
        roots = [s for s in trace["spans"] if s["parent"] is None]
        assert roots[0]["attrs"]["trace_id"] == minted

    def test_malformed_inbound_trace_header_is_replaced(self, service):
        # garbage in the header must never fail the submission — the
        # shard just mints a fresh identity instead
        server, _, _ = service
        payload = self._submit_with_trace_header(server, "not a trace!")
        assert len(payload["trace_id"]) == 32
        assert payload["trace_id"] != "not a trace!"

    def test_trace_payload_carries_wall_origin(self, service):
        # the router grafts shard traces onto its own clock via this
        _, _, client = service
        job = client.check(GOOD)
        trace = client.job_trace(job["id"])
        assert trace["wall_origin"] > 0
        assert "shard" in trace

    def test_job_document_has_timings(self, service):
        _, _, client = service
        job = client.check(GOOD)
        timings = job["timings"]
        assert set(timings) >= {
            "queue_wait_seconds",
            "cache_probe_seconds",
            "check_seconds",
            "serialize_seconds",
            "total_seconds",
        }
        assert timings["total_seconds"] >= timings["check_seconds"] >= 0
        # the trace itself is not inlined in the job document
        assert "trace" not in job

    def test_trace_endpoint_returns_spans(self, service):
        _, _, client = service
        job = client.check(GOOD)
        trace = client.job_trace(job["id"])
        assert trace["trace_id"] == job["trace_id"]
        names = {span["name"] for span in trace["spans"]}
        assert {"serve.job", "serve.check", "store.cached_check"} <= names
        roots = [s for s in trace["spans"] if s["parent"] is None]
        assert roots and roots[0]["attrs"]["trace_id"] == job["trace_id"]

    def test_trace_endpoint_conflict_while_running(self, tmp_path):
        import time

        release = threading.Event()
        manager = JobManager(jobs=1, queue_size=4)
        manager._execute = lambda job: release.wait(30)
        server = create_server(manager=manager)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = ServeClient(f"http://127.0.0.1:{server.port}")
        try:
            accepted = client.submit(GOOD)
            deadline = time.monotonic() + 10
            while manager._idle.is_set() and time.monotonic() < deadline:
                time.sleep(0.01)
            with pytest.raises(ServeClientError) as exc:
                client.job_trace(accepted["id"])
            assert exc.value.status == 409
        finally:
            release.set()
            server.shutdown()
            server.server_close()
            manager.stop()

    def test_trace_endpoint_404_when_tracing_disabled(self, tmp_path):
        manager = JobManager(jobs=1, queue_size=4, trace_requests=False)
        server = create_server(manager=manager)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = ServeClient(f"http://127.0.0.1:{server.port}")
        try:
            job = client.check(GOOD)
            assert job["state"] == "done"
            with pytest.raises(ServeClientError) as exc:
                client.job_trace(job["id"])
            assert exc.value.status == 404
        finally:
            server.shutdown()
            server.server_close()
            manager.stop()

    def test_trace_endpoint_unknown_job(self, service):
        _, _, client = service
        with pytest.raises(ServeClientError) as exc:
            client.job_trace("deadbeef")
        assert exc.value.status == 404

    def test_healthz_operational_fields(self, service):
        from repro import __version__

        _, _, client = service
        client.check(GOOD)
        health = client.healthz()
        assert health["version"] == __version__
        assert health["uptime_seconds"] >= 0
        assert health["jobs_total"] == 1
        assert health["queued"] == 0 and health["running"] == 0
        store = health["store"]
        assert store["hits"] + store["misses"] > 0
        assert 0.0 <= store["hit_rate"] <= 1.0

    def test_healthz_splits_store_counters_by_kind(self, service):
        _, _, client = service
        client.check(GOOD)  # cold: spec + report misses
        client.check(GOOD)  # warm: spec + report hits
        kinds = client.healthz()["store"]["kinds"]
        assert set(kinds) == {"report", "spec", "obligation"}
        assert kinds["spec"]["misses"] >= 1 and kinds["spec"]["hits"] >= 1
        assert kinds["report"]["hits"] + kinds["report"]["misses"] >= 1
        for block in kinds.values():
            assert 0.0 <= block["hit_rate"] <= 1.0
        # untouched kinds stay at zero rather than disappearing
        assert kinds["obligation"] == {
            "hits": 0,
            "misses": 0,
            "hit_rate": 0.0,
        }

    def test_metrics_exposes_per_kind_store_counters(self, service):
        _, _, client = service
        client.check(GOOD)
        text = client.metrics_text()
        assert "repro_store_misses_spec" in text

    def test_job_completion_flushes_counter_sidecar(self, service, tmp_path):
        import json

        _, _, client = service
        client.check(GOOD)
        sidecar = json.loads((tmp_path / "counters.json").read_text())
        assert sidecar.get("misses.spec", 0) >= 1

    def test_metrics_exposes_request_histograms(self, service):
        _, _, client = service
        client.check(GOOD)
        text = client.metrics_text()
        assert "# TYPE repro_request_duration_seconds histogram" in text
        assert 'repro_request_duration_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_request_duration_seconds_count 1" in text
        assert "repro_request_stage_check_seconds_count 1" in text
        assert "repro_request_stage_accept_seconds_count 1" in text
