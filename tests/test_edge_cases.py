"""Edge cases across the stack: degenerate alphabets, empty sections."""

import pytest

from repro.checking.explicit import ExplicitChecker
from repro.checking.symbolic import SymbolicChecker
from repro.errors import ReproError
from repro.logic.ctl import AF, AG, Const, EX, TRUE
from repro.logic.restriction import Restriction
from repro.systems.compose import compose
from repro.systems.symbolic import SymbolicSystem
from repro.systems.system import System, identity_system


class TestEmptyAlphabet:
    """Σ = ∅ gives a single-state system — everything must still work."""

    def test_single_state(self):
        m = System(set())
        assert m.num_states() == 1
        assert list(m.states()) == [frozenset()]

    def test_explicit_checking(self):
        ck = ExplicitChecker(System(set()))
        assert ck.holds(TRUE)
        assert ck.holds(AG(TRUE))
        assert not ck.holds(Const(False))
        assert ck.holds(EX(TRUE))  # the stutter loop

    def test_symbolic_checking(self):
        sym = SymbolicSystem.from_explicit(System(set()))
        sck = SymbolicChecker(sym)
        assert sck.holds(AF(TRUE))
        assert not sck.holds(Const(False))

    def test_composition_with_empty(self):
        m = System.from_pairs({"x"}, [((), ("x",))])
        assert compose(m, System(set())) == m

    def test_identity_of_nothing(self):
        e = identity_system(set())
        assert e.num_transitions() == 1


class TestDegenerateRestrictions:
    def test_false_init_makes_everything_hold(self, one_way_x):
        ck = ExplicitChecker(one_way_x)
        r = Restriction(init=Const(False))
        assert ck.holds(Const(False), r)

    def test_false_fairness_no_fair_paths(self, one_way_x):
        ck = ExplicitChecker(one_way_x)
        r = Restriction(fairness=(Const(False),))
        # universally quantified properties hold vacuously
        assert ck.holds(AF(Const(False)), r)
        # existentially quantified ones are everywhere false
        assert not ck.holds(EX(TRUE), r)


class TestSmvDegenerate:
    def test_model_without_specs(self):
        from repro.smv.run import check_source

        report = check_source("MODULE main\nVAR x : boolean;\n")
        assert report.all_true  # vacuously
        assert report.results == []
        assert "resources used" in report.format()

    def test_model_without_assigns_is_fully_free(self):
        from repro.smv.run import check_source

        # with x unconstrained, EX x holds everywhere, AX x nowhere useful
        report = check_source(
            "MODULE main\nVAR x : boolean;\nSPEC EX x\nSPEC EX !x\n"
        )
        assert report.all_true

    def test_single_value_enum(self):
        from repro.smv.run import check_source

        report = check_source(
            "MODULE main\nVAR s : {only};\nSPEC AG s = only\n"
        )
        assert report.all_true


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        from repro import errors

        for name in (
            "BddError",
            "LogicError",
            "ParseError",
            "SystemError_",
            "ElaborationError",
            "CheckError",
            "ProofError",
        ):
            assert issubclass(getattr(errors, name), ReproError)

    def test_parse_error_position_formatting(self):
        from repro.errors import ParseError

        err = ParseError("bad token", line=3, column=7)
        assert "line 3" in str(err)
        assert err.line == 3 and err.column == 7
