"""Scheduler behavior: ordering, stats merging, trace grafting."""

import pytest

from repro.casestudies.mutex import TokenRing
from repro.logic.parser import parse_ctl
from repro.obs.export import to_chrome_trace
from repro.obs.tracer import TRACER
from repro.parallel.pool import (
    ObligationScheduler,
    shared_scheduler,
    shutdown_shared,
)
from repro.parallel.workitem import ParallelError, WorkItem, spec_of_component


def _items(n=4):
    ring = TokenRing(2)
    return [
        WorkItem(
            system=spec_of_component(ring.process(i % 2)),
            formula=parse_ctl("EF tok" if i % 2 == 0 else "EF (! tok)"),
            engine="explicit",
            label=f"item{i}",
        )
        for i in range(n)
    ]


@pytest.fixture
def scheduler():
    with ObligationScheduler(jobs=2) as sched:
        yield sched


class TestScheduling:
    def test_rejects_zero_workers(self):
        with pytest.raises(ParallelError):
            ObligationScheduler(jobs=0)

    def test_empty_batch(self, scheduler):
        assert scheduler.run([]) == []

    def test_outcomes_in_submission_order(self, scheduler):
        outcomes = scheduler.run(_items(6))
        assert [o.label for o in outcomes] == [f"item{i}" for i in range(6)]
        assert all(bool(o.result) for o in outcomes)

    def test_map_results(self, scheduler):
        results = scheduler.map_results(_items(2))
        assert len(results) == 2
        assert all(bool(r) for r in results)

    def test_work_distributed_to_worker_processes(self, scheduler):
        import os

        outcomes = scheduler.run(_items(8))
        pids = {o.pid for o in outcomes}
        assert os.getpid() not in pids
        assert len(pids) >= 1  # with 2 workers, usually 2

    def test_checker_cache_warms_up(self, scheduler):
        # same specs across rounds: eventually every worker has compiled
        # both specs and further rounds are all cache hits
        for _ in range(6):
            scheduler.run(_items(4))
        hits = scheduler.metrics.get("parallel.checker_cache_hits")
        assert hits > 0


class TestStatsMerging:
    def test_counts_items(self, scheduler):
        scheduler.run(_items(3))
        assert scheduler.metrics.get("parallel.items") == 3

    def test_check_stats_accumulate(self, scheduler):
        scheduler.run(_items(4))
        assert scheduler.metrics.get("parallel.check.subformulas_evaluated") > 0

    def test_bdd_delta_accumulates_for_symbolic(self):
        from repro.casestudies.afs1 import CLIENT

        item = WorkItem(
            system=spec_of_component(CLIENT.symbolic()),
            formula=parse_ctl("EF (r.0)"),
            engine="symbolic",
        )
        with ObligationScheduler(jobs=1) as sched:
            sched.run([item])
            assert sched.metrics.get("parallel.bdd.mk_calls") > 0


class TestTraceGrafting:
    @pytest.fixture(autouse=True)
    def _quiet_tracer(self):
        was = TRACER.enabled
        TRACER.enabled = False
        TRACER.reset()
        yield
        TRACER.enabled = was
        TRACER.reset()

    def test_no_spans_when_tracer_disabled(self, scheduler):
        outcomes = scheduler.run(_items(2))
        assert all(o.spans == [] for o in outcomes)
        assert list(TRACER.spans()) == []

    def test_worker_spans_grafted_under_parent(self, scheduler):
        TRACER.enabled = True
        with TRACER.span("proof"):
            scheduler.run(_items(2))
        TRACER.enabled = False
        spans = list(TRACER.spans())
        names = [s.name for s in spans]
        assert "parallel.batch" in names
        worker_spans = [s for s in spans if s.name == "worker.item"]
        assert len(worker_spans) == 2
        for span in worker_spans:
            assert span.attrs["pid"] != 0
        batch = next(s for s in spans if s.name == "parallel.batch")
        assert {s.name for s in batch.children} >= {"worker.item"}

    def test_chrome_trace_has_worker_process_tracks(self, scheduler):
        TRACER.enabled = True
        with TRACER.span("proof"):
            scheduler.run(_items(2))
        TRACER.enabled = False
        trace = to_chrome_trace(TRACER)
        meta = [
            e
            for e in trace["traceEvents"]
            if e.get("ph") == "M" and e.get("name") == "process_name"
        ]
        worker_names = {e["args"]["name"] for e in meta}
        assert any(n.startswith("repro worker ") for n in worker_names)

    def test_worker_span_times_fit_inside_batch(self, scheduler):
        TRACER.enabled = True
        with TRACER.span("proof"):
            scheduler.run(_items(2))
        TRACER.enabled = False
        spans = list(TRACER.spans())
        batch = next(s for s in spans if s.name == "parallel.batch")
        for span in spans:
            if span.name == "worker.item":
                # rebased clocks: worker activity lies within the batch
                # window (small scheduling slop allowed)
                assert span.start >= batch.start - 0.05
                assert span.end <= batch.end + 0.05


class TestSharedScheduler:
    def test_shared_identity_per_job_count(self):
        try:
            assert shared_scheduler(2) is shared_scheduler(2)
            assert shared_scheduler(2) is not shared_scheduler(3)
        finally:
            shutdown_shared()

    def test_shutdown_clears_registry(self):
        shared_scheduler(2)
        shutdown_shared()
        assert shared_scheduler(2).metrics.get("parallel.items") == 0
        shutdown_shared()
