"""Work-item specs: derivation, pickling, and in-process execution."""

import pickle

import pytest

from repro.casestudies.afs1 import CLIENT
from repro.casestudies.mutex import TokenRing
from repro.logic.parser import parse_ctl
from repro.parallel.workitem import (
    ComposeSpec,
    ExplicitSpec,
    FACTORIES,
    FactorySpec,
    ParallelError,
    SmvSpec,
    SnapshotSpec,
    WorkItem,
    spec_of_component,
)
from repro.parallel.worker import build_system, clear_worker_caches, run_work_item
from repro.systems.symbolic import SymbolicSystem
from repro.systems.system import System


@pytest.fixture(autouse=True)
def _fresh_worker_caches():
    clear_worker_caches()
    yield
    clear_worker_caches()


class TestSpecDerivation:
    def test_explicit_system_round_trips(self):
        original = TokenRing(2).process(0)
        spec = spec_of_component(original)
        assert isinstance(spec, ExplicitSpec)
        rebuilt = build_system(spec, "explicit")
        assert rebuilt.sigma == original.sigma
        assert set(rebuilt.edges) == set(original.edges)
        assert rebuilt.reflexive == original.reflexive

    def test_explicit_spec_is_canonical(self):
        a = spec_of_component(TokenRing(2).process(0))
        b = spec_of_component(TokenRing(2).process(0))
        assert a == b and hash(a) == hash(b)

    def test_symbolic_component_carries_source(self):
        sym = CLIENT.symbolic()
        spec = spec_of_component(sym)
        assert isinstance(spec, SmvSpec)
        assert spec.reflexive
        rebuilt = build_system(spec, "symbolic")
        assert isinstance(rebuilt, SymbolicSystem)
        assert rebuilt.atoms == sym.atoms

    def test_symbolic_without_source_snapshots(self):
        bare = SymbolicSystem({"a", "b"})
        t = bare.bdd.apply(
            "or", bare.transition, bare.bdd.var("a")
        )
        bare.set_transition(t, reflexive=False)
        spec = spec_of_component(bare)
        assert isinstance(spec, SnapshotSpec)
        # snapshots pickle — that is the point of the flat-array format
        spec = pickle.loads(pickle.dumps(spec))
        rebuilt = build_system(spec, "symbolic")
        assert isinstance(rebuilt, SymbolicSystem)
        assert rebuilt.atoms == bare.atoms
        # node ids are stable across snapshot/restore
        assert rebuilt.transition == bare.transition
        assert set(rebuilt.to_explicit().edges) == set(bare.to_explicit().edges)

    def test_unknown_factory_rejected(self):
        with pytest.raises(ParallelError):
            build_system(FactorySpec(name="no.such.factory"), "symbolic")

    def test_registered_factories_build(self):
        assert isinstance(
            build_system(FactorySpec("afs1.client"), "symbolic"),
            SymbolicSystem,
        )
        assert isinstance(
            build_system(FactorySpec("mutex.process", (2, 0)), "explicit"),
            System,
        )
        assert set(FACTORIES) >= {
            "afs1.server",
            "afs1.client",
            "afs2.server",
            "afs2.client",
            "mutex.process",
            "twophase.coordinator",
            "twophase.participant",
        }

    def test_compose_spec_builds_product(self):
        ring = TokenRing(2)
        spec = ComposeSpec(
            parts=tuple(
                spec_of_component(ring.process(i)) for i in range(2)
            )
        )
        product = build_system(spec, "explicit")
        assert product.sigma == ring.composite().sigma


class TestPickling:
    def test_work_item_round_trips(self):
        item = WorkItem(
            system=spec_of_component(CLIENT.symbolic()),
            formula=parse_ctl("EF (r.0)"),
            engine="symbolic",
            expand_to=("extra",),
            label="client",
        )
        clone = pickle.loads(pickle.dumps(item))
        assert clone == item

    def test_outcome_result_round_trips(self):
        item = WorkItem(
            system=spec_of_component(TokenRing(2).process(0)),
            formula=parse_ctl("EF tok"),
            engine="explicit",
        )
        outcome = run_work_item(item)
        clone = pickle.loads(pickle.dumps(outcome))
        assert bool(clone.result) == bool(outcome.result)
        assert clone.result.formula == outcome.result.formula


class TestRunWorkItem:
    def test_symbolic_outcome_carries_bdd_delta(self):
        item = WorkItem(
            system=spec_of_component(CLIENT.symbolic()),
            formula=parse_ctl("EF (r.0)"),
            engine="symbolic",
            label="client",
        )
        outcome = run_work_item(item)
        assert outcome.label == "client"
        assert outcome.bdd is not None
        assert outcome.bdd["mk_calls"] >= 0
        assert not outcome.cached
        assert run_work_item(item).cached  # second hit uses the cache

    def test_snapshot_spec_checks_like_the_original(self):
        # a source-less symbolic component travels as a manager snapshot
        # and verdicts match the in-process explicit oracle
        ring = TokenRing(2)
        sym = SymbolicSystem.from_explicit(ring.process(0))
        spec = spec_of_component(sym)
        assert isinstance(spec, SnapshotSpec)
        for text, expected in [("EF tok", True), ("AG tok", False)]:
            item = WorkItem(
                system=spec,
                formula=parse_ctl(text),
                engine="symbolic",
            )
            outcome = run_work_item(item)
            assert bool(outcome.result) is expected
            assert outcome.bdd is not None

    def test_reorder_mode_is_part_of_the_cache_key(self):
        item = WorkItem(
            system=spec_of_component(CLIENT.symbolic()),
            formula=parse_ctl("EF (r.0)"),
            engine="symbolic",
            reorder="none",
        )
        sifted = WorkItem(
            system=item.system,
            formula=item.formula,
            engine="symbolic",
            reorder="sift",
        )
        first = run_work_item(item)
        assert not first.cached
        other = run_work_item(sifted)
        assert not other.cached  # different mode, different checker
        assert bool(other.result) == bool(first.result)
        assert run_work_item(item).cached

    def test_explicit_outcome_has_no_bdd_delta(self):
        item = WorkItem(
            system=spec_of_component(TokenRing(2).process(0)),
            formula=parse_ctl("EF tok"),
            engine="explicit",
        )
        outcome = run_work_item(item)
        assert outcome.bdd is None
        assert bool(outcome.result)

    def test_record_spans_ships_span_records(self):
        item = WorkItem(
            system=spec_of_component(TokenRing(2).process(0)),
            formula=parse_ctl("EF tok"),
            engine="explicit",
            record_spans=True,
        )
        outcome = run_work_item(item)
        assert outcome.spans
        assert outcome.spans[0]["name"] == "worker.item"
        assert outcome.wall_origin > 0

    def test_no_spans_by_default(self):
        item = WorkItem(
            system=spec_of_component(TokenRing(2).process(0)),
            formula=parse_ctl("EF tok"),
            engine="explicit",
        )
        assert run_work_item(item).spans == []

    def test_expansion_over_extra_atoms(self):
        # a formula over an atom the component does not own is only
        # checkable on the expansion, whose alphabet includes it
        item = WorkItem(
            system=spec_of_component(TokenRing(2).process(0)),
            formula=parse_ctl("other | (! other)"),
            engine="explicit",
            expand_to=("other",),
        )
        assert bool(run_work_item(item).result)

    def test_expansion_extra_atom_only_stutters(self):
        # the expansion composes with an identity system: the extra atom
        # never changes value, so EF other fails where other is false
        item = WorkItem(
            system=spec_of_component(TokenRing(2).process(0)),
            formula=parse_ctl("EF other"),
            engine="explicit",
            expand_to=("other",),
        )
        assert not bool(run_work_item(item).result)
