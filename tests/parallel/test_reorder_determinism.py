"""Satellite: dynamic reordering has no observable semantic footprint.

Proof certificates (proof tree, obligation report, summary) must be
byte-identical whether reordering is off, sift-once, or automatic — and
whether obligations run sequentially or through a worker pool.  Store
records written under one mode must replay byte-identically under
another (reorder mode is deliberately excluded from fingerprints).
"""

import pathlib

import pytest

from repro.bdd.manager import set_default_reorder
from repro.casestudies.afs1 import Afs1
from repro.compositional.export import obligations_report, proof_tree
from repro.parallel.pool import shutdown_shared

ROOT = pathlib.Path(__file__).resolve().parent.parent.parent


def _certificates(jobs):
    pf, proven = Afs1("symbolic", jobs=jobs).prove_safety()
    return proof_tree(proven), obligations_report(pf), pf.summary()


@pytest.fixture(autouse=True)
def _fresh_pools():
    # pools must be created *after* the reorder default changes so
    # forked workers inherit it (work items also stamp the mode, but a
    # fresh pool keeps the test honest); and shut down afterwards so
    # other test modules start clean
    shutdown_shared()
    yield
    shutdown_shared()


@pytest.mark.parametrize("mode", ["sift", "auto"])
def test_certificates_identical_across_reorder_modes(mode):
    baseline = _certificates(None)
    previous = set_default_reorder(mode)
    try:
        shutdown_shared()
        assert _certificates(None) == baseline
    finally:
        set_default_reorder(previous)


def test_jobs2_sift_matches_sequential_no_reorder():
    baseline = _certificates(None)
    previous = set_default_reorder("sift")
    try:
        shutdown_shared()
        assert _certificates(2) == baseline
    finally:
        set_default_reorder(previous)


def test_cached_check_replays_across_reorder_modes(tmp_path):
    from repro.store import ResultStore
    from repro.store.cached import cached_check

    source = (ROOT / "examples" / "figure1.smv").read_text()
    store = ResultStore(tmp_path)
    cold = cached_check(source, store=store)
    assert cold.misses == len(cold.results)
    previous = set_default_reorder("sift")
    try:
        warm = cached_check(source, store=store)
    finally:
        set_default_reorder(previous)
    # reorder mode is not part of the fingerprint: every spec replays
    assert warm.hits == len(cold.results)
    assert warm.to_report().format(with_stats=True) == cold.to_report().format(
        with_stats=True
    )
