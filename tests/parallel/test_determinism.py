"""Satellite: parallel proofs are byte-identical to sequential ones.

Every case study, both engines, ``jobs`` in {2, 4}: the proof tree, the
obligation report, and the proof summary produced with a worker pool
must equal the sequential strings exactly — parallelism is a pure
performance feature with no observable semantic footprint.

AFS-2 on the explicit engine uses one client (the two-client explicit
product takes ~a minute per run); the symbolic engine covers the full
two-client instance.
"""

import pytest

from repro.casestudies.afs1 import Afs1
from repro.casestudies.afs2 import Afs2
from repro.casestudies.mutex import TokenRing
from repro.casestudies.twophase import TwoPhaseCommit
from repro.compositional.export import obligations_report, proof_tree
from repro.compositional.proof import ProofError
from repro.parallel.pool import shutdown_shared


def _mutex(backend, jobs):
    return TokenRing(2).prove_safety(backend=backend, jobs=jobs)


def _mutex_liveness(backend, jobs):
    return TokenRing(2).prove_enter_liveness(0, backend=backend, jobs=jobs)


def _twophase(backend, jobs):
    return TwoPhaseCommit(2, backend, jobs=jobs).prove_atomicity()


def _afs1_safety(backend, jobs):
    return Afs1(backend, jobs=jobs).prove_safety()


def _afs1_liveness(backend, jobs):
    return Afs1(backend, jobs=jobs).prove_liveness()


def _afs2(backend, jobs):
    n = 2 if backend == "symbolic" else 1
    return Afs2(n, backend, jobs=jobs).prove_safety()


PROOFS = {
    "mutex": _mutex,
    "mutex-liveness": _mutex_liveness,
    "twophase": _twophase,
    "afs1-safety": _afs1_safety,
    "afs1-liveness": _afs1_liveness,
    "afs2": _afs2,
}

#: Certificates of the sequential baseline, computed once per (case, backend).
_BASELINE: dict[tuple[str, str], tuple[str, str, str]] = {}


def _certificates(case, backend, jobs):
    pf, proven = PROOFS[case](backend, jobs)
    return proof_tree(proven), obligations_report(pf), pf.summary()


def _baseline(case, backend):
    key = (case, backend)
    if key not in _BASELINE:
        _BASELINE[key] = _certificates(case, backend, None)
    return _BASELINE[key]


@pytest.fixture(scope="module", autouse=True)
def _teardown_pools():
    yield
    shutdown_shared()


@pytest.mark.parametrize("case", sorted(PROOFS))
@pytest.mark.parametrize("backend", ["explicit", "symbolic"])
@pytest.mark.parametrize("jobs", [2, 4])
def test_parallel_certificates_identical(case, backend, jobs):
    seq_tree, seq_report, seq_summary = _baseline(case, backend)
    par_tree, par_report, par_summary = _certificates(case, backend, jobs)
    assert par_tree == seq_tree
    assert par_report == seq_report
    assert par_summary == seq_summary


@pytest.mark.parametrize("backend", ["explicit", "symbolic"])
def test_jobs_one_takes_sequential_path(backend):
    # parallel=1 is normalized away: no pool, identical certificates
    pf, proven = Afs1(backend, jobs=1).prove_safety()
    assert pf.parallel is None
    assert (
        proof_tree(proven),
        obligations_report(pf),
        pf.summary(),
    ) == _baseline("afs1-safety", backend)


@pytest.mark.parametrize("backend", ["explicit", "symbolic"])
def test_parallel_failure_message_identical(backend):
    ring = TokenRing(2)

    def attempt(jobs):
        pf = ring.prove_safety(backend=backend, jobs=jobs)[0]
        # c0 is not an invariant — the obligation must fail identically
        with pytest.raises(ProofError) as err:
            pf.invariant(ring.initial(), ring.crit(0))
        return str(err.value)

    assert attempt(2) == attempt(None)


def test_parallel_verify_monolithic_matches_sequential():
    pf_seq, _ = Afs1("symbolic").prove_safety()
    pf_par, _ = Afs1("symbolic", jobs=2).prove_safety()
    seq = pf_seq.verify_monolithic()
    par = pf_par.verify_monolithic()
    assert len(seq) == len(par)
    for (proven_s, result_s), (proven_p, result_p) in zip(seq, par):
        assert str(proven_s.formula) == str(proven_p.formula)
        assert bool(result_s) == bool(result_p)
        assert all(bool(r) for r in (result_s, result_p))
