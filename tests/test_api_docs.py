"""The generated API index stays current and every module is documented."""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "tools"))

import gen_api_docs  # noqa: E402


def test_every_module_has_a_docstring():
    import importlib

    for name in gen_api_docs.iter_modules():
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} is undocumented"


def test_committed_index_is_current():
    committed = (
        pathlib.Path(__file__).parent.parent / "docs" / "API.md"
    ).read_text()
    assert committed == gen_api_docs.generate(), (
        "docs/API.md is stale — run python tools/gen_api_docs.py"
    )


def test_first_sentence_extraction():
    assert gen_api_docs.first_sentence("Hello world. More.") == "Hello world."
    assert gen_api_docs.first_sentence(None) == "(undocumented)"
    assert gen_api_docs.first_sentence("No trailing stop") == "No trailing stop."
