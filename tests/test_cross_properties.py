"""Cross-cutting property tests tying several layers together."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

import tests.oracle as oracle
from tests.conftest import ctl_formulas, prop_formulas, systems
from repro.checking.explicit import ExplicitChecker
from repro.checking.witness import ef_witness
from repro.logic.ctl import (
    AG,
    AX,
    Const,
    EF,
    Implies,
    Not,
    TRUE,
    substitute,
)
from repro.logic.evaluate import evaluate_propositional
from repro.systems.compose import compose, expand
from repro.systems.symbolic import SymbolicSystem
from repro.systems.system import System


class TestWitnessProperties:
    @given(systems(max_atoms=2), prop_formulas(atoms=("a", "b"), max_depth=2))
    @settings(max_examples=60, deadline=None)
    def test_ef_witness_exists_iff_ef_holds(self, system, goal):
        goal = substitute(
            goal, {x: Const(True) for x in goal.atoms() - system.sigma}
        )
        ck = ExplicitChecker(system)
        sat = ck.states_satisfying(EF(goal))
        for start in system.states():
            path = ef_witness(ck, start, goal)
            assert (path is not None) == bool(sat[ck._index(start)])
            if path:
                # valid run ending in the goal
                for s, t in zip(path, path[1:]):
                    assert system.has_transition(s, t)
                assert evaluate_propositional(goal, path[-1])

    @given(systems(max_atoms=2), prop_formulas(atoms=("a", "b"), max_depth=2))
    @settings(max_examples=40, deadline=None)
    def test_witness_paths_are_shortest(self, system, goal):
        goal = substitute(
            goal, {x: Const(True) for x in goal.atoms() - system.sigma}
        )
        ck = ExplicitChecker(system)
        for start in system.states():
            path = ef_witness(ck, start, goal)
            if path is None:
                continue
            # BFS distance from the oracle graph must match
            import networkx as nx

            g = nx.DiGraph()
            for s, t in system.relation():
                g.add_edge(s, t)
            goal_states = oracle.sat_states(system, goal)
            best = min(
                (
                    nx.shortest_path_length(g, start, gs)
                    for gs in goal_states
                    if nx.has_path(g, start, gs)
                ),
                default=None,
            )
            assert best is not None
            assert len(path) - 1 == best


class TestExpansionLemmaAcrossEngines:
    @given(systems(atoms=("a", "b"), max_atoms=2), ctl_formulas(atoms=("a", "b"), max_depth=2))
    @settings(max_examples=40, deadline=None)
    def test_lemma5_holds_symbolically_too(self, system, f):
        from repro.checking.symbolic import SymbolicChecker
        from repro.systems.symbolic import symbolic_expand

        f = substitute(f, {x: Const(True) for x in f.atoms() - system.sigma})
        base = SymbolicChecker(SymbolicSystem.from_explicit(system))
        expanded = SymbolicChecker(
            symbolic_expand(SymbolicSystem.from_explicit(system), {"z"})
        )
        assert bool(base.holds(f)) == bool(expanded.holds(f))


class TestCompositionMonotonicity:
    @given(systems(atoms=("a", "b")), systems(atoms=("b", "c")))
    @settings(max_examples=40, deadline=None)
    def test_composition_only_adds_behaviour(self, m1, m2):
        """Every lifted m1-transition exists in the composite."""
        composite = compose(m1, m2)
        frame = composite.sigma - m1.sigma
        for s, t in m1.edges:
            assert composite.has_transition(s, t)  # frame = ∅ lift
            full = frozenset(frame)
            assert composite.has_transition(s | full, t | full)

    @given(systems(atoms=("a", "b"), max_atoms=2))
    @settings(max_examples=30, deadline=None)
    def test_ag_properties_shrink_under_composition(self, m):
        """AG over shared atoms can only be lost, never gained, by composing
        with a fresh-alphabet component (which adds no shared moves)."""
        observer = System.from_pairs({"z"}, [((), ("z",))])
        composite = compose(m, observer)
        base = ExplicitChecker(expand(m, {"z"}))
        comp = ExplicitChecker(composite)
        for atom_name in sorted(m.sigma):
            from repro.logic.ctl import Atom

            f = AG(Implies(Atom(atom_name), AX(Atom(atom_name))))
            assert bool(base.holds(f)) == bool(comp.holds(f))
