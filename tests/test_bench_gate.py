"""The benchmark regression gate's pure comparison logic."""

import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "tools"))

import bench_gate  # noqa: E402


def stats(median):
    return {"median_us": median, "mean_us": median, "stddev_us": 1.0,
            "rounds": 100}


class TestCompare:
    def test_within_threshold_passes(self):
        rows, regressions = bench_gate.compare(
            {"a": stats(100.0)}, {"a": stats(120.0)}, threshold=0.25
        )
        assert regressions == []
        assert rows[0]["ratio"] == pytest.approx(1.2)

    def test_regression_flagged_beyond_threshold(self):
        _, regressions = bench_gate.compare(
            {"a": stats(100.0), "b": stats(50.0)},
            {"a": stats(130.0), "b": stats(55.0)},
            threshold=0.25,
        )
        assert [r["name"] for r in regressions] == ["a"]
        assert regressions[0]["ratio"] == pytest.approx(1.3)

    def test_speedup_never_flags(self):
        _, regressions = bench_gate.compare(
            {"a": stats(100.0)}, {"a": stats(10.0)}, threshold=0.25
        )
        assert regressions == []

    def test_benchmarks_on_one_side_only_ignored(self):
        rows, regressions = bench_gate.compare(
            {"gone": stats(1.0), "kept": stats(10.0)},
            {"new": stats(999.0), "kept": stats(10.0)},
        )
        assert [r["name"] for r in rows] == ["kept"]
        assert regressions == []

    def test_zero_baseline_skipped(self):
        rows, _ = bench_gate.compare({"a": stats(0.0)}, {"a": stats(5.0)})
        assert rows == []

    def test_exact_threshold_boundary_passes(self):
        _, regressions = bench_gate.compare(
            {"a": stats(100.0)}, {"a": stats(125.0)}, threshold=0.25
        )
        assert regressions == []  # strictly-greater-than semantics


class TestBaselineEntry:
    def test_latest_entry_by_default(self):
        trajectory = {"entries": [{"label": "seed", "results": {}},
                                  {"label": "after", "results": {}}]}
        assert bench_gate.baseline_entry(trajectory)["label"] == "after"

    def test_pinned_label(self):
        trajectory = {"entries": [{"label": "seed", "results": {}},
                                  {"label": "after", "results": {}}]}
        assert bench_gate.baseline_entry(trajectory, "seed")["label"] == "seed"

    def test_missing_label_raises(self):
        with pytest.raises(ValueError):
            bench_gate.baseline_entry({"entries": [{"label": "seed"}]}, "x")
        with pytest.raises(ValueError):
            bench_gate.baseline_entry({"entries": []})


class TestEndToEnd:
    def test_from_json_against_committed_baseline(self, tmp_path, capsys):
        """Drive main() with a synthetic fresh run: pass then fail."""
        import json

        baseline = {
            "entries": [
                {
                    "label": "seed",
                    "git_rev": "abc",
                    "date": "2026-01-01",
                    "results": {"test_x": stats(100.0)},
                }
            ]
        }
        baseline_path = tmp_path / "BENCH.json"
        baseline_path.write_text(json.dumps(baseline))

        def fresh(median):
            document = {
                "benchmarks": [
                    {
                        "name": "test_x",
                        "stats": {
                            "mean": median / 1e6,
                            "median": median / 1e6,
                            "stddev": 0.0,
                            "rounds": 10,
                        },
                    }
                ]
            }
            path = tmp_path / f"fresh-{median}.json"
            path.write_text(json.dumps(document))
            return str(path)

        ok = bench_gate.main(
            ["--baseline", str(baseline_path), "--from-json", fresh(110.0)]
        )
        assert ok == 0
        bad = bench_gate.main(
            ["--baseline", str(baseline_path), "--from-json", fresh(200.0)]
        )
        assert bad == 1
        err = capsys.readouterr().err
        assert "refresh the baseline" in err

    def test_committed_engine_trajectory_is_gateable(self):
        """The default baseline file must work as a gate baseline.

        (The other ``BENCH_*.json`` trajectories use per-suite layouts
        and are not gated.)
        """
        import json

        trajectory = json.loads(bench_gate.DEFAULT_BASELINE.read_text())
        entry = bench_gate.baseline_entry(trajectory)
        assert entry["results"], "latest entry is empty"
        for name, result in entry["results"].items():
            assert result["median_us"] > 0, name


class TestIncrementalGate:
    """The --incremental mode: absolute speedup floor, not medians."""

    @pytest.fixture
    def trajectory(self, tmp_path):
        import json

        path = tmp_path / "BENCH_incremental.json"
        path.write_text(json.dumps({
            "entries": [{
                "label": "after",
                "git_rev": "abc1234",
                "date": "2026-08-08",
                "results": {"afs2_n3": {
                    "obligations": 4,
                    "cold_ms": 150.0,
                    "warm_min_ms": 5.0,
                    "warm_edit_min_ms": 15.0,
                    "speedup_warm": 30.0,
                    "speedup_edit": 10.0,
                    "rounds": 5,
                }},
            }],
        }))
        return path

    def test_passes_above_floor(self, trajectory, monkeypatch, capsys):
        import bench_incremental

        monkeypatch.setattr(
            bench_incremental,
            "measure",
            lambda rounds: {
                "cold_ms": 140.0,
                "warm_edit_min_ms": 14.0,
                "speedup_edit": 10.0,
            },
        )
        code = bench_gate.gate_incremental(trajectory, 5.0)
        assert code == 0
        assert "OK: warm edit-recheck 10.0x" in capsys.readouterr().out

    def test_fails_below_floor(self, trajectory, monkeypatch, capsys):
        import bench_incremental

        monkeypatch.setattr(
            bench_incremental,
            "measure",
            lambda rounds: {
                "cold_ms": 140.0,
                "warm_edit_min_ms": 100.0,
                "speedup_edit": 1.4,
            },
        )
        code = bench_gate.gate_incremental(trajectory, 5.0)
        assert code == 1
        assert "below the 5.0x floor" in capsys.readouterr().err

    def test_committed_incremental_trajectory_is_gateable(self):
        import json

        path = pathlib.Path(bench_gate.ROOT) / "BENCH_incremental.json"
        entry = bench_gate.baseline_entry(json.loads(path.read_text()))
        result = entry["results"]["afs2_n3"]
        assert result["speedup_edit"] >= 5.0
