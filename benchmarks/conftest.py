"""Benchmark-suite configuration."""

import pytest


def pytest_collection_modifyitems(items):
    """All items in this directory are benchmarks."""
    for item in items:
        item.add_marker(pytest.mark.benchmark)
