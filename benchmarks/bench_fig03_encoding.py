"""Experiment F3 — paper Figure 3: boolean encoding of a finite-domain system.

Benchmarks building the boolean image of the 4-valued counter and checking
the mapped formula (x < 2) ↔ ¬x.1 against the original semantics.
"""

from repro.casestudies.figures import (
    figure3_encoding,
    figure3_less_than_2,
    figure3_system,
)
from repro.checking.explicit import ExplicitChecker
from repro.compositional.prop_logic import equivalent
from repro.logic.ctl import Atom, Not


def test_fig03_encode_and_check(benchmark):
    def run():
        system = figure3_system()
        ck = ExplicitChecker(system)
        sat = ck.states_satisfying(figure3_less_than_2())
        return system, sat

    system, sat = benchmark(run)
    enc = figure3_encoding()
    ck = ExplicitChecker(system)
    for v in range(4):
        assert sat[ck._index(enc.state_of({"x": v}))] == (v < 2)
    assert equivalent(figure3_less_than_2(), Not(Atom("x.1")))
