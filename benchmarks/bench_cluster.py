"""Experiment CL — cluster store tier: cold check vs cross-instance warm replay.

Measures the distributed serving tier's reason to exist: a shard that
never checked a batch can still replay it from a peer's store.  Two
stores play the roles of two cluster members:

* **instance A** — a plain :class:`~repro.store.ResultStore` fronted by
  a real ``repro.serve`` HTTP server (the ``GET /v1/store/<fp>``
  endpoint the peer tier probes);
* **instance B** — a :class:`~repro.cluster.peers.PeerAwareStore` whose
  ring names A as a member, starting from an *empty* local directory.

The batch (AFS-2 servers, made pairwise-distinct with padding
variables so nothing deduplicates inside one run) is checked **cold**
through A's store, then replayed through B: every verdict must arrive
via peer fetch + read-through write-back, with zero local BDD work.
Each warm round starts from a fresh empty B directory so the fetch
path is exercised every time, not just on round one.

The warm row is the cluster tier's acceptance gate: a cross-instance
warm replay must be at least 5× faster than proving cold, because B
does HTTP round trips instead of fixpoint computation.

Run as a script to (re)write ``BENCH_cluster.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_cluster.py --label after

Also exposes a pytest-benchmark entry point for the harness smoke.
"""

from __future__ import annotations

import argparse
import datetime
import json
import pathlib
import shutil
import subprocess
import sys
import tempfile
import threading
import time

from repro.casestudies.afs2 import SERVER_SPECS_FIGURE, server_source
from repro.cluster.peers import PeerAwareStore
from repro.cluster.ring import RingConfig
from repro.serve.http import create_server
from repro.serve.jobs import JobManager
from repro.store import ResultStore, cached_check

ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = ROOT / "BENCH_cluster.json"

N = 4  # AFS-2 server size: heavy enough that replay wins by a mile
CHECKS = 4


def batch_sources(checks: int = CHECKS, n: int = N) -> list[str]:
    """``checks`` pairwise-distinct AFS-2 server modules.

    Each copy carries one uniquely named (unconstrained) padding
    variable: the store fingerprints hash the canonical module text, so
    without it every copy would collapse onto one record and the "cold"
    pass would be seven-eighths cache hits.
    """
    base = server_source(n, rename=False)
    out = []
    for i in range(checks):
        padded = base.replace(
            "VAR", f"VAR\n  pad{i} : boolean;", 1
        )
        out.append(padded + SERVER_SPECS_FIGURE)
    return out


def _serve_store(store: ResultStore):
    """A real serving instance fronting ``store`` (for /v1/store)."""
    manager = JobManager(
        jobs=1, queue_size=2, store=store, metrics=store.metrics
    )
    server = create_server(manager=manager)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()

    def stop():
        server.shutdown()
        server.server_close()
        manager.stop()
        thread.join(timeout=10)

    return server, stop


# ----------------------------------------------------------------------
# pytest-benchmark entry point
# ----------------------------------------------------------------------
def test_cluster_warm_replay(benchmark, tmp_path):
    sources = batch_sources(checks=2, n=2)
    store_a = ResultStore(tmp_path / "a")
    server, stop = _serve_store(store_a)
    try:
        for source in sources:
            run = cached_check(source, store=store_a)
            assert run.all_true and run.misses > 0
        config = RingConfig.parse(
            f"127.0.0.1:{server.port},127.0.0.1:1",
            self_url="127.0.0.1:1",
        )
        counter = iter(range(10**6))

        def warm():
            store_b = PeerAwareStore(
                tmp_path / f"b{next(counter)}", config, timeout=5.0
            )
            runs = [cached_check(s, store=store_b) for s in sources]
            assert all(r.misses == 0 for r in runs)
            return store_b

        store_b = benchmark.pedantic(warm, rounds=3, warmup_rounds=0)
        assert store_b.metrics.get("cluster.peer_fetch.hit") > 0
    finally:
        stop()


# ----------------------------------------------------------------------
# standalone trajectory writer
# ----------------------------------------------------------------------
def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def measure(rounds: int) -> dict:
    """Cold wall time through A vs warm cross-instance replay through B."""
    root = pathlib.Path(tempfile.mkdtemp(prefix="repro-bench-cluster-"))
    sources = batch_sources()
    store_a = ResultStore(root / "a")
    server, stop = _serve_store(store_a)
    try:
        t0 = time.perf_counter()
        for source in sources:
            run = cached_check(source, store=store_a)
            assert run.all_true, "the benchmark batch must verify"
            assert run.hits == 0, "cold pass must start from empty"
        cold = time.perf_counter() - t0

        config = RingConfig.parse(
            f"127.0.0.1:{server.port},127.0.0.1:1",
            self_url="127.0.0.1:1",
        )
        warm = []
        specs = 0
        for r in range(rounds):
            store_b = PeerAwareStore(root / f"b{r}", config, timeout=5.0)
            t0 = time.perf_counter()
            runs = [cached_check(s, store=store_b) for s in sources]
            warm.append(time.perf_counter() - t0)
            for run in runs:
                assert run.misses == 0, "warm replay must do no BDD work"
            specs = sum(len(run.results) for run in runs)
            fetched = store_b.metrics.get("cluster.peer_fetch.hit")
            assert fetched > 0, "warm replay never touched the peer"

        return {
            "checks": len(sources),
            "specs": specs,
            "cold_ms": round(cold * 1e3, 2),
            "warm_min_ms": round(min(warm) * 1e3, 3),
            "speedup_warm": round(cold / min(warm), 1),
            "rounds": rounds,
        }
    finally:
        stop()
        shutil.rmtree(root, ignore_errors=True)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="after")
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT))
    args = parser.parse_args(argv)

    output = pathlib.Path(args.output)
    if output.exists():
        document = json.loads(output.read_text())
    else:
        document = {
            "description": "Cluster store-tier trajectory (wall ms; "
            "cold = AFS-2 batch checked against an empty store, warm = "
            "the same batch replayed on a second instance whose empty "
            "store fetches every record from the first over HTTP)",
            "note": "The acceptance gate is speedup_warm: a "
            "cross-instance warm replay must be at least 5x faster "
            "than the cold proof.",
            "entries": [],
        }

    result = measure(args.rounds)
    print(
        f"afs2 servers n={N} x{CHECKS}:   "
        f"cold {result['cold_ms']:8.1f} ms   "
        f"warm {result['warm_min_ms']:7.2f} ms "
        f"({result['speedup_warm']}x)"
    )
    if result["speedup_warm"] < 5:
        print(
            f"FAIL: cross-instance warm replay speedup "
            f"{result['speedup_warm']}x < 5x",
            file=sys.stderr,
        )
        return 1

    entry = {
        "label": args.label,
        "git_rev": _git_rev(),
        "date": datetime.date.today().isoformat(),
        "results": {"afs2_cluster": result},
    }
    document["entries"] = [
        e for e in document["entries"] if e["label"] != args.label
    ]
    document["entries"].append(entry)
    output.write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {output} (label {args.label!r})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
