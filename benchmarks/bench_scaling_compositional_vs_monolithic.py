"""Experiment D1 — Discussion §5: compositional is linear, monolithic is not.

The paper claims its approach gives "a linear behavior (as opposed to
exponential) in terms of the number of components".  This bench sweeps
the number of AFS-2 clients and measures:

* compositional — the safety proof (one obligation per component, each
  over a single expansion);
* monolithic — model checking the same AG property on the full product
  system built by symbolic composition.

Shape to reproduce: compositional obligations grow as n+1 and per-n cost
stays flat-ish, while the monolithic product's state space (2^atoms)
grows exponentially with n and its check time grows much faster.
"""

import pytest

from repro.baselines.monolithic import check_monolithic
from repro.casestudies.afs2 import Afs2
from repro.logic.ctl import AG
from repro.logic.restriction import Restriction

NS = [1, 2, 3]


@pytest.mark.parametrize("n", NS)
def test_d1_compositional_scaling(benchmark, n):
    study = Afs2(n)

    def run():
        pf, proven = study.prove_safety()
        return pf, proven

    pf, proven = benchmark(run)
    obligations = {
        id(o) for s in pf.log for leaf in s.leaves() for o in leaf.obligations
    }
    assert len(obligations) == n + 1  # linear in components


@pytest.mark.parametrize("n", NS)
def test_d1_monolithic_scaling(benchmark, n):
    study = Afs2(n)
    components = {"server": study.server.symbolic()}
    for i, c in enumerate(study.clients, start=1):
        components[f"client{i}"] = c.symbolic()
    target = AG(study.invariant())
    restriction = Restriction(init=study.initial())

    def run():
        return check_monolithic(
            components, target, restriction, backend="symbolic"
        )

    report = benchmark(run)
    assert report.result
    # exponential state space: each extra client adds 9 boolean atoms
    # (Server.belief_i, validFile_i, response_i×2, time_i, request_i×2,
    #  Client_i.belief×2) to the product alphabet
    assert report.num_atoms >= 9 * n + 1
    print(
        f"\nn={n}: product atoms={report.num_atoms} "
        f"states={report.num_states:.0f} check={report.check_time:.3f}s"
    )
