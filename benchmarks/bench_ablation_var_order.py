"""Ablation A3 — interleaved current/next variable order vs blocked order.

The symbolic backend interleaves ``a, a', b, b', …`` (DESIGN.md §4).  This
bench rebuilds the AFS-1 server transition relation under the blocked
order ``a, b, …, a', b', …`` and compares node counts — the classic
result that transition relations blow up without interleaving.
"""

from repro.bdd.reorder import rebuild_with_order, shared_size
from repro.casestudies.afs1 import AFS1_SERVER_FIGURE
from repro.smv.compile_symbolic import to_symbolic
from repro.smv.elaborate import SmvModel
from repro.smv.parser import parse_module
from repro.systems.symbolic import primed


def _relation():
    model = SmvModel(parse_module(AFS1_SERVER_FIGURE))
    sym = to_symbolic(model)
    return sym


def test_a3_interleaved_order(benchmark):
    def run():
        sym = _relation()
        return shared_size(sym.bdd, [sym.transition])

    size = benchmark(run)
    assert size > 0


def test_a3_blocked_order(benchmark):
    def run():
        sym = _relation()
        blocked = list(sym.atoms) + [primed(a) for a in sym.atoms]
        mgr, (t,) = rebuild_with_order([sym.transition], sym.bdd, blocked)
        return shared_size(mgr, [t])

    blocked_size = benchmark(run)
    sym = _relation()
    interleaved_size = shared_size(sym.bdd, [sym.transition])
    # shape: blocked order must not beat the interleaved default
    assert blocked_size >= interleaved_size
