"""Ablation A3 — interleaved current/next variable order vs blocked order.

The symbolic backend interleaves ``a, a', b, b', …`` (DESIGN.md §4).  This
bench rebuilds the AFS-1 server transition relation under the blocked
order ``a, b, …, a', b', …`` and compares node counts — the classic
result that transition relations blow up without interleaving.

``test_a3_sifted_from_blocked`` closes the loop: starting from that
worst declared order, one in-place Rudell sifting pass
(:meth:`repro.bdd.manager.BDD.reorder`) must at least halve the shared
relation size.  Node counts land in ``benchmark.extra_info`` so the
``BENCH_bdd_engine.json`` trajectory records sifted-vs-declared-order
sizes alongside the timings.
"""

from repro.bdd.reorder import rebuild_with_order, shared_size
from repro.casestudies.afs1 import AFS1_SERVER_FIGURE
from repro.smv.compile_symbolic import to_symbolic
from repro.smv.elaborate import SmvModel
from repro.smv.parser import parse_module
from repro.systems.symbolic import primed


def _relation():
    model = SmvModel(parse_module(AFS1_SERVER_FIGURE))
    sym = to_symbolic(model)
    return sym


def _blocked(sym):
    return list(sym.atoms) + [primed(a) for a in sym.atoms]


def test_a3_interleaved_order(benchmark):
    def run():
        sym = _relation()
        return shared_size(sym.bdd, [sym.transition])

    size = benchmark(run)
    benchmark.extra_info["nodes"] = size
    assert size > 0


def test_a3_blocked_order(benchmark):
    def run():
        sym = _relation()
        mgr, (t,) = rebuild_with_order([sym.transition], sym.bdd, _blocked(sym))
        return shared_size(mgr, [t])

    blocked_size = benchmark(run)
    sym = _relation()
    interleaved_size = shared_size(sym.bdd, [sym.transition])
    benchmark.extra_info["nodes"] = blocked_size
    # shape: blocked order must not beat the interleaved default
    assert blocked_size >= interleaved_size


def test_a3_sifted_from_blocked(benchmark):
    def run():
        sym = _relation()
        mgr, (t,) = rebuild_with_order([sym.transition], sym.bdd, _blocked(sym))
        mgr.add_reorder_root(t)
        summary = mgr.reorder("sift")
        return summary["nodes_before"], shared_size(mgr, [t])

    nodes_before, nodes_after = benchmark(run)
    benchmark.extra_info["nodes_before"] = nodes_before
    benchmark.extra_info["nodes_after"] = nodes_after
    # the acceptance bar: one sifting pass must at least halve the
    # relation built under the worst declared order (measured: 176 -> 56)
    assert nodes_after * 2 <= nodes_before
