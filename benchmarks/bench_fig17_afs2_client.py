"""Experiment F13/F16/F17 — paper Figures 13/16/17: AFS-2 client check.

Paper reference values: Cli1 true, 592 BDD nodes allocated, 120 + 6
transition nodes.
"""

from repro.casestudies.afs2 import check_client_figure


def test_fig17_afs2_client_output(benchmark):
    report = benchmark(check_client_figure)
    print()
    print(report.format())
    assert report.all_true
    assert len(report.results) == 1
    assert 100 < report.bdd_nodes_allocated < 6000
