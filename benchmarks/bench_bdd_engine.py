"""Micro-benchmarks of the BDD engine's hot operations.

Standard workloads for a BDD package: building an n-bit adder-carry
function (exponential without sharing), quantifier sweeps, and the
transition-relation image step the model checker spends its time in.
"""

from repro.bdd.manager import BDD
from repro.casestudies.afs2 import server_source
from repro.smv.compile_symbolic import to_symbolic
from repro.smv.elaborate import SmvModel
from repro.smv.parser import parse_module

N_BITS = 10


def _adder_carry(bdd: BDD) -> int:
    """Carry-out of an N_BITS ripple-carry adder over a/b vectors."""
    carry = 0  # FALSE
    for i in range(N_BITS):
        a, b = bdd.var(f"a{i}"), bdd.var(f"b{i}")
        ab = bdd.apply("and", a, b)
        a_or_b = bdd.apply("or", a, b)
        carry = bdd.apply("or", ab, bdd.apply("and", a_or_b, carry))
    return carry


def test_bdd_build_adder_carry(benchmark):
    def run():
        bdd = BDD()
        for i in range(N_BITS):
            bdd.declare(f"a{i}", f"b{i}")
        return bdd, _adder_carry(bdd)

    bdd, carry = benchmark(run)
    assert bdd.node_count(carry) > N_BITS


def test_bdd_quantifier_sweep(benchmark):
    bdd = BDD()
    for i in range(N_BITS):
        bdd.declare(f"a{i}", f"b{i}")
    carry = _adder_carry(bdd)
    a_vars = [f"a{i}" for i in range(N_BITS)]

    def run():
        bdd.clear_caches()
        return bdd.exists(a_vars, carry)

    result = benchmark(run)
    assert result != 0  # satisfiable for some a-vector


def test_bdd_image_step(benchmark):
    model = SmvModel(parse_module(server_source(2, rename=False)))
    sym = to_symbolic(model)
    target = sym.bdd.var(sym.atoms[0])

    def run():
        sym.bdd.clear_caches()
        return sym.pre_image(target)

    assert benchmark(run) is not None


def test_bdd_sat_count(benchmark):
    bdd = BDD()
    for i in range(N_BITS):
        bdd.declare(f"a{i}", f"b{i}")
    carry = _adder_carry(bdd)
    count = benchmark(bdd.sat_count, carry)
    assert 0 < count < 2 ** (2 * N_BITS)
