"""Ablation A2 — BDD computed-table (memoization) on vs off.

Every classic BDD package memoizes ``ite``; this quantifies what that buys
on the AFS-2 server pipeline.
"""

from repro.casestudies.afs2 import server_source
from repro.smv.compile_symbolic import to_symbolic
from repro.smv.elaborate import SmvModel
from repro.smv.parser import parse_module


def _build(cache_enabled: bool) -> int:
    model = SmvModel(parse_module(server_source(2, rename=False)))
    sym = to_symbolic(model)
    sym.bdd.cache_enabled = cache_enabled
    sym.bdd.clear_caches()
    # re-do a representative heavy operation: the reflexive closure and a
    # pre-image sweep over the whole space
    t = sym.bdd.apply("or", sym.transition, sym.identity_relation())
    pre = sym.pre_image(sym.bdd.var(sym.atoms[0]))
    return sym.bdd.node_count(t) + sym.bdd.node_count(pre)


def test_a2_with_computed_table(benchmark):
    size = benchmark(_build, True)
    assert size > 0


def test_a2_without_computed_table(benchmark):
    size = benchmark(_build, False)
    assert size > 0
