"""Ablation A1 — NumPy bitset labeling vs pure-Python set fixpoints.

The explicit checker's design choice (DESIGN.md §4): state sets are NumPy
boolean vectors and the EX operator is a vectorized scatter.  This bench
compares it against a straightforward set-of-frozensets implementation of
the same ``E[p U q]`` fixpoint on a mid-sized composed system.
"""

import pytest

from repro.casestudies.mutex import TokenRing
from repro.checking.explicit import ExplicitChecker
from repro.logic.ctl import EU, Not, TRUE


def _workload():
    ring = TokenRing(4)
    composite = ring.composite()
    goal = ring.crit(2)
    return composite, goal


def test_a1_numpy_bitset_eu(benchmark):
    composite, goal = _workload()

    def run():
        ck = ExplicitChecker(composite)
        return int(ck.states_satisfying(EU(TRUE, goal)).sum())

    count = benchmark(run)
    assert count > 0


def test_a1_pure_python_sets_eu(benchmark):
    composite, goal = _workload()

    def run():
        # naive labeling: sets of frozensets, per-state predecessor scans
        ck = ExplicitChecker(composite)  # reuse only for atom evaluation
        import numpy as np

        goal_vec = ck.states_satisfying(goal)
        q = {
            ck.state_of_index(int(i)) for i in np.flatnonzero(goal_vec)
        }
        out = set(q)
        changed = True
        while changed:
            changed = False
            for s in composite.states():
                if s in out:
                    continue
                if any(t in out for t in composite.successors(s)):
                    out.add(s)
                    changed = True
        return len(out)

    count = benchmark(run)
    assert count > 0
