"""Experiment F5–F7 — paper Figures 5/6/7: model checking the AFS-1 server.

Runs the full SMV pipeline (parse → elaborate → compile to BDDs → check
Srv1–Srv5) and prints the paper-style output.  Paper reference values:
all 5 specs true, 403 BDD nodes allocated, 43 + 7 transition nodes.
"""

from repro.casestudies.afs1 import check_server_figure


def test_fig07_afs1_server_output(benchmark):
    report = benchmark(check_server_figure)
    print()
    print(report.format())
    assert report.all_true
    assert len(report.results) == 5
    # same order of magnitude as the paper's 403 nodes
    assert 100 < report.bdd_nodes_allocated < 4000
