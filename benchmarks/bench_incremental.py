"""Experiment IN — incremental proofs: cold check vs edit-recheck replay.

Runs the AFS-2 ``n=3`` compositional safety proof (4 obligations:
server + 3 clients) against a fresh :class:`~repro.store.ResultStore`
three ways:

* **cold** — empty store: every obligation is model checked and written;
* **warm** — nothing changed: every obligation replays from disk;
* **warm-edit** — one client's SMV source is edited
  (:func:`~repro.casestudies.afs2.client_source_variant` swaps two
  mutually-exclusive case branches): exactly that client's obligation is
  re-checked, the other three replay.

The warm-edit row is the feature's acceptance gate: re-checking a proof
after editing one component must be at least 5× faster than proving
cold, because only the edited component's obligation does BDD work.

Run as a script to (re)write ``BENCH_incremental.json`` at the repo
root::

    PYTHONPATH=src python benchmarks/bench_incremental.py --label after

Also exposes pytest-benchmark entry points for the harness smoke.
"""

from __future__ import annotations

import argparse
import datetime
import json
import pathlib
import shutil
import subprocess
import sys
import tempfile
import time

import pytest

from repro.casestudies.afs2 import Afs2
from repro.store import ResultStore

ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = ROOT / "BENCH_incremental.json"

N = 3
OBLIGATIONS = N + 1  # server + one Inv ⇒ AX Inv obligation per client
EDITED = 2  # the client whose source the edit rounds perturb


def prove(store, variant=None):
    """One AFS-2 safety proof; returns its hit/miss ledger."""
    study = Afs2(N, jobs=None, store=store, variant_client=variant)
    pf, proven = study.prove_safety()
    assert proven.formula is not None
    ledger = pf.cache_ledger()
    assert ledger is not None
    return ledger


def _evict_misses(store, ledger):
    """Forget the records an edit round wrote, restoring edited-not-cached."""
    for entry in ledger["obligations"]:
        if not entry["cached"]:
            store.path_for(entry["fingerprint"]).unlink()


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def test_incremental_cold(benchmark, tmp_path):
    counter = iter(range(10**6))

    def cold():
        return prove(ResultStore(tmp_path / f"s{next(counter)}"))

    ledger = benchmark.pedantic(cold, rounds=3, warmup_rounds=0)
    assert ledger["hits"] == 0 and ledger["misses"] == OBLIGATIONS


def test_incremental_warm(benchmark, tmp_path):
    store = ResultStore(tmp_path / "store")
    prove(store)  # populate

    ledger = benchmark.pedantic(
        prove, args=(store,), rounds=5, warmup_rounds=1
    )
    assert ledger["misses"] == 0 and ledger["hits"] == OBLIGATIONS


def test_incremental_warm_edit(benchmark, tmp_path):
    store = ResultStore(tmp_path / "store")
    prove(store)  # populate with the unedited composition

    def edit_recheck():
        ledger = prove(store, variant=EDITED)
        _evict_misses(store, ledger)
        return ledger

    ledger = benchmark.pedantic(edit_recheck, rounds=5, warmup_rounds=1)
    assert ledger["misses"] == 1 and ledger["hits"] == OBLIGATIONS - 1


# ----------------------------------------------------------------------
# standalone trajectory writer
# ----------------------------------------------------------------------
def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def measure(rounds: int) -> dict:
    """Cold, warm and warm-edit wall times (ms) under a fresh store."""
    root = tempfile.mkdtemp(prefix="repro-bench-incremental-")
    try:
        store = ResultStore(root)
        t0 = time.perf_counter()
        ledger = prove(store)
        cold = time.perf_counter() - t0
        assert ledger["hits"] == 0, "cold pass must start from empty"
        assert ledger["misses"] == OBLIGATIONS

        warm = []
        for _ in range(rounds):
            t0 = time.perf_counter()
            ledger = prove(store)
            warm.append(time.perf_counter() - t0)
            assert ledger["misses"] == 0, "warm pass must fully replay"

        warm_edit = []
        for _ in range(rounds):
            t0 = time.perf_counter()
            ledger = prove(store, variant=EDITED)
            warm_edit.append(time.perf_counter() - t0)
            missed = [
                e["component"]
                for e in ledger["obligations"]
                if not e["cached"]
            ]
            assert missed == [f"client{EDITED}"], (
                f"edit round re-checked {missed}, expected only the "
                f"edited client"
            )
            _evict_misses(store, ledger)

        return {
            "obligations": OBLIGATIONS,
            "cold_ms": round(cold * 1e3, 2),
            "warm_min_ms": round(min(warm) * 1e3, 3),
            "warm_edit_min_ms": round(min(warm_edit) * 1e3, 3),
            "speedup_warm": round(cold / min(warm), 1),
            "speedup_edit": round(cold / min(warm_edit), 1),
            "rounds": rounds,
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="after")
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT))
    args = parser.parse_args(argv)

    output = pathlib.Path(args.output)
    if output.exists():
        document = json.loads(output.read_text())
    else:
        document = {
            "description": "Incremental-proof trajectory (wall ms; cold "
            "= empty store, warm = full replay, warm-edit = recheck "
            "after editing one AFS-2 client: one obligation re-checked, "
            "the rest replayed)",
            "note": "The acceptance gate is speedup_edit: a warm "
            "edit-recheck must be at least 5x faster than the cold "
            "proof.",
            "entries": [],
        }

    result = measure(args.rounds)
    print(
        f"afs2 n={N}: {result['obligations']} obligations   "
        f"cold {result['cold_ms']:8.1f} ms   "
        f"warm {result['warm_min_ms']:7.2f} ms ({result['speedup_warm']}x)"
        f"   edit {result['warm_edit_min_ms']:7.2f} ms "
        f"({result['speedup_edit']}x)"
    )
    if result["speedup_edit"] < 5:
        print(
            f"FAIL: warm edit-recheck speedup {result['speedup_edit']}x "
            f"< 5x",
            file=sys.stderr,
        )
        return 1

    entry = {
        "label": args.label,
        "git_rev": _git_rev(),
        "date": datetime.date.today().isoformat(),
        "results": {"afs2_n3": result},
    }
    document["entries"] = [
        e for e in document["entries"] if e["label"] != args.label
    ]
    document["entries"].append(entry)
    output.write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {output} (label {args.label!r})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
