"""Experiment F12/F14/F15 — paper Figures 12/14/15: AFS-2 server checks.

Paper reference values: Srv1 and Srv2 true, 2737 BDD nodes allocated,
1145 + 6 transition nodes.  The AFS-2 server is roughly an order of
magnitude larger than the AFS-1 server — that relation must reproduce.
"""

from repro.casestudies.afs1 import check_server_figure as afs1_server
from repro.casestudies.afs2 import check_server_figure


def test_fig15_afs2_server_output(benchmark):
    report = benchmark(check_server_figure)
    print()
    print(report.format())
    assert report.all_true
    assert len(report.results) == 2
    # shape: AFS-2 server is much bigger than the AFS-1 server
    assert report.transition_nodes > 3 * afs1_server().transition_nodes
