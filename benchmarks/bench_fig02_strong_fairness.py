"""Experiment F2 — paper Figure 2: progress needing strong fairness (Rule 5).

The cycle system cannot be handled by Rule 4 (its EX premise fails); Rule 5
applies and its conclusion holds under the progress restriction.
"""

from repro.casestudies.figures import (
    figure2_p,
    figure2_p_disjuncts,
    figure2_q,
    figure2_system,
)
from repro.checking.explicit import ExplicitChecker
from repro.compositional.rules import (
    progress_restriction,
    rule4_premise,
    rule5_premise,
)
from repro.logic.ctl import AU, Implies


def test_fig02_rule5_progress_check(benchmark):
    system = figure2_system()
    p, q = figure2_p(), figure2_q()
    restriction = progress_restriction(p, q)

    def run():
        ck = ExplicitChecker(system)
        rule4_ok = bool(ck.holds(rule4_premise(p, q)))
        rule5_ok = bool(ck.holds(rule5_premise(figure2_p_disjuncts(), q, 0)))
        progress = bool(ck.holds(Implies(p, AU(p, q)), restriction))
        return rule4_ok, rule5_ok, progress

    rule4_ok, rule5_ok, progress = benchmark(run)
    assert not rule4_ok   # weak fairness insufficient — the paper's point
    assert rule5_ok
    assert progress
