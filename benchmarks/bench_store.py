"""Experiment ST — the result store: cold check vs warm-cache replay.

Runs ``cached_check`` over the four case studies' SMV models twice
against a fresh :class:`~repro.store.store.ResultStore`: the **cold**
pass compiles and model-checks every SPEC and writes the records, the
**warm** pass must answer entirely from disk (fingerprint lookups + JSON
loads, no BDD work).  The gap is the store's whole value proposition —
the paper's "theorems in the documentation" reused instead of re-proved
— and the AFS-2 row is the acceptance gate: warm must be at least 10×
faster than cold.

The mutex case study is programmatic (no SMV source in
:mod:`repro.casestudies.mutex`), so this suite uses an equivalent
round-robin mutual-exclusion SMV model defined here.

Run as a script to (re)write ``BENCH_store.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_store.py --label after

Also exposes pytest-benchmark entry points (one cold + one warm per
case) for the harness smoke.
"""

from __future__ import annotations

import argparse
import datetime
import json
import pathlib
import shutil
import subprocess
import sys
import tempfile
import time

import pytest

from repro.casestudies.afs1 import AFS1_CLIENT_FIGURE, AFS1_SERVER_FIGURE
from repro.casestudies.afs2 import (
    CLIENT_SPECS_FIGURE,
    SERVER_SPECS_FIGURE,
    client_source,
    server_source,
)
from repro.casestudies.twophase import coordinator_source, participant_source
from repro.store import ResultStore
from repro.store.cached import cached_check

ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = ROOT / "BENCH_store.json"

#: Round-robin mutual exclusion (the mutex case study's SMV face):
#: process i may enter its critical section only on its turn.
MUTEX_SOURCE = """
MODULE main
VAR
  turn : {p1, p2, p3};
  c1 : boolean;
  c2 : boolean;
  c3 : boolean;
ASSIGN
  init(c1) := 0;
  init(c2) := 0;
  init(c3) := 0;
  next(turn) := case turn = p1 : p2; turn = p2 : p3; 1 : p1; esac;
  next(c1) := case turn = p1 : {0, 1}; 1 : 0; esac;
  next(c2) := case turn = p2 : {0, 1}; 1 : 0; esac;
  next(c3) := case turn = p3 : {0, 1}; 1 : 0; esac;
SPEC AG !(c1 & c2)
SPEC AG !(c1 & c3)
SPEC AG !(c2 & c3)
SPEC AG EF c1
SPEC AG EF c2
SPEC AG EF c3
"""

#: Two-phase commit sources carry no SPEC section; the bench checks the
#: decision/outcome monotonicity invariants on them.
TWOPHASE_COORDINATOR = coordinator_source(2) + """
SPEC AG ((decision = commit) -> AG !(decision = abort))
SPEC AG ((decision = abort) -> AG !(decision = commit))
"""

TWOPHASE_PARTICIPANT = participant_source(1) + """
SPEC AG ((outcome1 = committed) -> AG !(outcome1 = aborted))
SPEC AG ((outcome1 = aborted) -> AG !(outcome1 = committed))
"""

#: (case name, [SMV sources checked under one store]) — the four case
#: studies, AFS-2 being the acceptance row (warm ≥ 10× cold).
CASES = (
    ("afs1", [AFS1_SERVER_FIGURE, AFS1_CLIENT_FIGURE]),
    # n=4 clients: big enough that symbolic checking dominates the cold
    # pass (the warm replay cost is size-independent), small enough for CI
    (
        "afs2",
        [
            server_source(4, rename=False) + SERVER_SPECS_FIGURE,
            client_source(rename=False) + CLIENT_SPECS_FIGURE,
        ],
    ),
    ("mutex", [MUTEX_SOURCE]),
    ("twophase", [TWOPHASE_COORDINATOR, TWOPHASE_PARTICIPANT]),
)


def check_all(sources: list[str], store: ResultStore) -> tuple[int, int]:
    """cached_check every source; returns summed (hits, misses)."""
    hits = misses = 0
    for source in sources:
        run = cached_check(source, store=store)
        assert run.all_true, "benchmark models must hold"
        hits += run.hits
        misses += run.misses
    return hits, misses


# ----------------------------------------------------------------------
# pytest-benchmark entry points (one fresh store per cold round, one
# pre-populated store for warm)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name,sources", CASES, ids=[c[0] for c in CASES])
def test_store_cold(benchmark, name, sources, tmp_path):
    counter = iter(range(10**6))

    def cold():
        store = ResultStore(tmp_path / f"s{next(counter)}")
        return check_all(sources, store)

    hits, misses = benchmark.pedantic(cold, rounds=3, warmup_rounds=0)
    assert hits == 0 and misses > 0


@pytest.mark.parametrize("name,sources", CASES, ids=[c[0] for c in CASES])
def test_store_warm(benchmark, name, sources, tmp_path):
    store = ResultStore(tmp_path / "store")
    check_all(sources, store)  # populate

    hits, misses = benchmark.pedantic(
        check_all, args=(sources, store), rounds=5, warmup_rounds=1
    )
    assert misses == 0 and hits > 0


# ----------------------------------------------------------------------
# standalone trajectory writer
# ----------------------------------------------------------------------
def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def measure(sources: list[str], rounds: int) -> dict:
    """Cold + warm wall times (ms) for one case under a fresh store."""
    root = tempfile.mkdtemp(prefix="repro-bench-store-")
    try:
        store = ResultStore(root)
        t0 = time.perf_counter()
        hits, misses = check_all(sources, store)
        cold = time.perf_counter() - t0
        assert hits == 0, "cold pass must start from an empty store"
        warm = []
        for _ in range(rounds):
            t0 = time.perf_counter()
            hits, warm_misses = check_all(sources, store)
            warm.append(time.perf_counter() - t0)
            assert warm_misses == 0, "warm pass must be fully cache-served"
        return {
            "specs": misses,
            "cold_ms": round(cold * 1e3, 2),
            "warm_min_ms": round(min(warm) * 1e3, 3),
            "warm_mean_ms": round(sum(warm) / len(warm) * 1e3, 3),
            "speedup": round(cold / min(warm), 1),
            "rounds": rounds,
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def run(rounds: int) -> dict[str, dict]:
    results = {}
    for name, sources in CASES:
        results[name] = measure(sources, rounds)
        r = results[name]
        print(
            f"{name:>9}: {r['specs']:2d} specs   cold {r['cold_ms']:8.1f} ms"
            f"   warm {r['warm_min_ms']:7.2f} ms   {r['speedup']:6.1f}x"
        )
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="after")
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT))
    args = parser.parse_args(argv)

    output = pathlib.Path(args.output)
    if output.exists():
        document = json.loads(output.read_text())
    else:
        document = {
            "description": "Result-store trajectory (wall ms; cold = "
            "empty store, warm = fully cache-served replay of the same "
            "checks)",
            "note": "The acceptance gate is the afs2 row: warm replay "
            "must be at least 10x faster than the cold check.",
            "entries": [],
        }

    results = run(args.rounds)
    if results["afs2"]["speedup"] < 10:
        print(
            f"FAIL: afs2 warm speedup {results['afs2']['speedup']}x < 10x",
            file=sys.stderr,
        )
        return 1

    entry = {
        "label": args.label,
        "git_rev": _git_rev(),
        "date": datetime.date.today().isoformat(),
        "results": results,
    }
    document["entries"] = [
        e for e in document["entries"] if e["label"] != args.label
    ]
    document["entries"].append(entry)
    output.write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {output} (label {args.label!r})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
