"""Experiment F1 — paper Figure 1: interleaving composition of two toggles.

Regenerates the composite relation the paper enumerates and benchmarks the
composition operator (explicit and symbolic).
"""

from repro.casestudies.figures import (
    figure1_expected_composition,
    figure1_m,
    figure1_m_prime,
)
from repro.systems.compose import compose
from repro.systems.symbolic import SymbolicSystem, symbolic_compose


def test_fig01_explicit_composition(benchmark):
    m, mp = figure1_m(), figure1_m_prime()
    got = benchmark(compose, m, mp)
    assert got == figure1_expected_composition()


def test_fig01_symbolic_composition(benchmark):
    m = SymbolicSystem.from_explicit(figure1_m())
    mp = SymbolicSystem.from_explicit(figure1_m_prime())
    got = benchmark(symbolic_compose, m, mp)
    assert got.to_explicit() == figure1_expected_composition()
