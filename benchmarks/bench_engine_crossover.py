"""Extension bench A6 — explicit vs symbolic engine crossover.

The explicit (NumPy bitset) checker wins on small alphabets; the symbolic
(BDD) checker's advantage grows with state-space size.  Sweeping the
token-ring mutex safety check over ring sizes locates the crossover for
this workload.
"""

import pytest

from repro.casestudies.mutex import TokenRing
from repro.checking.explicit import ExplicitChecker
from repro.checking.symbolic import SymbolicChecker
from repro.logic.ctl import AG
from repro.logic.restriction import Restriction
from repro.systems.symbolic import SymbolicSystem

NS = [2, 3, 4]


def _workload(n):
    ring = TokenRing(n)
    composite = ring.composite()
    target = AG(ring.mutex_invariant())
    restriction = Restriction(init=ring.initial())
    return composite, target, restriction


@pytest.mark.parametrize("n", NS)
def test_a6_explicit_engine(benchmark, n):
    composite, target, restriction = _workload(n)

    def run():
        return ExplicitChecker(composite).holds(target, restriction)

    assert benchmark(run)


@pytest.mark.parametrize("n", NS)
def test_a6_symbolic_engine(benchmark, n):
    composite, target, restriction = _workload(n)
    sym = SymbolicSystem.from_explicit(composite)

    def run():
        return SymbolicChecker(sym).holds(target, restriction)

    assert benchmark(run)
