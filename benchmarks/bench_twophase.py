"""Extension bench — two-phase commit proofs, parametric in n.

Not a paper figure: exercises the engine's liveness rules beyond the
paper's chains (stable-goal conjunction over unordered interleavings) and
tracks the same linear-obligations shape as D1.
"""

import pytest

from repro.casestudies.twophase import TwoPhaseCommit


def _num_obligations(pf):
    return len(
        {id(o) for s in pf.log for leaf in s.leaves() for o in leaf.obligations}
    )


@pytest.mark.parametrize("n", [1, 2, 3])
def test_twophase_atomicity(benchmark, n):
    pf, result = benchmark(lambda: TwoPhaseCommit(n).prove_atomicity())
    assert "AG" in str(result.formula)
    assert _num_obligations(pf) == n + 1


@pytest.mark.parametrize("n", [1, 2])
def test_twophase_termination(benchmark, n):
    pf, result = benchmark(lambda: TwoPhaseCommit(n).prove_termination())
    assert "AF" in str(result.formula)
