"""Run the BDD-engine benchmark suite and record a trajectory entry.

Runs the engine microbenches plus the two suites most sensitive to the
apply-kernel rewrite, extracts the per-test timing statistics from
pytest-benchmark's JSON output, and appends one labeled entry to
``BENCH_bdd_engine.json`` at the repository root::

    PYTHONPATH=src python benchmarks/run_benchmarks.py --label after
    PYTHONPATH=src python benchmarks/run_benchmarks.py --quick

Each entry records mean/median/stddev (µs) and rounds per benchmark, the
git revision, and — when a ``seed`` entry exists — the speedup of every
benchmark relative to it.  ``--from-json`` ingests a previously captured
``pytest --benchmark-json`` file instead of running (used to register the
pre-rewrite baseline as the ``seed`` entry).

``--trace-artifacts DIR`` additionally runs the Figure-1 example under
the :mod:`repro.obs` tracer and drops ``figure1.trace.json`` (Chrome
trace events), ``figure1.spans.jsonl`` and ``figure1.profile.txt`` into
``DIR`` — the same artifacts the CI smoke job uploads.
"""

from __future__ import annotations

import argparse
import datetime
import json
import pathlib
import subprocess
import sys
import tempfile

ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = ROOT / "BENCH_bdd_engine.json"

#: suites a full run measures, in order
SUITES = (
    "benchmarks/bench_bdd_engine.py",
    "benchmarks/bench_ablation_relational_product.py",
    "benchmarks/bench_ablation_var_order.py",
    "benchmarks/bench_scaling_compositional_vs_monolithic.py",
    "benchmarks/bench_parallel_proofs.py",
    "benchmarks/bench_store.py",
)

#: the acceptance microbench: relational-product image step
KEY_BENCH = "test_bdd_image_step"


def git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def run_pytest(suites: list[str], json_path: str, extra: list[str]) -> None:
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        *suites,
        "-q",
        "--benchmark-json",
        json_path,
        *extra,
    ]
    print("+", " ".join(cmd))
    result = subprocess.run(cmd, cwd=ROOT)
    if result.returncode != 0:
        raise SystemExit(result.returncode)


def extract(benchmark_json: dict) -> dict[str, dict]:
    """Per-test stats (µs) from a pytest-benchmark JSON document."""
    results = {}
    for bench in benchmark_json.get("benchmarks", []):
        stats = bench["stats"]
        results[bench["name"]] = {
            "mean_us": round(stats["mean"] * 1e6, 2),
            "median_us": round(stats["median"] * 1e6, 2),
            "stddev_us": round(stats["stddev"] * 1e6, 2),
            "rounds": stats["rounds"],
        }
        # non-timing measurements (e.g. the var-order ablation's BDD
        # node counts) ride along in the trajectory entry
        extra = bench.get("extra_info") or {}
        if extra:
            results[bench["name"]]["extra"] = dict(extra)
    return results


def load_trajectory(path: pathlib.Path) -> dict:
    if path.exists():
        return json.loads(path.read_text())
    return {
        "description": "BDD engine benchmark trajectory "
        "(µs per operation; lower is better)",
        "key_benchmark": KEY_BENCH,
        "entries": [],
    }


def seed_entry(trajectory: dict) -> dict | None:
    for entry in trajectory["entries"]:
        if entry["label"] == "seed":
            return entry
    return None


def append_entry(
    trajectory: dict, label: str, results: dict[str, dict]
) -> dict:
    entry = {
        "label": label,
        "git_rev": git_rev(),
        "date": datetime.date.today().isoformat(),
        "results": results,
    }
    seed = seed_entry(trajectory)
    if seed is not None and label != "seed":
        speedups = {}
        for name, stats in results.items():
            base = seed["results"].get(name)
            if base and stats["mean_us"]:
                speedups[name] = round(base["mean_us"] / stats["mean_us"], 2)
        entry["speedup_vs_seed"] = speedups
    trajectory["entries"] = [
        e for e in trajectory["entries"] if e["label"] != label
    ]
    trajectory["entries"].append(entry)
    return entry


def write_trace_artifacts(directory: pathlib.Path) -> None:
    """Check the Figure-1 example under the tracer; save the artifacts."""
    sys.path.insert(0, str(ROOT / "src"))
    from repro.obs import tracing
    from repro.obs.export import write_chrome_trace, write_jsonl
    from repro.obs.profile import format_profile
    from repro.smv.run import check_source

    source = (ROOT / "examples" / "figure1.smv").read_text()
    with tracing() as tracer:
        report = check_source(source)
    directory.mkdir(parents=True, exist_ok=True)
    write_chrome_trace(directory / "figure1.trace.json", tracer)
    write_jsonl(directory / "figure1.spans.jsonl", tracer)
    (directory / "figure1.profile.txt").write_text(
        format_profile(tracer) + "\n"
    )
    verdict = "all true" if report.all_true else "FAILURES"
    print(f"trace artifacts ({verdict}, {report.user_time:g} s) "
          f"written to {directory}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--label",
        default="after",
        help="trajectory entry name (an existing entry with the same "
        "label is replaced)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run only the engine microbenches (bench_bdd_engine.py)",
    )
    parser.add_argument(
        "--from-json",
        metavar="FILE",
        help="ingest an existing pytest --benchmark-json file instead "
        "of running the suites",
    )
    parser.add_argument(
        "--output",
        default=str(DEFAULT_OUTPUT),
        help="trajectory file to append to (default: BENCH_bdd_engine.json)",
    )
    parser.add_argument(
        "--trace-artifacts",
        metavar="DIR",
        help="also trace a Figure-1 check and write chrome trace / jsonl "
        "spans / profile text into DIR",
    )
    args = parser.parse_args(argv)

    if args.trace_artifacts:
        write_trace_artifacts(pathlib.Path(args.trace_artifacts))

    if args.from_json:
        document = json.loads(pathlib.Path(args.from_json).read_text())
    else:
        suites = [SUITES[0]] if args.quick else list(SUITES)
        with tempfile.NamedTemporaryFile(
            suffix=".json", delete=False
        ) as handle:
            json_path = handle.name
        run_pytest(suites, json_path, extra=[])
        document = json.loads(pathlib.Path(json_path).read_text())
        pathlib.Path(json_path).unlink()

    results = extract(document)
    if not results:
        print("no benchmark results found", file=sys.stderr)
        return 1

    output = pathlib.Path(args.output)
    trajectory = load_trajectory(output)
    entry = append_entry(trajectory, args.label, results)
    output.write_text(json.dumps(trajectory, indent=2) + "\n")

    print(f"recorded entry {entry['label']!r} ({len(results)} benchmarks) "
          f"in {output}")
    if KEY_BENCH in results:
        line = f"{KEY_BENCH}: mean {results[KEY_BENCH]['mean_us']} µs"
        speedup = entry.get("speedup_vs_seed", {}).get(KEY_BENCH)
        if speedup:
            line += f" ({speedup}x vs seed)"
        print(line)
    return 0


if __name__ == "__main__":
    sys.exit(main())
