"""Experiments P1/P2 — the end-to-end compositional proofs of Section 4.

P1: AFS-1 safety (Afs1) and liveness (Afs2), machine-checked from
component obligations only.  P2: AFS-2 safety for n clients.  Each bench
also reports how many model-checking obligations the proof needed —
the quantity the paper argues stays linear in the number of components.
"""

import pytest

from repro.casestudies.afs1 import prove_afs1_liveness, prove_afs1_safety
from repro.casestudies.afs2 import prove_afs2_safety


def _num_obligations(pf):
    return len(
        {
            id(o)
            for s in pf.log
            for leaf in s.leaves()
            for o in leaf.obligations
        }
    )


def test_p1_afs1_safety_proof(benchmark):
    pf, afs1 = benchmark(prove_afs1_safety)
    assert "AG" in str(afs1.formula)
    assert _num_obligations(pf) == 2  # one per component


def test_p1_afs1_liveness_proof(benchmark):
    pf, afs2 = benchmark(prove_afs1_liveness)
    assert "AF" in str(afs2.formula)
    # 7 rule-4 links: one EX premise + 2 universal checks each
    assert _num_obligations(pf) == 21


@pytest.mark.parametrize("n", [1, 2, 3])
def test_p2_afs2_safety_proof(benchmark, n):
    pf, afs1 = benchmark(prove_afs2_safety, n)
    assert "AG" in str(afs1.formula)
    assert _num_obligations(pf) == n + 1  # linear in the component count
