"""Ablation A4 — fused relational product vs materialized conjunction.

``SymbolicSystem.pre_image`` uses the fused ``and_exists`` (conjunction
and quantification in one recursion).  The ablation materializes
``T ∧ S'`` first and quantifies afterwards — the textbook pessimization.
The target state set is an xor-chain over all atoms (a large, irregular
set) so the intermediate conjunction actually grows.
"""

from repro.casestudies.afs2 import server_source
from repro.smv.compile_symbolic import to_symbolic
from repro.smv.elaborate import SmvModel
from repro.smv.parser import parse_module
from repro.systems.symbolic import primed


def _setup():
    model = SmvModel(parse_module(server_source(3, rename=False)))
    sym = to_symbolic(model)
    target = sym.bdd.var(sym.atoms[0])
    for a in sym.atoms[1:]:
        target = sym.bdd.apply("xor", target, sym.bdd.var(a))
    return sym, target


def test_a4_fused_and_exists(benchmark):
    sym, target = _setup()

    def run():
        sym.bdd.clear_caches()
        return sym.pre_image(target)

    result = benchmark(run)
    assert result is not None


def test_a4_materialized_conjunction(benchmark):
    sym, target = _setup()
    next_vars = [primed(a) for a in sym.atoms]

    def run():
        sym.bdd.clear_caches()
        s_next = sym.bdd.rename(target, {a: primed(a) for a in sym.atoms})
        conj = sym.bdd.apply("and", sym.transition, s_next)
        return sym.bdd.exists(next_vars, conj)

    unfused = benchmark(run)
    fused = sym.pre_image(target)
    assert unfused == fused  # same function, different cost
