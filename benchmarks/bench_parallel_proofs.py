"""Experiment PP — the parallel proof engine vs the sequential one.

Measures full compositional proofs (AFS-1 liveness, AFS-2 safety with
three clients) run sequentially and through 2- and 4-worker pools.  Two
regimes matter and are recorded separately:

* **cold** — first proof through a freshly started pool: pays pool
  start-up plus one SMV compilation per (worker, component expansion);
* **warm** — steady state of a long-lived pool (``shared_scheduler``):
  workers reuse their cached compiled checkers, so repeated proofs skip
  compilation entirely, while a sequential run recompiles every
  component expansion on each fresh ``CompositionProof``.

Run as a script to (re)write ``BENCH_parallel.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_parallel_proofs.py --label after

The JSON records ``cpu_count``: worker pools can only beat the
sequential engine cycle-for-cycle when real cores exist.  On a
single-core host the honest story is the warm-cache amortization (and
the cold numbers show the overhead); the ≥1.6x scaling target for four
workers presumes at least four cores.
"""

from __future__ import annotations

import argparse
import datetime
import json
import pathlib
import subprocess
import sys
import time

import pytest

from repro.casestudies.afs1 import prove_afs1_liveness
from repro.casestudies.afs2 import prove_afs2_safety
from repro.parallel.pool import default_jobs, shutdown_shared

ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = ROOT / "BENCH_parallel.json"

#: (case name, proof thunk taking jobs) — symbolic engine throughout:
#: it is each case study's figure-producing configuration.
CASES = (
    ("afs1_liveness", lambda jobs: prove_afs1_liveness("symbolic", jobs=jobs)),
    ("afs2_safety_n3", lambda jobs: prove_afs2_safety(3, "symbolic", jobs=jobs)),
)

JOB_COUNTS = (None, 2, 4)


def _ids(jobs) -> str:
    return "seq" if jobs is None else f"jobs{jobs}"


# ----------------------------------------------------------------------
# pytest-benchmark entry points (warm regime; pools pre-started)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module", autouse=True)
def _pools():
    yield
    shutdown_shared()


@pytest.mark.parametrize("jobs", JOB_COUNTS, ids=_ids)
def test_pp_afs1_liveness(benchmark, jobs):
    _, proven = benchmark.pedantic(
        CASES[0][1], args=(jobs,), rounds=3, warmup_rounds=1
    )
    assert "AF" in str(proven.formula)


@pytest.mark.parametrize("jobs", JOB_COUNTS, ids=_ids)
def test_pp_afs2_safety(benchmark, jobs):
    _, proven = benchmark.pedantic(
        CASES[1][1], args=(jobs,), rounds=3, warmup_rounds=1
    )
    assert "AG" in str(proven.formula)


# ----------------------------------------------------------------------
# standalone trajectory writer
# ----------------------------------------------------------------------
def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def measure(proof, jobs: int | None, rounds: int) -> dict:
    """Cold + warm wall times (ms) for one (case, jobs) configuration."""
    shutdown_shared()  # a genuinely cold pool for the first round
    t0 = time.perf_counter()
    proof(jobs)
    cold = time.perf_counter() - t0
    warm = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        proof(jobs)
        warm.append(time.perf_counter() - t0)
    shutdown_shared()
    return {
        "jobs": jobs or 0,  # 0 = sequential
        "cold_ms": round(cold * 1e3, 2),
        "warm_min_ms": round(min(warm) * 1e3, 2),
        "warm_mean_ms": round(sum(warm) / len(warm) * 1e3, 2),
        "rounds": rounds,
    }


def run(rounds: int) -> dict[str, list[dict]]:
    results: dict[str, list[dict]] = {}
    for name, proof in CASES:
        configs = [measure(proof, jobs, rounds) for jobs in JOB_COUNTS]
        sequential = configs[0]
        for config in configs[1:]:
            config["warm_speedup_vs_seq"] = round(
                sequential["warm_min_ms"] / config["warm_min_ms"], 2
            )
        results[name] = configs
        for config in configs:
            label = _ids(config["jobs"] or None)
            print(
                f"{name:>16} {label:>5}: cold {config['cold_ms']:8.1f} ms   "
                f"warm {config['warm_min_ms']:8.1f} ms (min of {rounds})"
            )
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="after")
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT))
    args = parser.parse_args(argv)

    output = pathlib.Path(args.output)
    if output.exists():
        document = json.loads(output.read_text())
    else:
        document = {
            "description": "Parallel proof engine trajectory (wall ms; "
            "cold = fresh pool, warm = steady-state shared pool)",
            "note": "Worker pools beat the sequential engine "
            "cycle-for-cycle only when cpu_count covers the workers; on "
            "fewer cores the warm speedup measures checker-cache "
            "amortization and the cold numbers expose the overhead.",
            "entries": [],
        }

    entry = {
        "label": args.label,
        "git_rev": _git_rev(),
        "date": datetime.date.today().isoformat(),
        "cpu_count": default_jobs(),
        "results": run(args.rounds),
    }
    document["entries"] = [
        e for e in document["entries"] if e["label"] != args.label
    ]
    document["entries"].append(entry)
    output.write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {output} (label {args.label!r}, "
          f"cpu_count {entry['cpu_count']})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
