"""Ablation A5 — monolithic transition relation vs conjunctive partition.

The SMV compiler emits a per-variable conjunctive partition alongside the
monolithic relation; the partitioned pre-image quantifies next-state
variables early instead of ever touching the full-relation BDD.  Measured
on the AFS-2 server (n = 3) with a large xor-chain target set.
"""

from repro.casestudies.afs2 import server_source
from repro.smv.compile_symbolic import to_symbolic
from repro.smv.elaborate import SmvModel
from repro.smv.parser import parse_module


def _setup():
    model = SmvModel(parse_module(server_source(3, rename=False)))
    sym = to_symbolic(model)
    target = sym.bdd.var(sym.atoms[0])
    for a in sym.atoms[1:]:
        target = sym.bdd.apply("xor", target, sym.bdd.var(a))
    return sym, target


def test_a5_monolithic_pre_image(benchmark):
    sym, target = _setup()

    def run():
        sym.bdd.clear_caches()
        return sym.pre_image(target)

    assert benchmark(run) is not None


def test_a5_partitioned_pre_image(benchmark):
    sym, target = _setup()

    def run():
        sym.bdd.clear_caches()
        return sym.pre_image_partitioned(target)

    partitioned = benchmark(run)
    assert partitioned == sym.pre_image(target)  # exactness
