"""Experiment F8–F10 — paper Figures 8/9/10: model checking the AFS-1 client.

Paper reference values: all 6 specs true, 330 BDD nodes allocated,
34 + 7 transition nodes.
"""

from repro.casestudies.afs1 import check_client_figure


def test_fig10_afs1_client_output(benchmark):
    report = benchmark(check_client_figure)
    print()
    print(report.format())
    assert report.all_true
    assert len(report.results) == 6
    assert 100 < report.bdd_nodes_allocated < 4000
