"""repro — compositional CTL model checking.

A production-quality reproduction of *An Approach to Compositional Model
Checking* (Hector Andrade and Beverly Sanders, TR-02-006, University of
Florida, 2002): interleaving system composition, fair CTL, explicit and
symbolic (BDD) model checkers, an SMV-subset front end, the paper's
universal/existential/guarantees property theory (Rules 1–5, Lemmas 1–11)
as a machine-checked proof engine, and the AFS-1/AFS-2 cache-coherence
case studies.

Quickstart
----------
>>> from repro import System, compose, ExplicitChecker, parse_ctl
>>> m = System.from_pairs({"x"}, [((), ("x",))])
>>> n = System.from_pairs({"y"}, [((), ("y",))])
>>> bool(ExplicitChecker(compose(m, n)).holds(parse_ctl("!x -> EX x")))
True
"""

from repro.checking import (
    CheckResult,
    CheckStats,
    ExplicitChecker,
    SymbolicChecker,
)
from repro.logic import (
    UNRESTRICTED,
    Formula,
    Restriction,
    atom,
    land,
    lor,
    parse_ctl,
)
from repro.systems import (
    Encoding,
    FiniteVar,
    SymbolicSystem,
    System,
    compose,
    compose_all,
    expand,
    identity_system,
    symbolic_compose,
    symbolic_expand,
)

__version__ = "1.0.0"

__all__ = [
    "System",
    "identity_system",
    "compose",
    "compose_all",
    "expand",
    "SymbolicSystem",
    "symbolic_compose",
    "symbolic_expand",
    "Encoding",
    "FiniteVar",
    "Formula",
    "atom",
    "land",
    "lor",
    "parse_ctl",
    "Restriction",
    "UNRESTRICTED",
    "ExplicitChecker",
    "SymbolicChecker",
    "CheckResult",
    "CheckStats",
    "__version__",
]
