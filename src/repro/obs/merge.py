"""Stitching worker span trees into the parent process's trace.

The parallel engine's workers record their own span trees (on their own
``perf_counter`` clocks) and ship them to the parent as the JSONL record
layout of :func:`repro.obs.export.to_jsonl_records`.
:func:`graft_records` rebuilds :class:`~repro.obs.tracer.Span` objects
from those records, tags every span with the worker ``pid``, rebases the
timestamps onto the parent tracer's clock (via the wall-clock origin the
worker reported), and links the rebuilt roots under the parent's current
open span — so one merged trace shows the scheduler's fan-out with each
worker on its own track (:func:`repro.obs.export.to_chrome_trace` maps
the ``pid`` attribute to the Chrome trace-event process id).
"""

from __future__ import annotations

from repro.obs.tracer import Span, Tracer

__all__ = ["graft_records", "rebase_records"]


def rebase_records(
    tracer: Tracer, records: list[dict], wall_origin: float
) -> float:
    """The parent perf-counter time corresponding to the records' origin.

    Worker record ``start_us`` offsets are relative to the worker's
    earliest root span, whose wall-clock time the worker reports as
    ``wall_origin``; the tracer pairs its own perf origin with a wall
    epoch at reset, giving a common axis.  Clock skew between processes
    on one host is far below span durations of interest.
    """
    if not wall_origin:
        return tracer.start_time
    return tracer.epoch_perf + (wall_origin - tracer.epoch_wall)


def graft_records(
    tracer: Tracer,
    records: list[dict],
    pid: int | None = None,
    wall_origin: float = 0.0,
    trace_id: str = "",
    attrs: dict | None = None,
) -> list[Span]:
    """Rebuild spans from JSONL records and attach them to ``tracer``.

    Returns the grafted root spans (empty list for empty records).  The
    roots are linked under the tracer's innermost open span when one
    exists, otherwise appended to the tracer's root list; linking only
    happens while the tracer is enabled, mirroring live span recording.

    ``trace_id`` stamps every grafted span with the request's trace
    identity (spans already carrying a ``trace_id`` attribute keep it) —
    the parent-side half of cross-process trace propagation: workers
    that received a :class:`~repro.obs.tracer.TraceContext` stamp their
    own spans, and this covers records from workers that did not.
    ``attrs`` stamps arbitrary extra attributes the same way (existing
    values win) — the router uses it to mark every span of a shard's
    subtree with ``shard="host:port"`` while stitching a cluster trace.

    Record ``id`` fields only need to be unique *within* one ``records``
    list; every call rebuilds its own id table, so span trees shipped by
    different workers (which all number their spans from 0) graft into
    one tracer without colliding.
    """
    if not records:
        return []
    base = rebase_records(tracer, records, wall_origin)
    by_id: dict[int, Span] = {}
    roots: list[Span] = []
    for record in records:
        span_attrs = dict(record.get("attrs", ()))
        if pid is not None:
            span_attrs["pid"] = pid
        if trace_id and "trace_id" not in span_attrs:
            span_attrs["trace_id"] = trace_id
        for name, value in (attrs or {}).items():
            span_attrs.setdefault(name, value)
        span = Span(
            tracer, record["name"], record.get("cat", ""), span_attrs
        )
        span.start = base + record["start_us"] / 1e6
        span.end = span.start + record["dur_us"] / 1e6
        span.recorded = True
        for counter, value in record.get("counters", {}).items():
            span.counters[counter] = value
        by_id[record["id"]] = span
        parent = record.get("parent")
        if parent is None:
            roots.append(span)
        else:
            by_id[parent].children.append(span)
    if tracer.enabled:
        current = tracer.current()
        if current is not None:
            current.children.extend(roots)
        else:
            tracer.roots.extend(roots)
    return roots
