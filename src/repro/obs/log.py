"""Structured, leveled JSONL event log with context binding and redaction.

Spans (:mod:`repro.obs.tracer`) answer *how long* each stage of a
request took; the event log answers *what happened*: one JSON object
per line, machine-readable, safe to tail in production.  Three design
points:

* **per-request context binding** — :meth:`EventLog.bind` pushes fields
  (``trace_id``, ``job_id``) onto a :mod:`contextvars` context, so every
  event emitted inside the block carries them without each call site
  threading identifiers around.  Context variables isolate bindings per
  thread, which is what the serving stack needs: HTTP handler threads
  and the job runner thread each bind their own request.
* **secret-free redaction** — submitted SMV module text is user data and
  never appears in the log: any field named like model source
  (:data:`REDACTED_FIELDS`) is replaced by its digest via
  :func:`source_digest` before serialization, so an event log can be
  shipped to a log aggregator or attached to a CI run without leaking
  the models being checked.
* **leveled and cheap when off** — events below the configured level
  (or with no sink configured, the default) cost one integer compare.

Record shape::

    {"ts": 1754380800.123, "level": "info", "event": "job.done",
     "trace_id": "9f...", "job_id": "ab12...", "checks": 2, ...}

The module-level :data:`LOG` is the process-wide default the serving
stack emits to; :func:`configure_log` points it at a file (``repro
serve --log-file``).  ``repro obs tail`` and ``repro obs summary``
render a written log back for humans (:func:`read_events`,
:func:`format_event`).
"""

from __future__ import annotations

import contextvars
import hashlib
import io
import json
import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager
from pathlib import Path

__all__ = [
    "LEVELS",
    "REDACTED_FIELDS",
    "EventLog",
    "LOG",
    "configure_log",
    "source_digest",
    "redact_fields",
    "read_events",
    "format_event",
]

#: Level name → numeric severity (stdlib ``logging`` scale).
LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

#: Field names whose values are model text, never logged verbatim.
REDACTED_FIELDS = frozenset({"source", "smv", "smv_source", "module_text"})

#: Per-context bound fields (trace_id, job_id, ...).
_BOUND: contextvars.ContextVar[dict] = contextvars.ContextVar(
    "repro_log_bound", default={}
)


def source_digest(text: str) -> str:
    """A compact, non-reversible stand-in for module text.

    >>> source_digest("MODULE main")
    'sha256:21ae1704/11B'
    """
    digest = hashlib.sha256(text.encode()).hexdigest()[:8]
    return f"sha256:{digest}/{len(text.encode())}B"


def redact_fields(fields: dict) -> dict:
    """A copy of ``fields`` with model-text values replaced by digests."""
    out = {}
    for key, value in fields.items():
        if key in REDACTED_FIELDS and isinstance(value, str):
            out[key] = source_digest(value)
        else:
            out[key] = value
    return out


class EventLog:
    """A leveled JSONL event sink; disabled until given somewhere to write.

    Parameters
    ----------
    stream:
        Writable text stream (tests pass ``io.StringIO``); mutually
        exclusive with ``path``.
    path:
        File to append JSONL records to (opened lazily, line-buffered).
    level:
        Minimum level recorded (``"debug"``/``"info"``/``"warning"``/
        ``"error"``).
    clock:
        Wall-clock source for the ``ts`` field (injectable for tests).
    max_bytes:
        Size cap for a ``path``-backed log (``repro serve
        --log-max-bytes``): when writing a record would push the file
        past the cap, the file rotates to ``<path>.1`` (replacing any
        previous rollover) and a fresh file starts — a long-lived
        serve process keeps at most two generations on disk instead of
        one unbounded file.  ``None`` (the default) never rotates.
    """

    def __init__(
        self,
        stream: io.TextIOBase | None = None,
        path: str | Path | None = None,
        level: str = "info",
        clock=time.time,
        max_bytes: int | None = None,
    ):
        if stream is not None and path is not None:
            raise ValueError("pass either stream or path, not both")
        self._stream = stream
        self._path = Path(path) if path is not None else None
        self._clock = clock
        self._lock = threading.Lock()
        self._max_bytes = max_bytes
        self._written = 0
        self.set_level(level)

    # -- configuration ---------------------------------------------------
    def set_level(self, level: str) -> None:
        if level not in LEVELS:
            raise ValueError(
                f"unknown log level {level!r} (one of {sorted(LEVELS)})"
            )
        self.level = level
        self._threshold = LEVELS[level]

    @property
    def enabled(self) -> bool:
        """True when the log has somewhere to write."""
        return self._stream is not None or self._path is not None

    def close(self) -> None:
        """Detach the sink (flushes and closes an owned file)."""
        with self._lock:
            if self._path is not None and self._stream is not None:
                self._stream.close()
            self._stream = None
            self._path = None

    # -- context binding -------------------------------------------------
    @contextmanager
    def bind(self, **fields) -> Iterator[None]:
        """Attach ``fields`` to every event emitted inside the block.

        Bindings nest (inner blocks extend outer ones) and are isolated
        per thread / asyncio task via :mod:`contextvars`.
        """
        token = _BOUND.set({**_BOUND.get(), **fields})
        try:
            yield
        finally:
            _BOUND.reset(token)

    @staticmethod
    def bound() -> dict:
        """The currently bound fields (empty when nothing is bound)."""
        return dict(_BOUND.get())

    # -- emission --------------------------------------------------------
    def event(self, name: str, level: str = "info", **fields) -> None:
        """Emit one event; a no-op below the threshold or with no sink."""
        severity = LEVELS.get(level)
        if severity is None:
            raise ValueError(f"unknown log level {level!r}")
        if severity < self._threshold or not self.enabled:
            return
        record = {"ts": self._clock(), "level": level, "event": name}
        record.update(_BOUND.get())
        record.update(redact_fields(fields))
        line = json.dumps(record, default=str)
        with self._lock:
            stream = self._ensure_stream()
            if stream is not None:
                size = len(line.encode()) + 1
                if (
                    self._max_bytes is not None
                    and self._path is not None
                    and self._written  # never rotate an empty file
                    and self._written + size > self._max_bytes
                ):
                    self._rotate()
                    stream = self._ensure_stream()
                stream.write(line + "\n")
                stream.flush()
                self._written += size

    def debug(self, name: str, **fields) -> None:
        self.event(name, level="debug", **fields)

    def warning(self, name: str, **fields) -> None:
        self.event(name, level="warning", **fields)

    def error(self, name: str, **fields) -> None:
        self.event(name, level="error", **fields)

    def _ensure_stream(self):
        if self._stream is None and self._path is not None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = self._path.open("a")
            self._written = (
                self._path.stat().st_size if self._path.exists() else 0
            )
        return self._stream

    def _rotate(self) -> None:
        """Roll the current file to ``<path>.1`` (caller holds the lock)."""
        assert self._path is not None and self._stream is not None
        self._stream.close()
        self._stream = None
        self._path.replace(self._path.with_name(self._path.name + ".1"))
        self._written = 0


#: Process-wide default event log; disabled (no sink) at import time.
LOG = EventLog()


def configure_log(
    path: str | Path | None = None,
    level: str = "info",
    stream: io.TextIOBase | None = None,
    max_bytes: int | None = None,
) -> EventLog:
    """Point the global :data:`LOG` at a file (or stream) and level.

    ``max_bytes`` caps a file-backed log's size; see
    :class:`EventLog`.
    """
    LOG.close()
    LOG._path = Path(path) if path is not None else None
    LOG._stream = stream
    LOG._max_bytes = max_bytes
    LOG._written = 0
    LOG.set_level(level)
    return LOG


# ----------------------------------------------------------------------
# reading a written log back (repro obs tail / summary)
# ----------------------------------------------------------------------
def read_events(path: str | Path) -> list[dict]:
    """Parse a JSONL event log; unparseable lines are skipped."""
    events = []
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                events.append(record)
    return events


def format_event(record: dict) -> str:
    """One human-readable line for an event record (``repro obs tail``).

    >>> format_event({"ts": 0.0, "level": "info", "event": "job.done",
    ...               "job_id": "ab", "seconds": 0.25})
    '1970-01-01T00:00:00Z INFO  job.done job_id=ab seconds=0.25'
    """
    ts = record.get("ts", 0.0)
    stamp = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(ts))
    level = str(record.get("level", "info")).upper()
    rest = " ".join(
        f"{key}={_compact(value)}"
        for key, value in record.items()
        if key not in ("ts", "level", "event")
    )
    line = f"{stamp} {level:<5} {record.get('event', '?')}"
    return f"{line} {rest}" if rest else line


def _compact(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, (dict, list)):
        return json.dumps(value, separators=(",", ":"))
    return str(value)
