"""Trace exporters: JSONL span records and Chrome trace-event JSON.

Two formats, both derived from the same span trees:

* **JSONL** (:func:`to_jsonl_records` / :func:`write_jsonl`) — one JSON
  object per span with explicit ``id``/``parent`` links, microsecond
  start offsets and durations, depth, counters and attributes.  Easy to
  post-process with ``jq`` or pandas; round-trips through
  :func:`read_jsonl`.
* **Chrome trace-event** (:func:`to_chrome_trace` /
  :func:`write_chrome_trace`) — the ``chrome://tracing`` /
  `Perfetto <https://ui.perfetto.dev>`_ flavor: one complete (``"ph":
  "X"``) event per span with microsecond ``ts``/``dur``, category and
  ``args``.  Load the written file directly in the browser to see the
  check's flame graph.

Timestamps are offsets (µs) from the trace's earliest root span, so
they are small, monotonic within a parent, and independent of the
process's wall-clock epoch (which is still recorded in the Chrome
export's ``otherData.epoch_wall``).

:func:`to_prometheus_text` is the third exporter, for metrics rather
than spans: it renders one or more
:class:`~repro.obs.metrics.MetricsRegistry` instances in the Prometheus
text exposition format (the serving layer's ``/metrics`` endpoint).
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from repro.obs.tracer import Span, Tracer

__all__ = [
    "to_jsonl_records",
    "write_jsonl",
    "read_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "to_prometheus_text",
]


def _us(seconds: float) -> float:
    return round(seconds * 1e6, 3)


def to_jsonl_records(tracer: Tracer) -> list[dict]:
    """Flatten the tracer's span trees into JSONL-ready dicts.

    Records appear in pre-order; ``id`` is the record's index, ``parent``
    the parent's ``id`` (``None`` for roots), so the tree structure
    survives the flattening.
    """
    origin = tracer.start_time
    records: list[dict] = []

    def emit(span: Span, parent: int | None, depth: int) -> None:
        record = {
            "id": len(records),
            "parent": parent,
            "depth": depth,
            "name": span.name,
            "cat": span.category,
            "start_us": _us(span.start - origin),
            "dur_us": _us(span.duration),
        }
        if span.attrs:
            record["attrs"] = {k: str(v) for k, v in span.attrs.items()}
        if span.counters:
            record["counters"] = dict(span.counters)
        records.append(record)
        my_id = record["id"]
        for child in span.children:
            emit(child, my_id, depth + 1)

    for root in tracer.roots:
        emit(root, None, 0)
    return records


def write_jsonl(path: str | Path, tracer: Tracer) -> Path:
    """Write one JSON object per span to ``path``; returns the path."""
    path = Path(path)
    with path.open("w") as handle:
        for record in to_jsonl_records(tracer):
            handle.write(json.dumps(record) + "\n")
    return path


def read_jsonl(path: str | Path) -> list[dict]:
    """Parse a JSONL trace back into its list of span records."""
    records = []
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def to_chrome_trace(tracer: Tracer, pid: int = 1, tid: int = 1) -> dict:
    """The tracer's spans as a Chrome trace-event JSON document.

    The JSON-object flavor (``{"traceEvents": [...]}``) is used so
    metadata can ride along; ``chrome://tracing`` and Perfetto accept
    it directly.  Spans grafted from worker processes by
    :func:`repro.obs.merge.graft_records` carry a ``pid`` attribute;
    those are emitted under that process id (with its own
    ``process_name`` metadata track) so a merged parallel trace shows
    each worker on a separate row.
    """
    origin = tracer.start_time
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": "repro"},
        }
    ]
    named_pids = {pid}
    for span in tracer.spans():
        args: dict = {k: str(v) for k, v in span.attrs.items()}
        for counter, value in span.counters.items():
            args[counter] = value
        span_pid = span.attrs.get("pid", pid)
        try:
            span_pid = int(span_pid)
        except (TypeError, ValueError):
            span_pid = pid
        if span_pid not in named_pids:
            named_pids.add(span_pid)
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": span_pid,
                    "tid": tid,
                    "args": {"name": f"repro worker {span_pid}"},
                }
            )
        events.append(
            {
                "name": span.name,
                "cat": span.category or "span",
                "ph": "X",
                "ts": _us(span.start - origin),
                "dur": _us(span.duration),
                "pid": span_pid,
                "tid": tid,
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"epoch_wall": tracer.epoch_wall},
    }


def write_chrome_trace(path: str | Path, tracer: Tracer) -> Path:
    """Write a ``chrome://tracing``-loadable JSON file; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(tracer), indent=1) + "\n")
    return path


_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prometheus_name(name: str, prefix: str) -> str:
    """A metric name as a legal Prometheus identifier, prefixed."""
    sanitized = _PROM_NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"{prefix}_{sanitized}" if prefix else sanitized


def _prom_number(value: float) -> str:
    return f"{value:g}" if value != int(value) else f"{int(value)}"


def to_prometheus_text(*registries, prefix: str = "repro") -> str:
    """Render metrics registries in the Prometheus text exposition format.

    Each scalar metric becomes one ``# TYPE <name> gauge`` declaration
    plus a sample line; dots and other non-identifier characters in
    metric names map to underscores (``store.hits`` →
    ``repro_store_hits``).  Later registries win on (sanitized-)name
    collisions.  Registry histograms (duck-typed via a ``histograms``
    mapping attribute) render as proper ``histogram`` families with
    cumulative ``_bucket{le="..."}`` series, the mandatory ``le="+Inf"``
    bucket, and ``_sum``/``_count`` samples.  The output ends with a
    newline, as scrapers expect::

        # TYPE repro_store_hits gauge
        repro_store_hits 12
        # TYPE repro_request_duration_seconds histogram
        repro_request_duration_seconds_bucket{le="0.001"} 3
        repro_request_duration_seconds_bucket{le="+Inf"} 4
        repro_request_duration_seconds_sum 0.57
        repro_request_duration_seconds_count 4
    """
    values: dict[str, float] = {}
    hists: dict[str, object] = {}
    for registry in registries:
        for name, value in registry.as_dict().items():
            values[_prometheus_name(name, prefix)] = value
        for name, hist in getattr(registry, "histograms", {}).items():
            hists[_prometheus_name(name, prefix)] = hist
    lines = []
    for name in sorted(values):
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_prom_number(values[name])}")
    for name in sorted(hists):
        hist = hists[name]
        lines.append(f"# TYPE {name} histogram")
        for bound, running in zip(hist.bounds, hist.cumulative()):
            lines.append(
                f'{name}_bucket{{le="{_prom_number(bound)}"}} {running}'
            )
        lines.append(f'{name}_bucket{{le="+Inf"}} {hist.count}')
        lines.append(f"{name}_sum {_prom_number(hist.sum)}")
        lines.append(f"{name}_count {hist.count}")
    return "\n".join(lines) + "\n"
