"""Observability: span tracing, metrics, histograms, event log, exporters.

The library's single timing mechanism.  Every instrumented layer — the
SMV front end, both model checkers, the BDD manager's relational
product, and the compositional proof calculus — opens spans on the
process-wide :data:`~repro.obs.tracer.TRACER`; when it is disabled (the
default) hot paths pay one attribute check and nothing is recorded,
while top-level call sites still derive ``CheckStats.user_time`` from
their (unrecorded) spans.

Typical use::

    from repro.obs import tracing
    from repro.obs.export import write_chrome_trace
    from repro.obs.profile import format_profile
    from repro.smv.run import check_source

    with tracing() as tracer:
        report = check_source(source)
    write_chrome_trace("out.json", tracer)   # load in chrome://tracing
    print(format_profile(tracer))            # inclusive/exclusive table

The CLI exposes the same workflow as ``repro check model.smv
--trace out.json --profile``.
"""

from repro.obs.tracer import (
    TRACER,
    Span,
    TraceContext,
    Tracer,
    disable_tracing,
    enable_tracing,
    tracing,
)
from repro.obs.hist import Histogram
from repro.obs.log import LOG, EventLog, configure_log
from repro.obs.merge import graft_records
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import (
    PROGRESS,
    ProgressBus,
    ProgressConfig,
    ProgressEmitter,
    ProgressPrinter,
)
from repro.obs.promtext import (
    Federation,
    MetricFamily,
    Sample,
    federate_scrapes,
    parse_prometheus_text,
    render_prometheus_text,
)

__all__ = [
    "Federation",
    "MetricFamily",
    "Sample",
    "federate_scrapes",
    "parse_prometheus_text",
    "render_prometheus_text",
    "Span",
    "TraceContext",
    "Tracer",
    "TRACER",
    "EventLog",
    "LOG",
    "Histogram",
    "MetricsRegistry",
    "PROGRESS",
    "ProgressBus",
    "ProgressConfig",
    "ProgressEmitter",
    "ProgressPrinter",
    "configure_log",
    "enable_tracing",
    "disable_tracing",
    "graft_records",
    "tracing",
]
