"""Human-readable profiles of a recorded trace.

:func:`format_profile` renders what ``--profile`` prints: the span
*tree* (inclusive wall time per span, so the root line is the run's
``user_time``) followed by a *table* aggregated by span name with
inclusive/exclusive totals and call counts, sorted by inclusive time.

Inclusive time per name counts only *outermost* spans of that name
(recursive spans — e.g. nested ``eval.*`` frames — are not double
counted); exclusive time sums every frame's self time, so the exclusive
column always adds up to the total traced time.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.obs.hist import Histogram
from repro.obs.tracer import Span, Tracer

__all__ = [
    "format_profile",
    "format_span_tree",
    "format_profile_table",
    "format_latency_table",
]

#: Tree rows whose inclusive share of the root is below this fraction
#: are elided (with a summary line) to keep deep traces readable.
_TREE_CUTOFF = 0.001


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:.3f}"


def format_span_tree(
    tracer: Tracer, max_depth: int | None = None
) -> str:
    """The span tree with inclusive times, one indented line per span."""
    lines: list[str] = []
    total = sum(root.duration for root in tracer.roots) or 1.0

    def render(span: Span, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        label = span.name
        detail = next(iter(span.attrs.values()), None)
        if detail is not None:
            text = str(detail)
            label += f" [{text[:40]}{'…' if len(text) > 40 else ''}]"
        lines.append(
            f"{'  ' * depth}{label:<{max(46 - 2 * depth, 10)}} "
            f"{_ms(span.duration):>10} ms"
        )
        visible = [c for c in span.children if c.duration / total >= _TREE_CUTOFF]
        hidden = len(span.children) - len(visible)
        for child in visible:
            render(child, depth + 1)
        if hidden:
            elided = sum(
                c.duration
                for c in span.children
                if c.duration / total < _TREE_CUTOFF
            )
            lines.append(
                f"{'  ' * (depth + 1)}… {hidden} spans below "
                f"{100 * _TREE_CUTOFF:g}% elided ({_ms(elided)} ms)"
            )

    for root in tracer.roots:
        render(root, 0)
    return "\n".join(lines)


def format_profile_table(tracer: Tracer) -> str:
    """Per-name aggregate: calls, inclusive/exclusive ms, inclusive %."""
    inclusive: dict[str, float] = {}
    exclusive: dict[str, float] = {}
    calls: dict[str, int] = {}

    def visit(span: Span, active: frozenset[str]) -> None:
        calls[span.name] = calls.get(span.name, 0) + 1
        exclusive[span.name] = exclusive.get(span.name, 0.0) + span.exclusive
        if span.name not in active:  # outermost frame of this name only
            inclusive[span.name] = inclusive.get(span.name, 0.0) + span.duration
        inner = active | {span.name}
        for child in span.children:
            visit(child, inner)

    for root in tracer.roots:
        visit(root, frozenset())
    total = sum(root.duration for root in tracer.roots) or 1.0
    header = (
        f"{'span':<34} {'calls':>7} {'incl ms':>10} {'excl ms':>10} {'incl %':>7}"
    )
    lines = [header, "-" * len(header)]
    for name in sorted(inclusive, key=lambda n: -inclusive[n]):
        lines.append(
            f"{name[:34]:<34} {calls[name]:>7} {_ms(inclusive[name]):>10} "
            f"{_ms(exclusive[name]):>10} {100 * inclusive[name] / total:>6.1f}%"
        )
    return "\n".join(lines)


def format_latency_table(hists: Mapping[str, Histogram]) -> str:
    """Percentile table for named latency histograms (ms columns).

    Renders what ``repro obs summary`` prints and what operators read
    off a registry's histograms: per metric the observation count, the
    mean, and the p50/p90/p99 estimates (see
    :meth:`repro.obs.hist.Histogram.quantile`), sorted by p99 so the
    slowest tail tops the table.
    """
    header = (
        f"{'histogram':<38} {'count':>7} {'mean ms':>10} "
        f"{'p50 ms':>10} {'p90 ms':>10} {'p99 ms':>10}"
    )
    lines = [header, "-" * len(header)]
    ranked = sorted(
        hists.items(), key=lambda item: -item[1].quantile(0.99)
    )
    for name, hist in ranked:
        mean = hist.sum / hist.count if hist.count else 0.0
        pct = hist.percentiles()
        lines.append(
            f"{name[:38]:<38} {hist.count:>7} {_ms(mean):>10} "
            f"{_ms(pct['p50']):>10} {_ms(pct['p90']):>10} "
            f"{_ms(pct['p99']):>10}"
        )
    return "\n".join(lines)


def format_profile(tracer: Tracer, max_depth: int | None = None) -> str:
    """The full ``--profile`` report: span tree plus aggregate table."""
    if not tracer.roots:
        return "trace is empty (was tracing enabled?)"
    return (
        "span tree (inclusive wall time):\n"
        + format_span_tree(tracer, max_depth=max_depth)
        + "\n\nby span name (sorted by inclusive time):\n"
        + format_profile_table(tracer)
    )
