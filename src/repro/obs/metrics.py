"""Metrics aggregation over span trees and engine counter deltas.

A :class:`MetricsRegistry` is a flat name → value accumulator with two
structured feeders: :meth:`MetricsRegistry.record_check_stats` folds a
:class:`repro.checking.result.CheckStats` in under a prefix, and
:meth:`MetricsRegistry.record_bdd_delta` does the same for a
:class:`repro.bdd.stats.BDDStats` delta (both are duck-typed so this
module stays dependency-free).  :meth:`MetricsRegistry.collect` walks a
tracer's span trees and aggregates every span's counters and durations
grouped by span name — the bridge between the tracing side (where
counters are *attached per span*) and reporting (where one table per
run is wanted).

Peaks (``peak_unique_nodes``, ``bdd_nodes_allocated``) are kept as
maxima; everything else is summed.  The same rule governs
:meth:`MetricsRegistry.merge`, which folds one registry into another —
the path worker registries take into the parent's, where summing a
per-worker peak would fabricate a memory high-water mark no process
ever reached.

Besides scalar counters a registry holds named
:class:`~repro.obs.hist.Histogram` latency distributions
(:meth:`MetricsRegistry.observe` / :meth:`MetricsRegistry.histogram`);
:func:`repro.obs.export.to_prometheus_text` renders them as
``_bucket``/``_sum``/``_count`` series.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.obs.hist import DEFAULT_BUCKETS, Histogram

__all__ = ["MetricsRegistry"]

#: Counter names aggregated with ``max`` instead of ``+`` — cumulative
#: manager-level quantities where summing per-span values double-counts.
_PEAK_SUFFIXES = ("peak_unique_nodes", "nodes_allocated", "transition_nodes")


def _is_peak(name: str) -> bool:
    return name.endswith(_PEAK_SUFFIXES)


class MetricsRegistry:
    """Named numeric metrics with sum/max aggregation semantics.

    >>> reg = MetricsRegistry()
    >>> reg.add("check.fixpoint_iterations", 3)
    >>> reg.add("check.fixpoint_iterations", 4)
    >>> reg.get("check.fixpoint_iterations")
    7.0
    """

    def __init__(self) -> None:
        self._values: dict[str, float] = {}
        self._hists: dict[str, Histogram] = {}

    # -- primitive accumulation -----------------------------------------
    def add(self, name: str, value: float = 1.0) -> None:
        """Accumulate ``value`` into ``name`` (max for peak metrics)."""
        if _is_peak(name):
            self._values[name] = max(self._values.get(name, 0.0), float(value))
        else:
            self._values[name] = self._values.get(name, 0.0) + float(value)

    def get(self, name: str, default: float = 0.0) -> float:
        return self._values.get(name, default)

    def __len__(self) -> int:
        return len(self._values)

    # -- histograms ------------------------------------------------------
    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        """The named histogram, created with ``bounds`` on first use."""
        hist = self._hists.get(name)
        if hist is None:
            hist = self._hists[name] = Histogram(bounds=bounds)
        return hist

    def observe(
        self,
        name: str,
        value: float,
        bounds: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        """Record one observation into the named histogram."""
        self.histogram(name, bounds=bounds).observe(value)

    @property
    def histograms(self) -> dict[str, Histogram]:
        """Snapshot of the named histograms, sorted by name."""
        return dict(sorted(self._hists.items()))

    # -- registry merging ------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry in; returns ``self``.

        Scalars go through :meth:`add`, so peak metrics aggregate as
        ``max`` across registries (a per-worker high-water mark summed
        over workers would be meaningless) while everything else sums.
        Histograms merge bucket-by-bucket; a histogram that exists on
        both sides with *different* bucket bounds raises ``ValueError``
        naming the metric — mis-summing across mismatched buckets
        would silently corrupt every federated latency series built on
        top of this merge.
        """
        for name, value in other._values.items():
            self.add(name, value)
        for name, hist in other._hists.items():
            try:
                self.histogram(name, bounds=hist.bounds).merge(hist)
            except ValueError as exc:
                raise ValueError(f"metric {name!r}: {exc}") from None
        return self

    # -- structured feeders ---------------------------------------------
    def record_check_stats(self, stats, prefix: str = "check") -> None:
        """Fold a ``CheckStats``-shaped object in under ``prefix``.

        Reads the public counter fields by name (duck-typed), so any
        object with the same attributes works.
        """
        for field in (
            "user_time",
            "fixpoint_iterations",
            "subformulas_evaluated",
            "bdd_nodes_allocated",
            "transition_nodes",
            "bdd_cache_lookups",
            "bdd_cache_hits",
            "bdd_mk_calls",
            "bdd_peak_unique_nodes",
            "reorders",
            "reorder_swaps",
            "reorder_nodes_before",
            "reorder_nodes_after",
        ):
            value = getattr(stats, field, 0)
            if value:
                self.add(f"{prefix}.{field}", value)

    def record_bdd_delta(self, delta, prefix: str = "bdd") -> None:
        """Fold a ``BDDStats`` delta in under ``prefix`` (per-op too).

        Accepts the live dataclass or its plain-dict serialization (the
        shape worker processes ship across the pool boundary:
        ``{"mk_calls": ..., "peak_unique_nodes": ..., "ops": {name:
        {"lookups": ..., "hits": ..., "inserts": ...}}}``).
        """
        if isinstance(delta, dict):
            self.add(f"{prefix}.mk_calls", delta.get("mk_calls", 0))
            self.add(
                f"{prefix}.peak_unique_nodes",
                delta.get("peak_unique_nodes", 0),
            )
            for name in ("reorders", "swaps"):
                if delta.get(name):
                    self.add(f"{prefix}.{name}", delta[name])
            for op_name, counter in delta.get("ops", {}).items():
                if counter.get("lookups") or counter.get("inserts"):
                    self.add(f"{prefix}.{op_name}.lookups", counter["lookups"])
                    self.add(f"{prefix}.{op_name}.hits", counter["hits"])
                    self.add(f"{prefix}.{op_name}.inserts", counter["inserts"])
            return
        self.add(f"{prefix}.mk_calls", getattr(delta, "mk_calls", 0))
        self.add(
            f"{prefix}.peak_unique_nodes",
            getattr(delta, "peak_unique_nodes", 0),
        )
        for name in ("reorders", "swaps"):
            value = getattr(delta, name, 0)
            if value:
                self.add(f"{prefix}.{name}", value)
        for op_name, counter in getattr(delta, "ops", {}).items():
            if counter.lookups or counter.inserts:
                self.add(f"{prefix}.{op_name}.lookups", counter.lookups)
                self.add(f"{prefix}.{op_name}.hits", counter.hits)
                self.add(f"{prefix}.{op_name}.inserts", counter.inserts)

    # -- span aggregation -----------------------------------------------
    def collect(self, spans: Iterable) -> "MetricsRegistry":
        """Aggregate spans (e.g. ``tracer.spans()``) into this registry.

        Per span name: ``<name>.calls``, ``<name>.seconds`` (inclusive)
        and ``<name>.self_seconds`` (exclusive), plus every attached
        span counter under ``<name>.<counter>``.  Returns ``self``.
        """
        for span in spans:
            self.add(f"{span.name}.calls", 1)
            self.add(f"{span.name}.seconds", span.duration)
            self.add(f"{span.name}.self_seconds", span.exclusive)
            for counter, value in span.counters.items():
                self.add(f"{span.name}.{counter}", value)
        return self

    # -- reporting ------------------------------------------------------
    def as_dict(self) -> dict[str, float]:
        """Snapshot of every metric, sorted by name."""
        return dict(sorted(self._values.items()))

    def format(self) -> str:
        """One ``name = value`` line per metric, sorted by name."""
        lines = []
        for name, value in sorted(self._values.items()):
            shown = f"{value:g}" if value != int(value) else f"{int(value)}"
            lines.append(f"{name} = {shown}")
        return "\n".join(lines)
