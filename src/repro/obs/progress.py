"""Live progress events from inside running checks.

Spans (:mod:`repro.obs.tracer`) reconstruct *what happened* after a run
finishes; progress events answer *what is happening now*: a wedged
fixpoint, a runaway reorder, or an obligation quietly waiting in a
queue are indistinguishable from normal work without a heartbeat.  The
module has three pieces:

* :data:`PROGRESS` — a process-wide :class:`ProgressEmitter` the
  engines tick from their inner fixpoint loops.  It follows the same
  discipline as :data:`~repro.obs.tracer.TRACER`: disabled by default,
  every hot-path call site is guarded by ``if PROGRESS.enabled and
  PROGRESS.due():`` so a traced-off run pays one attribute check plus
  one clock read per iteration and nothing else.  ``due()`` is a
  *time* throttle (default one tick per 50 ms, first tick immediate),
  so per-iteration event volume — and the frontier/node-size
  computation behind each tick — is bounded by wall time, not by how
  hot the loop is.
* :class:`ProgressBus` — a thread-safe, bounded, sequence-stamped event
  buffer on the consumer side.  The serving layer keeps one per job:
  ``publish`` stamps ``seq``/``ts``, ``wait`` blocks until events past
  a sequence number arrive (the long-poll/SSE primitive), and
  ``events_since`` replays the retained window for ``Last-Event-ID``
  resume.
* :class:`ProgressConfig` — the parent-side handle
  :func:`~repro.store.cached.cached_check` threads through the check
  path: where to publish, the routing key for pool workers, the
  per-obligation name prefix and the tick interval.

Event shape (one dict per event; ``seq``/``ts`` added at the bus)::

    {"kind": "obligation.tick", "obligation": "c0.spec1", "phase": "eu",
     "iterations": 18, "size": 4211, "elapsed": 0.104, "pid": 71303}

Kinds: ``obligation.queued`` / ``obligation.start`` /
``obligation.tick`` / ``obligation.cache_hit`` / ``obligation.finish``
/ ``obligation.result``, ``reorder.start`` / ``reorder.finish``,
``obligation.stall`` (watchdog), and ``job.state`` (serving layer).

In worker processes the sink is a ``put_nowait`` onto a
multiprocessing queue created alongside the pool
(:mod:`repro.parallel.pool` drains it on a parent thread and routes by
``key``); in-process checks publish straight to the configured sink.
:class:`ProgressPrinter` renders the stream as one-line updates with
fixpoint tick rates (``repro check --progress``).
"""

from __future__ import annotations

import sys
import threading
import time
from collections import deque
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "PROGRESS",
    "DEFAULT_INTERVAL",
    "ProgressEmitter",
    "ProgressBus",
    "ProgressConfig",
    "ProgressPrinter",
    "format_progress_event",
]

#: Default minimum seconds between heartbeat ticks.
DEFAULT_INTERVAL = 0.05


class ProgressEmitter:
    """The process-wide switchboard the engines emit progress through.

    Disabled by default; :meth:`activate` (or the :meth:`active` context
    manager) installs a sink callable, a tick interval and a set of
    fields stamped on every event (obligation name, routing key, pid).
    The engine-side idiom keeps traced-off overhead inside the PR 2
    ±2% envelope::

        if PROGRESS.enabled and PROGRESS.due():
            PROGRESS.tick("eu", iterations=n, size=bdd.nodes_allocated)

    ``due()`` pays one monotonic-clock read and passes at most once per
    ``interval`` seconds (and immediately after activation), so the
    ``size`` argument — which may cost a frontier popcount — is only
    computed when a tick will actually be emitted.  Exactly one emitter
    (:data:`PROGRESS`) exists per process; worker processes activate it
    per work item, the in-process check path activates it per
    obligation.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic):
        self.enabled = False
        self._clock = clock
        self._sink: Callable[[dict], None] | None = None
        self._interval = DEFAULT_INTERVAL
        self._fields: dict = {}
        self._started = 0.0
        self._next_due = 0.0

    # -- lifecycle -------------------------------------------------------
    def activate(
        self,
        sink: Callable[[dict], None],
        *,
        interval: float = DEFAULT_INTERVAL,
        **fields,
    ) -> None:
        """Start emitting to ``sink``; ``fields`` ride on every event.

        Resets the throttle so the first :meth:`due` check passes —
        every obligation with at least one fixpoint iteration produces
        at least one heartbeat, however fast it finishes.
        """
        self._sink = sink
        self._interval = max(float(interval), 0.0)
        self._fields = dict(fields)
        self._started = self._clock()
        self._next_due = 0.0
        self.enabled = True

    def deactivate(self) -> None:
        """Stop emitting (idempotent)."""
        self.enabled = False
        self._sink = None
        self._fields = {}

    @contextmanager
    def active(
        self,
        sink: Callable[[dict], None],
        *,
        interval: float = DEFAULT_INTERVAL,
        **fields,
    ) -> Iterator["ProgressEmitter"]:
        """Scoped :meth:`activate` / :meth:`deactivate`."""
        self.activate(sink, interval=interval, **fields)
        try:
            yield self
        finally:
            self.deactivate()

    # -- emission --------------------------------------------------------
    def due(self) -> bool:
        """True at most once per interval: the hot-loop throttle gate."""
        now = self._clock()
        if now < self._next_due:
            return False
        self._next_due = now + self._interval
        return True

    def tick(self, phase: str, *, iterations: int = 0, size: int = 0) -> None:
        """Emit one ``obligation.tick`` heartbeat.

        ``phase`` names the fixpoint (``eu``/``eg``/``eg_fair``),
        ``iterations`` the checker's cumulative iteration count, and
        ``size`` the current working-set measure (BDD nodes allocated
        for the symbolic engine, frontier population for the explicit
        one).  ``elapsed`` seconds since activation are stamped on.
        """
        self.emit(
            "obligation.tick",
            phase=phase,
            iterations=int(iterations),
            size=int(size),
            elapsed=round(self._clock() - self._started, 6),
        )

    def emit(self, kind: str, **fields) -> None:
        """Emit one event of ``kind`` (no-op while disabled)."""
        sink = self._sink
        if not self.enabled or sink is None:
            return
        sink({"kind": kind, **self._fields, **fields})


#: Process-wide progress emitter; disabled until activated.
PROGRESS = ProgressEmitter()


class ProgressBus:
    """Thread-safe, bounded, sequence-stamped progress event buffer.

    One bus per job on the serving side: the drainer/runner threads
    :meth:`publish`, HTTP handler threads :meth:`wait` for events past
    the last sequence number they delivered (SSE and long-poll share
    this primitive), and :meth:`events_since` replays the retained
    window for ``Last-Event-ID`` resume.  The deque is bounded
    (``maxlen`` events): a slow consumer loses the oldest events, never
    blocks a producer.  :meth:`close` wakes every waiter for good —
    after the final drain a stream knows to send its ``end`` frame.
    """

    def __init__(self, maxlen: int = 4096, clock: Callable[[], float] = time.time):
        self._events: deque[dict] = deque(maxlen=maxlen)
        self._cond = threading.Condition()
        self._seq = 0
        self._clock = clock
        self.closed = False

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recently published event."""
        return self._seq

    def publish(self, event: dict) -> dict:
        """Stamp ``seq``/``ts`` onto ``event``, buffer it, wake waiters.

        Events published after :meth:`close` are dropped (returned
        unstamped): the stream has ended and consumers may already have
        seen its terminal frame.
        """
        with self._cond:
            if self.closed:
                return dict(event)
            self._seq += 1
            record = {"seq": self._seq, "ts": round(self._clock(), 6), **event}
            self._events.append(record)
            self._cond.notify_all()
            return record

    def close(self) -> None:
        """No more events will arrive; wakes all current/future waiters."""
        with self._cond:
            self.closed = True
            self._cond.notify_all()

    def events_since(self, seq: int = 0) -> list[dict]:
        """Retained events with sequence number > ``seq`` (no blocking)."""
        with self._cond:
            return [e for e in self._events if e["seq"] > seq]

    def wait(self, seq: int = 0, timeout: float | None = None) -> list[dict]:
        """Block until events past ``seq`` exist (or close / timeout).

        Returns the new events — empty on timeout and on a closed bus
        with nothing left to deliver.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                out = [e for e in self._events if e["seq"] > seq]
                if out or self.closed:
                    return out
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return []
                    self._cond.wait(remaining)
                else:
                    self._cond.wait()


@dataclass
class ProgressConfig:
    """Parent-side progress wiring for one :func:`cached_check` call.

    ``publish`` receives every event for this check (the serving layer
    passes its state-machine updater; the CLI passes a
    :class:`ProgressPrinter`).  ``key`` routes events drained from the
    worker-pool queue back to this consumer
    (:meth:`~repro.parallel.pool.ObligationScheduler.subscribe_progress`
    must be called with the same key).  ``prefix`` namespaces the
    per-spec obligation names (``c0.spec1`` for check 0 of a batch);
    ``interval`` is the heartbeat throttle in seconds.
    """

    publish: Callable[[dict], None]
    key: str = ""
    prefix: str = ""
    interval: float = DEFAULT_INTERVAL

    def obligation(self, index: int) -> str:
        """The namespaced obligation name for spec ``index``."""
        return f"{self.prefix}spec{index}"


# ----------------------------------------------------------------------
# rendering (repro check --progress / repro submit --progress)
# ----------------------------------------------------------------------
def format_progress_event(event: dict, rate: float | None = None) -> str:
    """One human-readable line for a progress event.

    >>> format_progress_event({"kind": "obligation.tick",
    ...     "obligation": "spec0", "phase": "eu", "iterations": 18,
    ...     "size": 4211, "elapsed": 0.104})
    'spec0 tick eu iter=18 size=4211 t=0.104s'
    """
    kind = str(event.get("kind", "?"))
    name = str(event.get("obligation") or event.get("job_id") or "-")
    if kind == "obligation.tick":
        line = (
            f"{name} tick {event.get('phase', '?')}"
            f" iter={event.get('iterations', 0)}"
            f" size={event.get('size', 0)}"
            f" t={event.get('elapsed', 0.0):g}s"
        )
        if rate is not None:
            line += f" ({rate:.0f} it/s)"
        return line
    if kind == "obligation.finish":
        return (
            f"{name} done holds={event.get('holds')}"
            f" in {event.get('seconds', 0.0):g}s"
        )
    if kind == "obligation.result":
        verdict = "true" if event.get("holds") else "false"
        return f"{name} result {verdict}"
    if kind == "obligation.cache_hit":
        return f"{name} cached"
    if kind == "obligation.queued":
        return f"{name} queued ({event.get('engine', '?')})"
    if kind == "obligation.start":
        pid = event.get("pid")
        return f"{name} running" + (f" on pid {pid}" if pid else "")
    if kind == "obligation.stall":
        return (
            f"{name} STALLED: no heartbeat for"
            f" {event.get('idle_seconds', 0.0):g}s"
            f" (deadline {event.get('deadline', 0.0):g}s)"
        )
    if kind.startswith("reorder."):
        return f"{name} {kind} nodes={event.get('nodes', '?')}"
    if kind == "job.state":
        return f"job {event.get('state', '?')}"
    rest = " ".join(
        f"{k}={v}"
        for k, v in event.items()
        if k not in ("kind", "obligation", "seq", "ts")
    )
    return f"{name} {kind} {rest}".rstrip()


class ProgressPrinter:
    """Render a progress stream as one line per event, with tick rates.

    Callable (``printer(event)``) so it plugs in anywhere a sink or
    ``publish`` is expected.  Tick rates are derived per obligation from
    consecutive ``obligation.tick`` events (Δiterations / Δelapsed).
    Thread-safe: the pool drainer thread and the submitting thread may
    both deliver events.
    """

    def __init__(self, stream=None):
        self._stream = stream if stream is not None else sys.stderr
        self._lock = threading.Lock()
        self._last_tick: dict[str, tuple[int, float]] = {}

    def __call__(self, event: dict) -> None:
        rate = None
        name = str(event.get("obligation", ""))
        with self._lock:
            if event.get("kind") == "obligation.tick" and name:
                iterations = int(event.get("iterations", 0))
                elapsed = float(event.get("elapsed", 0.0))
                previous = self._last_tick.get(name)
                self._last_tick[name] = (iterations, elapsed)
                if previous is not None and elapsed > previous[1]:
                    rate = (iterations - previous[0]) / (elapsed - previous[1])
            print(
                format_progress_event(event, rate=rate),
                file=self._stream,
                flush=True,
            )
