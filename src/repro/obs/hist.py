"""Fixed-bucket latency histograms with quantile estimation.

A :class:`Histogram` counts observations into a fixed, sorted set of
upper-bound buckets (Prometheus ``le`` semantics: bucket *i* counts
observations ``<= bounds[i]``, with an implicit ``+Inf`` bucket at the
end).  Fixed buckets keep the cost of :meth:`Histogram.observe` at one
:func:`bisect.bisect_left` plus two increments, make histograms from
different processes mergeable bucket-by-bucket (worker registries fold
into the parent's with :meth:`Histogram.merge`), and render directly as
Prometheus ``_bucket``/``_sum``/``_count`` series
(:func:`repro.obs.export.to_prometheus_text`).

Quantiles (:meth:`Histogram.quantile`, :meth:`Histogram.percentiles`)
are estimated by linear interpolation inside the bucket containing the
target rank — the same estimate ``histogram_quantile()`` computes in
PromQL, so the numbers ``repro obs summary`` prints match what a
dashboard over ``/metrics`` would show.

The default bounds span 100 µs to 60 s, sized for the serving stack's
request path (cache-served replays land in the sub-millisecond buckets,
cold fairness-constrained checks in the seconds range).
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Iterable, Sequence

__all__ = ["DEFAULT_BUCKETS", "Histogram"]

#: Default upper bounds in seconds (≤ semantics; ``+Inf`` is implicit).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005,
    0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0,
    10.0, 30.0, 60.0,
)


class Histogram:
    """Counts of observations in fixed ``le`` buckets, plus sum/count.

    >>> h = Histogram(bounds=(0.1, 1.0))
    >>> for v in (0.05, 0.2, 0.3, 5.0):
    ...     h.observe(v)
    >>> h.count, round(h.sum, 2)
    (4, 5.55)
    >>> h.cumulative()          # per finite bound; +Inf is `count`
    [1, 3]
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in bounds)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("bucket bounds must be sorted and distinct")
        self.bounds = bounds
        #: Per-bucket (non-cumulative) counts; index ``len(bounds)`` is
        #: the overflow (``+Inf``) bucket.
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    # -- recording -------------------------------------------------------
    def observe(self, value: float) -> None:
        """Count one observation (seconds, typically)."""
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold another histogram in bucket-by-bucket; returns ``self``.

        The bucket bounds must match — merged histograms come from the
        same metric recorded in different processes.
        """
        if other.bounds != self.bounds:
            def _describe(bounds: tuple[float, ...]) -> str:
                if len(bounds) <= 4:
                    inner = ", ".join(f"{b:g}" for b in bounds)
                else:
                    inner = (
                        f"{bounds[0]:g}, {bounds[1]:g}, ... {bounds[-1]:g}"
                    )
                return f"{len(bounds)} buckets [{inner}]"

            raise ValueError(
                f"cannot merge histograms with different bucket bounds: "
                f"{_describe(self.bounds)} vs {_describe(other.bounds)}"
            )
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.sum += other.sum
        self.count += other.count
        return self

    # -- reading ---------------------------------------------------------
    def cumulative(self) -> list[int]:
        """Cumulative counts per finite bound (Prometheus ``_bucket``)."""
        out, running = [], 0
        for n in self.counts[:-1]:
            running += n
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 < q <= 1``) of the data.

        Linear interpolation inside the target bucket, like PromQL's
        ``histogram_quantile()``: ranks in the overflow bucket clamp to
        the highest finite bound, and an empty histogram returns 0.0.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        running = 0
        for i, n in enumerate(self.counts[:-1]):
            if running + n >= rank and n:
                lower = self.bounds[i - 1] if i else 0.0
                upper = self.bounds[i]
                return lower + (upper - lower) * ((rank - running) / n)
            running += n
        return self.bounds[-1]

    def percentiles(self) -> dict[str, float]:
        """The ``p50``/``p90``/``p99`` estimates as a dict."""
        return {
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        hist = cls(bounds=data["bounds"])
        counts = [int(n) for n in data["counts"]]
        if len(counts) != len(hist.counts):
            raise ValueError("counts do not match bounds")
        hist.counts = counts
        hist.sum = float(data.get("sum", 0.0))
        hist.count = int(data.get("count", sum(counts)))
        return hist

    @classmethod
    def of(cls, values: Iterable[float], bounds: Sequence[float] = DEFAULT_BUCKETS) -> "Histogram":
        """A histogram over an iterable of observations (convenience)."""
        hist = cls(bounds=bounds)
        for value in values:
            hist.observe(value)
        return hist

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Histogram(count={self.count}, sum={self.sum:.6g}, "
            f"buckets={len(self.bounds)})"
        )
