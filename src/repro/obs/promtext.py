"""Prometheus text-format parsing, re-rendering and federation.

:func:`repro.obs.export.to_prometheus_text` renders a registry *out*;
this module is the inverse direction plus the cluster fold.  The router
scrapes every ring member's ``/metrics`` (plain Prometheus text over
the bounded fan-out), parses each document into
:class:`MetricFamily`/:class:`Sample` values with
:func:`parse_prometheus_text`, and :func:`federate_scrapes` merges the
documents across shards:

* plain counters and gauges **sum**;
* peak gauges (``*_peak_unique_nodes``, ``*_nodes_allocated``,
  ``*_transition_nodes`` — the same suffix rule
  :class:`~repro.obs.metrics.MetricsRegistry` applies) take the
  **max** — summing per-shard high-water marks would fabricate a
  number no process ever reached;
* histogram families merge **bucket-by-bucket** (``le`` label sets
  must agree; a shard whose buckets disagree is dropped from that
  family and counted as a scrape error);
* every per-shard sample is re-emitted verbatim with a
  ``shard="host:port"`` label, so dashboards can split any series by
  member;
* scrape/parse failures become the ``repro_cluster_scrape_errors``
  gauge instead of poisoning the rollup.

The parser/renderer pair is *lossless* over everything the serve layer
emits — ``to_prometheus_text(...)`` → :func:`parse_prometheus_text` →
:func:`render_prometheus_text` reproduces the input byte for byte for
gauge, counter and ``_bucket``/``_sum``/``_count`` histogram families
(including the labeled ``repro_build_info`` gauge with its ``# HELP``
line) — which is what lets the router re-serve a federated document in
the exact dialect its members speak.
"""

from __future__ import annotations

import math
import re
from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.obs.metrics import _PEAK_SUFFIXES

__all__ = [
    "MetricFamily",
    "Sample",
    "PromTextError",
    "parse_prometheus_text",
    "render_prometheus_text",
    "federate_scrapes",
    "Federation",
]


class PromTextError(ValueError):
    """A line the Prometheus text parser could not make sense of."""


_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
#: ``name{labels} value [timestamp]`` — the body between ``{`` and ``}``
#: is scanned separately so quoted commas/braces cannot confuse it.
_SAMPLE_RE = re.compile(
    rf"^({_NAME})(?:\{{(.*)\}})?\s+(\S+)(?:\s+(-?\d+))?\s*$"
)
_LABEL_RE = re.compile(rf'({_NAME})="((?:[^"\\]|\\.)*)"')


def _unescape(value: str) -> str:
    return (
        value.replace("\\\\", "\x00")
        .replace('\\"', '"')
        .replace("\\n", "\n")
        .replace("\x00", "\\")
    )


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _parse_value(token: str) -> float:
    if token in ("+Inf", "Inf"):
        return math.inf
    if token == "-Inf":
        return -math.inf
    try:
        return float(token)
    except ValueError:
        raise PromTextError(f"bad sample value {token!r}") from None


def _format_value(value: float) -> str:
    """Mirror ``export._prom_number``: ints bare, floats via ``%g``."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return f"{value:g}" if value != int(value) else f"{int(value)}"


@dataclass(frozen=True)
class Sample:
    """One sample line: a metric name, ordered labels and a value."""

    name: str
    labels: tuple[tuple[str, str], ...] = ()
    value: float = 0.0

    def label(self, name: str, default: str | None = None) -> str | None:
        for key, value in self.labels:
            if key == name:
                return value
        return default

    def with_label(self, name: str, value: str) -> "Sample":
        """A copy with ``name="value"`` appended to the label set."""
        return Sample(self.name, (*self.labels, (name, value)), self.value)


@dataclass
class MetricFamily:
    """One ``# TYPE`` block: the family name, type, help and samples.

    For histogram families the samples are the raw ``<name>_bucket`` /
    ``<name>_sum`` / ``<name>_count`` series in document order — the
    representation stays faithful to the text so re-rendering is exact.
    """

    name: str
    type: str = "untyped"
    help: str = ""
    samples: list[Sample] = field(default_factory=list)

    def buckets(self) -> list[tuple[str, float]]:
        """``(le, cumulative_count)`` pairs of a histogram family."""
        return [
            (sample.label("le", ""), sample.value)
            for sample in self.samples
            if sample.name == f"{self.name}_bucket"
        ]

    def scalar(self, suffix: str = "") -> float | None:
        """The value of the family's ``<name><suffix>`` sample, if any."""
        wanted = self.name + suffix
        for sample in self.samples:
            if sample.name == wanted:
                return sample.value
        return None


def _family_of(name: str, families: dict[str, MetricFamily]) -> str:
    """Which declared family a sample named ``name`` belongs to."""
    if name in families:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if base in families and families[base].type == "histogram":
                return base
    return name


def parse_prometheus_text(text: str) -> list[MetricFamily]:
    """Parse a Prometheus text exposition into metric families.

    Families appear in document order; samples keep their order within
    the family.  Samples with no preceding ``# TYPE`` declaration get
    an ``untyped`` family of their own.  Raises :class:`PromTextError`
    on lines that are neither comments, blank, nor valid samples.
    """
    families: dict[str, MetricFamily] = {}
    order: list[MetricFamily] = []

    def family(name: str) -> MetricFamily:
        fam = families.get(name)
        if fam is None:
            fam = families[name] = MetricFamily(name)
            order.append(fam)
        return fam

    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                fam = family(parts[2])
                fam.type = parts[3] if len(parts) > 3 else "untyped"
            elif len(parts) >= 3 and parts[1] == "HELP":
                family(parts[2]).help = parts[3] if len(parts) > 3 else ""
            continue  # other comments (keep-alives, exporters' chatter)
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise PromTextError(f"line {lineno}: unparsable sample {line!r}")
        name, label_body, value_token = match.group(1, 2, 3)
        labels: tuple[tuple[str, str], ...] = ()
        if label_body:
            pairs = _LABEL_RE.findall(label_body)
            stripped = _LABEL_RE.sub("", label_body).replace(",", "").strip()
            if stripped:
                raise PromTextError(
                    f"line {lineno}: bad label syntax {label_body!r}"
                )
            labels = tuple((k, _unescape(v)) for k, v in pairs)
        sample = Sample(name, labels, _parse_value(value_token))
        family(_family_of(name, families)).samples.append(sample)
    return order


def render_prometheus_text(families: list[MetricFamily]) -> str:
    """Render families back into the exposition format.

    The exact dialect of :func:`repro.obs.export.to_prometheus_text`:
    optional ``# HELP``, a ``# TYPE`` line per declared family (omitted
    for ``untyped``), ``%g``-style numbers, trailing newline.  Families
    render in the given order — parsing and re-rendering a document
    this module's conventions produced is byte-identical.
    """
    lines: list[str] = []
    for fam in families:
        if fam.help:
            lines.append(f"# HELP {fam.name} {fam.help}")
        if fam.type != "untyped":
            lines.append(f"# TYPE {fam.name} {fam.type}")
        for sample in fam.samples:
            label_text = ""
            if sample.labels:
                body = ",".join(
                    f'{key}="{_escape(value)}"'
                    for key, value in sample.labels
                )
                label_text = f"{{{body}}}"
            lines.append(
                f"{sample.name}{label_text} {_format_value(sample.value)}"
            )
    return "\n".join(lines) + "\n" if lines else ""


# ----------------------------------------------------------------------
# federation
# ----------------------------------------------------------------------
def _is_peak(name: str) -> bool:
    # the suffix rule of MetricsRegistry, applied post-sanitization
    # (dots became underscores on the way out through the exporter)
    return name.endswith(_PEAK_SUFFIXES)


@dataclass
class Federation:
    """The cluster-wide fold of every member's ``/metrics`` document.

    ``families`` is render-ready: the synthesized scrape gauges, then
    the ``<prefix>_cluster_*`` aggregates, then every member's own
    series re-labelled ``{shard="host:port"}``.  ``errors`` maps shard
    id → what went wrong for members that contributed nothing (or whose
    histogram buckets disagreed).
    """

    families: list[MetricFamily]
    errors: dict[str, str]
    scraped: int

    def render(self) -> str:
        return render_prometheus_text(self.families)

    def value(self, name: str, shard: str | None = None) -> float | None:
        """Look one scalar up: an aggregate, or one shard's series."""
        for fam in self.families:
            for sample in fam.samples:
                if sample.name != name:
                    continue
                if sample.label("shard") == shard:
                    return sample.value
        return None


def _cluster_name(name: str, prefix: str) -> str | None:
    """The aggregate name for a member series, or ``None`` to skip it."""
    cluster = f"{prefix}_cluster_"
    if name.startswith(cluster):
        return name  # already cluster-scoped (a nested federation)
    if name == f"{prefix}_build_info":
        return None  # identity labels don't sum
    if name.startswith(f"{prefix}_"):
        return cluster + name[len(prefix) + 1 :]
    return f"{prefix}_cluster_{name}"


def federate_scrapes(
    scrapes: Mapping[str, str | None],
    *,
    errors: Mapping[str, str] | None = None,
    prefix: str = "repro",
) -> Federation:
    """Fold per-shard ``/metrics`` text into one cluster document.

    ``scrapes`` maps shard id → the raw text (``None`` for a failed
    scrape); ``errors`` optionally carries the transport error message
    per failed shard.  Counters and gauges sum, peaks max, histogram
    buckets sum; every input sample additionally re-emits under its
    original name with a ``shard`` label.  Nothing raises for a bad
    member — it is dropped and counted in
    ``<prefix>_cluster_scrape_errors``.
    """
    problems: dict[str, str] = dict(errors or {})
    parsed: dict[str, list[MetricFamily]] = {}
    for shard, text in scrapes.items():
        if text is None:
            problems.setdefault(shard, "scrape failed")
            continue
        try:
            parsed[shard] = parse_prometheus_text(text)
        except PromTextError as exc:
            problems[shard] = f"unparsable metrics: {exc}"

    # -- aggregates ------------------------------------------------------
    gauges: dict[str, float] = {}
    hists: dict[str, dict] = {}  # name -> {les, buckets, sum, count, help}
    for shard, families in parsed.items():
        for fam in families:
            name = _cluster_name(fam.name, prefix)
            if name is None:
                continue
            if fam.type == "histogram":
                les = tuple(le for le, _ in fam.buckets())
                merged = hists.get(name)
                if merged is None:
                    merged = hists[name] = {
                        "les": les,
                        "buckets": dict.fromkeys(les, 0.0),
                        "sum": 0.0,
                        "count": 0.0,
                    }
                elif merged["les"] != les:
                    problems[shard] = (
                        f"histogram {fam.name} bucket bounds disagree "
                        f"with the other members"
                    )
                    continue
                for le, value in fam.buckets():
                    merged["buckets"][le] += value
                merged["sum"] += fam.scalar("_sum") or 0.0
                merged["count"] += fam.scalar("_count") or 0.0
                continue
            for sample in fam.samples:
                if sample.labels:
                    continue  # labeled gauges carry identity, not load
                if _is_peak(name):
                    gauges[name] = max(gauges.get(name, 0.0), sample.value)
                else:
                    gauges[name] = gauges.get(name, 0.0) + sample.value

    families: list[MetricFamily] = []
    for name, value in (
        (f"{prefix}_cluster_members", float(len(scrapes))),
        (f"{prefix}_cluster_scraped", float(len(parsed))),
        (f"{prefix}_cluster_scrape_errors", float(len(problems))),
    ):
        families.append(
            MetricFamily(name, "gauge", samples=[Sample(name, (), value)])
        )
    for name in sorted(gauges):
        families.append(
            MetricFamily(
                name, "gauge", samples=[Sample(name, (), gauges[name])]
            )
        )
    for name in sorted(hists):
        merged = hists[name]
        samples = [
            Sample(f"{name}_bucket", (("le", le),), merged["buckets"][le])
            for le in merged["les"]
        ]
        samples.append(Sample(f"{name}_sum", (), merged["sum"]))
        samples.append(Sample(f"{name}_count", (), merged["count"]))
        families.append(MetricFamily(name, "histogram", samples=samples))

    # -- per-shard series ------------------------------------------------
    labelled: dict[str, MetricFamily] = {}
    for shard in sorted(parsed):
        for fam in parsed[shard]:
            out = labelled.get(fam.name)
            if out is None:
                out = labelled[fam.name] = MetricFamily(
                    fam.name, fam.type, fam.help
                )
                families.append(out)
            out.samples.extend(
                sample.with_label("shard", shard) for sample in fam.samples
            )
    return Federation(
        families=families, errors=problems, scraped=len(parsed)
    )
