"""Span-based tracer — the library's single timing mechanism.

A :class:`Span` is one named, timed region of work; spans nest, carry
free-form attributes (``formula=...``, ``component=...``) and numeric
*counters* (BDD mk calls, fixpoint iterations), and together form the
trees that the exporters (:mod:`repro.obs.export`) and the profile
formatter (:mod:`repro.obs.profile`) consume.

Design constraints (this sits under the BDD engine's hot loops):

* **zero dependencies** — stdlib only, importable from anywhere in the
  library without cycles;
* **always-on timing, opt-in recording** — ``tracer.span(...)`` always
  measures wall time with :func:`time.perf_counter` (so call sites like
  :meth:`SymbolicChecker.holds` use span durations for
  ``CheckStats.user_time`` whether or not tracing is on), but the span
  is linked into the trace tree only while the tracer is *enabled*;
* **one attribute check on hot paths** — per-iteration and per-node-op
  call sites guard with ``if TRACER.enabled:`` and pay a single boolean
  attribute read when tracing is off (the disabled singleton records
  nothing and allocates nothing on those paths).

The module-level :data:`TRACER` is the process-wide default used by the
instrumented pipeline; :func:`tracing` is the ergonomic way to capture
one trace::

    from repro.obs import TRACER, tracing

    with tracing() as tracer:
        check_source(model_text)
    print(format_profile(tracer))

Tracers are not thread-safe: one tracer per thread (the pipeline itself
is single-threaded).
"""

from __future__ import annotations

import time
import uuid
from collections.abc import Iterator
from contextlib import contextmanager

__all__ = [
    "Span",
    "TraceContext",
    "Tracer",
    "TRACER",
    "enable_tracing",
    "disable_tracing",
    "tracing",
]


class TraceContext:
    """The cross-process identity of one request's trace.

    A ``TraceContext`` is minted once at the edge (``POST /v1/check``)
    and threaded — as plain strings, so it crosses process boundaries
    for free — through the job manager, the cached-check layer and the
    worker pool: every span recorded on behalf of the request carries
    ``trace_id`` in its attributes, which is what lets a merged trace
    show one request end to end instead of pid-only worker fragments.

    ``trace_id`` is 32 hex characters and ``span_id`` 16 (W3C
    traceparent sizes); :meth:`child` mints a new span id under the
    same trace, for callees that want their own identity.
    """

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str = ""):
        self.trace_id = trace_id
        self.span_id = span_id or uuid.uuid4().hex[:16]

    @classmethod
    def mint(cls) -> "TraceContext":
        """A fresh trace identity (new trace_id, new root span_id)."""
        return cls(trace_id=uuid.uuid4().hex)

    def child(self) -> "TraceContext":
        """A new span identity within the same trace."""
        return TraceContext(self.trace_id)

    def to_dict(self) -> dict:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TraceContext)
            and other.trace_id == self.trace_id
            and other.span_id == self.span_id
        )

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceContext({self.trace_id!r}, span={self.span_id!r})"


class Span:
    """One timed region: name, category, attributes, counters, children.

    Spans are context managers: entering starts the clock (and links the
    span under the tracer's current span when recording is enabled);
    exiting stops it.  ``duration`` is inclusive wall time in seconds;
    ``exclusive`` subtracts the time covered by recorded children.
    """

    __slots__ = (
        "name",
        "category",
        "attrs",
        "counters",
        "children",
        "start",
        "end",
        "recorded",
        "_tracer",
    )

    def __init__(
        self, tracer: "Tracer", name: str, category: str, attrs: dict
    ) -> None:
        self.name = name
        self.category = category
        self.attrs = attrs
        self.counters: dict[str, float] = {}
        self.children: list[Span] = []
        self.start: float = 0.0
        self.end: float | None = None
        self.recorded: bool = False
        self._tracer = tracer

    # -- context manager ------------------------------------------------
    def __enter__(self) -> "Span":
        tracer = self._tracer
        if tracer.enabled:
            self.recorded = True
            stack = tracer._stack
            if stack:
                stack[-1].children.append(self)
            else:
                tracer.roots.append(self)
            stack.append(self)
        self.start = tracer._clock()
        return self

    def __exit__(self, *exc) -> None:
        self.end = self._tracer._clock()
        if self.recorded:
            # tolerate out-of-order exits (a span leaked across a raise)
            stack = self._tracer._stack
            if self in stack:
                while stack and stack.pop() is not self:
                    pass

    # -- measurements ---------------------------------------------------
    @property
    def duration(self) -> float:
        """Inclusive wall time in seconds (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def elapsed(self) -> float:
        """Seconds since the span started (usable before it closes)."""
        return self._tracer._clock() - self.start

    @property
    def exclusive(self) -> float:
        """Inclusive duration minus the time covered by child spans."""
        return self.duration - sum(c.duration for c in self.children)

    # -- annotations ----------------------------------------------------
    def add(self, counter: str, value: float = 1.0) -> None:
        """Accumulate a numeric counter on this span."""
        self.counters[counter] = self.counters.get(counter, 0.0) + value

    # -- traversal ------------------------------------------------------
    def walk(self) -> Iterator["Span"]:
        """Pre-order traversal of this span's subtree."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, cat={self.category!r}, "
            f"dur={self.duration * 1e3:.3f}ms, "
            f"children={len(self.children)})"
        )


class Tracer:
    """Collects span trees; disabled by default so hot paths stay hot.

    ``enabled`` gates *recording* only — :meth:`span` always returns a
    real, timing :class:`Span`, which lets call sites derive
    ``user_time`` from span durations unconditionally.  Guard per-
    iteration instrumentation with ``if tracer.enabled:`` so a disabled
    tracer costs one attribute check there.
    """

    def __init__(self, enabled: bool = False, clock=time.perf_counter):
        self.enabled = enabled
        self._clock = clock
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        #: Wall-clock epoch paired with the perf-counter origin, stamped
        #: at :meth:`reset` — lets exporters report absolute times.
        self.epoch_wall: float = time.time()
        self.epoch_perf: float = clock()

    # -- span creation --------------------------------------------------
    def span(self, name: str, category: str = "", **attrs) -> Span:
        """A new span; use as ``with tracer.span("check") as sp:``."""
        return Span(self, name, category, attrs)

    def current(self) -> Span | None:
        """The innermost open recorded span, if any."""
        return self._stack[-1] if self._stack else None

    def add_counter(self, counter: str, value: float = 1.0) -> None:
        """Accumulate a counter on the current span (no-op when idle)."""
        if self._stack:
            self._stack[-1].add(counter, value)

    # -- lifecycle ------------------------------------------------------
    def reset(self) -> None:
        """Drop every recorded span and restart the epoch."""
        self.roots.clear()
        self._stack.clear()
        self.epoch_wall = time.time()
        self.epoch_perf = self._clock()

    def spans(self) -> Iterator[Span]:
        """Pre-order traversal of every recorded span tree."""
        for root in self.roots:
            yield from root.walk()

    @property
    def start_time(self) -> float:
        """perf-counter origin for relative timestamps: the earliest
        recorded root start, falling back to the reset epoch."""
        if self.roots:
            return min(root.start for root in self.roots)
        return self.epoch_perf


#: Process-wide default tracer used by the instrumented pipeline.
#: Disabled at import time: hot paths pay one ``TRACER.enabled`` check.
TRACER = Tracer(enabled=False)


def enable_tracing(reset: bool = True) -> Tracer:
    """Turn on recording on the global tracer (clearing old spans)."""
    if reset:
        TRACER.reset()
    TRACER.enabled = True
    return TRACER


def disable_tracing() -> Tracer:
    """Turn off recording on the global tracer (spans are kept)."""
    TRACER.enabled = False
    return TRACER


@contextmanager
def tracing(reset: bool = True) -> Iterator[Tracer]:
    """Enable the global tracer for a block and disable it afterwards.

    >>> from repro.obs.tracer import tracing
    >>> with tracing() as t:
    ...     with t.span("outer"):
    ...         with t.span("inner"):
    ...             pass
    >>> [s.name for s in t.spans()]
    ['outer', 'inner']
    """
    enable_tracing(reset=reset)
    try:
        yield TRACER
    finally:
        disable_tracing()
