"""Bridge from propositional :mod:`repro.logic` formulas to BDDs."""

from __future__ import annotations

from repro.bdd.manager import BDD, FALSE, TRUE
from repro.errors import LogicError
from repro.logic.ctl import (
    And,
    Atom,
    Const,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
)


def prop_to_bdd(bdd: BDD, f: Formula) -> int:
    """Compile a propositional formula to a BDD.

    Atoms must be declared variables of ``bdd``; temporal operators raise
    :class:`LogicError` (this bridge is used for transition-relation and
    initial-condition construction, which are propositional by nature).
    """
    if isinstance(f, Const):
        return TRUE if f.value else FALSE
    if isinstance(f, Atom):
        return bdd.var(f.name)
    if isinstance(f, Not):
        return bdd.negate(prop_to_bdd(bdd, f.operand))
    if isinstance(f, And):
        return bdd.apply("and", prop_to_bdd(bdd, f.left), prop_to_bdd(bdd, f.right))
    if isinstance(f, Or):
        return bdd.apply("or", prop_to_bdd(bdd, f.left), prop_to_bdd(bdd, f.right))
    if isinstance(f, Implies):
        return bdd.apply(
            "implies", prop_to_bdd(bdd, f.left), prop_to_bdd(bdd, f.right)
        )
    if isinstance(f, Iff):
        return bdd.apply("iff", prop_to_bdd(bdd, f.left), prop_to_bdd(bdd, f.right))
    raise LogicError(
        f"prop_to_bdd: {type(f).__name__} is not a propositional connective"
    )
