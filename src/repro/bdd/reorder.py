"""Variable-ordering search utilities for BDDs.

Two flavours of reordering exist in this package:

* **In-place** Rudell-style sifting lives on the manager itself
  (:meth:`repro.bdd.manager.BDD.reorder`): adjacent-level swaps rehash
  only the two affected unique subtables, existing node ids keep their
  functions, and the auto-reorder trigger can invoke it mid-run.  That
  is what the checkers and the CLI ``--reorder`` flag use.
* This module keeps the earlier **rebuild-based** search: candidate
  orders are evaluated by *transferring* the given root functions into a
  fresh manager with the candidate order and measuring total node count.
  It is O(rebuild) per candidate, but it evaluates an explicit order you
  hand it (``rebuild_with_order``) and measures exactly the reachable
  size of chosen roots — which makes it the reference oracle the
  in-place implementation is tested against, and the tool the ablation
  benchmark ``bench_ablation_var_order`` uses to show how much the
  interleaved current/next order matters for transition relations.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.bdd.manager import BDD
from repro.bdd.ops import transfer


def rebuild_with_order(roots: Sequence[int], src: BDD, order: Sequence[str]) -> tuple[BDD, list[int]]:
    """Rebuild the given root functions in a new manager using ``order``.

    Returns the new manager and the transferred roots.  ``order`` must
    contain every variable of ``src`` exactly once.
    """
    if sorted(order) != sorted(src.var_names):
        declared = set(src.var_names)
        given = set(order)
        problems = []
        missing = sorted(declared - given)
        if missing:
            problems.append(f"missing {', '.join(map(repr, missing))}")
        extra = sorted(given - declared)
        if extra:
            problems.append(f"extra {', '.join(map(repr, extra))}")
        duplicates = sorted({n for n in given if list(order).count(n) > 1})
        if duplicates:
            problems.append(f"duplicated {', '.join(map(repr, duplicates))}")
        raise ValueError(
            "order must be a permutation of the manager's variables: "
            + "; ".join(problems)
        )
    dst = BDD()
    for name in order:
        dst.add_var(name)
    memo: dict[int, int] = {}
    new_roots = [transfer(r, src, dst, memo) for r in roots]
    return dst, new_roots


def shared_size(bdd: BDD, roots: Sequence[int]) -> int:
    """Node count of the shared DAG of several roots (terminals excluded)."""
    seen: set[int] = set()
    stack = list(roots)
    while stack:
        n = stack.pop()
        if n <= 1 or n in seen:
            continue
        seen.add(n)
        stack.append(bdd.low(n))
        stack.append(bdd.high(n))
    return len(seen)


def sift(roots: Sequence[int], src: BDD, max_rounds: int = 2) -> tuple[BDD, list[int], list[str]]:
    """Sifting-style ordering search.

    Each variable in turn is tried at every position of the order (keeping
    the relative order of the others); the best position is kept.  Repeats
    for ``max_rounds`` rounds or until no improvement.  Returns
    ``(manager, transferred_roots, order)`` for the best order found.
    """
    order = list(src.var_names)
    best_mgr, best_roots = rebuild_with_order(roots, src, order)
    best_size = shared_size(best_mgr, best_roots)
    for _ in range(max_rounds):
        improved = False
        for name in list(order):
            base = [v for v in order if v != name]
            for pos in range(len(base) + 1):
                candidate = base[:pos] + [name] + base[pos:]
                if candidate == order:
                    continue
                mgr, new_roots = rebuild_with_order(roots, src, candidate)
                size = shared_size(mgr, new_roots)
                if size < best_size:
                    best_size = size
                    best_mgr, best_roots = mgr, new_roots
                    order = candidate
                    improved = True
        if not improved:
            break
    return best_mgr, best_roots, order
