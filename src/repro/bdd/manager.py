"""Reduced Ordered Binary Decision Diagram (ROBDD) manager.

This is the substrate of the symbolic model checker, playing the role that
the CUDD-style package plays inside SMV in the paper.  It is a classic
hash-consed ROBDD implementation:

* nodes are small integers; ``0`` is the constant FALSE and ``1`` the
  constant TRUE;
* every internal node is a triple ``(level, low, high)`` interned in a
  *unique table*, so structural equality is pointer (integer) equality;
* all boolean operations are built on a memoized ``ite`` (if-then-else);
* quantification, renaming and the fused relational product
  (:meth:`BDD.and_exists`) are provided for image computation.

The manager keeps the statistics the paper's figures report: the total
number of nodes ever allocated (``nodes_allocated``) mirrors SMV's
"BDD nodes allocated" line, and :meth:`BDD.node_count` of a transition
relation mirrors "BDD nodes representing transition relation".

Performance notes (per the project's HPC guidelines): the hot path is the
``ite`` recursion; it uses flat list storage for node fields (no per-node
objects), dict-based memoization, and avoids any copying of intermediate
structures.  Recursion depth is bounded by the number of variables, which
is small (tens) for the systems in this domain.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from repro.errors import BddError

#: Constant node id for FALSE.
FALSE = 0
#: Constant node id for TRUE.
TRUE = 1

#: Level assigned to the two terminal nodes; larger than any variable level.
_TERMINAL_LEVEL = 1 << 30


class BDD:
    """A BDD manager: variable ordering, unique table, and operations.

    Variables are created with :meth:`add_var` and are ordered by creation
    order (creation order == level, level 0 at the top).  All node ids
    returned by one manager are only meaningful for that manager; use
    :func:`repro.bdd.ops.transfer` to move functions between managers.

    Example
    -------
    >>> b = BDD()
    >>> x, y = b.add_var("x"), b.add_var("y")
    >>> f = b.apply("and", b.var("x"), b.var("y"))
    >>> b.sat_count(f)
    1.0
    """

    def __init__(self) -> None:
        # Parallel arrays for node fields.  Slots 0/1 are the terminals.
        self._level: list[int] = [_TERMINAL_LEVEL, _TERMINAL_LEVEL]
        self._low: list[int] = [0, 1]
        self._high: list[int] = [0, 1]
        # unique table: (level, low, high) -> node id
        self._unique: dict[tuple[int, int, int], int] = {}
        # memo tables
        self._ite_cache: dict[tuple[int, int, int], int] = {}
        self._quant_cache: dict[tuple[int, int, frozenset[int]], int] = {}
        self._and_exists_cache: dict[tuple[int, int, frozenset[int]], int] = {}
        self._rename_cache: dict[tuple[int, tuple[tuple[int, int], ...]], int] = {}
        # variables
        self._var_names: list[str] = []
        self._var_index: dict[str, int] = {}
        # statistics
        self.nodes_allocated: int = 2  # terminals count, like SMV's base cost
        self.cache_enabled: bool = True

    # ------------------------------------------------------------------
    # variables
    # ------------------------------------------------------------------
    def add_var(self, name: str) -> int:
        """Declare a new variable at the bottom of the order; return its level."""
        if name in self._var_index:
            raise BddError(f"variable {name!r} already declared")
        level = len(self._var_names)
        self._var_names.append(name)
        self._var_index[name] = level
        return level

    def declare(self, *names: str) -> None:
        """Declare several variables in order (convenience for tests)."""
        for name in names:
            self.add_var(name)

    @property
    def var_names(self) -> tuple[str, ...]:
        """All declared variable names, top of the order first."""
        return tuple(self._var_names)

    def num_vars(self) -> int:
        """Number of declared variables."""
        return len(self._var_names)

    def level_of(self, name: str) -> int:
        """Level (position in the order) of variable ``name``."""
        try:
            return self._var_index[name]
        except KeyError:
            raise BddError(f"unknown variable {name!r}") from None

    def name_of(self, level: int) -> str:
        """Variable name at ``level``."""
        return self._var_names[level]

    def var(self, name: str) -> int:
        """The BDD of the literal ``name`` (a single positive variable)."""
        return self._mk(self.level_of(name), FALSE, TRUE)

    def nvar(self, name: str) -> int:
        """The BDD of the negative literal ``!name``."""
        return self._mk(self.level_of(name), TRUE, FALSE)

    # ------------------------------------------------------------------
    # node construction / inspection
    # ------------------------------------------------------------------
    def _mk(self, level: int, low: int, high: int) -> int:
        """Find-or-create the node ``(level, low, high)`` (reduction applied)."""
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._level)
            self._level.append(level)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
            self.nodes_allocated += 1
        return node

    def level(self, u: int) -> int:
        """Level of node ``u`` (terminals have a sentinel maximal level)."""
        return self._level[u]

    def low(self, u: int) -> int:
        """Else-branch (variable false) of node ``u``."""
        return self._low[u]

    def high(self, u: int) -> int:
        """Then-branch (variable true) of node ``u``."""
        return self._high[u]

    def is_terminal(self, u: int) -> bool:
        """True iff ``u`` is one of the constants FALSE/TRUE."""
        return u <= 1

    def node_count(self, u: int) -> int:
        """Number of distinct internal nodes reachable from ``u``.

        This is the metric SMV prints as "BDD nodes representing transition
        relation" (terminals excluded).
        """
        seen: set[int] = set()
        stack = [u]
        while stack:
            n = stack.pop()
            if n <= 1 or n in seen:
                continue
            seen.add(n)
            stack.append(self._low[n])
            stack.append(self._high[n])
        return len(seen)

    def num_live_nodes(self) -> int:
        """Total internal nodes currently interned (no GC is performed)."""
        return len(self._level) - 2

    def clear_caches(self) -> None:
        """Drop all memoization tables (unique table is kept)."""
        self._ite_cache.clear()
        self._quant_cache.clear()
        self._and_exists_cache.clear()
        self._rename_cache.clear()

    # ------------------------------------------------------------------
    # core operation: if-then-else
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """``if f then g else h`` — the universal ROBDD connective."""
        # terminal cases
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        key = (f, g, h)
        if self.cache_enabled:
            cached = self._ite_cache.get(key)
            if cached is not None:
                return cached
        level = min(self._level[f], self._level[g], self._level[h])
        f0, f1 = self._cofactors(f, level)
        g0, g1 = self._cofactors(g, level)
        h0, h1 = self._cofactors(h, level)
        low = self.ite(f0, g0, h0)
        high = self.ite(f1, g1, h1)
        result = self._mk(level, low, high)
        if self.cache_enabled:
            self._ite_cache[key] = result
        return result

    def _cofactors(self, u: int, level: int) -> tuple[int, int]:
        """(u|var=0, u|var=1) for the variable at ``level``."""
        if self._level[u] == level:
            return self._low[u], self._high[u]
        return u, u

    # ------------------------------------------------------------------
    # derived boolean operations
    # ------------------------------------------------------------------
    def negate(self, u: int) -> int:
        """Logical negation."""
        return self.ite(u, FALSE, TRUE)

    def apply(self, op: str, u: int, v: int) -> int:
        """Apply a binary boolean operator by name.

        Supported: ``and or xor nand nor xnor iff implies diff``.
        """
        if op == "and":
            return self.ite(u, v, FALSE)
        if op == "or":
            return self.ite(u, TRUE, v)
        if op == "xor":
            return self.ite(u, self.negate(v), v)
        if op == "nand":
            return self.ite(u, self.negate(v), TRUE)
        if op == "nor":
            return self.ite(u, FALSE, self.negate(v))
        if op in ("xnor", "iff"):
            return self.ite(u, v, self.negate(v))
        if op in ("implies", "imp"):
            return self.ite(u, v, TRUE)
        if op == "diff":  # u and not v
            return self.ite(u, self.negate(v), FALSE)
        raise BddError(f"unknown operator {op!r}")

    def conj(self, us: Iterable[int]) -> int:
        """Conjunction of an iterable of BDDs (TRUE when empty)."""
        acc = TRUE
        for u in us:
            acc = self.apply("and", acc, u)
        return acc

    def disj(self, us: Iterable[int]) -> int:
        """Disjunction of an iterable of BDDs (FALSE when empty)."""
        acc = FALSE
        for u in us:
            acc = self.apply("or", acc, u)
        return acc

    def cube(self, assignment: Mapping[str, bool]) -> int:
        """Conjunction of literals described by a {name: bool} mapping."""
        acc = TRUE
        for name in sorted(assignment, key=self.level_of, reverse=True):
            lit = self.var(name) if assignment[name] else self.nvar(name)
            acc = self.apply("and", lit, acc)
        return acc

    # ------------------------------------------------------------------
    # quantification
    # ------------------------------------------------------------------
    def exists(self, names: Iterable[str], u: int) -> int:
        """Existential quantification over the given variables."""
        levels = frozenset(self.level_of(n) for n in names)
        if not levels:
            return u
        return self._quantify(u, levels, conj=False)

    def forall(self, names: Iterable[str], u: int) -> int:
        """Universal quantification over the given variables."""
        levels = frozenset(self.level_of(n) for n in names)
        if not levels:
            return u
        return self._quantify(u, levels, conj=True)

    def _quantify(self, u: int, levels: frozenset[int], conj: bool) -> int:
        if u <= 1:
            return u
        lvl = self._level[u]
        if lvl > max(levels):
            return u
        key = (u, 1 if conj else 0, levels)
        cached = self._quant_cache.get(key)
        if cached is not None:
            return cached
        low = self._quantify(self._low[u], levels, conj)
        high = self._quantify(self._high[u], levels, conj)
        if lvl in levels:
            result = self.apply("and" if conj else "or", low, high)
        else:
            result = self._mk(lvl, low, high)
        self._quant_cache[key] = result
        return result

    def and_exists(self, u: int, v: int, names: Iterable[str]) -> int:
        """Fused ``exists names. (u and v)`` — the relational product.

        The fusion matters: the conjunction ``u and v`` (a constrained
        transition relation) is never materialized, which is the standard
        image-computation optimization in symbolic model checkers.
        """
        levels = frozenset(self.level_of(n) for n in names)
        return self._and_exists(u, v, levels)

    def _and_exists(self, u: int, v: int, levels: frozenset[int]) -> int:
        if u == FALSE or v == FALSE:
            return FALSE
        if u == TRUE and v == TRUE:
            return TRUE
        if u == TRUE:
            return self._quantify(v, levels, conj=False) if levels else v
        if v == TRUE:
            return self._quantify(u, levels, conj=False) if levels else u
        if u == v:
            return self._quantify(u, levels, conj=False) if levels else u
        if u > v:  # canonicalize for the cache: AND is commutative
            u, v = v, u
        key = (u, v, levels)
        cached = self._and_exists_cache.get(key)
        if cached is not None:
            return cached
        level = min(self._level[u], self._level[v])
        u0, u1 = self._cofactors(u, level)
        v0, v1 = self._cofactors(v, level)
        low = self._and_exists(u0, v0, levels)
        if level in levels:
            if low == TRUE:
                result = TRUE
            else:
                high = self._and_exists(u1, v1, levels)
                result = self.apply("or", low, high)
        else:
            high = self._and_exists(u1, v1, levels)
            result = self._mk(level, low, high)
        self._and_exists_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # renaming and cofactoring
    # ------------------------------------------------------------------
    def rename(self, u: int, mapping: Mapping[str, str]) -> int:
        """Substitute variables: each key variable becomes its value variable.

        The mapping must be *order-preserving on the support of* ``u``:
        relabeled levels must remain strictly increasing along every path.
        This holds for the interleaved current/next variable orders used by
        the model checker (``a ↦ a'`` with ``a'`` directly below ``a``).
        A non-monotone mapping raises :class:`BddError`.
        """
        level_map = {self.level_of(a): self.level_of(b) for a, b in mapping.items()}
        support = sorted(self.level_of(n) for n in self.support(u))
        mapped = [level_map.get(lv, lv) for lv in support]
        if sorted(mapped) != mapped or len(set(mapped)) != len(mapped):
            raise BddError("rename mapping is not order-preserving on the support")
        key_map = tuple(sorted(level_map.items()))
        return self._rename(u, level_map, key_map)

    def _rename(
        self,
        u: int,
        level_map: Mapping[int, int],
        key_map: tuple[tuple[int, int], ...],
    ) -> int:
        if u <= 1:
            return u
        key = (u, key_map)
        cached = self._rename_cache.get(key)
        if cached is not None:
            return cached
        lvl = self._level[u]
        low = self._rename(self._low[u], level_map, key_map)
        high = self._rename(self._high[u], level_map, key_map)
        result = self._mk(level_map.get(lvl, lvl), low, high)
        self._rename_cache[key] = result
        return result

    def restrict(self, u: int, assignment: Mapping[str, bool]) -> int:
        """Cofactor: fix the given variables to constants."""
        values = {self.level_of(n): bool(b) for n, b in assignment.items()}
        return self._restrict(u, values, {})

    def _restrict(self, u: int, values: Mapping[int, bool], memo: dict[int, int]) -> int:
        if u <= 1:
            return u
        cached = memo.get(u)
        if cached is not None:
            return cached
        lvl = self._level[u]
        if lvl in values:
            result = self._restrict(
                self._high[u] if values[lvl] else self._low[u], values, memo
            )
        else:
            low = self._restrict(self._low[u], values, memo)
            high = self._restrict(self._high[u], values, memo)
            result = self._mk(lvl, low, high)
        memo[u] = result
        return result

    # ------------------------------------------------------------------
    # satisfying assignments
    # ------------------------------------------------------------------
    def sat_count(self, u: int, nvars: int | None = None) -> float:
        """Number of satisfying assignments over ``nvars`` variables.

        Defaults to all declared variables.  Returned as ``float`` because
        the count is exponential in ``nvars``.
        """
        if nvars is None:
            nvars = self.num_vars()
        memo: dict[int, float] = {}

        def count(n: int) -> float:
            # count over variables strictly below level(n)'s position
            if n == FALSE:
                return 0.0
            if n == TRUE:
                return 1.0
            c = memo.get(n)
            if c is None:
                lvl = self._level[n]
                lo, hi = self._low[n], self._high[n]
                lo_lvl = min(self._level[lo], nvars)
                hi_lvl = min(self._level[hi], nvars)
                c = count(lo) * (2 ** (lo_lvl - lvl - 1)) + count(hi) * (
                    2 ** (hi_lvl - lvl - 1)
                )
                memo[n] = c
            return c

        top = min(self._level[u], nvars)
        return count(u) * (2**top)

    def pick(self, u: int) -> dict[str, bool] | None:
        """One satisfying assignment (partial — only decided variables), or None."""
        if u == FALSE:
            return None
        out: dict[str, bool] = {}
        while u != TRUE:
            name = self._var_names[self._level[u]]
            if self._low[u] != FALSE:
                out[name] = False
                u = self._low[u]
            else:
                out[name] = True
                u = self._high[u]
        return out

    def iter_sat(self, u: int, names: Iterable[str] | None = None) -> Iterator[dict[str, bool]]:
        """Iterate over *total* satisfying assignments of the given variables.

        ``names`` defaults to every declared variable; variables not on a
        path through the BDD are expanded to both values.
        """
        names = list(self._var_names if names is None else names)
        partial: dict[str, bool] = {}

        def rec(n: int, idx: int) -> Iterator[dict[str, bool]]:
            if n == FALSE:
                return
            if idx == len(names):
                # any leftover (unselected) variables are quantified away:
                # n != FALSE means some completion satisfies u
                yield dict(partial)
                return
            name = names[idx]
            for val in (False, True):
                m = self.restrict(n, {name: val})
                if m != FALSE:
                    partial[name] = val
                    yield from rec(m, idx + 1)
                    del partial[name]

        yield from rec(u, 0)

    # ------------------------------------------------------------------
    # support
    # ------------------------------------------------------------------
    def support(self, u: int) -> set[str]:
        """Set of variable names the function actually depends on."""
        seen: set[int] = set()
        levels: set[int] = set()
        stack = [u]
        while stack:
            n = stack.pop()
            if n <= 1 or n in seen:
                continue
            seen.add(n)
            levels.add(self._level[n])
            stack.append(self._low[n])
            stack.append(self._high[n])
        return {self._var_names[lv] for lv in levels}
