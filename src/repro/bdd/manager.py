"""Reduced Ordered Binary Decision Diagram (ROBDD) manager.

This is the substrate of the symbolic model checker, playing the role that
the CUDD-style package plays inside SMV in the paper.  It is a classic
hash-consed ROBDD implementation:

* nodes are small integers; ``0`` is the constant FALSE and ``1`` the
  constant TRUE;
* every internal node is a triple ``(level, low, high)`` stored in the
  flat parallel lists ``_level/_low/_high`` and interned through
  **per-level unique subtables** — one hash table per variable level,
  keyed on ``(low, high)`` alone.  Structural equality is pointer
  (integer) equality, and all nodes of one level can be enumerated and
  rehashed locally, which is what makes in-place reordering a local
  operation.  (The subtables are CPython dicts rather than hand-rolled
  ``array('q')`` linear probing: measured on the find-or-create mix of
  the engine microbenches, the C dict probe beats a Python-level
  open-addressing loop by ~4× — ``_mk`` is the hottest function in the
  package, so the wire format keeps the flat-array form but the live
  tables use the faster probe);
* the boolean connectives run on **specialized recursive kernels**
  (:meth:`BDD._and_rec`, :meth:`BDD._or_rec`, :meth:`BDD._xor_rec`) with
  commutativity-canonicalized per-op caches; the universal memoized
  ``ite`` (if-then-else) is kept for ternary composition and transfer;
* negation is a **memoized involution**: a dedicated bidirectional table
  maps ``u ↔ ¬u``, so repeated :meth:`BDD.negate` calls are O(1) dict
  probes instead of a recursive ``ite`` traversal (the first negation of
  a function is one linear pass that records both directions);
* quantification, renaming and the fused relational product
  (:meth:`BDD.and_exists`) are provided for image computation;
* **dynamic variable reordering** is an in-place operation:
  :meth:`BDD._swap_adjacent` exchanges two adjacent levels by rehashing
  exactly those two subtables, :meth:`BDD.reorder` runs Rudell-style
  sifting on top of it, and an auto-reorder trigger
  (``BDD(reorder="auto")``) fires sifting whenever the node count has
  doubled since the last reorder.  Swaps preserve the function denoted
  by **every** node id, so ids held by clients (transition relations,
  checker memos) stay valid across a reorder; only the level-keyed
  memo tables must be (and are) invalidated;
* :meth:`BDD.snapshot` / :meth:`BDD.restore` serialize the flat arrays
  to bytes in one packing pass (no per-node Python objects in the wire
  form), so a compiled transition relation crosses the process-pool
  boundary as three memcpy-style blobs instead of being re-elaborated
  per worker.

The manager keeps the statistics the paper's figures report: the total
number of nodes ever allocated (``nodes_allocated``) mirrors SMV's
"BDD nodes allocated" line, and :meth:`BDD.node_count` of a transition
relation mirrors "BDD nodes representing transition relation".  On top of
that, :attr:`BDD.stats` (a :class:`repro.bdd.stats.BDDStats`) tracks
per-operation cache lookups/hits/inserts, ``_mk`` calls, the peak
unique-table size, and reorder activity (runs, adjacent swaps, node
counts before/after), which the checkers surface in their
``resources used:`` blocks.

Performance notes (per the project's HPC guidelines): the hot paths are
the binary-op recursions and the fused relational product.  They use flat
list storage for node fields (no per-node objects), dict-based
memoization with two-element canonical keys for the commutative ops, and
inlined cofactor computation (no helper calls in the recursion).  The
unique-table probe in ``_mk`` is one two-element-tuple dict probe in the
level's subtable — measurably cheaper than the old global
``(level, low, high)`` key, and local to the level by construction.
:meth:`BDD.conj` / :meth:`BDD.disj` fold **balanced trees** over their
operands — a linear left-fold drags one growing accumulator through every
step, which is directly visible in transition-relation construction
(``frame``/``symbolic_compose``); the balanced fold keeps intermediates
small and cache keys diverse.  Recursion depth is bounded by the number
of variables, which is small (tens) for the systems in this domain.

Reordering caveat: no garbage collection is performed (ids are never
renumbered, which is exactly why client-held ids survive), so nodes made
unreachable by sifting stay interned.  The reachable size of any root
under the final order is unaffected — measure it with
:func:`repro.bdd.reorder.shared_size` / :meth:`BDD.node_count`.
"""

from __future__ import annotations

import json
import struct
from array import array
from collections.abc import Iterable, Iterator, Mapping

from repro.bdd.stats import BDDStats
from repro.errors import BddError
from repro.obs.progress import PROGRESS
from repro.obs.tracer import TRACER

#: Constant node id for FALSE.
FALSE = 0
#: Constant node id for TRUE.
TRUE = 1

#: Level assigned to the two terminal nodes; larger than any variable level.
_TERMINAL_LEVEL = 1 << 30

#: Reorder modes accepted by :class:`BDD` and the CLI ``--reorder`` flag.
REORDER_MODES = ("none", "sift", "auto")

#: Snapshot wire-format magic (versioned via the JSON header that follows).
_SNAPSHOT_MAGIC = b"RBDD\x01"

#: Process-wide default reorder mode, used when ``BDD(reorder=None)``.
#: The CLI sets this from ``--reorder``; forked pool workers inherit it.
_DEFAULT_REORDER = "none"


def set_default_reorder(mode: str) -> str:
    """Set the process-wide default reorder mode; returns the previous one.

    Managers created afterwards with ``BDD(reorder=None)`` (the default)
    pick this up; existing managers are unaffected.
    """
    global _DEFAULT_REORDER
    if mode not in REORDER_MODES:
        raise BddError(
            f"unknown reorder mode {mode!r} (expected one of {REORDER_MODES})"
        )
    previous = _DEFAULT_REORDER
    _DEFAULT_REORDER = mode
    return previous


def default_reorder() -> str:
    """The current process-wide default reorder mode."""
    return _DEFAULT_REORDER


class BDD:
    """A BDD manager: variable ordering, unique table, and operations.

    Variables are created with :meth:`add_var` and start out ordered by
    creation order (level 0 at the top); :meth:`reorder` may move them
    afterwards — :meth:`current_order` is the live order.  All node ids
    returned by one manager are only meaningful for that manager; use
    :func:`repro.bdd.ops.transfer` to move functions between managers.

    ``reorder`` selects the dynamic-reordering mode: ``"none"`` (never
    reorder implicitly), ``"sift"`` (no implicit trigger either, but
    compilation pipelines sift once after building a transition
    relation), or ``"auto"`` (sift whenever the interned node count has
    at least doubled — and exceeds ``auto_min_nodes`` — since the last
    reorder).  ``None`` defers to the process-wide default set by
    :func:`set_default_reorder`.

    Example
    -------
    >>> b = BDD()
    >>> x, y = b.add_var("x"), b.add_var("y")
    >>> f = b.apply("and", b.var("x"), b.var("y"))
    >>> b.sat_count(f)
    1
    """

    def __init__(
        self,
        reorder: str | None = None,
        *,
        auto_min_nodes: int = 2048,
        max_growth: float = 1.2,
    ) -> None:
        # Parallel arrays for node fields.  Slots 0/1 are the terminals.
        self._level: list[int] = [_TERMINAL_LEVEL, _TERMINAL_LEVEL]
        self._low: list[int] = [0, 1]
        self._high: list[int] = [0, 1]
        # per-level unique subtables, keyed on (low, high); the level is
        # implicit, so a level's nodes enumerate/rehash without a scan
        self._tables: list[dict[tuple[int, int], int]] = []
        # memo tables
        self._ite_cache: dict[tuple[int, int, int], int] = {}
        self._and_cache: dict[tuple[int, int], int] = {}
        self._or_cache: dict[tuple[int, int], int] = {}
        self._xor_cache: dict[tuple[int, int], int] = {}
        # bidirectional u <-> not(u); the terminals are permanent entries
        self._neg_cache: dict[int, int] = {FALSE: TRUE, TRUE: FALSE}
        # quantification/rename caches are two-level: one sub-table per
        # (operation context), so the per-node keys are plain ints/pairs
        self._quant_cache: dict[tuple[int, frozenset[int]], dict[int, int]] = {}
        self._and_exists_cache: dict[frozenset[int], dict[tuple[int, int], int]] = {}
        self._rename_cache: dict[tuple[tuple[int, int], ...], dict[int, int]] = {}
        # variables
        self._var_names: list[str] = []
        self._var_index: dict[str, int] = {}
        # reorder groups: variables that must stay adjacent while sifting
        self._groups: list[tuple[str, ...]] = []
        self._group_of: dict[str, int] = {}
        # registered reorder roots: the functions sifting optimizes for
        self._roots: list[int] = []
        self._root_set: set[int] = set()
        # statistics
        self.nodes_allocated: int = 2  # terminals count, like SMV's base cost
        self.cache_enabled: bool = True
        #: Op-level counters (lookups/hits/inserts per memo table, _mk
        #: calls, peak unique-table size, reorder activity).  Cumulative;
        #: snapshot/delta to attribute costs to a single run.
        self.stats = BDDStats()
        ops = self.stats.ops
        self._c_ite = ops["ite"]
        self._c_and = ops["and"]
        self._c_or = ops["or"]
        self._c_xor = ops["xor"]
        self._c_neg = ops["neg"]
        self._c_quant = ops["quant"]
        self._c_and_exists = ops["and_exists"]
        self._c_rename = ops["rename"]
        # dynamic reordering configuration
        self._last_reorder_size: int = 0
        self._configure_reorder(reorder, auto_min_nodes, max_growth)

    def _configure_reorder(
        self, mode: str | None, auto_min_nodes: int, max_growth: float
    ) -> None:
        if mode is None:
            mode = _DEFAULT_REORDER
        if mode not in REORDER_MODES:
            raise BddError(
                f"unknown reorder mode {mode!r} (expected one of {REORDER_MODES})"
            )
        self.reorder_mode: str = mode
        self._auto: bool = mode == "auto"
        self._auto_min_nodes = int(auto_min_nodes)
        self._max_growth = float(max_growth)
        self._auto_limit = max(self._auto_min_nodes, 2 * self._last_reorder_size)

    # ------------------------------------------------------------------
    # variables
    # ------------------------------------------------------------------
    def add_var(self, name: str) -> int:
        """Declare a new variable at the bottom of the order; return its level."""
        if name in self._var_index:
            raise BddError(f"variable {name!r} already declared")
        level = len(self._var_names)
        self._var_names.append(name)
        self._var_index[name] = level
        self._tables.append({})
        return level

    def declare(self, *names: str) -> None:
        """Declare several variables in order (convenience for tests)."""
        for name in names:
            self.add_var(name)

    def group(self, *names: str) -> None:
        """Pin ``names`` together as a reorder block.

        Grouped variables must be adjacent in the current order (in the
        given relative order); :meth:`reorder` then moves the whole block
        as a unit and never changes its internal order.  The symbolic
        systems group each state variable with its primed copy so the
        current→next rename stays monotone under any reordering.
        """
        if len(names) < 2:
            return
        for name in names:
            if name not in self._var_index:
                raise BddError(f"unknown variable {name!r}")
            if name in self._group_of:
                raise BddError(f"variable {name!r} is already in a reorder group")
        levels = [self._var_index[n] for n in names]
        if levels != list(range(levels[0], levels[0] + len(names))):
            raise BddError(
                "grouped variables must be adjacent in the current order"
            )
        gid = len(self._groups)
        self._groups.append(tuple(names))
        for name in names:
            self._group_of[name] = gid

    def add_reorder_root(self, u: int) -> int:
        """Register ``u`` as a function sifting should keep small.

        There is no garbage collection (ids are never renumbered), so the
        manager cannot tell live nodes from dead ones on its own; sifting
        instead sizes every candidate position by the nodes *reachable
        from the registered roots*.  The symbolic systems register their
        transition relation, partitions and initial/invariant sets here;
        :meth:`reorder` also accepts an explicit ``roots`` argument.
        Returns ``u`` so registration can wrap a producing expression.
        """
        if u > 1 and u not in self._root_set:
            self._root_set.add(u)
            self._roots.append(u)
        return u

    @property
    def reorder_roots(self) -> tuple[int, ...]:
        """The registered reorder roots, in registration order."""
        return tuple(self._roots)

    @property
    def var_names(self) -> tuple[str, ...]:
        """All declared variable names, top of the current order first."""
        return tuple(self._var_names)

    def current_order(self) -> tuple[str, ...]:
        """Variable names in their current level order (top first).

        Before any :meth:`reorder` this equals declaration order; after
        one it is the sifted order — callers should use this instead of
        reconstructing the order from :meth:`level_of`.
        """
        return tuple(self._var_names)

    def num_vars(self) -> int:
        """Number of declared variables."""
        return len(self._var_names)

    def level_of(self, name: str) -> int:
        """Level (position in the order) of variable ``name``."""
        try:
            return self._var_index[name]
        except KeyError:
            raise BddError(f"unknown variable {name!r}") from None

    def name_of(self, level: int) -> str:
        """Variable name at ``level``."""
        return self._var_names[level]

    def var(self, name: str) -> int:
        """The BDD of the literal ``name`` (a single positive variable)."""
        return self._mk(self.level_of(name), FALSE, TRUE)

    def nvar(self, name: str) -> int:
        """The BDD of the negative literal ``!name``."""
        return self._mk(self.level_of(name), TRUE, FALSE)

    # ------------------------------------------------------------------
    # node construction / inspection
    # ------------------------------------------------------------------
    def _mk(self, level: int, low: int, high: int) -> int:
        """Find-or-create the node ``(level, low, high)`` (reduction applied)."""
        if low == high:
            return low
        st = self.stats
        st.mk_calls += 1
        tab = self._tables[level]
        key = (low, high)
        node = tab.get(key)
        if node is None:
            node = len(self._level)
            self._level.append(level)
            self._low.append(low)
            self._high.append(high)
            tab[key] = node
            self.nodes_allocated += 1
            total = node - 1  # internal nodes now interned
            if total > st.peak_unique_nodes:
                st.peak_unique_nodes = total
        return node

    def level(self, u: int) -> int:
        """Level of node ``u`` (terminals have a sentinel maximal level)."""
        return self._level[u]

    def low(self, u: int) -> int:
        """Else-branch (variable false) of node ``u``."""
        return self._low[u]

    def high(self, u: int) -> int:
        """Then-branch (variable true) of node ``u``."""
        return self._high[u]

    def is_terminal(self, u: int) -> bool:
        """True iff ``u`` is one of the constants FALSE/TRUE."""
        return u <= 1

    def node_count(self, u: int) -> int:
        """Number of distinct internal nodes reachable from ``u``.

        This is the metric SMV prints as "BDD nodes representing transition
        relation" (terminals excluded).
        """
        seen: set[int] = set()
        stack = [u]
        while stack:
            n = stack.pop()
            if n <= 1 or n in seen:
                continue
            seen.add(n)
            stack.append(self._low[n])
            stack.append(self._high[n])
        return len(seen)

    def num_live_nodes(self) -> int:
        """Total internal nodes currently interned (no GC is performed)."""
        return len(self._level) - 2

    def unique_size(self) -> int:
        """Current number of interned internal nodes (all subtables)."""
        return len(self._level) - 2

    def clear_caches(self) -> None:
        """Drop all memoization tables (unique table is kept)."""
        self._ite_cache.clear()
        self._and_cache.clear()
        self._or_cache.clear()
        self._xor_cache.clear()
        self._neg_cache.clear()
        self._neg_cache[FALSE] = TRUE
        self._neg_cache[TRUE] = FALSE
        self._quant_cache.clear()
        self._and_exists_cache.clear()
        self._rename_cache.clear()

    # ------------------------------------------------------------------
    # dynamic reordering
    # ------------------------------------------------------------------
    def _maybe_reorder(self) -> None:
        """Auto-trigger: sift when the table has doubled since last time.

        Checked only at non-recursive operation entry points — never from
        inside a recursion, where locals cache levels and cofactors that
        a swap would invalidate.
        """
        if len(self._level) - 2 >= self._auto_limit:
            self.reorder("sift")

    def _swap_adjacent(self, i: int) -> None:
        """Swap the variables at levels ``i`` and ``i + 1`` in place.

        A local operation on the two level subtables: nodes at level
        ``i + 1`` never depend on the variable leaving level ``i`` and are
        relabeled wholesale; nodes at level ``i`` either ignore the
        variable entering it (relabel down) or are rewired around their
        four grandchild cofactors.  Rewired nodes keep their ids, so the
        function denoted by every existing id — live or dead — is
        preserved, which is what keeps client-held ids valid.
        """
        j = i + 1
        level_, low_, high_ = self._level, self._low, self._high
        old_i, old_j = self._tables[i], self._tables[j]
        movers: list[int] = []
        rebuilds: list[tuple[int, int, int, int, int]] = []
        for n in old_i.values():
            f0, f1 = low_[n], high_[n]
            dep0 = level_[f0] == j
            dep1 = level_[f1] == j
            if not (dep0 or dep1):
                movers.append(n)
                continue
            if dep0:
                f00, f01 = low_[f0], high_[f0]
            else:
                f00 = f01 = f0
            if dep1:
                f10, f11 = low_[f1], high_[f1]
            else:
                f10 = f11 = f1
            rebuilds.append((n, f00, f01, f10, f11))
        new_i: dict[tuple[int, int], int] = {}
        new_j: dict[tuple[int, int], int] = {}
        for n in old_j.values():  # independent of the old level-i variable
            level_[n] = i
            new_i[(low_[n], high_[n])] = n
        for n in movers:  # independent of the old level-j variable
            level_[n] = j
            new_j[(low_[n], high_[n])] = n
        self._tables[i] = new_i
        self._tables[j] = new_j
        mk = self._mk
        for n, f00, f01, f10, f11 in rebuilds:
            # n = ite(v; ite(u; f00, f10), ite(u; f01, f11)) with v now on
            # top; the two children cannot collapse (n depends on u) and
            # _mk shares them with movers when the functions coincide
            low_[n] = mk(j, f00, f10)
            high_[n] = mk(j, f01, f11)
            new_i[(low_[n], high_[n])] = n
        names = self._var_names
        names[i], names[j] = names[j], names[i]
        self._var_index[names[i]] = i
        self._var_index[names[j]] = j
        self.stats.swaps += 1

    def _blocks(self) -> list[list[str]]:
        """Sift units in current order: groups as one block, rest singletons."""
        blocks: list[list[str]] = []
        placed: set[int] = set()
        last_gid: int | None = None
        for name in self._var_names:
            gid = self._group_of.get(name)
            if gid is None:
                blocks.append([name])
            elif gid == last_gid:
                blocks[-1].append(name)
            elif gid in placed:
                raise BddError(
                    f"reorder group {self._groups[gid]!r} is not contiguous "
                    "in the current order"
                )
            else:
                blocks.append([name])
                placed.add(gid)
            last_gid = gid
        return blocks

    def _swap_blocks(self, blocks: list[list[str]], bi: int) -> None:
        """Exchange adjacent blocks ``bi`` and ``bi + 1`` by bubbling swaps."""
        a, b = len(blocks[bi]), len(blocks[bi + 1])
        s = sum(len(blk) for blk in blocks[:bi])
        for t in range(b):
            lvl = s + a + t
            for _ in range(a):
                lvl -= 1
                self._swap_adjacent(lvl)
        blocks[bi], blocks[bi + 1] = blocks[bi + 1], blocks[bi]

    def _live_size(self, roots: list[int]) -> int:
        """Internal nodes reachable from ``roots`` (terminals excluded)."""
        seen: set[int] = set()
        low_, high_ = self._low, self._high
        stack = list(roots)
        while stack:
            n = stack.pop()
            if n <= 1 or n in seen:
                continue
            seen.add(n)
            stack.append(low_[n])
            stack.append(high_[n])
        return len(seen)

    def _sift_block(
        self,
        blocks: list[list[str]],
        block: list[str],
        roots: list[int],
        growth: float,
    ) -> bool:
        """Sift one block to its best position under a max-growth bound.

        Candidate positions are sized by the nodes reachable from
        ``roots``: ids are stable across swaps, so one reachability pass
        per position measures exactly the functions the client cares
        about — the analogue of CUDD's live-node count, which is
        unavailable here because dead nodes are never collected.
        """
        m = len(blocks)
        k0 = next(k for k, blk in enumerate(blocks) if blk is block)
        start = self._live_size(roots)
        limit = int(start * growth) + 2
        best_size, best_idx, idx = start, k0, k0
        # walk to the nearer end first, then sweep to the other end
        directions = (1, -1) if (m - 1 - k0) <= k0 else (-1, 1)
        for d in directions:
            while 0 <= idx + d < m:
                self._swap_blocks(blocks, idx if d == 1 else idx - 1)
                idx += d
                size = self._live_size(roots)
                if size < best_size:
                    best_size, best_idx = size, idx
                if size > limit:
                    break
        while idx != best_idx:
            d = 1 if best_idx > idx else -1
            self._swap_blocks(blocks, idx if d == 1 else idx - 1)
            idx += d
        return best_idx != k0

    def _sift_pass(
        self, blocks: list[list[str]], roots: list[int], growth: float
    ) -> bool:
        """One sifting round over all blocks, heaviest subtables first."""
        tables = self._tables
        index = self._var_index

        def weight(block: list[str]) -> int:
            return -sum(len(tables[index[name]]) for name in block)

        moved = False
        for block in sorted(blocks, key=weight):
            if self._sift_block(blocks, block, roots, growth):
                moved = True
        return moved

    def reorder(
        self,
        method: str = "sift",
        *,
        roots: Iterable[int] | None = None,
        max_growth: float | None = None,
        rounds: int = 1,
    ) -> dict[str, int | str]:
        """Run in-place dynamic reordering; returns a summary dict.

        ``method="sift"`` (the only method) applies Rudell sifting: each
        block of variables — heaviest first — is bubbled through every
        position via adjacent-level swaps and parked where the functions
        of interest were smallest, abandoning a direction once they grow
        past ``max_growth`` × their pre-sift size.  Up to ``rounds``
        passes run, stopping early when a pass moves nothing.

        ``roots`` (default: the :meth:`add_reorder_root` registry) are
        the functions whose shared reachable size is minimized.  With no
        roots at all there is nothing to measure — the call records its
        bookkeeping (resetting the auto-reorder trigger) and returns
        without swapping.

        Every existing node id still denotes the same boolean function
        afterwards; all memo caches are dropped (the level-keyed
        quantification/rename caches would be stale, and the op caches
        are cheap to rebuild against the new structure).
        """
        if method != "sift":
            raise BddError(f"unknown reorder method {method!r}")
        growth = self._max_growth if max_growth is None else float(max_growth)
        live = list(self._roots if roots is None else roots)
        st = self.stats
        before = self._live_size(live)
        swaps0 = st.swaps
        blocks = self._blocks()
        if len(blocks) >= 2 and before:
            # a sift can run for a long time with no fixpoint ticks in
            # between — its start/finish events double as heartbeats so
            # the stall watchdog never flags a legitimately reordering
            # obligation
            if PROGRESS.enabled:
                PROGRESS.emit("reorder.start", nodes=before)
            if TRACER.enabled:
                with TRACER.span("bdd.reorder", category="bdd") as span:
                    self._run_sift(blocks, live, growth, rounds)
                    span.add("nodes_before", before)
                    span.add("nodes_after", self._live_size(live))
                    span.add("swaps", st.swaps - swaps0)
            else:
                self._run_sift(blocks, live, growth, rounds)
            if PROGRESS.enabled:
                PROGRESS.emit(
                    "reorder.finish",
                    nodes=self._live_size(live),
                    swaps=st.swaps - swaps0,
                )
        after = self._live_size(live)
        st.reorders += 1
        st.reorder_nodes_before += before
        st.reorder_nodes_after += after
        self.clear_caches()
        total = len(self._level) - 2
        self._last_reorder_size = total
        self._auto_limit = max(self._auto_min_nodes, 2 * total)
        return {
            "method": method,
            "nodes_before": before,
            "nodes_after": after,
            "swaps": st.swaps - swaps0,
        }

    def _run_sift(
        self,
        blocks: list[list[str]],
        roots: list[int],
        growth: float,
        rounds: int,
    ) -> None:
        for _ in range(max(1, rounds)):
            if not self._sift_pass(blocks, roots, growth):
                break

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> bytes:
        """Serialize the full node store to bytes.

        Wire form: magic, a little-endian ``uint32`` header length, a JSON
        header (variables in current order, reorder groups and config,
        node/allocation counts), then the ``_level``, ``_low`` and
        ``_high`` arrays as raw 64-bit little-endian integers — one
        packing pass over flat arrays, no per-node Python objects.
        Restoring rehashes the per-level subtables in one linear pass,
        which is far cheaper than re-elaborating the functions; memo
        caches are not serialized.  The format assumes a same-endianness
        reader (true for the fork/spawn process pools it serves).
        """
        header = {
            "version": 1,
            "vars": list(self._var_names),
            "groups": [list(g) for g in self._groups],
            "roots": list(self._roots),
            "reorder": self.reorder_mode,
            "auto_min_nodes": self._auto_min_nodes,
            "max_growth": self._max_growth,
            "nodes": len(self._level),
            "nodes_allocated": self.nodes_allocated,
            "last_reorder_size": self._last_reorder_size,
        }
        blob = json.dumps(header, separators=(",", ":"), sort_keys=True).encode()
        parts = [_SNAPSHOT_MAGIC, struct.pack("<I", len(blob)), blob]
        for field in (self._level, self._low, self._high):
            parts.append(array("q", field).tobytes())
        return b"".join(parts)

    def restore(self, data: bytes) -> None:
        """Reset this manager to the exact state captured by ``data``.

        Node ids from the snapshotted manager remain valid (the flat
        arrays are restored verbatim); all memo caches start empty.
        """
        if not data.startswith(_SNAPSHOT_MAGIC):
            raise BddError("not a BDD snapshot")
        off = len(_SNAPSHOT_MAGIC)
        (hlen,) = struct.unpack_from("<I", data, off)
        off += 4
        try:
            header = json.loads(data[off : off + hlen].decode())
        except ValueError as exc:
            raise BddError(f"corrupt BDD snapshot header: {exc}") from None
        off += hlen
        if header.get("version") != 1:
            raise BddError(
                f"unsupported snapshot version {header.get('version')!r}"
            )
        count = int(header["nodes"])
        nbytes = count * 8
        fields: list[list[int]] = []
        for _ in range(3):
            arr = array("q")
            arr.frombytes(data[off : off + nbytes])
            if len(arr) != count:
                raise BddError("truncated BDD snapshot")
            off += nbytes
            fields.append(arr.tolist())
        self._level, self._low, self._high = fields
        self._var_names = list(header["vars"])
        self._var_index = {name: lvl for lvl, name in enumerate(self._var_names)}
        self._groups = []
        self._group_of = {}
        for names in header["groups"]:
            gid = len(self._groups)
            self._groups.append(tuple(names))
            for name in names:
                self._group_of[name] = gid
        self._roots = [int(u) for u in header["roots"]]
        self._root_set = set(self._roots)
        self.nodes_allocated = int(header["nodes_allocated"])
        self._last_reorder_size = int(header["last_reorder_size"])
        self._configure_reorder(
            header["reorder"], header["auto_min_nodes"], header["max_growth"]
        )
        # rebuild the per-level unique subtables: one linear rehash pass
        tables: list[dict[tuple[int, int], int]] = [
            {} for _ in self._var_names
        ]
        level_, low_, high_ = self._level, self._low, self._high
        for n in range(2, len(level_)):
            tables[level_[n]][(low_[n], high_[n])] = n
        self._tables = tables
        self.clear_caches()

    @classmethod
    def from_snapshot(cls, data: bytes) -> BDD:
        """A fresh manager restored from :meth:`snapshot` bytes."""
        bdd = cls()
        bdd.restore(data)
        return bdd

    # ------------------------------------------------------------------
    # core operation: if-then-else
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """``if f then g else h`` — the universal ROBDD connective."""
        if self._auto:
            self._maybe_reorder()
        return self._ite_rec(f, g, h)

    def _ite_rec(self, f: int, g: int, h: int) -> int:
        # terminal cases
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        key = (f, g, h)
        caching = self.cache_enabled
        if caching:
            c = self._c_ite
            c.lookups += 1
            cached = self._ite_cache.get(key)
            if cached is not None:
                c.hits += 1
                return cached
        level_, low_, high_ = self._level, self._low, self._high
        lf, lg, lh = level_[f], level_[g], level_[h]
        level = lf if lf <= lg else lg
        if lh < level:
            level = lh
        if lf == level:
            f0, f1 = low_[f], high_[f]
        else:
            f0 = f1 = f
        if lg == level:
            g0, g1 = low_[g], high_[g]
        else:
            g0 = g1 = g
        if lh == level:
            h0, h1 = low_[h], high_[h]
        else:
            h0 = h1 = h
        low = self._ite_rec(f0, g0, h0)
        high = self._ite_rec(f1, g1, h1)
        result = self._mk(level, low, high)
        if caching:
            self._ite_cache[key] = result
            c.inserts += 1
        return result

    def _cofactors(self, u: int, level: int) -> tuple[int, int]:
        """(u|var=0, u|var=1) for the variable at ``level``."""
        if self._level[u] == level:
            return self._low[u], self._high[u]
        return u, u

    # ------------------------------------------------------------------
    # specialized binary kernels
    # ------------------------------------------------------------------
    def _and_rec(self, u: int, v: int) -> int:
        """Conjunction kernel (canonicalized cache key, inlined cofactors)."""
        if u <= 1:
            return v if u else FALSE
        if v <= 1:
            return u if v else FALSE
        if u == v:
            return u
        if u > v:  # AND is commutative: canonicalize the cache key
            u, v = v, u
        caching = self.cache_enabled
        if caching:
            c = self._c_and
            c.lookups += 1
            cached = self._and_cache.get((u, v))
            if cached is not None:
                c.hits += 1
                return cached
        level_, low_, high_ = self._level, self._low, self._high
        lu, lv = level_[u], level_[v]
        if lu <= lv:
            top, u0, u1 = lu, low_[u], high_[u]
        else:
            top, u0, u1 = lv, u, u
        if lv <= lu:
            v0, v1 = low_[v], high_[v]
        else:
            v0, v1 = v, v
        low = self._and_rec(u0, v0)
        high = self._and_rec(u1, v1)
        result = self._mk(top, low, high)
        if caching:
            self._and_cache[(u, v)] = result
            c.inserts += 1
        return result

    def _or_rec(self, u: int, v: int) -> int:
        """Disjunction kernel (canonicalized cache key, inlined cofactors)."""
        if u <= 1:
            return TRUE if u else v
        if v <= 1:
            return TRUE if v else u
        if u == v:
            return u
        if u > v:  # OR is commutative
            u, v = v, u
        caching = self.cache_enabled
        if caching:
            c = self._c_or
            c.lookups += 1
            cached = self._or_cache.get((u, v))
            if cached is not None:
                c.hits += 1
                return cached
        level_, low_, high_ = self._level, self._low, self._high
        lu, lv = level_[u], level_[v]
        if lu <= lv:
            top, u0, u1 = lu, low_[u], high_[u]
        else:
            top, u0, u1 = lv, u, u
        if lv <= lu:
            v0, v1 = low_[v], high_[v]
        else:
            v0, v1 = v, v
        low = self._or_rec(u0, v0)
        high = self._or_rec(u1, v1)
        result = self._mk(top, low, high)
        if caching:
            self._or_cache[(u, v)] = result
            c.inserts += 1
        return result

    def _xor_rec(self, u: int, v: int) -> int:
        """Exclusive-or kernel; terminal negations go through the neg table."""
        if u == v:
            return FALSE
        if u <= 1:
            return self.negate(v) if u else v
        if v <= 1:
            return self.negate(u) if v else u
        if u > v:  # XOR is commutative
            u, v = v, u
        caching = self.cache_enabled
        if caching:
            c = self._c_xor
            c.lookups += 1
            cached = self._xor_cache.get((u, v))
            if cached is not None:
                c.hits += 1
                return cached
        level_, low_, high_ = self._level, self._low, self._high
        lu, lv = level_[u], level_[v]
        if lu <= lv:
            top, u0, u1 = lu, low_[u], high_[u]
        else:
            top, u0, u1 = lv, u, u
        if lv <= lu:
            v0, v1 = low_[v], high_[v]
        else:
            v0, v1 = v, v
        low = self._xor_rec(u0, v0)
        high = self._xor_rec(u1, v1)
        result = self._mk(top, low, high)
        if caching:
            self._xor_cache[(u, v)] = result
            c.inserts += 1
        return result

    # ------------------------------------------------------------------
    # derived boolean operations
    # ------------------------------------------------------------------
    def negate(self, u: int) -> int:
        """Logical negation — an amortized-O(1) memoized involution.

        The table stores ``u ↔ ¬u`` in both directions, so negating a
        previously seen function (or a previous negation result) is a
        single dict probe.  The first negation of a function is one pass
        over its DAG, not an ``ite`` recursion.

        (No auto-reorder check here: the xor kernel calls this from
        inside its recursion, where a reorder would corrupt the frame.)
        """
        cache = self._neg_cache
        c = self._c_neg
        c.lookups += 1
        cached = cache.get(u)
        if cached is not None:
            c.hits += 1
            return cached
        if not self.cache_enabled:
            # local memo only: still linear in the DAG, nothing retained
            cache = dict(cache)
        level_, low_, high_ = self._level, self._low, self._high
        mk = self._mk

        def rec(n: int) -> int:
            r = cache.get(n)
            if r is None:
                r = mk(level_[n], rec(low_[n]), rec(high_[n]))
                cache[n] = r
                cache[r] = n
                c.inserts += 2
            return r

        return rec(u)

    def apply(self, op: str, u: int, v: int) -> int:
        """Apply a binary boolean operator by name.

        Supported: ``and or xor nand nor xnor iff implies diff``.  Each
        operator dispatches to a specialized kernel (plus the negation
        table) — no throwaway ``ite`` intermediates are built.
        """
        if self._auto:
            self._maybe_reorder()
        if op == "and":
            return self._and_rec(u, v)
        if op == "or":
            return self._or_rec(u, v)
        if op == "xor":
            return self._xor_rec(u, v)
        if op == "nand":
            return self.negate(self._and_rec(u, v))
        if op == "nor":
            return self.negate(self._or_rec(u, v))
        if op in ("xnor", "iff"):
            return self.negate(self._xor_rec(u, v))
        if op in ("implies", "imp"):
            return self._or_rec(self.negate(u), v)
        if op == "diff":  # u and not v
            return self._and_rec(u, self.negate(v))
        raise BddError(f"unknown operator {op!r}")

    def conj(self, us: Iterable[int]) -> int:
        """Conjunction of an iterable of BDDs (TRUE when empty).

        Folds a balanced tree over the operands: pairwise rounds instead
        of a left-fold, so no single lopsided accumulator is dragged
        through every combination step.
        """
        if self._auto:
            self._maybe_reorder()
        items = [u for u in us if u != TRUE]
        if not items:
            return TRUE
        land = self._and_rec
        while len(items) > 1:
            paired = [
                land(items[i], items[i + 1]) for i in range(0, len(items) - 1, 2)
            ]
            if len(items) & 1:
                paired.append(items[-1])
            items = paired
        return items[0]

    def disj(self, us: Iterable[int]) -> int:
        """Disjunction of an iterable of BDDs (FALSE when empty).

        Balanced-tree fold, like :meth:`conj`.
        """
        if self._auto:
            self._maybe_reorder()
        items = [u for u in us if u != FALSE]
        if not items:
            return FALSE
        lor = self._or_rec
        while len(items) > 1:
            paired = [
                lor(items[i], items[i + 1]) for i in range(0, len(items) - 1, 2)
            ]
            if len(items) & 1:
                paired.append(items[-1])
            items = paired
        return items[0]

    def cube(self, assignment: Mapping[str, bool]) -> int:
        """Conjunction of literals described by a {name: bool} mapping."""
        if self._auto:
            self._maybe_reorder()
        acc = TRUE
        for name in sorted(assignment, key=self.level_of, reverse=True):
            lit = self.var(name) if assignment[name] else self.nvar(name)
            acc = self._and_rec(lit, acc)
        return acc

    # ------------------------------------------------------------------
    # quantification
    # ------------------------------------------------------------------
    def exists(self, names: Iterable[str], u: int) -> int:
        """Existential quantification over the given variables."""
        if self._auto:
            self._maybe_reorder()
        levels = frozenset(self.level_of(n) for n in names)
        if not levels:
            return u
        return self._quantify(u, levels, conj=False)

    def forall(self, names: Iterable[str], u: int) -> int:
        """Universal quantification over the given variables."""
        if self._auto:
            self._maybe_reorder()
        levels = frozenset(self.level_of(n) for n in names)
        if not levels:
            return u
        return self._quantify(u, levels, conj=True)

    def _quantifier(self, levels: frozenset[int], conj: bool):
        """A memoized one-argument quantifier closure for ``levels``.

        Hoists the per-context state (sub-cache, max level, combiner) out
        of the per-node recursion; :meth:`_and_exists` builds one closure
        per relational product and reuses it on every TRUE-branch.
        """
        ckey = (1 if conj else 0, levels)
        cache = self._quant_cache.get(ckey)
        if cache is None:
            cache = self._quant_cache[ckey] = {}
        maxlvl = max(levels)
        c = self._c_quant
        level_, low_, high_ = self._level, self._low, self._high
        combine = self._and_rec if conj else self._or_rec
        mk = self._mk

        def rec(n: int) -> int:
            if n <= 1:
                return n
            lvl = level_[n]
            if lvl > maxlvl:
                return n
            c.lookups += 1
            result = cache.get(n)
            if result is not None:
                c.hits += 1
                return result
            low = rec(low_[n])
            high = rec(high_[n])
            if lvl in levels:
                result = combine(low, high)
            else:
                result = mk(lvl, low, high)
            cache[n] = result
            c.inserts += 1
            return result

        return rec

    def _quantify(self, u: int, levels: frozenset[int], conj: bool) -> int:
        if u <= 1:
            return u
        return self._quantifier(levels, conj)(u)

    def and_exists(self, u: int, v: int, names: Iterable[str]) -> int:
        """Fused ``exists names. (u and v)`` — the relational product.

        The fusion matters: the conjunction ``u and v`` (a constrained
        transition relation) is never materialized, which is the standard
        image-computation optimization in symbolic model checkers.
        """
        if self._auto:
            self._maybe_reorder()
        levels = frozenset(self.level_of(n) for n in names)
        if not levels:
            return self._and_rec(u, v)
        if TRACER.enabled:
            # the relational-product span: one per image step, with the
            # node traffic it caused attached as counters
            with TRACER.span("bdd.and_exists", category="bdd") as span:
                mk_before = self.stats.mk_calls
                result = self._and_exists(u, v, levels)
                span.add("mk_calls", self.stats.mk_calls - mk_before)
            return result
        return self._and_exists(u, v, levels)

    def _and_exists(self, u: int, v: int, levels: frozenset[int]) -> int:
        cache = self._and_exists_cache.get(levels)
        if cache is None:
            cache = self._and_exists_cache[levels] = {}
        c = self._c_and_exists
        level_, low_, high_ = self._level, self._low, self._high
        lor = self._or_rec
        mk = self._mk
        quantify = self._quantifier(levels, conj=False)

        def rec(a: int, b: int) -> int:
            if a > b:  # canonicalize for the cache: AND is commutative
                a, b = b, a
            # a is now the smaller id: a == 0 covers either side FALSE
            if a == FALSE:
                return FALSE
            if a == TRUE:
                return TRUE if b == TRUE else quantify(b)
            if a == b:
                return quantify(a)
            key = (a, b)
            c.lookups += 1
            result = cache.get(key)
            if result is not None:
                c.hits += 1
                return result
            la, lb = level_[a], level_[b]
            if la <= lb:
                level, a0, a1 = la, low_[a], high_[a]
            else:
                level, a0, a1 = lb, a, a
            if lb <= la:
                b0, b1 = low_[b], high_[b]
            else:
                b0, b1 = b, b
            low = rec(a0, b0)
            if level in levels:
                if low == TRUE:
                    result = TRUE
                else:
                    result = lor(low, rec(a1, b1))
            else:
                result = mk(level, low, rec(a1, b1))
            cache[key] = result
            c.inserts += 1
            return result

        return rec(u, v)

    # ------------------------------------------------------------------
    # renaming and cofactoring
    # ------------------------------------------------------------------
    def rename(self, u: int, mapping: Mapping[str, str]) -> int:
        """Substitute variables: each key variable becomes its value variable.

        The mapping must be *order-preserving on the support of* ``u``:
        relabeled levels must remain strictly increasing along every path.
        This holds for the interleaved current/next variable orders used by
        the model checker (``a ↦ a'`` with ``a'`` grouped directly below
        ``a`` — the pairing survives reordering because the variables are
        sifted as one block).  A non-monotone mapping raises
        :class:`BddError`.
        """
        if self._auto:
            self._maybe_reorder()
        level_map = {self.level_of(a): self.level_of(b) for a, b in mapping.items()}
        support = sorted(self.level_of(n) for n in self.support(u))
        mapped = [level_map.get(lv, lv) for lv in support]
        if sorted(mapped) != mapped or len(set(mapped)) != len(mapped):
            raise BddError("rename mapping is not order-preserving on the support")
        key_map = tuple(sorted(level_map.items()))
        return self._rename(u, level_map, key_map)

    def _rename(
        self,
        u: int,
        level_map: Mapping[int, int],
        key_map: tuple[tuple[int, int], ...],
    ) -> int:
        if u <= 1:
            return u
        cache = self._rename_cache.get(key_map)
        if cache is None:
            cache = self._rename_cache[key_map] = {}
        c = self._c_rename
        level_, low_, high_ = self._level, self._low, self._high
        mk = self._mk
        get_level = level_map.get

        def rec(n: int) -> int:
            if n <= 1:
                return n
            c.lookups += 1
            result = cache.get(n)
            if result is not None:
                c.hits += 1
                return result
            lvl = level_[n]
            result = mk(get_level(lvl, lvl), rec(low_[n]), rec(high_[n]))
            cache[n] = result
            c.inserts += 1
            return result

        return rec(u)

    def restrict(self, u: int, assignment: Mapping[str, bool]) -> int:
        """Cofactor: fix the given variables to constants."""
        if self._auto:
            self._maybe_reorder()
        values = {self.level_of(n): bool(b) for n, b in assignment.items()}
        return self._restrict(u, values, {})

    def _restrict(self, u: int, values: Mapping[int, bool], memo: dict[int, int]) -> int:
        if u <= 1:
            return u
        cached = memo.get(u)
        if cached is not None:
            return cached
        lvl = self._level[u]
        if lvl in values:
            result = self._restrict(
                self._high[u] if values[lvl] else self._low[u], values, memo
            )
        else:
            low = self._restrict(self._low[u], values, memo)
            high = self._restrict(self._high[u], values, memo)
            result = self._mk(lvl, low, high)
        memo[u] = result
        return result

    # ------------------------------------------------------------------
    # satisfying assignments
    # ------------------------------------------------------------------
    def sat_count(self, u: int, nvars: int | None = None) -> int:
        """Number of satisfying assignments over ``nvars`` variables.

        Defaults to all declared variables.  Returns an exact ``int``:
        the count is exponential in ``nvars``, and Python integers are
        arbitrary-precision, so counts stay exact past the 2^53 range
        where ``float`` arithmetic starts silently rounding (and the
        ~2^1024 range where it overflows outright).
        """
        if nvars is None:
            nvars = self.num_vars()
        memo: dict[int, int] = {}

        def count(n: int) -> int:
            # count over variables strictly below level(n)'s position
            if n == FALSE:
                return 0
            if n == TRUE:
                return 1
            c = memo.get(n)
            if c is None:
                lvl = self._level[n]
                lo, hi = self._low[n], self._high[n]
                lo_lvl = min(self._level[lo], nvars)
                hi_lvl = min(self._level[hi], nvars)
                c = count(lo) * (2 ** (lo_lvl - lvl - 1)) + count(hi) * (
                    2 ** (hi_lvl - lvl - 1)
                )
                memo[n] = c
            return c

        top = min(self._level[u], nvars)
        return count(u) * (2**top)

    def pick(self, u: int) -> dict[str, bool] | None:
        """One satisfying assignment (partial — only decided variables), or None."""
        if u == FALSE:
            return None
        out: dict[str, bool] = {}
        while u != TRUE:
            name = self._var_names[self._level[u]]
            if self._low[u] != FALSE:
                out[name] = False
                u = self._low[u]
            else:
                out[name] = True
                u = self._high[u]
        return out

    def iter_sat(self, u: int, names: Iterable[str] | None = None) -> Iterator[dict[str, bool]]:
        """Iterate over *total* satisfying assignments of the given variables.

        ``names`` defaults to every declared variable; variables not on a
        path through the BDD are expanded to both values.
        """
        names = list(self._var_names if names is None else names)
        partial: dict[str, bool] = {}

        def rec(n: int, idx: int) -> Iterator[dict[str, bool]]:
            if n == FALSE:
                return
            if idx == len(names):
                # any leftover (unselected) variables are quantified away:
                # n != FALSE means some completion satisfies u
                yield dict(partial)
                return
            name = names[idx]
            for val in (False, True):
                m = self.restrict(n, {name: val})
                if m != FALSE:
                    partial[name] = val
                    yield from rec(m, idx + 1)
                    del partial[name]

        yield from rec(u, 0)

    # ------------------------------------------------------------------
    # support
    # ------------------------------------------------------------------
    def support(self, u: int) -> set[str]:
        """Set of variable names the function actually depends on."""
        seen: set[int] = set()
        levels: set[int] = set()
        stack = [u]
        while stack:
            n = stack.pop()
            if n <= 1 or n in seen:
                continue
            seen.add(n)
            levels.add(self._level[n])
            stack.append(self._low[n])
            stack.append(self._high[n])
        return {self._var_names[lv] for lv in levels}
