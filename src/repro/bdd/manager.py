"""Reduced Ordered Binary Decision Diagram (ROBDD) manager.

This is the substrate of the symbolic model checker, playing the role that
the CUDD-style package plays inside SMV in the paper.  It is a classic
hash-consed ROBDD implementation:

* nodes are small integers; ``0`` is the constant FALSE and ``1`` the
  constant TRUE;
* every internal node is a triple ``(level, low, high)`` interned in a
  *unique table*, so structural equality is pointer (integer) equality;
* the boolean connectives run on **specialized recursive kernels**
  (:meth:`BDD._and_rec`, :meth:`BDD._or_rec`, :meth:`BDD._xor_rec`) with
  commutativity-canonicalized per-op caches; the universal memoized
  ``ite`` (if-then-else) is kept for ternary composition and transfer;
* negation is a **memoized involution**: a dedicated bidirectional table
  maps ``u ↔ ¬u``, so repeated :meth:`BDD.negate` calls are O(1) dict
  probes instead of a recursive ``ite`` traversal (the first negation of
  a function is one linear pass that records both directions);
* quantification, renaming and the fused relational product
  (:meth:`BDD.and_exists`) are provided for image computation.

The manager keeps the statistics the paper's figures report: the total
number of nodes ever allocated (``nodes_allocated``) mirrors SMV's
"BDD nodes allocated" line, and :meth:`BDD.node_count` of a transition
relation mirrors "BDD nodes representing transition relation".  On top of
that, :attr:`BDD.stats` (a :class:`repro.bdd.stats.BDDStats`) tracks
per-operation cache lookups/hits/inserts, ``_mk`` calls and the peak
unique-table size, which the checkers surface in their
``resources used:`` blocks.

Performance notes (per the project's HPC guidelines): the hot paths are
the binary-op recursions and the fused relational product.  They use flat
list storage for node fields (no per-node objects), dict-based
memoization with two-element canonical keys for the commutative ops, and
inlined cofactor computation (no helper calls in the recursion).
:meth:`BDD.conj` / :meth:`BDD.disj` fold **balanced trees** over their
operands — a linear left-fold drags one growing accumulator through every
step, which is directly visible in transition-relation construction
(``frame``/``symbolic_compose``); the balanced fold keeps intermediates
small and cache keys diverse.  Recursion depth is bounded by the number
of variables, which is small (tens) for the systems in this domain.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from repro.bdd.stats import BDDStats
from repro.errors import BddError
from repro.obs.tracer import TRACER

#: Constant node id for FALSE.
FALSE = 0
#: Constant node id for TRUE.
TRUE = 1

#: Level assigned to the two terminal nodes; larger than any variable level.
_TERMINAL_LEVEL = 1 << 30


class BDD:
    """A BDD manager: variable ordering, unique table, and operations.

    Variables are created with :meth:`add_var` and are ordered by creation
    order (creation order == level, level 0 at the top).  All node ids
    returned by one manager are only meaningful for that manager; use
    :func:`repro.bdd.ops.transfer` to move functions between managers.

    Example
    -------
    >>> b = BDD()
    >>> x, y = b.add_var("x"), b.add_var("y")
    >>> f = b.apply("and", b.var("x"), b.var("y"))
    >>> b.sat_count(f)
    1
    """

    def __init__(self) -> None:
        # Parallel arrays for node fields.  Slots 0/1 are the terminals.
        self._level: list[int] = [_TERMINAL_LEVEL, _TERMINAL_LEVEL]
        self._low: list[int] = [0, 1]
        self._high: list[int] = [0, 1]
        # unique table: (level, low, high) -> node id
        self._unique: dict[tuple[int, int, int], int] = {}
        # memo tables
        self._ite_cache: dict[tuple[int, int, int], int] = {}
        self._and_cache: dict[tuple[int, int], int] = {}
        self._or_cache: dict[tuple[int, int], int] = {}
        self._xor_cache: dict[tuple[int, int], int] = {}
        # bidirectional u <-> not(u); the terminals are permanent entries
        self._neg_cache: dict[int, int] = {FALSE: TRUE, TRUE: FALSE}
        # quantification/rename caches are two-level: one sub-table per
        # (operation context), so the per-node keys are plain ints/pairs
        self._quant_cache: dict[tuple[int, frozenset[int]], dict[int, int]] = {}
        self._and_exists_cache: dict[frozenset[int], dict[tuple[int, int], int]] = {}
        self._rename_cache: dict[tuple[tuple[int, int], ...], dict[int, int]] = {}
        # variables
        self._var_names: list[str] = []
        self._var_index: dict[str, int] = {}
        # statistics
        self.nodes_allocated: int = 2  # terminals count, like SMV's base cost
        self.cache_enabled: bool = True
        #: Op-level counters (lookups/hits/inserts per memo table, _mk
        #: calls, peak unique-table size).  Cumulative; snapshot/delta to
        #: attribute costs to a single run.
        self.stats = BDDStats()
        ops = self.stats.ops
        self._c_ite = ops["ite"]
        self._c_and = ops["and"]
        self._c_or = ops["or"]
        self._c_xor = ops["xor"]
        self._c_neg = ops["neg"]
        self._c_quant = ops["quant"]
        self._c_and_exists = ops["and_exists"]
        self._c_rename = ops["rename"]

    # ------------------------------------------------------------------
    # variables
    # ------------------------------------------------------------------
    def add_var(self, name: str) -> int:
        """Declare a new variable at the bottom of the order; return its level."""
        if name in self._var_index:
            raise BddError(f"variable {name!r} already declared")
        level = len(self._var_names)
        self._var_names.append(name)
        self._var_index[name] = level
        return level

    def declare(self, *names: str) -> None:
        """Declare several variables in order (convenience for tests)."""
        for name in names:
            self.add_var(name)

    @property
    def var_names(self) -> tuple[str, ...]:
        """All declared variable names, top of the order first."""
        return tuple(self._var_names)

    def num_vars(self) -> int:
        """Number of declared variables."""
        return len(self._var_names)

    def level_of(self, name: str) -> int:
        """Level (position in the order) of variable ``name``."""
        try:
            return self._var_index[name]
        except KeyError:
            raise BddError(f"unknown variable {name!r}") from None

    def name_of(self, level: int) -> str:
        """Variable name at ``level``."""
        return self._var_names[level]

    def var(self, name: str) -> int:
        """The BDD of the literal ``name`` (a single positive variable)."""
        return self._mk(self.level_of(name), FALSE, TRUE)

    def nvar(self, name: str) -> int:
        """The BDD of the negative literal ``!name``."""
        return self._mk(self.level_of(name), TRUE, FALSE)

    # ------------------------------------------------------------------
    # node construction / inspection
    # ------------------------------------------------------------------
    def _mk(self, level: int, low: int, high: int) -> int:
        """Find-or-create the node ``(level, low, high)`` (reduction applied)."""
        if low == high:
            return low
        st = self.stats
        st.mk_calls += 1
        key = (level, low, high)
        unique = self._unique
        node = unique.get(key)
        if node is None:
            node = len(self._level)
            self._level.append(level)
            self._low.append(low)
            self._high.append(high)
            unique[key] = node
            self.nodes_allocated += 1
            if len(unique) > st.peak_unique_nodes:
                st.peak_unique_nodes = len(unique)
        return node

    def level(self, u: int) -> int:
        """Level of node ``u`` (terminals have a sentinel maximal level)."""
        return self._level[u]

    def low(self, u: int) -> int:
        """Else-branch (variable false) of node ``u``."""
        return self._low[u]

    def high(self, u: int) -> int:
        """Then-branch (variable true) of node ``u``."""
        return self._high[u]

    def is_terminal(self, u: int) -> bool:
        """True iff ``u`` is one of the constants FALSE/TRUE."""
        return u <= 1

    def node_count(self, u: int) -> int:
        """Number of distinct internal nodes reachable from ``u``.

        This is the metric SMV prints as "BDD nodes representing transition
        relation" (terminals excluded).
        """
        seen: set[int] = set()
        stack = [u]
        while stack:
            n = stack.pop()
            if n <= 1 or n in seen:
                continue
            seen.add(n)
            stack.append(self._low[n])
            stack.append(self._high[n])
        return len(seen)

    def num_live_nodes(self) -> int:
        """Total internal nodes currently interned (no GC is performed)."""
        return len(self._level) - 2

    def unique_size(self) -> int:
        """Current number of entries in the unique table."""
        return len(self._unique)

    def clear_caches(self) -> None:
        """Drop all memoization tables (unique table is kept)."""
        self._ite_cache.clear()
        self._and_cache.clear()
        self._or_cache.clear()
        self._xor_cache.clear()
        self._neg_cache.clear()
        self._neg_cache[FALSE] = TRUE
        self._neg_cache[TRUE] = FALSE
        self._quant_cache.clear()
        self._and_exists_cache.clear()
        self._rename_cache.clear()

    # ------------------------------------------------------------------
    # core operation: if-then-else
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """``if f then g else h`` — the universal ROBDD connective."""
        # terminal cases
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        key = (f, g, h)
        caching = self.cache_enabled
        if caching:
            c = self._c_ite
            c.lookups += 1
            cached = self._ite_cache.get(key)
            if cached is not None:
                c.hits += 1
                return cached
        level_, low_, high_ = self._level, self._low, self._high
        lf, lg, lh = level_[f], level_[g], level_[h]
        level = lf if lf <= lg else lg
        if lh < level:
            level = lh
        if lf == level:
            f0, f1 = low_[f], high_[f]
        else:
            f0 = f1 = f
        if lg == level:
            g0, g1 = low_[g], high_[g]
        else:
            g0 = g1 = g
        if lh == level:
            h0, h1 = low_[h], high_[h]
        else:
            h0 = h1 = h
        low = self.ite(f0, g0, h0)
        high = self.ite(f1, g1, h1)
        result = self._mk(level, low, high)
        if caching:
            self._ite_cache[key] = result
            c.inserts += 1
        return result

    def _cofactors(self, u: int, level: int) -> tuple[int, int]:
        """(u|var=0, u|var=1) for the variable at ``level``."""
        if self._level[u] == level:
            return self._low[u], self._high[u]
        return u, u

    # ------------------------------------------------------------------
    # specialized binary kernels
    # ------------------------------------------------------------------
    def _and_rec(self, u: int, v: int) -> int:
        """Conjunction kernel (canonicalized cache key, inlined cofactors)."""
        if u <= 1:
            return v if u else FALSE
        if v <= 1:
            return u if v else FALSE
        if u == v:
            return u
        if u > v:  # AND is commutative: canonicalize the cache key
            u, v = v, u
        caching = self.cache_enabled
        if caching:
            c = self._c_and
            c.lookups += 1
            cached = self._and_cache.get((u, v))
            if cached is not None:
                c.hits += 1
                return cached
        level_, low_, high_ = self._level, self._low, self._high
        lu, lv = level_[u], level_[v]
        if lu <= lv:
            top, u0, u1 = lu, low_[u], high_[u]
        else:
            top, u0, u1 = lv, u, u
        if lv <= lu:
            v0, v1 = low_[v], high_[v]
        else:
            v0, v1 = v, v
        low = self._and_rec(u0, v0)
        high = self._and_rec(u1, v1)
        result = self._mk(top, low, high)
        if caching:
            self._and_cache[(u, v)] = result
            c.inserts += 1
        return result

    def _or_rec(self, u: int, v: int) -> int:
        """Disjunction kernel (canonicalized cache key, inlined cofactors)."""
        if u <= 1:
            return TRUE if u else v
        if v <= 1:
            return TRUE if v else u
        if u == v:
            return u
        if u > v:  # OR is commutative
            u, v = v, u
        caching = self.cache_enabled
        if caching:
            c = self._c_or
            c.lookups += 1
            cached = self._or_cache.get((u, v))
            if cached is not None:
                c.hits += 1
                return cached
        level_, low_, high_ = self._level, self._low, self._high
        lu, lv = level_[u], level_[v]
        if lu <= lv:
            top, u0, u1 = lu, low_[u], high_[u]
        else:
            top, u0, u1 = lv, u, u
        if lv <= lu:
            v0, v1 = low_[v], high_[v]
        else:
            v0, v1 = v, v
        low = self._or_rec(u0, v0)
        high = self._or_rec(u1, v1)
        result = self._mk(top, low, high)
        if caching:
            self._or_cache[(u, v)] = result
            c.inserts += 1
        return result

    def _xor_rec(self, u: int, v: int) -> int:
        """Exclusive-or kernel; terminal negations go through the neg table."""
        if u == v:
            return FALSE
        if u <= 1:
            return self.negate(v) if u else v
        if v <= 1:
            return self.negate(u) if v else u
        if u > v:  # XOR is commutative
            u, v = v, u
        caching = self.cache_enabled
        if caching:
            c = self._c_xor
            c.lookups += 1
            cached = self._xor_cache.get((u, v))
            if cached is not None:
                c.hits += 1
                return cached
        level_, low_, high_ = self._level, self._low, self._high
        lu, lv = level_[u], level_[v]
        if lu <= lv:
            top, u0, u1 = lu, low_[u], high_[u]
        else:
            top, u0, u1 = lv, u, u
        if lv <= lu:
            v0, v1 = low_[v], high_[v]
        else:
            v0, v1 = v, v
        low = self._xor_rec(u0, v0)
        high = self._xor_rec(u1, v1)
        result = self._mk(top, low, high)
        if caching:
            self._xor_cache[(u, v)] = result
            c.inserts += 1
        return result

    # ------------------------------------------------------------------
    # derived boolean operations
    # ------------------------------------------------------------------
    def negate(self, u: int) -> int:
        """Logical negation — an amortized-O(1) memoized involution.

        The table stores ``u ↔ ¬u`` in both directions, so negating a
        previously seen function (or a previous negation result) is a
        single dict probe.  The first negation of a function is one pass
        over its DAG, not an ``ite`` recursion.
        """
        cache = self._neg_cache
        c = self._c_neg
        c.lookups += 1
        cached = cache.get(u)
        if cached is not None:
            c.hits += 1
            return cached
        if not self.cache_enabled:
            # local memo only: still linear in the DAG, nothing retained
            cache = dict(cache)
        level_, low_, high_ = self._level, self._low, self._high
        mk = self._mk

        def rec(n: int) -> int:
            r = cache.get(n)
            if r is None:
                r = mk(level_[n], rec(low_[n]), rec(high_[n]))
                cache[n] = r
                cache[r] = n
                c.inserts += 2
            return r

        return rec(u)

    def apply(self, op: str, u: int, v: int) -> int:
        """Apply a binary boolean operator by name.

        Supported: ``and or xor nand nor xnor iff implies diff``.  Each
        operator dispatches to a specialized kernel (plus the negation
        table) — no throwaway ``ite`` intermediates are built.
        """
        if op == "and":
            return self._and_rec(u, v)
        if op == "or":
            return self._or_rec(u, v)
        if op == "xor":
            return self._xor_rec(u, v)
        if op == "nand":
            return self.negate(self._and_rec(u, v))
        if op == "nor":
            return self.negate(self._or_rec(u, v))
        if op in ("xnor", "iff"):
            return self.negate(self._xor_rec(u, v))
        if op in ("implies", "imp"):
            return self._or_rec(self.negate(u), v)
        if op == "diff":  # u and not v
            return self._and_rec(u, self.negate(v))
        raise BddError(f"unknown operator {op!r}")

    def conj(self, us: Iterable[int]) -> int:
        """Conjunction of an iterable of BDDs (TRUE when empty).

        Folds a balanced tree over the operands: pairwise rounds instead
        of a left-fold, so no single lopsided accumulator is dragged
        through every combination step.
        """
        items = [u for u in us if u != TRUE]
        if not items:
            return TRUE
        land = self._and_rec
        while len(items) > 1:
            paired = [
                land(items[i], items[i + 1]) for i in range(0, len(items) - 1, 2)
            ]
            if len(items) & 1:
                paired.append(items[-1])
            items = paired
        return items[0]

    def disj(self, us: Iterable[int]) -> int:
        """Disjunction of an iterable of BDDs (FALSE when empty).

        Balanced-tree fold, like :meth:`conj`.
        """
        items = [u for u in us if u != FALSE]
        if not items:
            return FALSE
        lor = self._or_rec
        while len(items) > 1:
            paired = [
                lor(items[i], items[i + 1]) for i in range(0, len(items) - 1, 2)
            ]
            if len(items) & 1:
                paired.append(items[-1])
            items = paired
        return items[0]

    def cube(self, assignment: Mapping[str, bool]) -> int:
        """Conjunction of literals described by a {name: bool} mapping."""
        acc = TRUE
        for name in sorted(assignment, key=self.level_of, reverse=True):
            lit = self.var(name) if assignment[name] else self.nvar(name)
            acc = self._and_rec(lit, acc)
        return acc

    # ------------------------------------------------------------------
    # quantification
    # ------------------------------------------------------------------
    def exists(self, names: Iterable[str], u: int) -> int:
        """Existential quantification over the given variables."""
        levels = frozenset(self.level_of(n) for n in names)
        if not levels:
            return u
        return self._quantify(u, levels, conj=False)

    def forall(self, names: Iterable[str], u: int) -> int:
        """Universal quantification over the given variables."""
        levels = frozenset(self.level_of(n) for n in names)
        if not levels:
            return u
        return self._quantify(u, levels, conj=True)

    def _quantifier(self, levels: frozenset[int], conj: bool):
        """A memoized one-argument quantifier closure for ``levels``.

        Hoists the per-context state (sub-cache, max level, combiner) out
        of the per-node recursion; :meth:`_and_exists` builds one closure
        per relational product and reuses it on every TRUE-branch.
        """
        ckey = (1 if conj else 0, levels)
        cache = self._quant_cache.get(ckey)
        if cache is None:
            cache = self._quant_cache[ckey] = {}
        maxlvl = max(levels)
        c = self._c_quant
        level_, low_, high_ = self._level, self._low, self._high
        combine = self._and_rec if conj else self._or_rec
        mk = self._mk

        def rec(n: int) -> int:
            if n <= 1:
                return n
            lvl = level_[n]
            if lvl > maxlvl:
                return n
            c.lookups += 1
            result = cache.get(n)
            if result is not None:
                c.hits += 1
                return result
            low = rec(low_[n])
            high = rec(high_[n])
            if lvl in levels:
                result = combine(low, high)
            else:
                result = mk(lvl, low, high)
            cache[n] = result
            c.inserts += 1
            return result

        return rec

    def _quantify(self, u: int, levels: frozenset[int], conj: bool) -> int:
        if u <= 1:
            return u
        return self._quantifier(levels, conj)(u)

    def and_exists(self, u: int, v: int, names: Iterable[str]) -> int:
        """Fused ``exists names. (u and v)`` — the relational product.

        The fusion matters: the conjunction ``u and v`` (a constrained
        transition relation) is never materialized, which is the standard
        image-computation optimization in symbolic model checkers.
        """
        levels = frozenset(self.level_of(n) for n in names)
        if not levels:
            return self._and_rec(u, v)
        if TRACER.enabled:
            # the relational-product span: one per image step, with the
            # node traffic it caused attached as counters
            with TRACER.span("bdd.and_exists", category="bdd") as span:
                mk_before = self.stats.mk_calls
                result = self._and_exists(u, v, levels)
                span.add("mk_calls", self.stats.mk_calls - mk_before)
            return result
        return self._and_exists(u, v, levels)

    def _and_exists(self, u: int, v: int, levels: frozenset[int]) -> int:
        cache = self._and_exists_cache.get(levels)
        if cache is None:
            cache = self._and_exists_cache[levels] = {}
        c = self._c_and_exists
        level_, low_, high_ = self._level, self._low, self._high
        lor = self._or_rec
        mk = self._mk
        quantify = self._quantifier(levels, conj=False)

        def rec(a: int, b: int) -> int:
            if a > b:  # canonicalize for the cache: AND is commutative
                a, b = b, a
            # a is now the smaller id: a == 0 covers either side FALSE
            if a == FALSE:
                return FALSE
            if a == TRUE:
                return TRUE if b == TRUE else quantify(b)
            if a == b:
                return quantify(a)
            key = (a, b)
            c.lookups += 1
            result = cache.get(key)
            if result is not None:
                c.hits += 1
                return result
            la, lb = level_[a], level_[b]
            if la <= lb:
                level, a0, a1 = la, low_[a], high_[a]
            else:
                level, a0, a1 = lb, a, a
            if lb <= la:
                b0, b1 = low_[b], high_[b]
            else:
                b0, b1 = b, b
            low = rec(a0, b0)
            if level in levels:
                if low == TRUE:
                    result = TRUE
                else:
                    result = lor(low, rec(a1, b1))
            else:
                result = mk(level, low, rec(a1, b1))
            cache[key] = result
            c.inserts += 1
            return result

        return rec(u, v)

    # ------------------------------------------------------------------
    # renaming and cofactoring
    # ------------------------------------------------------------------
    def rename(self, u: int, mapping: Mapping[str, str]) -> int:
        """Substitute variables: each key variable becomes its value variable.

        The mapping must be *order-preserving on the support of* ``u``:
        relabeled levels must remain strictly increasing along every path.
        This holds for the interleaved current/next variable orders used by
        the model checker (``a ↦ a'`` with ``a'`` directly below ``a``).
        A non-monotone mapping raises :class:`BddError`.
        """
        level_map = {self.level_of(a): self.level_of(b) for a, b in mapping.items()}
        support = sorted(self.level_of(n) for n in self.support(u))
        mapped = [level_map.get(lv, lv) for lv in support]
        if sorted(mapped) != mapped or len(set(mapped)) != len(mapped):
            raise BddError("rename mapping is not order-preserving on the support")
        key_map = tuple(sorted(level_map.items()))
        return self._rename(u, level_map, key_map)

    def _rename(
        self,
        u: int,
        level_map: Mapping[int, int],
        key_map: tuple[tuple[int, int], ...],
    ) -> int:
        if u <= 1:
            return u
        cache = self._rename_cache.get(key_map)
        if cache is None:
            cache = self._rename_cache[key_map] = {}
        c = self._c_rename
        level_, low_, high_ = self._level, self._low, self._high
        mk = self._mk
        get_level = level_map.get

        def rec(n: int) -> int:
            if n <= 1:
                return n
            c.lookups += 1
            result = cache.get(n)
            if result is not None:
                c.hits += 1
                return result
            lvl = level_[n]
            result = mk(get_level(lvl, lvl), rec(low_[n]), rec(high_[n]))
            cache[n] = result
            c.inserts += 1
            return result

        return rec(u)

    def restrict(self, u: int, assignment: Mapping[str, bool]) -> int:
        """Cofactor: fix the given variables to constants."""
        values = {self.level_of(n): bool(b) for n, b in assignment.items()}
        return self._restrict(u, values, {})

    def _restrict(self, u: int, values: Mapping[int, bool], memo: dict[int, int]) -> int:
        if u <= 1:
            return u
        cached = memo.get(u)
        if cached is not None:
            return cached
        lvl = self._level[u]
        if lvl in values:
            result = self._restrict(
                self._high[u] if values[lvl] else self._low[u], values, memo
            )
        else:
            low = self._restrict(self._low[u], values, memo)
            high = self._restrict(self._high[u], values, memo)
            result = self._mk(lvl, low, high)
        memo[u] = result
        return result

    # ------------------------------------------------------------------
    # satisfying assignments
    # ------------------------------------------------------------------
    def sat_count(self, u: int, nvars: int | None = None) -> int:
        """Number of satisfying assignments over ``nvars`` variables.

        Defaults to all declared variables.  Returns an exact ``int``:
        the count is exponential in ``nvars``, and Python integers are
        arbitrary-precision, so counts stay exact past the 2^53 range
        where ``float`` arithmetic starts silently rounding (and the
        ~2^1024 range where it overflows outright).
        """
        if nvars is None:
            nvars = self.num_vars()
        memo: dict[int, int] = {}

        def count(n: int) -> int:
            # count over variables strictly below level(n)'s position
            if n == FALSE:
                return 0
            if n == TRUE:
                return 1
            c = memo.get(n)
            if c is None:
                lvl = self._level[n]
                lo, hi = self._low[n], self._high[n]
                lo_lvl = min(self._level[lo], nvars)
                hi_lvl = min(self._level[hi], nvars)
                c = count(lo) * (2 ** (lo_lvl - lvl - 1)) + count(hi) * (
                    2 ** (hi_lvl - lvl - 1)
                )
                memo[n] = c
            return c

        top = min(self._level[u], nvars)
        return count(u) * (2**top)

    def pick(self, u: int) -> dict[str, bool] | None:
        """One satisfying assignment (partial — only decided variables), or None."""
        if u == FALSE:
            return None
        out: dict[str, bool] = {}
        while u != TRUE:
            name = self._var_names[self._level[u]]
            if self._low[u] != FALSE:
                out[name] = False
                u = self._low[u]
            else:
                out[name] = True
                u = self._high[u]
        return out

    def iter_sat(self, u: int, names: Iterable[str] | None = None) -> Iterator[dict[str, bool]]:
        """Iterate over *total* satisfying assignments of the given variables.

        ``names`` defaults to every declared variable; variables not on a
        path through the BDD are expanded to both values.
        """
        names = list(self._var_names if names is None else names)
        partial: dict[str, bool] = {}

        def rec(n: int, idx: int) -> Iterator[dict[str, bool]]:
            if n == FALSE:
                return
            if idx == len(names):
                # any leftover (unselected) variables are quantified away:
                # n != FALSE means some completion satisfies u
                yield dict(partial)
                return
            name = names[idx]
            for val in (False, True):
                m = self.restrict(n, {name: val})
                if m != FALSE:
                    partial[name] = val
                    yield from rec(m, idx + 1)
                    del partial[name]

        yield from rec(u, 0)

    # ------------------------------------------------------------------
    # support
    # ------------------------------------------------------------------
    def support(self, u: int) -> set[str]:
        """Set of variable names the function actually depends on."""
        seen: set[int] = set()
        levels: set[int] = set()
        stack = [u]
        while stack:
            n = stack.pop()
            if n <= 1 or n in seen:
                continue
            seen.add(n)
            levels.add(self._level[n])
            stack.append(self._low[n])
            stack.append(self._high[n])
        return {self._var_names[lv] for lv in levels}
