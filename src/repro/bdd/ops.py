"""Derived BDD operations that do not need access to manager internals.

These helpers work on top of the public :class:`repro.bdd.manager.BDD`
interface: transferring functions between managers (used by the reordering
module), evaluating a BDD on a concrete assignment, and structural
utilities used by the test suite.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.bdd.manager import BDD, FALSE, TRUE
from repro.errors import BddError


def transfer(u: int, src: BDD, dst: BDD, _memo: dict[int, int] | None = None) -> int:
    """Rebuild the function ``u`` (from manager ``src``) inside manager ``dst``.

    ``dst`` must declare every variable in the support of ``u``; the two
    managers may use completely different variable orders — the rebuild goes
    through ``ite`` so the result is canonical for ``dst``'s order.
    """
    memo: dict[int, int] = {} if _memo is None else _memo

    def rec(n: int) -> int:
        if n <= 1:
            return n
        cached = memo.get(n)
        if cached is not None:
            return cached
        name = src.name_of(src.level(n))
        if name not in dst.var_names:
            raise BddError(f"destination manager lacks variable {name!r}")
        low = rec(src.low(n))
        high = rec(src.high(n))
        result = dst.ite(dst.var(name), high, low)
        memo[n] = result
        return result

    return rec(u)


def evaluate(bdd: BDD, u: int, assignment: Mapping[str, bool]) -> bool:
    """Evaluate ``u`` under a total assignment of its support variables."""
    while u > 1:
        name = bdd.name_of(bdd.level(u))
        try:
            value = assignment[name]
        except KeyError:
            raise BddError(f"assignment missing variable {name!r}") from None
        u = bdd.high(u) if value else bdd.low(u)
    return u == TRUE


def implies(bdd: BDD, u: int, v: int) -> bool:
    """Decide entailment ``u ⊨ v`` (i.e. ``u → v`` is a tautology)."""
    return bdd.apply("diff", u, v) == FALSE


def equiv(u: int, v: int) -> bool:
    """Decide functional equality — just node identity in a shared manager."""
    return u == v


def dnf(bdd: BDD, u: int, names: list[str] | None = None) -> list[dict[str, bool]]:
    """A disjoint cover of ``u`` as a list of partial assignments (cubes).

    Each cube corresponds to one root-to-TRUE path of the BDD; unmentioned
    variables are don't-cares.  Useful for error messages and tests.
    """
    cubes: list[dict[str, bool]] = []

    def rec(n: int, path: dict[str, bool]) -> None:
        if n == FALSE:
            return
        if n == TRUE:
            cubes.append(dict(path))
            return
        name = bdd.name_of(bdd.level(n))
        path[name] = False
        rec(bdd.low(n), path)
        path[name] = True
        rec(bdd.high(n), path)
        del path[name]

    rec(u, {})
    return cubes
