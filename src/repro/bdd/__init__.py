"""From-scratch ROBDD engine — the symbolic checker's substrate.

Public surface:

* :class:`~repro.bdd.manager.BDD` — manager (variables, unique table, ops)
* :data:`~repro.bdd.manager.TRUE` / :data:`~repro.bdd.manager.FALSE`
* :func:`~repro.bdd.ops.transfer`, :func:`~repro.bdd.ops.evaluate`,
  :func:`~repro.bdd.ops.implies`, :func:`~repro.bdd.ops.dnf`
* :func:`~repro.bdd.reorder.sift`, :func:`~repro.bdd.reorder.rebuild_with_order`
* :func:`~repro.bdd.dot.to_dot`
"""

from repro.bdd.dot import to_dot
from repro.bdd.manager import (
    BDD,
    FALSE,
    REORDER_MODES,
    TRUE,
    default_reorder,
    set_default_reorder,
)
from repro.bdd.ops import dnf, equiv, evaluate, implies, transfer
from repro.bdd.reorder import rebuild_with_order, shared_size, sift

__all__ = [
    "BDD",
    "TRUE",
    "FALSE",
    "REORDER_MODES",
    "default_reorder",
    "set_default_reorder",
    "transfer",
    "evaluate",
    "implies",
    "equiv",
    "dnf",
    "sift",
    "rebuild_with_order",
    "shared_size",
    "to_dot",
]
