"""Operation-level performance counters for the BDD engine.

Classic BDD packages (CUDD, BuDDy) expose per-operation computed-table
statistics so regressions in memoization behavior are visible without a
profiler.  This module provides the same instrumentation for
:class:`repro.bdd.manager.BDD`: one :class:`OpCounter` per memo table
(``ite``, ``and``, ``or``, ``xor``, ``neg``, ``quant``, ``and_exists``,
``rename``), plus ``_mk`` call counts and the peak unique-table size.

The counters are cumulative over the manager's lifetime; use
:meth:`BDDStats.snapshot` before a run and :meth:`BDDStats.delta`
afterwards to attribute costs to one model-checking call (this is how
:class:`repro.checking.result.CheckStats` fills its cache fields).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Memo tables instrumented by the manager, in reporting order.
OP_NAMES = ("ite", "and", "or", "xor", "neg", "quant", "and_exists", "rename")


@dataclass
class OpCounter:
    """Lookups, hits and inserts of one memoization (computed) table.

    ``lookups`` counts every cache probe, ``hits`` the probes that found a
    result, and ``inserts`` the entries written (the negation table writes
    two entries per miss — the involution is stored in both directions).
    ``hit_rate`` is ``hits / lookups`` (0.0 when the table was never
    probed).
    """

    lookups: int = 0
    hits: int = 0
    inserts: int = 0

    @property
    def misses(self) -> int:
        return self.lookups - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, int | float]:
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "inserts": self.inserts,
            "hit_rate": self.hit_rate,
        }


def _fresh_ops() -> dict[str, OpCounter]:
    return {name: OpCounter() for name in OP_NAMES}


@dataclass
class BDDStats:
    """Aggregate engine counters: per-op cache behavior plus node traffic.

    ``mk_calls`` counts every find-or-create request for an internal node
    (the unique-table probes); ``peak_unique_nodes`` is the largest size
    the unique table ever reached.  ``ops`` maps each memo-table name in
    :data:`OP_NAMES` to its :class:`OpCounter`.  ``hit_rate`` aggregates
    hits/lookups across every table.
    """

    mk_calls: int = 0
    peak_unique_nodes: int = 0
    #: Completed :meth:`BDD.reorder` runs / adjacent-level swaps they made.
    reorders: int = 0
    swaps: int = 0
    #: Interned node totals summed over reorder runs (before vs after).
    reorder_nodes_before: int = 0
    reorder_nodes_after: int = 0
    ops: dict[str, OpCounter] = field(default_factory=_fresh_ops)

    @property
    def cache_lookups(self) -> int:
        return sum(c.lookups for c in self.ops.values())

    @property
    def cache_hits(self) -> int:
        return sum(c.hits for c in self.ops.values())

    @property
    def cache_inserts(self) -> int:
        return sum(c.inserts for c in self.ops.values())

    @property
    def hit_rate(self) -> float:
        lookups = self.cache_lookups
        return self.cache_hits / lookups if lookups else 0.0

    def snapshot(self) -> "BDDStats":
        """An independent copy of the current counters."""
        return BDDStats(
            mk_calls=self.mk_calls,
            peak_unique_nodes=self.peak_unique_nodes,
            reorders=self.reorders,
            swaps=self.swaps,
            reorder_nodes_before=self.reorder_nodes_before,
            reorder_nodes_after=self.reorder_nodes_after,
            ops={
                name: OpCounter(c.lookups, c.hits, c.inserts)
                for name, c in self.ops.items()
            },
        )

    def delta(self, since: "BDDStats") -> "BDDStats":
        """Counters accumulated after ``since`` (a previous snapshot).

        ``peak_unique_nodes`` is not differenced — the peak observed so
        far is carried through, as a table never shrinks mid-run.
        """
        return BDDStats(
            mk_calls=self.mk_calls - since.mk_calls,
            peak_unique_nodes=self.peak_unique_nodes,
            reorders=self.reorders - since.reorders,
            swaps=self.swaps - since.swaps,
            reorder_nodes_before=self.reorder_nodes_before
            - since.reorder_nodes_before,
            reorder_nodes_after=self.reorder_nodes_after
            - since.reorder_nodes_after,
            ops={
                name: OpCounter(
                    c.lookups - since.ops[name].lookups,
                    c.hits - since.ops[name].hits,
                    c.inserts - since.ops[name].inserts,
                )
                for name, c in self.ops.items()
            },
        )

    def as_dict(self) -> dict:
        return {
            "mk_calls": self.mk_calls,
            "peak_unique_nodes": self.peak_unique_nodes,
            "reorders": self.reorders,
            "swaps": self.swaps,
            "reorder_nodes_before": self.reorder_nodes_before,
            "reorder_nodes_after": self.reorder_nodes_after,
            "cache_lookups": self.cache_lookups,
            "cache_hits": self.cache_hits,
            "cache_inserts": self.cache_inserts,
            "hit_rate": self.hit_rate,
            "ops": {name: c.as_dict() for name, c in self.ops.items()},
        }

    def format(self) -> str:
        """Multi-line human-readable counter dump (one line per table)."""
        lines = [
            f"mk calls: {self.mk_calls}, "
            f"peak unique table: {self.peak_unique_nodes} nodes",
            f"computed tables: {self.cache_lookups} lookups, "
            f"{self.hit_rate:.1%} hits",
        ]
        if self.reorders:
            lines.append(
                f"reorders: {self.reorders} ({self.swaps} swaps, "
                f"{self.reorder_nodes_before} -> "
                f"{self.reorder_nodes_after} nodes)"
            )
        for name in OP_NAMES:
            c = self.ops[name]
            if c.lookups or c.inserts:
                lines.append(
                    f"  {name}: {c.lookups} lookups, {c.hits} hits "
                    f"({c.hit_rate:.1%}), {c.inserts} inserts"
                )
        return "\n".join(lines)
