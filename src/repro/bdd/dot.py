"""Graphviz (DOT) export for BDDs — debugging and documentation aid."""

from __future__ import annotations

from collections.abc import Sequence

from repro.bdd.manager import BDD


def to_dot(bdd: BDD, roots: Sequence[int], names: Sequence[str] | None = None) -> str:
    """Render the shared DAG of ``roots`` as a DOT digraph string.

    Dashed edges are else-branches (variable false), solid edges are
    then-branches.  ``names`` optionally labels the roots.
    """
    lines = [
        "digraph bdd {",
        '  rankdir=TB;',
        '  node [shape=circle];',
        '  f [label="0", shape=box];',
        '  t [label="1", shape=box];',
    ]
    seen: set[int] = set()
    stack = [r for r in roots if r > 1]

    def nid(n: int) -> str:
        return {0: "f", 1: "t"}.get(n, f"n{n}")

    while stack:
        n = stack.pop()
        if n in seen:
            continue
        seen.add(n)
        label = bdd.name_of(bdd.level(n))
        lines.append(f'  n{n} [label="{label}"];')
        lines.append(f"  n{n} -> {nid(bdd.low(n))} [style=dashed];")
        lines.append(f"  n{n} -> {nid(bdd.high(n))};")
        for child in (bdd.low(n), bdd.high(n)):
            if child > 1 and child not in seen:
                stack.append(child)
    for i, root in enumerate(roots):
        name = names[i] if names else f"root{i}"
        lines.append(f'  r{i} [label="{name}", shape=plaintext];')
        lines.append(f"  r{i} -> {nid(root)};")
    lines.append("}")
    return "\n".join(lines)
