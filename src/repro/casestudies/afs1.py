"""AFS-1 — Andrew File System cache-coherence protocol 1 (paper Section 4.1–4.2).

One server and one client coordinate the validity of a cached file copy
over a shared request/response channel ``r``.  This module provides:

* the SMV sources of the paper's Figures 5/6 (server) and 8/9 (client),
  cleaned up as follows — the changes are syntactic only:

  - the figures rely on SMV operator precedences that scatter multi-line
    conjunctions of implications; we parenthesize each conjunct the way
    the surrounding prose (Srv1–Srv5, Cli1–Cli5) clearly intends;
  - OCR damage (``belief=vl idi.Jr= -a Il`` and friends) is restored from
    the state-transition graph of Figure 4;

* ``check_server_figure`` / ``check_client_figure`` reproducing the model
  checker outputs of Figures 7 and 10;
* paper-style components (with ``belief`` renamed apart into
  ``Server.belief`` / ``Client.belief``, the channel ``r`` shared) and the
  full compositional proofs of the protocol's two properties:

  - **(Afs1)** safety: ``AG (Client.belief = valid ⇒ Server.belief = valid)``
    via the inductive invariant of §4.2.3;
  - **(Afs2)** liveness: ``AF (Client.belief = valid)`` via Rule-4
    guarantees chained along both runs of the protocol (§4.2.3).
"""

from __future__ import annotations

from repro.compositional.proof import CompositionProof, Proven
from repro.logic.ctl import AG, Formula, Implies, Or, TRUE, land, lor
from repro.logic.restriction import Restriction
from repro.casestudies.afs_common import ProtocolComponent
from repro.smv.run import SmvReport, check_source

# ----------------------------------------------------------------------
# Figure 5 + 6: the server as model-checked in the paper
# ----------------------------------------------------------------------
AFS1_SERVER_FIGURE = """
-- SMV implementation of the server in the AFS1 (paper Figure 5)
MODULE main
VAR
  belief : {none, invalid, valid};
  r : {null, fetch, validate, val, inval};
  validFile : boolean;
ASSIGN
  next(validFile) := validFile;
  next(belief) :=
    case
      (belief = none) & (r = fetch) : valid;
      (belief = invalid) & (r = fetch) : valid;
      (belief = none) & (r = validate) & validFile : valid;
      (belief = none) & (r = validate) & !validFile : invalid;
      1 : belief;
    esac;
  next(r) :=
    case
      (belief = none) & (r = fetch) : val;
      (belief = invalid) & (r = fetch) : val;
      (belief = none) & (r = validate) & validFile : val;
      (belief = none) & (r = validate) & !validFile : inval;
      (belief = valid) & (r = fetch) : val;
      1 : r;
    esac;

-- Specification of the Server of the AFS-1 (paper Figure 6)
-- Srv1
SPEC (belief = valid) -> AX (belief = valid)
-- Srv2
SPEC (r = val -> belief = valid) -> AX (r = val -> belief = valid)
-- Srv3
SPEC (r = null -> AX (r = null)) & (r = val -> AX (r = val)) &
     (r = inval -> AX (r = inval))
-- Srv4
SPEC (r = fetch -> AX (r = fetch | r = val)) &
     ((r = validate & belief = none) ->
        AX ((belief = none & r = validate) |
            (belief = valid & r = val) |
            (belief = invalid & r = inval)))
-- Srv5
SPEC (r = fetch -> EX (r = val)) &
     ((r = validate & belief = none) ->
        EX ((belief = valid & r = val) | (belief = invalid & r = inval)))
"""

# ----------------------------------------------------------------------
# Figure 8 + 9: the client as model-checked in the paper
# ----------------------------------------------------------------------
AFS1_CLIENT_FIGURE = """
-- SMV implementation of the client in the AFS1 (paper Figure 8)
MODULE main
VAR
  r : {null, fetch, validate, val, inval};
  belief : {valid, suspect, nofile};
ASSIGN
  next(belief) :=
    case
      (belief = nofile) & (r = val) : valid;
      (belief = suspect) & (r = val) : valid;
      (belief = suspect) & (r = inval) : nofile;
      1 : belief;
    esac;
  next(r) :=
    case
      (belief = nofile) & (r = null) : fetch;
      (belief = suspect) & (r = null) : validate;
      (belief = suspect) & (r = inval) : null;
      1 : r;
    esac;

-- Specification of the Client of the AFS-1 (paper Figure 9)
-- Cli1
SPEC (belief != valid & r != val) -> AX (belief != valid & r != val)
-- Cli2
SPEC r = fetch -> AX (r = fetch)
SPEC r = validate -> AX (r = validate)
-- Cli3
SPEC ((belief = nofile & r = null) ->
        AX ((belief = nofile & r = null) | (belief = nofile & r = fetch))) &
     ((belief = nofile & r = fetch) ->
        AX ((belief = nofile & r = fetch) | (belief = nofile & r = val))) &
     ((belief = nofile & r = val) ->
        AX ((belief = nofile & r = val) | (belief = valid & r = val))) &
     ((belief = suspect & r = null) ->
        AX ((belief = suspect & r = null) | (belief = suspect & r = validate))) &
     ((belief = suspect & r = val) ->
        AX ((belief = suspect & r = val) | (belief = valid & r = val))) &
     ((belief = suspect & r = inval) ->
        AX ((belief = suspect & r = inval) | (belief = nofile & r = null)))
-- Cli4
SPEC ((belief = nofile & r = null) -> EX (belief = nofile & r = fetch)) &
     ((belief = nofile & r = val) -> EX (belief = valid & r = val))
-- Cli5
SPEC ((belief = suspect & r = null) -> EX (belief = suspect & r = validate)) &
     ((belief = suspect & r = val) -> EX (belief = valid & r = val)) &
     ((belief = suspect & r = inval) -> EX (belief = nofile & r = null))
"""


def check_server_figure() -> SmvReport:
    """Model-check the server exactly as in the paper — Figure 7's output."""
    return check_source(AFS1_SERVER_FIGURE)


def check_client_figure() -> SmvReport:
    """Model-check the client exactly as in the paper — Figure 10's output."""
    return check_source(AFS1_CLIENT_FIGURE)


# ----------------------------------------------------------------------
# paper-style components for composition
# ----------------------------------------------------------------------
# Same transition structure, but the two local `belief` variables are
# renamed apart (Server.belief / Client.belief) while the channel `r` is
# shared — composition communicates through shared atomic propositions.

_SERVER_PROOF_SOURCE = """
MODULE server
VAR
  Server.belief : {none, invalid, valid};
  r : {null, fetch, validate, val, inval};
  validFile : boolean;
ASSIGN
  next(validFile) := validFile;
  next(Server.belief) :=
    case
      (Server.belief = none) & (r = fetch) : valid;
      (Server.belief = invalid) & (r = fetch) : valid;
      (Server.belief = none) & (r = validate) & validFile : valid;
      (Server.belief = none) & (r = validate) & !validFile : invalid;
      1 : Server.belief;
    esac;
  next(r) :=
    case
      (Server.belief = none) & (r = fetch) : val;
      (Server.belief = invalid) & (r = fetch) : val;
      (Server.belief = none) & (r = validate) & validFile : val;
      (Server.belief = none) & (r = validate) & !validFile : inval;
      (Server.belief = valid) & (r = fetch) : val;
      1 : r;
    esac;
"""

_CLIENT_PROOF_SOURCE = """
MODULE client
VAR
  r : {null, fetch, validate, val, inval};
  Client.belief : {valid, suspect, nofile};
ASSIGN
  next(Client.belief) :=
    case
      (Client.belief = nofile) & (r = val) : valid;
      (Client.belief = suspect) & (r = val) : valid;
      (Client.belief = suspect) & (r = inval) : nofile;
      1 : Client.belief;
    esac;
  next(r) :=
    case
      (Client.belief = nofile) & (r = null) : fetch;
      (Client.belief = suspect) & (r = null) : validate;
      (Client.belief = suspect) & (r = inval) : null;
      1 : r;
    esac;
"""

SERVER = ProtocolComponent("server", _SERVER_PROOF_SOURCE)
CLIENT = ProtocolComponent("client", _CLIENT_PROOF_SOURCE)

#: AFS-1 as a single multi-process SMV program: SMV's ``process`` keyword
#: has exactly the paper's interleaving composition semantics, so this one
#: file carries the whole §4.2 verification problem — load it with
#: :func:`repro.smv.processes.load_processes`.
AFS1_PROCESS_PROGRAM = """
MODULE main
VAR
  r : {null, fetch, validate, val, inval};
  server : process serverproc(r);
  client : process clientproc(r);
INIT server.belief = none &
     (client.belief = nofile | client.belief = suspect) & r = null
SPEC AG (client.belief = valid -> server.belief = valid)

MODULE serverproc(ch)
VAR
  belief : {none, invalid, valid};
  validFile : boolean;
ASSIGN
  next(validFile) := validFile;
  next(belief) :=
    case
      (belief = none) & (ch = fetch) : valid;
      (belief = invalid) & (ch = fetch) : valid;
      (belief = none) & (ch = validate) & validFile : valid;
      (belief = none) & (ch = validate) & !validFile : invalid;
      1 : belief;
    esac;
  next(ch) :=
    case
      (belief = none) & (ch = fetch) : val;
      (belief = invalid) & (ch = fetch) : val;
      (belief = none) & (ch = validate) & validFile : val;
      (belief = none) & (ch = validate) & !validFile : inval;
      (belief = valid) & (ch = fetch) : val;
      1 : ch;
    esac;

MODULE clientproc(ch)
VAR belief : {valid, suspect, nofile};
ASSIGN
  next(belief) :=
    case
      (belief = nofile) & (ch = val) : valid;
      (belief = suspect) & (ch = val) : valid;
      (belief = suspect) & (ch = inval) : nofile;
      1 : belief;
    esac;
  next(ch) :=
    case
      (belief = nofile) & (ch = null) : fetch;
      (belief = suspect) & (ch = null) : validate;
      (belief = suspect) & (ch = inval) : null;
      1 : ch;
    esac;
"""


class Afs1:
    """Vocabulary and proofs for the composed AFS-1 protocol."""

    def __init__(
        self,
        backend: str = "explicit",
        jobs: int | None = None,
        store=None,
    ):
        self.backend = backend
        self.jobs = jobs
        #: A :class:`~repro.store.ResultStore` making proofs incremental.
        self.store = store
        self.server = SERVER
        self.client = CLIENT
        # formula vocabulary ------------------------------------------------
        self.sb = lambda v: self.server.eq("Server.belief", v)
        self.cb = lambda v: self.client.eq("Client.belief", v)
        self.r = lambda v: self.client.eq("r", v)
        #: V — every encoded variable holds a real domain value.  Chain
        #: predicates conjoin V so that junk bit patterns (which only
        #: stutter) cannot defeat EX premises.
        self.V = land(self.server.valid(), self.client.valid())
        #: the paper's initial condition I (§4.2) plus validity
        self.initial = land(
            self.sb("none"),
            Or(self.cb("nofile"), self.cb("suspect")),
            self.r("null"),
            self.V,
        )

    def combined_encoding(self):
        """One Encoding over both components' variables (for display)."""
        from repro.systems.encode import Encoding

        merged = list(self.server.model.encoding.variables) + [
            v
            for v in self.client.model.encoding.variables
            if v.name != "r"  # the shared channel appears once
        ]
        return Encoding(merged)

    def proof(self) -> CompositionProof:
        """A fresh proof context over the two components."""
        if self.backend == "symbolic":
            components = {
                "server": self.server.symbolic(),
                "client": self.client.symbolic(),
            }
        else:
            components = {
                "server": self.server.system(),
                "client": self.client.system(),
            }
        return CompositionProof(
            components,
            backend=self.backend,  # type: ignore[arg-type]
            parallel=self.jobs,
            store=self.store,
        )

    # ------------------------------------------------------------------
    # (Afs1) safety
    # ------------------------------------------------------------------
    def safety_invariant(self) -> Formula:
        """§4.2.3's invariant: client-valid ⇒ server-valid, and val ⇒ server-valid."""
        return land(
            Implies(self.cb("valid"), self.sb("valid")),
            Implies(self.r("val"), self.sb("valid")),
        )

    def prove_safety(self) -> tuple[CompositionProof, Proven]:
        """Machine-checked §4.2.3: the composite satisfies (Afs1).

        ``I ⇒ Inv`` is propositional; ``Inv ⇒ AX Inv`` is universal
        (checked on both expansions); the invariant rule yields
        ``⊨_(I,{true}) AG Inv`` and AG-monotonicity weakens it to (Afs1).
        """
        pf = self.proof()
        inv = self.safety_invariant()
        ag_inv = pf.invariant(self.initial, inv)
        afs1 = pf.ag_weaken(ag_inv, Implies(self.cb("valid"), self.sb("valid")))
        return pf, afs1

    # ------------------------------------------------------------------
    # (Afs2) liveness
    # ------------------------------------------------------------------
    def _link(
        self, pf: CompositionProof, component: str, p: Formula, q: Formula
    ) -> Proven:
        """One Rule-4 progress link: composite ⊨_r (p ⇒ A(p U q)).

        ``component`` is the helpful one (it owns the enabled transition);
        the left side ``p ⇒ AX(p ∨ q)`` is discharged universally.
        """
        g = pf.guarantee_rule4(component, p, q)
        lhs = pf.universal(g.guarantee.lhs.formula)
        rhs = pf.apply_guarantee(g, lhs)
        return pf.project(rhs, 0)  # keep the A(p U q) conjunct

    def prove_liveness(self) -> tuple[CompositionProof, Proven]:
        """Machine-checked §4.2.3: the composite satisfies (Afs2).

        Both protocol runs are chained from Rule-4 links:

        * nofile run:  (nofile,null) → (nofile,fetch) → (nofile,val) → (valid,val)
        * suspect run: (suspect,null) → (suspect,validate) → (suspect,val|inval);
          val resolves directly, inval restarts the nofile run.

        The suspect-run validate step needs ``Server.belief = none`` in its
        predicates — the same strengthening the paper performs in (Cli5').
        """
        pf = self.proof()
        V = self.V
        cb, sb, r = self.cb, self.sb, self.r

        def st(belief: str, channel: str, *extra: Formula) -> Formula:
            return land(cb(belief), r(channel), *extra, V)

        nn = st("nofile", "null")
        nf = st("nofile", "fetch")
        nv = st("nofile", "val")
        vv = st("valid", "val")
        sn = st("suspect", "null", sb("none"))
        sv = st("suspect", "validate", sb("none"))
        sval = st("suspect", "val")
        sinval = st("suspect", "inval")

        links = {
            "a1": self._link(pf, "client", nn, nf),
            "a2": self._link(pf, "server", nf, nv),
            "a3": self._link(pf, "client", nv, vv),
            "b1": self._link(pf, "client", sn, sv),
            "b2": self._link(pf, "server", sv, Or(sval, sinval)),
            "b3": self._link(pf, "client", sval, vv),
            "b4": self._link(pf, "client", sinval, nn),
        }
        aligned = dict(zip(links, pf.align_fairness(list(links.values()))))

        target = cb("valid")
        # nofile run: nn ↝ vv ⊆ target
        chain_a = pf.chain([aligned["a1"], aligned["a2"], aligned["a3"]])
        chain_a = pf.af_weaken(chain_a, target)
        # suspect run endgame: both branches reach the target
        case_val = pf.af_weaken(pf.chain([aligned["b3"]]), target)
        case_inval = pf.af_weaken(
            pf.leads_to(pf.chain([aligned["b4"]]), chain_a), target
        )
        branches = pf.implication_cases(Or(sval, sinval), [case_val, case_inval])
        chain_b = pf.leads_to(
            pf.leads_to(aligned["b1"], aligned["b2"]), branches
        )
        chain_b = pf.af_weaken(chain_b, target)
        # (Afs2): every valid initial state eventually reaches client-valid
        combined = pf.implication_cases(self.initial, [chain_a, chain_b])
        afs2 = pf.to_initial(combined, self.initial)
        return pf, afs2


def prove_afs1_safety(
    backend: str = "explicit", jobs: int | None = None
) -> tuple[CompositionProof, Proven]:
    """Convenience wrapper: the (Afs1) safety proof."""
    return Afs1(backend, jobs=jobs).prove_safety()


def prove_afs1_liveness(
    backend: str = "explicit", jobs: int | None = None
) -> tuple[CompositionProof, Proven]:
    """Convenience wrapper: the (Afs2) liveness proof."""
    return Afs1(backend, jobs=jobs).prove_liveness()
