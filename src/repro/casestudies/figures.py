"""Concrete systems from the paper's illustrative figures (1, 2, 3).

* Figure 1 — two one-bit toggles and their interleaving composition;
* Figure 2 — a cycle that needs Rule 5 (strong fairness) to reach ``q``:
  only one state of the cycle has the exit transition, so Rule 4's
  premise fails but Rule 5's cover applies;
* Figure 3 — the boolean encoding of an integer variable ``x ∈ {0..3}``.
"""

from __future__ import annotations

from repro.logic.ctl import Formula, lor
from repro.systems.encode import Encoding, FiniteVar
from repro.systems.system import System

# ----------------------------------------------------------------------
# Figure 1
# ----------------------------------------------------------------------


def figure1_m() -> System:
    """``M = ({x}, R)`` with R toggling x (plus the stutter loops)."""
    return System.from_pairs({"x"}, [((), ("x",)), (("x",), ())])


def figure1_m_prime() -> System:
    """``M' = ({y}, R')`` toggling y."""
    return System.from_pairs({"y"}, [((), ("y",)), (("y",), ())])


def figure1_expected_composition() -> System:
    """The composite ``M ∘ M'`` exactly as enumerated in the paper."""
    pairs = [
        ((), ("x",)),
        (("x",), ()),
        (("y",), ("x", "y")),
        (("x", "y"), ("y",)),
        ((), ("y",)),
        (("y",), ()),
        (("x",), ("x", "y")),
        (("x", "y"), ("x",)),
    ]
    return System.from_pairs({"x", "y"}, pairs)


# ----------------------------------------------------------------------
# Figure 2
# ----------------------------------------------------------------------
#: Number of cycle states p1 … p6 in the paper's figure.
FIGURE2_CYCLE = 6

_fig2_var = FiniteVar(
    "loc", tuple(f"p{i}" for i in range(1, FIGURE2_CYCLE + 1)) + ("q",)
)
_fig2_enc = Encoding([_fig2_var])


def figure2_encoding() -> Encoding:
    """The boolean encoding used by the Figure 2 system."""
    return _fig2_enc


def figure2_system() -> System:
    """A cycle ``p1 → p2 → … → p6 → p1`` with a single exit ``p1 → q``.

    ``q`` is absorbing (stutter only).  A run may circle forever unless
    fairness discards paths that stay in ``p ∧ ¬q``; and because only
    ``p1`` enables the exit, the weak-fairness Rule 4 premise
    ``p ⇒ EX q`` is false while Rule 5 (with the cover ``p = ⋁ pᵢ`` and
    helpful disjunct ``p1``) applies.
    """
    enc = _fig2_enc
    state = lambda v: enc.state_of({"loc": v})
    pairs = []
    for i in range(1, FIGURE2_CYCLE + 1):
        nxt = f"p{i % FIGURE2_CYCLE + 1}"
        pairs.append((state(f"p{i}"), state(nxt)))
    pairs.append((state("p1"), state("q")))
    return System(enc.atoms, pairs)


def figure2_p_disjuncts() -> tuple[Formula, ...]:
    """The cover ``p1, …, p6`` as boolean formulas."""
    return tuple(
        _fig2_enc.eq_formula("loc", f"p{i}") for i in range(1, FIGURE2_CYCLE + 1)
    )


def figure2_p() -> Formula:
    """``p = p1 ∨ … ∨ p6``."""
    return lor(*figure2_p_disjuncts())


def figure2_q() -> Formula:
    """The goal state predicate ``q``."""
    return _fig2_enc.eq_formula("loc", "q")


# ----------------------------------------------------------------------
# Figure 3
# ----------------------------------------------------------------------


def figure3_encoding() -> Encoding:
    """``x ∈ {0, 1, 2, 3}`` encoded by two boolean propositions."""
    return Encoding([FiniteVar("x", (0, 1, 2, 3))])


def figure3_system() -> System:
    """The 4-state counter of Figure 3: ``0 → 1 → 2 → 3 → 0``.

    Each value maps to a pair of bits; the relation over ``2^{x.0,x.1}``
    preserves the original transitions exactly.
    """
    enc = figure3_encoding()
    state = lambda v: enc.state_of({"x": v})
    pairs = [(state(v), state((v + 1) % 4)) for v in range(4)]
    return System(enc.atoms, pairs)


def figure3_less_than_2() -> Formula:
    """The mapped propositional formula for ``x < 2`` (= ``¬x.1``)."""
    return figure3_encoding().in_formula("x", [0, 1])
