"""Two-phase commit — a third protocol family for the framework.

A coordinator collects votes from ``n`` participants and decides
``commit`` exactly when every vote is ``yes``; participants apply the
decision locally.  The classic properties:

* **atomicity** (safety): no participant commits while another aborts —
  proved from an inductive invariant, compositionally (one obligation per
  component);
* **termination** (liveness): a decision is eventually reached and every
  outcome follows — proved with Rule-4 links, the ``AF``-reflexivity
  axiom, and the stable-goal conjunction rule: each participant
  eventually votes (votes are *stable*, so all votes are eventually in
  simultaneously), after which the coordinator's decision step fires.

The study demonstrates the engine's liveness rules beyond the paper's
AFS chains: unordered interleaved progress (any voting order) cannot be
handled by a single leads-to chain, but stable-goal conjunction covers it.
"""

from __future__ import annotations

from repro.compositional.proof import CompositionProof, Proven
from repro.logic.ctl import AX, Formula, Implies, Not, Or, land
from repro.logic.restriction import Restriction
from repro.casestudies.afs_common import ProtocolComponent


def coordinator_source(n: int) -> str:
    """SMV source of the coordinator for ``n`` participants."""
    if n < 1:
        raise ValueError("need at least one participant")
    lines = ["MODULE main", "VAR", "  decision : {none, commit, abort};"]
    for i in range(1, n + 1):
        lines.append(f"  vote{i} : {{none, yes, no}};")
    lines.append("ASSIGN")
    for i in range(1, n + 1):
        lines.append(f"  next(vote{i}) := vote{i};")  # read-only channels
    all_yes = " & ".join(f"(vote{i} = yes)" for i in range(1, n + 1))
    some_no = " | ".join(f"(vote{i} = no)" for i in range(1, n + 1))
    lines += [
        "  next(decision) :=",
        "    case",
        f"      (decision = none) & {all_yes} : commit;",
        f"      (decision = none) & ({some_no}) : abort;",
        "      1 : decision;",
        "    esac;",
    ]
    return "\n".join(lines)


def participant_source(i: int) -> str:
    """SMV source of participant ``i``."""
    return f"""
MODULE main
VAR
  vote{i} : {{none, yes, no}};
  decision : {{none, commit, abort}};
  outcome{i} : {{none, committed, aborted}};
ASSIGN
  next(decision) := decision;
  next(vote{i}) := case vote{i} = none : {{yes, no}}; 1 : vote{i}; esac;
  next(outcome{i}) :=
    case
      (outcome{i} = none) & (decision = commit) : committed;
      (outcome{i} = none) & (decision = abort) : aborted;
      1 : outcome{i};
    esac;
"""


class TwoPhaseCommit:
    """Vocabulary and proofs for 2PC with ``n`` participants."""

    def __init__(
        self,
        n: int = 2,
        backend: str = "explicit",
        jobs: int | None = None,
        store=None,
    ):
        if n < 1:
            raise ValueError("need at least one participant")
        self.n = n
        self.backend = backend
        self.jobs = jobs
        #: A :class:`~repro.store.ResultStore` making proofs incremental.
        self.store = store
        self.coordinator = ProtocolComponent("coordinator", coordinator_source(n))
        self.participants = [
            ProtocolComponent(f"participant{i}", participant_source(i))
            for i in range(1, n + 1)
        ]

    # ------------------------------------------------------------------
    # vocabulary
    # ------------------------------------------------------------------
    def decision(self, value: str) -> Formula:
        return self.coordinator.eq("decision", value)

    def vote(self, i: int, value: str) -> Formula:
        return self.coordinator.eq(f"vote{i}", value)

    def outcome(self, i: int, value: str) -> Formula:
        return self.participants[i - 1].eq(f"outcome{i}", value)

    def valid(self) -> Formula:
        """All encodings decode to real values, in every component."""
        return land(
            self.coordinator.valid(),
            *(p.valid() for p in self.participants),
        )

    def initial(self) -> Formula:
        """Everything undecided, plus encoding validity."""
        return land(
            self.decision("none"),
            *(self.vote(i, "none") for i in range(1, self.n + 1)),
            *(self.outcome(i, "none") for i in range(1, self.n + 1)),
            self.valid(),
        )

    def invariant(self) -> Formula:
        """The inductive invariant behind atomicity."""
        parts = [
            Implies(
                self.decision("commit"),
                land(*(self.vote(i, "yes") for i in range(1, self.n + 1))),
            )
        ]
        for i in range(1, self.n + 1):
            parts.append(
                Implies(self.outcome(i, "committed"), self.decision("commit"))
            )
            parts.append(
                Implies(self.outcome(i, "aborted"), self.decision("abort"))
            )
        return land(*parts)

    def atomicity(self) -> Formula:
        """No split outcomes: never committed-here and aborted-there."""
        parts = []
        for i in range(1, self.n + 1):
            for j in range(1, self.n + 1):
                if i != j:
                    parts.append(
                        Not(
                            land(
                                self.outcome(i, "committed"),
                                self.outcome(j, "aborted"),
                            )
                        )
                    )
        return land(*parts)

    def combined_encoding(self):
        """One Encoding over the coordinator's and participants' variables."""
        from repro.systems.encode import Encoding

        merged = list(self.coordinator.model.encoding.variables)
        seen = {v.name for v in merged}
        for participant in self.participants:
            for v in participant.model.encoding.variables:
                if v.name not in seen:
                    seen.add(v.name)
                    merged.append(v)
        return Encoding(merged)

    def proof(self) -> CompositionProof:
        """A fresh proof context over coordinator + participants."""
        make = (lambda c: c.symbolic()) if self.backend == "symbolic" else (
            lambda c: c.system()
        )
        components = {"coordinator": make(self.coordinator)}
        for i, p in enumerate(self.participants, start=1):
            components[f"participant{i}"] = make(p)
        return CompositionProof(
            components,
            backend=self.backend,  # type: ignore[arg-type]
            parallel=self.jobs,
            store=self.store,
        )

    # ------------------------------------------------------------------
    # proofs
    # ------------------------------------------------------------------
    def prove_atomicity(self) -> tuple[CompositionProof, Proven]:
        """AG atomicity via the inductive invariant (n+1 obligations)."""
        pf = self.proof()
        ag_inv = pf.invariant(self.initial(), self.invariant())
        return pf, pf.ag_weaken(ag_inv, self.atomicity())

    def prove_termination(self) -> tuple[CompositionProof, Proven]:
        """⊨_(I,F) AF (decision ≠ none): a decision is always reached.

        Votes arrive in any interleaved order, so no single leads-to chain
        works; instead each participant's vote is a stable goal reached
        individually (Rule 4), all votes are eventually in simultaneously
        (stable-goal conjunction), and then the coordinator decides.
        """
        pf = self.proof()
        V = self.valid()
        voted = [
            land(Or(self.vote(i, "yes"), self.vote(i, "no")), V)
            for i in range(1, self.n + 1)
        ]
        unvoted = [
            land(self.vote(i, "none"), V) for i in range(1, self.n + 1)
        ]
        all_voted = land(*voted)
        undecided = land(all_voted, self.decision("none"))
        decided = land(
            Or(self.decision("commit"), self.decision("abort")), V
        )

        # one Rule-4 link per participant + the coordinator's decision step
        links = [
            pf.project(
                pf.discharge(
                    pf.guarantee_rule4(f"participant{i}", unvoted[i - 1], voted[i - 1])
                ),
                0,
            )
            for i in range(1, self.n + 1)
        ]
        links.append(
            pf.project(
                pf.discharge(
                    pf.guarantee_rule4("coordinator", undecided, decided)
                ),
                0,
            )
        )
        aligned = pf.align_fairness(links)
        restriction = aligned[0].restriction

        # per-participant: V ⇒ AF votedᵢ (case split on having voted)
        af_voted = []
        for i in range(1, self.n + 1):
            af_link = pf.au_to_af(aligned[i - 1])
            now = pf.af_reflexive(voted[i - 1], restriction)
            af_voted.append(pf.implication_cases(V, [af_link, now]))
        # votes are stable goals → eventually all in simultaneously
        stables = [pf.universal(Implies(v, AX(v))) for v in voted]
        all_in = pf.af_conjoin_stable(af_voted, stables)

        # once all voted: the coordinator decides (or already has)
        af_decide = pf.au_to_af(aligned[-1])
        now_decided = pf.af_reflexive(decided, restriction)
        decide_from_allvoted = pf.implication_cases(
            all_voted, [af_decide, now_decided]
        )
        result = pf.leads_to(all_in, decide_from_allvoted)
        return pf, pf.to_initial(result, self.initial())
