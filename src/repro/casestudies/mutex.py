"""Token-based mutual exclusion — a second domain for the framework.

The paper's Discussion argues the theory applies to "a broad class of
systems, especially network protocols".  This module exercises the same
machinery on a different protocol shape: ``n`` processes pass a token;
a process may enter its critical section only while holding the token.

Components are built *programmatically* (no SMV), demonstrating the
:class:`repro.systems.System` construction API:

* process ``i`` owns ``c_i`` (in-critical-section) and shares the token
  counter ``tok`` (encoded over ``⌈log₂ n⌉`` bits);
* safety — ``AG ¬(c_i ∧ c_j)`` for ``i ≠ j`` — follows from the inductive
  invariant ``⋀_i (c_i ⇒ tok = i)``;
* liveness — ``(tok=i ∧ ¬c_i) ⇒ AF c_i`` — is a Rule-4 guarantee of
  process ``i`` (its enter transition is always enabled while it holds
  the token, and no other process can steal the token).
"""

from __future__ import annotations

from repro.compositional.proof import CompositionProof, Proven
from repro.logic.ctl import And, Formula, Implies, Not, land
from repro.systems.encode import Encoding, FiniteVar
from repro.systems.system import System


class TokenRing:
    """A ring of ``n`` token-passing processes."""

    def __init__(self, n: int = 2):
        if n < 2:
            raise ValueError("a ring needs at least two processes")
        self.n = n
        self.token_var = FiniteVar("tok", tuple(range(n)))
        self.encoding = Encoding([self.token_var])

    # ------------------------------------------------------------------
    # vocabulary
    # ------------------------------------------------------------------
    def tok(self, i: int) -> Formula:
        """``tok = i`` over the encoded token bits."""
        return self.encoding.eq_formula("tok", i)

    def crit(self, i: int) -> Formula:
        """``c_i`` — process i is in its critical section."""
        from repro.logic.ctl import Atom

        return Atom(f"c{i}")

    def valid(self) -> Formula:
        """Token bits decode to a real process index."""
        return self.encoding.valid_formula()

    # ------------------------------------------------------------------
    # components
    # ------------------------------------------------------------------
    def process(self, i: int) -> System:
        """Process i: enter/leave its critical section, pass the token.

        Alphabet: the shared token bits plus the private ``c_i``.
        Transitions (besides stuttering):

        * enter:  ``tok=i ∧ ¬c_i  →  tok=i ∧ c_i``
        * leave+pass: ``tok=i ∧ c_i  →  tok=(i+1) mod n ∧ ¬c_i``
        """
        enc = self.encoding
        ci = f"c{i}"
        sigma = set(enc.atoms) | {ci}
        tok_bits = lambda v: enc.state_of({"tok": v})
        pairs = [
            (tok_bits(i), tok_bits(i) | {ci}),
            (tok_bits(i) | {ci}, tok_bits((i + 1) % self.n)),
        ]
        return System(sigma, [(frozenset(s), frozenset(t)) for s, t in pairs])

    def components(self) -> dict[str, System]:
        """All ring processes, named ``proc0 … proc{n-1}``."""
        return {f"proc{i}": self.process(i) for i in range(self.n)}

    def composite(self) -> System:
        """The full ring (product system) — for cross-validation."""
        from repro.systems.compose import compose_all

        return compose_all(self.components().values())

    # ------------------------------------------------------------------
    # proofs
    # ------------------------------------------------------------------
    def initial(self) -> Formula:
        """Process 0 holds the token, nobody is critical, encoding valid."""
        return land(
            self.tok(0),
            *(Not(self.crit(i)) for i in range(self.n)),
            self.valid(),
        )

    def mutex_invariant(self) -> Formula:
        """``⋀_i (c_i ⇒ tok = i)`` — the inductive invariant."""
        return land(
            *(Implies(self.crit(i), self.tok(i)) for i in range(self.n))
        )

    def mutual_exclusion(self) -> Formula:
        """``⋀_{i<j} ¬(c_i ∧ c_j)``."""
        return land(
            *(
                Not(And(self.crit(i), self.crit(j)))
                for i in range(self.n)
                for j in range(i + 1, self.n)
            )
        )

    def prove_safety(
        self, backend: str = "explicit", jobs: int | None = None, store=None
    ) -> tuple[CompositionProof, Proven]:
        """``AG ⋀_{i<j} ¬(c_i ∧ c_j)`` from the inductive invariant."""
        pf = CompositionProof(
            self.components(),
            backend=backend,  # type: ignore[arg-type]
            parallel=jobs,
            store=store,
        )
        ag_inv = pf.invariant(self.initial(), self.mutex_invariant())
        safety = pf.ag_weaken(ag_inv, self.mutual_exclusion())
        return pf, safety

    def prove_enter_liveness(
        self,
        i: int = 0,
        backend: str = "explicit",
        jobs: int | None = None,
        store=None,
    ) -> tuple[CompositionProof, Proven]:
        """Rule 4: a token holder eventually enters its critical section.

        Conclusion: ``⊨_(true, {¬p ∨ q}) (tok=i ∧ ¬c_i) ⇒ AF c_i`` where
        the fairness constraint discards runs in which process i is never
        scheduled while enabled.
        """
        pf = CompositionProof(
            self.components(),
            backend=backend,  # type: ignore[arg-type]
            parallel=jobs,
            store=store,
        )
        p = land(self.tok(i), Not(self.crit(i)), self.valid())
        q = land(self.tok(i), self.crit(i), self.valid())
        g = pf.guarantee_rule4(f"proc{i}", p, q)
        rhs = pf.discharge(g)
        au = pf.project(rhs, 0)
        live = pf.af_weaken(pf.chain([au]), self.crit(i))
        return pf, live
