"""Shared plumbing for the AFS case studies.

A :class:`ProtocolComponent` wraps an SMV source: it lazily elaborates the
model and provides the three views the case studies need — the raw SMV
semantics for figure reproduction, a reflexive (paper-style) system for
composition, and formula builders (``eq``/``state``/``valid``) over the
encoded atoms for writing specifications.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.logic.ctl import Formula, land
from repro.smv.compile_explicit import to_system
from repro.smv.compile_symbolic import to_symbolic
from repro.smv.elaborate import SmvModel
from repro.smv.parser import parse_module
from repro.systems.symbolic import SymbolicSystem
from repro.systems.system import System

# Process-wide memos keyed by source text.  Elaboration and symbolic
# compilation are pure functions of the source (plus the reorder mode
# the BDD manager was created under), and study objects are rebuilt per
# proof — without the memos an incremental *re*check would pay the full
# compile cost for components whose obligations all replay from the
# store.  Bounded FIFO: component sets are tiny in practice.
_MEMO_CAP = 64
_MODEL_MEMO: dict[str, SmvModel] = {}
_SYMBOLIC_MEMO: dict[tuple[str, bool, str], SymbolicSystem] = {}


def _memo_put(memo: dict, key, value):
    while len(memo) >= _MEMO_CAP:
        memo.pop(next(iter(memo)))
    memo[key] = value
    return value


def shared_model(source: str) -> SmvModel:
    """The elaborated model for ``source`` (memoized process-wide)."""
    model = _MODEL_MEMO.get(source)
    if model is None:
        model = _memo_put(_MODEL_MEMO, source, SmvModel(parse_module(source)))
    return model


@dataclass
class ProtocolComponent:
    """One protocol participant defined by SMV source text."""

    name: str
    source: str
    _model: SmvModel | None = field(default=None, repr=False)

    @property
    def model(self) -> SmvModel:
        """The elaborated SMV model (parsed on first use)."""
        if self._model is None:
            self._model = shared_model(self.source)
        return self._model

    # ------------------------------------------------------------------
    # systems
    # ------------------------------------------------------------------
    def system(self, reflexive: bool = True) -> System:
        """Explicit system; reflexive (stutter-closed) by default."""
        return to_system(self.model, reflexive=reflexive)

    def symbolic(self, reflexive: bool = True) -> SymbolicSystem:
        """Symbolic system; reflexive (stutter-closed) by default.

        The SMV source rides along (``smv_source``/``smv_reflexive``)
        so the parallel engine can rebuild the system in worker
        processes (:func:`repro.parallel.workitem.spec_of_component`).
        Compiled systems are shared per ``(source, reflexive, reorder
        mode)``: components are immutable value objects, so a recheck of
        an unchanged component reuses the compiled relation.
        """
        from repro.bdd.manager import default_reorder

        key = (self.source, reflexive, default_reorder())
        sym = _SYMBOLIC_MEMO.get(key)
        if sym is None:
            sym = to_symbolic(self.model, reflexive=reflexive)
            sym.smv_source = self.source
            sym.smv_reflexive = reflexive
            _memo_put(_SYMBOLIC_MEMO, key, sym)
        return sym

    # ------------------------------------------------------------------
    # formula builders
    # ------------------------------------------------------------------
    def eq(self, var: str, value: Hashable) -> Formula:
        """``var = value`` over the encoded boolean atoms."""
        return self.model.encoding.eq_formula(var, value)

    def state(self, assignment: dict[str, Hashable]) -> Formula:
        """Conjunction of equalities, e.g. ``{"belief": "nofile", "r": "null"}``."""
        return land(*(self.eq(var, val) for var, val in assignment.items()))

    def valid(self) -> Formula:
        """The component's non-junk-encoding predicate."""
        return self.model.valid_formula()
