"""Case studies: the paper's AFS protocols, its figures, and extra domains."""

from repro.casestudies.afs1 import (
    AFS1_CLIENT_FIGURE,
    AFS1_SERVER_FIGURE,
    Afs1,
    prove_afs1_liveness,
    prove_afs1_safety,
)
from repro.casestudies.afs2 import (
    Afs2,
    client_source,
    prove_afs2_safety,
    server_source,
)
from repro.casestudies.afs_common import ProtocolComponent
from repro.casestudies.mutex import TokenRing
from repro.casestudies.twophase import TwoPhaseCommit

__all__ = [
    "Afs1",
    "prove_afs1_safety",
    "prove_afs1_liveness",
    "AFS1_SERVER_FIGURE",
    "AFS1_CLIENT_FIGURE",
    "Afs2",
    "prove_afs2_safety",
    "server_source",
    "client_source",
    "ProtocolComponent",
    "TokenRing",
    "TwoPhaseCommit",
]
