"""AFS-2 — callback-based cache coherence with failures and updates (§4.3).

AFS-2 extends AFS-1: the server promises to notify ("callback") clients
whose cached copy gets invalidated by another client's update, failures
may strike at any time, and a *transmission delay* is modeled by the
shared boolean ``time_i`` — the server sets it false when an invalidation
message is in flight, the client sets it true when it takes its next step.

Model reconstruction
--------------------
The paper's Figure 12 prints only a fragment ("variable declarations
omitted, see appendix") and Figure 13 leaves ``response``/``failure``
unassigned.  We reconstruct the intended models:

* each module *pins* the variables it merely reads (``next(x) := x``) so
  interleaving composition gives them a single writer — the exception is
  ``failure``, which stays unconstrained (free) in every module: a failure
  may be injected by the environment at any step, exactly the paper's
  "a failure might occur at any time during a run";
* Figure 13's client must pin ``response`` (otherwise its own spec Cli1,
  reported true in Figure 17, would be false) — this is how we resolve the
  omitted appendix;
* the server is *parametric in the number of clients n*: client ``j``'s
  ``update`` revokes the callback of every other client ``i`` (Figure 12
  shows the ``n = 2`` instance where ``request2 = update`` invalidates
  client 1's copy).

Properties
----------
(Afs1) for AFS-2 (§4.3.1): for every client i::

    AG (Client_i.belief = valid  ⇒  Server.belief_i = valid ∨ ¬time_i)

proved from the inductive invariant ``Inv`` (§4.3.4) — ``Inv ⇒ AX Inv``
is universal, so it is checked on the server expansion and each client
expansion separately; composition is never built.  This is the experiment
where compositional checking is *linear* in n while the monolithic check
is exponential (see ``benchmarks/bench_scaling_compositional_vs_monolithic``).
"""

from __future__ import annotations

from repro.compositional.proof import CompositionProof, Proven
from repro.logic.ctl import Formula, Implies, Not, Or, land
from repro.casestudies.afs_common import ProtocolComponent
from repro.smv.run import SmvReport, check_source


# ----------------------------------------------------------------------
# source generators
# ----------------------------------------------------------------------
def server_source(n: int = 2, rename: bool = True) -> str:
    """SMV source of the AFS-2 server managing ``n`` clients.

    ``rename=True`` produces the composition names (``Server.belief1``);
    ``rename=False`` matches the paper's Figure 12 names (``belief1``).
    """
    if n < 1:
        raise ValueError("need at least one client")
    b = (lambda i: f"Server.belief{i}") if rename else (lambda i: f"belief{i}")
    lines = ["MODULE main", "VAR", "  failure : boolean;"]
    for i in range(1, n + 1):
        lines += [
            f"  validFile{i} : boolean;",
            f"  {b(i)} : {{nocall, valid}};",
            f"  response{i} : {{null, val, inval}};",
            f"  time{i} : boolean;",
            f"  request{i} : {{null, fetch, validate, update}};",
        ]
    lines.append("ASSIGN")
    for i in range(1, n + 1):
        others = [j for j in range(1, n + 1) if j != i]
        update_guard = " | ".join(f"(request{j} = update)" for j in others)
        lines.append(f"  next(validFile{i}) := validFile{i};")
        # the server reads the clients' request channels but never writes them
        lines.append(f"  next(request{i}) := request{i};")
        lines.append(f"  next({b(i)}) :=")
        lines.append("    case")
        lines.append(f"      failure : nocall;")
        lines.append(f"      ({b(i)} = nocall) & (request{i} = fetch) : valid;")
        lines.append(
            f"      ({b(i)} = nocall) & (request{i} = validate) & validFile{i} : valid;"
        )
        lines.append(
            f"      ({b(i)} = nocall) & (request{i} = validate) & !validFile{i} : nocall;"
        )
        if others:
            lines.append(f"      ({b(i)} = valid) & ({update_guard}) : nocall;")
        lines.append(f"      1 : {b(i)};")
        lines.append("    esac;")
        lines.append(f"  next(response{i}) :=")
        lines.append("    case")
        lines.append(f"      failure : null;")
        lines.append(f"      ({b(i)} = nocall) & (request{i} = fetch) : val;")
        lines.append(
            f"      ({b(i)} = nocall) & (request{i} = validate) & validFile{i} : val;"
        )
        lines.append(
            f"      ({b(i)} = nocall) & (request{i} = validate) & !validFile{i} : inval;"
        )
        if others:
            lines.append(f"      ({b(i)} = valid) & ({update_guard}) : inval;")
        lines.append(f"      1 : response{i};")
        lines.append("    esac;")
        lines.append(f"  next(time{i}) :=")
        lines.append("    case")
        lines.append(f"      failure : 0;")
        lines.append(
            f"      ({b(i)} = nocall) & (request{i} = validate) & !validFile{i} : 0;"
        )
        if others:
            lines.append(f"      ({b(i)} = valid) & ({update_guard}) : 0;")
        lines.append(f"      1 : time{i};")
        lines.append("    esac;")
    return "\n".join(lines)


def client_source(i: int = 1, rename: bool = True) -> str:
    """SMV source of AFS-2 client ``i``.

    ``rename=True`` produces composition names (``Client1.belief``,
    ``request1``); ``rename=False`` matches Figure 13 (``belief``,
    ``request``).
    """
    b = f"Client{i}.belief" if rename else "belief"
    sfx = str(i) if rename else ""
    return f"""
MODULE main
VAR
  time{sfx} : boolean;
  request{sfx} : {{null, fetch, validate, update}};
  {b} : {{valid, suspect, nofile}};
  response{sfx} : {{null, val, inval}};
  failure : boolean;
ASSIGN
  -- the client reads the server's response channel but never writes it
  next(response{sfx}) := response{sfx};
  next({b}) :=
    case
      ({b} = nofile) & (response{sfx} = val) : valid;
      ({b} = suspect) & (response{sfx} = val) : valid;
      ({b} = suspect) & (response{sfx} = inval) : nofile;
      ({b} = valid) & failure : suspect;
      ({b} = valid) & (response{sfx} = inval) : nofile;
      1 : {b};
    esac;
  next(request{sfx}) :=
    case
      ({b} = nofile) & (response{sfx} = null) : {{fetch, null}};
      ({b} = suspect) & (response{sfx} = null) : {{validate, null}};
      ({b} = valid) & failure : null;
      ({b} = valid) & (response{sfx} = inval) : null;
      ({b} = valid) & (response{sfx} != inval) : update;
      1 : request{sfx};
    esac;
  next(time{sfx}) :=
    case
      ({b} = nofile) & (response{sfx} = val) : 1;
      ({b} = suspect) & (response{sfx} = val) : 1;
      ({b} = suspect) & (response{sfx} = inval) : 1;
      ({b} = valid) & failure : 1;
      ({b} = valid) & (response{sfx} = inval) : 1;
      1 : time{sfx};
    esac;
"""


def client_source_variant(i: int = 1, rename: bool = True) -> str:
    """:func:`client_source` after a semantically-neutral edit.

    Swaps the first two ``case`` branches of ``next(belief)``.  The two
    guards are mutually exclusive and both map to ``valid``, so the
    transition function — and every proof obligation's verdict — is
    unchanged; but the elaborated module's canonical text differs, so
    the edited client's obligation fingerprints miss while Σ* and every
    other component's records are untouched.  This is the "edit one
    component" step of the incremental benchmark and smoke test.
    """
    source = client_source(i, rename)
    b = f"Client{i}.belief" if rename else "belief"
    sfx = str(i) if rename else ""
    first = f"      ({b} = nofile) & (response{sfx} = val) : valid;\n"
    second = f"      ({b} = suspect) & (response{sfx} = val) : valid;\n"
    edited = source.replace(first + second, second + first)
    if edited == source:
        raise ValueError(
            "client_source layout changed; update client_source_variant"
        )
    return edited


# ----------------------------------------------------------------------
# figure reproductions (Figures 12–17)
# ----------------------------------------------------------------------
SERVER_SPECS_FIGURE = """
-- Specification of the Server of the AFS-2 (paper Figure 14)
-- Srv1
SPEC (belief1 = valid | !time1) -> AX (belief1 = valid | !time1)
-- Srv2
SPEC (response1 = val -> belief1 = valid) ->
     AX (response1 = val -> belief1 = valid)
"""

CLIENT_SPECS_FIGURE = """
-- Specification of the Client of the AFS-2 (paper Figure 16)
-- Cli1
SPEC ((belief = valid -> !time) & response != val) ->
     AX ((belief = valid -> !time) & response != val)
"""


def check_server_figure(n: int = 2) -> SmvReport:
    """Model-check the AFS-2 server (Srv1/Srv2) — Figure 15's output."""
    return check_source(server_source(n, rename=False) + SERVER_SPECS_FIGURE)


def check_client_figure() -> SmvReport:
    """Model-check the AFS-2 client (Cli1) — Figure 17's output."""
    return check_source(client_source(rename=False) + CLIENT_SPECS_FIGURE)


# ----------------------------------------------------------------------
# compositional safety proof, parametric in n
# ----------------------------------------------------------------------
class Afs2:
    """Vocabulary and safety proof for AFS-2 with ``n`` clients."""

    def __init__(
        self,
        n: int = 2,
        backend: str = "symbolic",
        jobs: int | None = None,
        store=None,
        variant_client: int | None = None,
    ):
        if n < 1:
            raise ValueError("need at least one client")
        if variant_client is not None and not (1 <= variant_client <= n):
            raise ValueError(f"variant_client {variant_client} out of range")
        self.n = n
        self.backend = backend
        self.jobs = jobs
        #: A :class:`~repro.store.ResultStore` making proofs incremental:
        #: unchanged components replay their obligations from disk.
        self.store = store
        self.server = ProtocolComponent("server", server_source(n))
        self.clients = [
            ProtocolComponent(
                f"client{i}",
                client_source_variant(i)
                if i == variant_client
                else client_source(i),
            )
            for i in range(1, n + 1)
        ]

    # formula vocabulary ---------------------------------------------------
    def sb(self, i: int, value: str) -> Formula:
        """``Server.belief_i = value``."""
        return self.server.eq(f"Server.belief{i}", value)

    def cb(self, i: int, value: str) -> Formula:
        """``Client_i.belief = value``."""
        return self.clients[i - 1].eq(f"Client{i}.belief", value)

    def resp(self, i: int, value: str) -> Formula:
        """``response_i = value``."""
        return self.server.eq(f"response{i}", value)

    def time(self, i: int) -> Formula:
        """``time_i`` (true = transmission window expired)."""
        return self.server.eq(f"time{i}", True)

    def req(self, i: int, value: str) -> Formula:
        """``request_i = value``."""
        return self.server.eq(f"request{i}", value)

    def invariant(self) -> Formula:
        """§4.3.1's ``Inv``, conjoined over all clients."""
        parts = []
        for i in range(1, self.n + 1):
            parts.append(
                Implies(
                    self.cb(i, "valid"),
                    Or(self.sb(i, "valid"), Not(self.time(i))),
                )
            )
            parts.append(Implies(self.resp(i, "val"), self.sb(i, "valid")))
        return land(*parts)

    def initial(self) -> Formula:
        """§4.3.1's initial condition ``I`` plus encoding validity."""
        parts = [self.server.valid()]
        for i, client in enumerate(self.clients, start=1):
            parts.append(client.valid())
            parts.append(Or(self.cb(i, "nofile"), self.cb(i, "suspect")))
            parts.append(self.req(i, "null"))
            parts.append(self.sb(i, "nocall"))
            parts.append(self.resp(i, "null"))
        return land(*parts)

    def afs1_property(self) -> Formula:
        """The (Afs1) matrix for AFS-2: valid copies are covered or in flight."""
        return land(
            *(
                Implies(
                    self.cb(i, "valid"),
                    Or(self.sb(i, "valid"), Not(self.time(i))),
                )
                for i in range(1, self.n + 1)
            )
        )

    def combined_encoding(self):
        """One Encoding over the server's and clients' variables."""
        from repro.systems.encode import Encoding

        merged = list(self.server.model.encoding.variables)
        seen = {v.name for v in merged}
        for client in self.clients:
            for v in client.model.encoding.variables:
                if v.name not in seen:
                    seen.add(v.name)
                    merged.append(v)
        return Encoding(merged)

    def proof(self) -> CompositionProof:
        """Fresh proof context over server + n clients."""
        if self.backend == "symbolic":
            components = {"server": self.server.symbolic()}
            for i, c in enumerate(self.clients, start=1):
                components[f"client{i}"] = c.symbolic()
        else:
            components = {"server": self.server.system()}
            for i, c in enumerate(self.clients, start=1):
                components[f"client{i}"] = c.system()
        return CompositionProof(
            components,
            backend=self.backend,  # type: ignore[arg-type]
            parallel=self.jobs,
            store=self.store,
        )

    def prove_safety(self) -> tuple[CompositionProof, Proven]:
        """Machine-checked §4.3.4: the n-client composite satisfies (Afs1).

        ``n + 1`` model-checking obligations (one per expansion), each
        linear in the number of components — never the product system.
        """
        pf = self.proof()
        ag_inv = pf.invariant(self.initial(), self.invariant())
        afs1 = pf.ag_weaken(ag_inv, self.afs1_property())
        return pf, afs1


def prove_afs2_safety(
    n: int = 2,
    backend: str = "symbolic",
    jobs: int | None = None,
    store=None,
) -> tuple[CompositionProof, Proven]:
    """Convenience wrapper: the AFS-2 (Afs1) safety proof for n clients."""
    return Afs2(n, backend, jobs=jobs, store=store).prove_safety()
