"""Command-line interface: check, simulate, and render SMV models.

Usage::

    python -m repro check model.smv            # SMV-style spec report
    python -m repro check model.smv --explicit # use the NumPy engine
    python -m repro check model.smv --trace out.json --profile
    python -m repro check model.smv --jobs 4    # parallel spec checking
    python -m repro check model.smv --cache .repro-cache  # result store
    python -m repro check model.smv --json     # machine-readable report
    python -m repro serve --port 8123 --jobs 4 --cache-dir .repro-cache
    python -m repro serve --log-file serve.jsonl --log-level debug
    python -m repro serve --port 8124 --cache-dir a.cache \\
        --ring 127.0.0.1:8124,127.0.0.1:8125   # one shard of a cluster
    python -m repro cluster router --ring 127.0.0.1:8124,127.0.0.1:8125
    python -m repro cluster status --ring 127.0.0.1:8124,127.0.0.1:8125
    python -m repro submit model.smv --url http://localhost:8123
    python -m repro obs tail serve.jsonl -n 50   # render the event log
    python -m repro obs summary serve.jsonl      # counts + latency stats
    python -m repro demo afs2-safety --jobs 2   # parallel proof obligations
    python -m repro demo afs2-safety --cache .repro-cache  # incremental proof
    python -m repro store stats .repro-cache   # store inventory + counters
    python -m repro store gc .repro-cache --max-bytes 1000000
    python -m repro store clear .repro-cache
    python -m repro simulate model.smv -n 12   # random run
    python -m repro graph model.smv            # DOT transition graph
    python -m repro reachable model.smv        # forward reachability stats

Exit status is 0 when every SPEC holds, 1 otherwise (like SMV).

``--trace FILE`` captures a span trace of the whole run and writes it in
Chrome trace-event format (load in ``chrome://tracing`` / Perfetto) or,
with ``--trace-format jsonl``, as one JSON span record per line.
``--profile`` prints the span tree and an inclusive/exclusive time table
after the report (see :mod:`repro.obs`).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.checking.explicit import ExplicitChecker
from repro.checking.reachability import check_invariant_symbolic
from repro.logic.ctl import TRUE
from repro.logic.restriction import Restriction
from repro.smv.compile_explicit import to_system
from repro.smv.compile_symbolic import to_symbolic
from repro.smv.pretty import clip_spec, spec_to_str
from repro.smv.run import check_model, load_model
from repro.smv.simulate import format_trace, simulate
from repro.systems.graph import decoded_graph, to_dot


def _run_observed(args: argparse.Namespace, run) -> int:
    """Run ``run()`` under the tracer when --trace/--profile ask for it."""
    trace_path = getattr(args, "trace", None)
    profile = getattr(args, "profile", False)
    if not trace_path and not profile:
        return run()
    from repro.obs import tracing
    from repro.obs.export import write_chrome_trace, write_jsonl
    from repro.obs.profile import format_profile

    with tracing() as tracer:
        code = run()
    if trace_path:
        if getattr(args, "trace_format", "chrome") == "jsonl":
            write_jsonl(trace_path, tracer)
        else:
            write_chrome_trace(trace_path, tracer)
        print(f"trace written to {trace_path}", file=sys.stderr)
    if profile:
        print()
        print(format_profile(tracer))
    return code


def _add_jobs_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="fan independent check obligations out over N worker "
        "processes (repro.parallel); N <= 1 keeps the sequential "
        "in-process path",
    )


def _add_reorder_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--reorder",
        choices=("none", "sift", "auto"),
        default=None,
        metavar="MODE",
        help="dynamic BDD variable reordering: 'sift' runs one sifting "
        "pass after the transition relation is built, 'auto' re-sifts "
        "whenever the unique table doubles, 'none' (default) keeps the "
        "declared order; verdicts and certificates are identical in "
        "every mode",
    )


def _add_observability_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="write a span trace of the run (chrome://tracing-loadable "
        "by default)",
    )
    parser.add_argument(
        "--trace-format",
        choices=("chrome", "jsonl"),
        default="chrome",
        help="trace file format: Chrome trace events (default) or one "
        "JSON span record per line",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print the span tree and per-span-name inclusive/exclusive "
        "time table after the report",
    )


def _cmd_check(args: argparse.Namespace) -> int:
    source = Path(args.file).read_text()

    def run() -> int:
        if args.json or args.cache or args.progress:
            return _check_cached(args, source)
        model = load_model(source)
        if args.jobs and args.jobs > 1:
            return _check_parallel(args, source, model)
        if args.explicit:
            system = to_system(model, reflexive=args.reflexive)
            checker = ExplicitChecker(system)
            restriction = Restriction(
                init=model.initial_formula(),
                fairness=tuple(model.fairness) or (TRUE,),
            )
            ok = True
            results = []
            for spec, text in zip(model.specs, model.module.specs):
                result = checker.holds(spec, restriction)
                results.append(result)
                ok &= bool(result)
                verdict = "true" if result else "false"
                print(f"-- spec. {clip_spec(spec_to_str(text))} is {verdict}")
            if args.stats and results:
                from repro.checking.result import CheckStats

                print()
                print(CheckStats.merged(r.stats for r in results).format())
            return 0 if ok else 1
        report, _ = check_model(model, reflexive=args.reflexive)
        print(report.format(with_stats=args.stats))
        return 0 if report.all_true else 1

    return _run_observed(args, run)


def _check_cached(args: argparse.Namespace, source: str) -> int:
    """``repro check`` through the result store (``--cache`` / ``--json``).

    Verdicts, reports and exit codes match the plain paths; the cache
    summary goes to stderr so cached and uncached stdout stay
    comparable, and ``--json`` emits the same report payload the
    serving layer returns (:mod:`repro.serve.schema`).
    """
    from repro.serve.schema import report_payload
    from repro.store import ResultStore
    from repro.store.cached import cached_check

    store = ResultStore(args.cache) if args.cache else None
    scheduler = None
    if args.jobs and args.jobs > 1:
        from repro.parallel import shared_scheduler

        scheduler = shared_scheduler(args.jobs)
    progress = None
    progress_key = ""
    if args.progress:
        import uuid

        from repro.obs.progress import ProgressConfig, ProgressPrinter

        printer = ProgressPrinter(sys.stderr)
        progress_key = uuid.uuid4().hex[:12]
        if scheduler is not None:
            scheduler.subscribe_progress(progress_key, printer)
        progress = ProgressConfig(publish=printer, key=progress_key)
    try:
        run = cached_check(
            source,
            engine="explicit" if args.explicit else "symbolic",
            reflexive=args.reflexive,
            store=store,
            scheduler=scheduler,
            progress=progress,
        )
    finally:
        if progress is not None and scheduler is not None:
            scheduler.unsubscribe_progress(progress_key)
    if args.json:
        print(
            json.dumps(
                report_payload(run, with_cache=store is not None), indent=2
            )
        )
    elif args.explicit:
        for text, result in zip(run.spec_texts, run.results):
            verdict = "true" if result.holds else "false"
            print(f"-- spec. {clip_spec(text)} is {verdict}")
        if args.stats and run.results:
            print()
            print(run.merged_stats().format())
    else:
        print(run.to_report().format(with_stats=args.stats))
    if store is not None:
        print(
            f"result store: {run.hits} hit(s), {run.misses} miss(es)",
            file=sys.stderr,
        )
        try:
            store.flush_counters()  # keep `repro store stats` lifetime-true
        except OSError:
            pass
    return 0 if run.all_true else 1


def _check_parallel(args: argparse.Namespace, source: str, model) -> int:
    """Fan the module's SPECs out over a worker pool (``--jobs N``).

    Each spec becomes one independent work item; verdicts print in spec
    order and the resources block aggregates the worker statistics.
    Failing specs are re-examined in-process to decode counterexample
    traces, so the report matches a sequential run.
    """
    from repro.bdd.manager import default_reorder
    from repro.checking.result import CheckStats
    from repro.logic.ctl import TRUE as F_TRUE
    from repro.obs.tracer import TRACER
    from repro.parallel import SmvSpec, WorkItem, shared_scheduler
    from repro.smv.run import SmvReport, _counterexample_trace

    engine = "explicit" if args.explicit else "symbolic"
    restriction = Restriction(
        init=model.initial_formula(),
        fairness=tuple(model.fairness) or (TRUE,),
    )
    system_spec = SmvSpec(source=source, reflexive=args.reflexive)
    items = [
        WorkItem(
            system=system_spec,
            formula=spec,
            restriction=restriction,
            engine=engine,
            label=f"spec{i}",
            # stamped explicitly: a long-lived shared pool may predate
            # this command's --reorder choice
            reorder=default_reorder(),
        )
        for i, spec in enumerate(model.specs)
    ]
    with TRACER.span("cli.check_parallel", category="cli") as root:
        outcomes = shared_scheduler(args.jobs).run(items)
    results = [outcome.result for outcome in outcomes]
    if args.explicit:
        ok = True
        for result, text in zip(results, model.module.specs):
            ok &= bool(result)
            verdict = "true" if result else "false"
            print(f"-- spec. {clip_spec(spec_to_str(text))} is {verdict}")
        if args.stats and results:
            print()
            print(CheckStats.merged(r.stats for r in results).format())
        return 0 if ok else 1
    report = SmvReport(
        module_name=model.name,
        results=results,
        spec_texts=[spec_to_str(s) for s in model.module.specs],
        counterexamples=[None] * len(results),
        user_time=root.elapsed(),
        num_fairness=len([f for f in restriction.fairness if f != F_TRUE]),
    )
    if not report.all_true:
        # decode counterexample traces in-process, as sequentially
        sym = to_symbolic(model, reflexive=args.reflexive)
        report.counterexamples = [
            _counterexample_trace(model, sym, spec, result)
            if not result.holds
            else None
            for spec, result in zip(model.specs, results)
        ]
    merged = CheckStats.merged(r.stats for r in results)
    report.bdd_nodes_allocated = merged.bdd_nodes_allocated
    report.transition_nodes = merged.transition_nodes
    print(report.format(with_stats=args.stats))
    return 0 if report.all_true else 1


def _cmd_simulate(args: argparse.Namespace) -> int:
    model = load_model(Path(args.file).read_text())
    trace = simulate(model, steps=args.steps, seed=args.seed)
    print(format_trace(trace))
    return 0


def _cmd_graph(args: argparse.Namespace) -> int:
    model = load_model(Path(args.file).read_text())
    system = to_system(model, reflexive=False)
    if args.decoded:
        graph = decoded_graph(system, model.encoding)
        lines = ["digraph protocol {"]
        for a, b in graph.edges:
            fmt = lambda n: ",".join(f"{k}={v}" for k, v in n)
            lines.append(f'  "{fmt(a)}" -> "{fmt(b)}";')
        lines.append("}")
        print("\n".join(lines))
    else:
        print(to_dot(system))
    return 0


def _cmd_reachable(args: argparse.Namespace) -> int:
    model = load_model(Path(args.file).read_text())
    system = to_symbolic(model)
    report = check_invariant_symbolic(
        system, model.initial_formula(), model.valid_formula()
    )
    print(f"atoms:            {len(system.atoms)}")
    print(f"total states:     {report.num_total:.0f}")
    print(f"reachable states: {report.num_reachable:.0f} "
          f"({100 * report.fraction_reachable:.1f}%)")
    print(f"diameter (image iterations): {report.iterations}")
    return 0


_DEMOS = {
    "afs1-safety": "the paper's (Afs1): AG client-valid ⇒ server-valid",
    "afs1-liveness": "the paper's (Afs2): AF client-valid",
    "afs2-safety": "AFS-2 with callbacks/failures, 2 clients",
    "mutex": "token-ring mutual exclusion, 3 processes",
    "2pc-atomicity": "two-phase commit atomicity, 2 participants",
    "2pc-termination": "two-phase commit termination, 2 participants",
}


def _mutex_demo(jobs: int | None = None, store=None):
    from repro.casestudies.mutex import TokenRing
    from repro.systems.encode import Encoding, FiniteVar

    ring = TokenRing(3)
    pf, conclusion = ring.prove_safety(jobs=jobs, store=store)
    encoding = Encoding(
        list(ring.encoding.variables)
        + [FiniteVar(f"c{i}", (False, True)) for i in range(3)]
    )
    return pf, conclusion, encoding


def _cmd_demo(args: argparse.Namespace) -> int:
    return _run_observed(args, lambda: _demo_body(args))


def _demo_body(args: argparse.Namespace) -> int:
    from repro.casestudies.afs1 import Afs1
    from repro.casestudies.afs2 import Afs2
    from repro.casestudies.mutex import TokenRing
    from repro.casestudies.twophase import TwoPhaseCommit

    jobs = getattr(args, "jobs", None)
    store = None
    if getattr(args, "cache", None):
        from repro.store import ResultStore

        store = ResultStore(args.cache)

    def with_encoding(study, prove):
        pf, conclusion = prove(study)
        return pf, conclusion, study.combined_encoding()

    runners = {
        "afs1-safety": lambda: with_encoding(
            Afs1(jobs=jobs, store=store), lambda s: s.prove_safety()
        ),
        "afs1-liveness": lambda: with_encoding(
            Afs1(jobs=jobs, store=store), lambda s: s.prove_liveness()
        ),
        "afs2-safety": lambda: with_encoding(
            Afs2(2, jobs=jobs, store=store), lambda s: s.prove_safety()
        ),
        "mutex": lambda: _mutex_demo(jobs=jobs, store=store),
        "2pc-atomicity": lambda: with_encoding(
            TwoPhaseCommit(2, jobs=jobs, store=store),
            lambda s: s.prove_atomicity(),
        ),
        "2pc-termination": lambda: with_encoding(
            TwoPhaseCommit(2, jobs=jobs, store=store),
            lambda s: s.prove_termination(),
        ),
    }
    pf, conclusion, encoding = runners[args.name]()
    if store is not None:
        ledger = pf.cache_ledger()
        if ledger is not None:
            print(
                f"result store: {ledger['hits']} hit(s), "
                f"{ledger['misses']} miss(es)",
                file=sys.stderr,
            )
        pf.seal_cache({"demo": args.name})
    obligations = {
        id(o) for s in pf.log for leaf in s.leaves() for o in leaf.obligations
    }
    print(f"demo: {args.name}{_DEMOS[args.name]}")
    print()
    print(f"components: {', '.join(sorted(pf.components))}")
    print(f"composite alphabet: {len(pf.sigma_star)} atomic propositions")
    print(f"proof steps: {len(pf.log)}; model-checking obligations: "
          f"{len(obligations)}")
    print()
    print("final conclusion (decoded):")
    restriction = conclusion.restriction
    if not restriction.is_trivial:
        print(f"  from initial states: {encoding.describe(restriction.init)}")
        fair = [f for f in restriction.fairness]
        from repro.logic.ctl import TRUE as F_TRUE

        real_fair = [f for f in fair if f != F_TRUE]
        if real_fair:
            print(f"  under {len(real_fair)} fairness constraint(s), e.g.:")
            print(f"    {encoding.describe(real_fair[0])}")
    print(f"{encoding.describe(conclusion.formula)}")
    if args.verify:
        failures = [p for p, c in pf.verify_monolithic() if not c]
        print(
            f"\nmonolithic cross-check: {len(pf.conclusions)} conclusions, "
            f"{len(failures)} failures"
        )
        return 1 if failures else 0
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.store import ResultStore

    store = ResultStore(args.dir)
    if args.action == "stats":
        info = store.stats()
        if args.json:
            print(json.dumps(info, indent=2, sort_keys=True))
            return 0
        print(f"result store: {info['root']}")
        print(f"records: {info['records']} ({info['total_bytes']} bytes, "
              f"cap {info['max_bytes']})")
        kinds = info["records_by_kind"]
        if kinds:
            listing = ", ".join(f"{k}: {v}" for k, v in sorted(kinds.items()))
            print(f"  by kind: {listing}")
        counters = info["counters"]
        if counters:
            print("lifetime counters:")
            for key in sorted(counters):
                print(f"  {key}: {counters[key]}")
        return 0
    if args.action == "gc":
        evicted = store.gc(args.max_bytes)
        print(f"evicted {evicted} record(s); {len(store)} remain "
              f"({store.total_bytes()} bytes)")
        return 0
    removed = store.clear()
    store.flush_counters()
    print(f"removed {removed} record(s)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.obs.log import configure_log
    from repro.obs.metrics import MetricsRegistry
    from repro.serve.http import create_server, serve_forever
    from repro.serve.jobs import JobManager
    from repro.store import ResultStore

    if args.log_file:
        configure_log(
            args.log_file,
            level=args.log_level,
            max_bytes=args.log_max_bytes,
        )
    metrics = MetricsRegistry()
    ring_config = None
    if args.ring:
        from repro.cluster.ring import RingConfig

        if not args.cache_dir:
            print(
                "repro: --ring needs --cache-dir (peer store fetch "
                "requires a local store)",
                file=sys.stderr,
            )
            return 2
        advertise = args.advertise or f"http://{args.host}:{args.port}"
        ring_config = RingConfig.parse(args.ring, self_url=advertise)
    if ring_config is not None:
        from repro.cluster.peers import PeerAwareStore

        store = PeerAwareStore(
            args.cache_dir,
            ring_config,
            metrics=metrics,
            timeout=args.peer_timeout,
        )
    elif args.cache_dir:
        store = ResultStore(args.cache_dir, metrics=metrics)
    else:
        store = None
    manager = JobManager(
        jobs=args.jobs,
        queue_size=args.queue_size,
        store=store,
        default_timeout=args.timeout,
        metrics=metrics,
        trace_requests=not args.no_request_traces,
        progress=not args.no_progress,
        progress_interval=args.progress_interval,
        stall_deadline=args.stall_deadline,
        shard_id=ring_config.self_id or "" if ring_config else "",
    )
    server = create_server(args.host, args.port, manager=manager)
    where = f"http://{args.host}:{server.port}"
    cache = f", cache {args.cache_dir}" if args.cache_dir else ""
    log = f", log {args.log_file}" if args.log_file else ""
    ring = (
        f", ring {len(ring_config.shard_ids)} shard(s) as "
        f"{ring_config.self_id}"
        if ring_config
        else ""
    )
    print(
        f"repro serve: listening on {where} "
        f"({args.jobs} worker(s), queue {args.queue_size}{cache}{log}{ring})",
        file=sys.stderr,
    )
    serve_forever(server)
    print("repro serve: drained and stopped", file=sys.stderr)
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    """``repro cluster router|status``: the shard-aware serving tier.

    ``router`` runs the cluster front end: the existing ``/v1/check``
    API, with each check routed to its owner shard on the consistent-
    hash ring and the results fanned back into one job document.
    ``status`` probes every ring member (``/healthz`` + a federated
    ``/metrics`` scrape) and renders a live per-shard table — health,
    queue depth, store hit rate, breaker state, stalled obligations,
    ring ownership share — once, repeatedly with ``--watch``, or as
    the full JSON document with ``--json``.
    """
    from repro.cluster.ring import RingConfig

    config = RingConfig.parse(args.ring)
    if args.action == "router":
        from repro.cluster.router import RouterManager, create_router
        from repro.serve.http import serve_forever

        manager = RouterManager(
            config,
            timeout=args.peer_timeout,
            max_parallel=args.max_parallel,
        )
        server = create_router(
            args.host, args.port, config=config, manager=manager
        )
        print(
            f"repro cluster router: listening on "
            f"http://{args.host}:{server.port} over "
            f"{len(config.shard_ids)} shard(s): "
            f"{', '.join(config.shard_ids)}",
            file=sys.stderr,
        )
        serve_forever(server)
        print("repro cluster router: stopped", file=sys.stderr)
        return 0
    # status: health probes + a federated metrics scrape, rendered live
    from repro.cluster.router import RouterManager

    manager = RouterManager(config, timeout=args.peer_timeout)
    while True:
        doc = manager.cluster_status()
        healthy = sum(
            1 for member in doc["members"].values() if member["reachable"]
        )
        if args.json:
            print(json.dumps(doc, indent=2))
        else:
            if args.watch:
                print("\x1b[H\x1b[2J", end="")  # home + clear
            print(_render_cluster_status(doc, healthy))
        if not args.watch:
            return 0 if healthy == len(doc["members"]) else 1
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def _render_cluster_status(doc: dict, healthy: int) -> str:
    """The ``repro cluster status`` table for one probe round."""

    def pct(value, digits: int = 1) -> str:
        return "-" if value is None else f"{100 * value:.{digits}f}%"

    lines = [
        f"cluster: {len(doc['ring']['members'])} member(s), "
        f"{doc['ring']['vnodes']} vnodes",
        f"  {'shard':<24} {'health':<8} {'breaker':<9} "
        f"{'queue':>5} {'run':>4} {'hit':>7} {'stall':>5} "
        f"{'peers':>5} {'share':>7}",
    ]
    for shard, member in doc["members"].items():
        if not member["reachable"]:
            lines.append(
                f"  {shard:<24} {'DOWN':<8} {member['breaker']:<9} "
                f"{'-':>5} {'-':>4} {'-':>7} {'-':>5} {'-':>5} "
                f"{pct(member['ring_share']):>7}  ({member['status']})"
            )
            continue
        peers = member.get("peer_breakers") or {}
        open_peers = member.get("open_breakers", 0)
        peer_mark = "-" if not peers else (
            "ok" if not open_peers else f"{open_peers}!"
        )
        lines.append(
            f"  {shard:<24} {member['status']:<8} {member['breaker']:<9} "
            f"{member.get('queued', 0):>5} {member.get('running', 0):>4} "
            f"{pct(member.get('hit_rate')):>7} "
            f"{member.get('stalled_obligations', 0):>5} "
            f"{peer_mark:>5} {pct(member['ring_share']):>7}"
        )
    totals = doc.get("totals") or {}
    if totals:
        hits = totals.get("store_hits", 0)
        lookups = hits + totals.get("store_misses", 0)
        lines.append(
            f"totals: jobs {totals.get('serve_jobs_submitted', 0):g} "
            f"({totals.get('serve_jobs_completed', 0):g} done)  "
            f"checks {totals.get('serve_checks_submitted', 0):g}  "
            f"store {pct(hits / lookups if lookups else None)} hit  "
            f"stalled {totals.get('stalled_obligations', 0):g}"
        )
    scrape_errors = doc.get("scrape_errors") or {}
    if scrape_errors:
        lines.append(
            "scrape errors: "
            + "; ".join(f"{s}: {e}" for s, e in scrape_errors.items())
        )
    lines.append(f"{healthy}/{len(doc['members'])} shard(s) healthy")
    return "\n".join(lines)


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs.log import format_event, read_events

    events = read_events(args.log)
    if args.level:
        from repro.obs.log import LEVELS

        threshold = LEVELS[args.level]
        events = [
            e for e in events if LEVELS.get(e.get("level", "info"), 20) >= threshold
        ]
    if args.trace_id:
        events = [e for e in events if e.get("trace_id") == args.trace_id]
    if args.action == "tail":
        for record in events[-args.lines :]:
            print(format_event(record))
        return 0
    # summary: per-event counts plus latency aggregates from job.done
    counts: dict[str, int] = {}
    errors = 0
    totals: list[float] = []
    for record in events:
        name = record.get("event", "?")
        counts[name] = counts.get(name, 0) + 1
        if record.get("level") == "error":
            errors += 1
        if name == "job.done" and "total_seconds" in record:
            totals.append(float(record["total_seconds"]))
    print(f"events: {len(events)} ({errors} error(s))")
    for name in sorted(counts):
        print(f"  {name:<18} {counts[name]}")
    if totals:
        totals.sort()
        mean = sum(totals) / len(totals)
        p50 = totals[len(totals) // 2]
        p90 = totals[min(len(totals) - 1, int(len(totals) * 0.9))]
        print(
            f"job.done latency: n={len(totals)} mean={mean:.4f}s "
            f"p50={p50:.4f}s p90={p90:.4f}s max={totals[-1]:.4f}s"
        )
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeClient, ServeClientError
    from repro.serve.schema import format_payload

    checks = [
        {
            "source": Path(name).read_text(),
            "engine": "explicit" if args.explicit else "symbolic",
            "reflexive": args.reflexive,
            "label": name,
        }
        for name in args.files
    ]
    client = ServeClient(args.url)
    try:
        if args.progress:
            from repro.obs.progress import ProgressPrinter

            accepted = client.submit(checks, timeout=args.timeout)
            printer = ProgressPrinter(sys.stderr)
            try:
                for event in client.iter_events(accepted["id"]):
                    printer(event)
            except ServeClientError as exc:
                if exc.status != 404:  # progress disabled server-side
                    raise
            job = client.wait(accepted["id"], timeout=args.wait)
        else:
            job = client.check(
                checks, timeout=args.timeout, wait_timeout=args.wait
            )
    except ServeClientError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    if job["state"] != "done":
        print(
            f"repro: job {job['id']} {job['state']}: {job.get('error')}",
            file=sys.stderr,
        )
        return 2
    if args.json:
        print(json.dumps(job, indent=2))
    else:
        for i, report in enumerate(job["reports"]):
            if i:
                print()
            if len(job["reports"]) > 1:
                print(f"== {report.get('label') or f'check {i + 1}'} ==")
            print(format_payload(report, with_stats=args.stats))
    return 0 if all(r["all_true"] for r in job["reports"]) else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Compositional CTL model checking (Andrade & Sanders 2002)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="model-check every SPEC of a module")
    check.add_argument("file")
    check.add_argument(
        "--reflexive",
        action="store_true",
        help="stutter-close the relation (paper-style component semantics)",
    )
    check.add_argument(
        "--explicit",
        action="store_true",
        help="use the explicit-state engine instead of BDDs",
    )
    check.add_argument(
        "--stats",
        action="store_true",
        help="print the extended resources block (cache hit rates, "
        "peak unique-table size, fixpoint iterations)",
    )
    check.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="consult/populate a content-addressed result store; "
        "verdicts already recorded are replayed without re-checking",
    )
    check.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable report payload (the same "
        "schema the serving layer returns) instead of the text report",
    )
    check.add_argument(
        "--progress",
        action="store_true",
        help="render live per-obligation progress (fixpoint heartbeats, "
        "cache hits, verdicts) to stderr while checking",
    )
    _add_jobs_flag(check)
    _add_reorder_flag(check)
    _add_observability_flags(check)
    check.set_defaults(func=_cmd_check)

    sim = sub.add_parser("simulate", help="print a random run of the model")
    sim.add_argument("file")
    sim.add_argument("-n", "--steps", type=int, default=10)
    sim.add_argument("--seed", type=int, default=None)
    sim.set_defaults(func=_cmd_simulate)

    graph = sub.add_parser("graph", help="emit the transition graph as DOT")
    graph.add_argument("file")
    graph.add_argument(
        "--decoded",
        action="store_true",
        help="label nodes with variable assignments instead of raw atoms",
    )
    graph.set_defaults(func=_cmd_graph)

    reach = sub.add_parser(
        "reachable", help="forward-reachability statistics of the model"
    )
    reach.add_argument("file")
    reach.set_defaults(func=_cmd_reachable)

    demo = sub.add_parser(
        "demo", help="run one of the built-in compositional proofs"
    )
    demo.add_argument("name", choices=sorted(_DEMOS))
    demo.add_argument(
        "--verify",
        action="store_true",
        help="re-check every conclusion on the monolithic product system",
    )
    demo.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="consult/populate a content-addressed result store; proof "
        "obligations already recorded are replayed without re-checking",
    )
    _add_jobs_flag(demo)
    _add_reorder_flag(demo)
    _add_observability_flags(demo)
    demo.set_defaults(func=_cmd_demo)

    store = sub.add_parser(
        "store", help="inspect or maintain a content-addressed result store"
    )
    store.add_argument("action", choices=("stats", "gc", "clear"))
    store.add_argument("dir", metavar="DIR", help="store root directory")
    store.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="for gc: evict oldest records until the store fits in N "
        "bytes (defaults to the store's built-in cap)",
    )
    store.add_argument(
        "--json",
        action="store_true",
        help="print machine-readable JSON instead of the text summary",
    )
    store.set_defaults(func=_cmd_store)

    serve = sub.add_parser(
        "serve", help="run the batch model-checking HTTP service"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8123,
        help="TCP port to listen on (0 binds an ephemeral port)",
    )
    serve.add_argument(
        "--jobs",
        type=int,
        default=2,
        metavar="N",
        help="worker processes behind the job queue",
    )
    serve.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="back the service with a result store at DIR (repeat "
        "submissions are served from disk)",
    )
    serve.add_argument(
        "--queue-size",
        type=int,
        default=16,
        help="bounded job queue depth; beyond it POST /v1/check "
        "returns 429",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="default per-job deadline in seconds",
    )
    serve.add_argument(
        "--log-file",
        metavar="FILE",
        default=None,
        help="append structured JSONL events (submissions, lifecycle, "
        "timings) to FILE; read it back with 'repro obs tail'",
    )
    serve.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default="info",
        help="minimum event level written to --log-file",
    )
    serve.add_argument(
        "--no-request-traces",
        action="store_true",
        help="skip recording per-request span traces (disables "
        "GET /v1/jobs/<id>/trace; sheds recording overhead under load)",
    )
    serve.add_argument(
        "--no-progress",
        action="store_true",
        help="skip recording live obligation progress (disables "
        "GET /v1/jobs/<id>/events and the stall watchdog)",
    )
    serve.add_argument(
        "--progress-interval",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="minimum seconds between heartbeat ticks from inside a "
        "fixpoint (throttles per-iteration progress events)",
    )
    serve.add_argument(
        "--stall-deadline",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="flag a running obligation as stalled after this long "
        "without a heartbeat (0 disables the watchdog)",
    )
    serve.add_argument(
        "--log-max-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="rotate --log-file to <file>.1 when it would exceed "
        "BYTES (keeps at most two generations on disk)",
    )
    serve.add_argument(
        "--ring",
        metavar="URLS",
        default=None,
        help="serve as one shard of a cluster: comma-separated base "
        "URLs of every member (this instance included); on a local "
        "store miss the fingerprint's owner shard is probed before "
        "checking (requires --cache-dir)",
    )
    serve.add_argument(
        "--advertise",
        metavar="URL",
        default=None,
        help="this instance's own URL within --ring (defaults to "
        "http://<host>:<port>)",
    )
    serve.add_argument(
        "--peer-timeout",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="per-peer socket timeout for cluster store fetches",
    )
    serve.set_defaults(func=_cmd_serve)

    cluster = sub.add_parser(
        "cluster",
        help="run or inspect the shard-aware serving tier "
        "(consistent-hash cluster of repro serve instances)",
    )
    cluster.add_argument("action", choices=("router", "status"))
    cluster.add_argument(
        "--ring",
        metavar="URLS",
        required=True,
        help="comma-separated base URLs of every cluster member",
    )
    cluster.add_argument("--host", default="127.0.0.1")
    cluster.add_argument(
        "--port",
        type=int,
        default=8200,
        help="router listen port (0 binds an ephemeral port)",
    )
    cluster.add_argument(
        "--peer-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="per-shard request timeout (submit, poll, health probe)",
    )
    cluster.add_argument(
        "--max-parallel",
        type=int,
        default=16,
        metavar="N",
        help="concurrent shard connections in the router's fan-out loop",
    )
    cluster.add_argument(
        "--json",
        action="store_true",
        help="for status: print the full JSON status document",
    )
    cluster.add_argument(
        "--watch",
        action="store_true",
        help="for status: refresh the table until interrupted",
    )
    cluster.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="refresh period for --watch",
    )
    cluster.set_defaults(func=_cmd_cluster)

    obs = sub.add_parser(
        "obs", help="inspect a structured event log written by repro serve"
    )
    obs.add_argument("action", choices=("tail", "summary"))
    obs.add_argument("log", help="JSONL event log file (--log-file)")
    obs.add_argument(
        "-n",
        "--lines",
        type=int,
        default=20,
        help="events to show with 'tail' (from the end)",
    )
    obs.add_argument(
        "--level",
        choices=("debug", "info", "warning", "error"),
        default=None,
        help="only events at or above this level",
    )
    obs.add_argument(
        "--trace-id",
        default=None,
        help="only events of one request trace",
    )
    obs.set_defaults(func=_cmd_obs)

    submit = sub.add_parser(
        "submit", help="submit SMV files to a running repro serve"
    )
    submit.add_argument("files", nargs="+")
    submit.add_argument(
        "--url",
        default="http://127.0.0.1:8123",
        help="base URL of the service",
    )
    submit.add_argument(
        "--reflexive",
        action="store_true",
        help="stutter-close the relation (paper-style component semantics)",
    )
    submit.add_argument(
        "--explicit",
        action="store_true",
        help="use the explicit-state engine instead of BDDs",
    )
    submit.add_argument(
        "--stats",
        action="store_true",
        help="append the BDD cache line to each rendered report",
    )
    submit.add_argument(
        "--json",
        action="store_true",
        help="print the raw job document instead of rendered reports",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="server-side deadline for this job in seconds",
    )
    submit.add_argument(
        "--wait",
        type=float,
        default=120.0,
        help="client-side seconds to wait for the job to finish",
    )
    submit.add_argument(
        "--progress",
        action="store_true",
        help="stream the job's live progress events "
        "(GET /v1/jobs/<id>/events) to stderr while waiting",
    )
    submit.set_defaults(func=_cmd_submit)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    reorder = getattr(args, "reorder", None)
    previous_reorder = None
    if reorder is not None:
        # the mode applies to every manager the command builds; restored
        # afterwards so in-process callers (tests) stay isolated
        from repro.bdd.manager import set_default_reorder

        previous_reorder = set_default_reorder(reorder)
    try:
        return args.func(args)
    except BrokenPipeError:
        # output was piped into a consumer that closed early (e.g. head)
        return 0
    except OSError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:  # parse/elaboration/check errors
        from repro.errors import ReproError

        if isinstance(exc, ReproError):
            print(f"repro: {exc}", file=sys.stderr)
            return 2
        raise
    finally:
        if previous_reorder is not None:
            from repro.bdd.manager import set_default_reorder

            set_default_reorder(previous_reorder)


if __name__ == "__main__":
    sys.exit(main())
