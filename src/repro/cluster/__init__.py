"""Distributed shard-aware serving: one logical service over N instances.

The paper's compositional discipline turns one big check into many
independent, content-addressed obligations — exactly the unit that
shards cleanly across machines.  ``repro.cluster`` makes a set of
``repro serve`` instances behave as one service:

* :mod:`repro.cluster.ring` — a deterministic consistent-hash ring
  (vnode-based, SHA-256 keyed) assigning every fingerprint an owner
  shard, with minimal remapping when membership changes;
* :mod:`repro.cluster.fanout` — a bounded selector-loop HTTP client
  that fans requests out to many peers concurrently without a thread
  per peer;
* :mod:`repro.cluster.peers` — the peer store tier: on a local store
  miss, probe the fingerprint's owner shard (``GET
  /v1/store/<fingerprint>``) before checking, write fetched records
  back locally, and push freshly computed records to their owners — so
  a result computed anywhere is a warm hit everywhere.  Per-peer
  timeouts, retries with exponential backoff + jitter and a circuit
  breaker keep a dead cache peer from ever failing a request;
* :mod:`repro.cluster.router` — a front end accepting the existing
  ``/v1/check`` API, splitting batches into per-check work routed to
  owner shards and fanning the results back into one job document.

Start a cluster with ``repro serve --ring ... --advertise ...`` per
instance plus ``repro cluster router --ring ...``; inspect it with
``repro cluster status --ring ...``.
"""

from repro.cluster.ring import HashRing, RingConfig, request_fingerprint

__all__ = ["HashRing", "RingConfig", "request_fingerprint"]
